#include "net/geo.h"

namespace cw::net {

std::string_view continent_name(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "North America";
    case Continent::kEurope: return "Europe";
    case Continent::kAsiaPacific: return "Asia Pacific";
    case Continent::kSouthAmerica: return "South America";
    case Continent::kMiddleEast: return "Middle East";
    case Continent::kAfrica: return "Africa";
  }
  return "Unknown";
}

std::string_view continent_code(Continent c) noexcept {
  switch (c) {
    case Continent::kNorthAmerica: return "NA";
    case Continent::kEurope: return "EU";
    case Continent::kAsiaPacific: return "AP";
    case Continent::kSouthAmerica: return "SA";
    case Continent::kMiddleEast: return "ME";
    case Continent::kAfrica: return "AF";
  }
  return "??";
}

std::optional<CountryCode> CountryCode::parse(std::string_view text) {
  if (text.size() != 2) return std::nullopt;
  auto is_alpha = [](char c) { return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z'); };
  if (!is_alpha(text[0]) || !is_alpha(text[1])) return std::nullopt;
  auto upper = [](char c) { return c >= 'a' ? static_cast<char>(c - 'a' + 'A') : c; };
  return CountryCode(upper(text[0]), upper(text[1]));
}

std::string GeoRegion::code() const {
  // US regions read "US-OR"; everything else is continent-qualified
  // ("AP-SG", "NA-CA-QC", "SA-BR"), matching the paper's region labels.
  std::string out;
  if (country.to_string() == "US") {
    out = "US";
  } else {
    out = std::string(continent_code(continent)) + "-" + country.to_string();
  }
  if (!subdivision.empty()) {
    out += "-";
    out += subdivision;
  }
  return out;
}

Continent continent_of(CountryCode country) noexcept {
  const std::string code = country.to_string();
  // North America
  if (code == "US" || code == "CA" || code == "MX") return Continent::kNorthAmerica;
  // Europe
  if (code == "FR" || code == "IE" || code == "DE" || code == "GB" || code == "UK" ||
      code == "NL" || code == "CH" || code == "BE" || code == "FI" || code == "RO" ||
      code == "CZ" || code == "RU" || code == "BG" || code == "UA" || code == "IT" ||
      code == "ES" || code == "PL" || code == "SE") {
    return Continent::kEurope;
  }
  // Asia Pacific
  if (code == "AU" || code == "SG" || code == "IN" || code == "KR" || code == "JP" ||
      code == "HK" || code == "TW" || code == "ID" || code == "CN" || code == "VN" ||
      code == "TH" || code == "MY" || code == "PH" || code == "NZ") {
    return Continent::kAsiaPacific;
  }
  // South America
  if (code == "BR" || code == "EC" || code == "AR" || code == "CL" || code == "CO") {
    return Continent::kSouthAmerica;
  }
  // Middle East
  if (code == "BH" || code == "AE" || code == "IL" || code == "SA" || code == "TR") {
    return Continent::kMiddleEast;
  }
  // Africa
  if (code == "ZA" || code == "EG" || code == "NG" || code == "KE") return Continent::kAfrica;
  return Continent::kNorthAmerica;
}

GeoRegion make_region(std::string_view country, std::string_view subdivision) {
  GeoRegion region;
  if (auto code = CountryCode::parse(country)) region.country = *code;
  region.continent = continent_of(region.country);
  region.subdivision = std::string(subdivision);
  return region;
}

}  // namespace cw::net
