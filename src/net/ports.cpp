#include "net/ports.h"

#include "util/strings.h"

namespace cw::net {

std::string_view protocol_name(Protocol p) noexcept {
  switch (p) {
    case Protocol::kUnknown: return "UNKNOWN";
    case Protocol::kHttp: return "HTTP";
    case Protocol::kTls: return "TLS";
    case Protocol::kSsh: return "SSH";
    case Protocol::kTelnet: return "TELNET";
    case Protocol::kSmb: return "SMB";
    case Protocol::kRtsp: return "RTSP";
    case Protocol::kSip: return "SIP";
    case Protocol::kNtp: return "NTP";
    case Protocol::kRdp: return "RDP";
    case Protocol::kAdb: return "ADB";
    case Protocol::kFox: return "FOX";
    case Protocol::kRedis: return "REDIS";
    case Protocol::kSql: return "SQL";
  }
  return "UNKNOWN";
}

std::optional<Protocol> protocol_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kProtocolCount; ++i) {
    const Protocol p = static_cast<Protocol>(i);
    if (cw::util::starts_with_ci(name, protocol_name(p)) &&
        name.size() == protocol_name(p).size()) {
      return p;
    }
  }
  return std::nullopt;
}

Protocol iana_assignment(Port port) noexcept {
  switch (port) {
    case 22:
    case 2222: return Protocol::kSsh;
    case 23:
    case 2323: return Protocol::kTelnet;
    case 80:
    case 8080:
    case 8000:
    case 7547:  // TR-069 CWMP is HTTP-based
      return Protocol::kHttp;
    case 443:
    case 8443: return Protocol::kTls;
    case 445: return Protocol::kSmb;
    case 554: return Protocol::kRtsp;
    case 5060: return Protocol::kSip;
    case 123: return Protocol::kNtp;
    case 3389: return Protocol::kRdp;
    case 5555: return Protocol::kAdb;
    case 1911:
    case 4911: return Protocol::kFox;
    case 6379: return Protocol::kRedis;
    case 3306:
    case 1433: return Protocol::kSql;
    default: return Protocol::kUnknown;
  }
}

std::vector<Port> ports_assigned_to(Protocol p) {
  static const Port kRegistry[] = {22,  2222, 23,   2323, 80,   8080, 8000, 7547, 443, 8443,
                                   445, 554,  5060, 123,  3389, 5555, 1911, 4911, 6379, 3306,
                                   1433};
  std::vector<Port> out;
  for (Port port : kRegistry) {
    if (iana_assignment(port) == p) out.push_back(port);
  }
  return out;
}

const std::vector<Port>& popular_ports() {
  // Ordering matches Table 8 (most to least telescope-overlap for Telnet
  // first), which is the presentation order the benches reuse.
  static const std::vector<Port> kPorts = {23, 2323, 80, 8080, 21, 2222, 25, 7547, 22, 443};
  return kPorts;
}

const std::vector<Port>& greynoise_ports() {
  static const std::vector<Port> kPorts = {22, 2222, 23, 2323, 80, 8080, 443, 445, 3389, 5555};
  return kPorts;
}

std::string_view transport_name(Transport t) noexcept {
  return t == Transport::kTcp ? "TCP" : "UDP";
}

}  // namespace cw::net
