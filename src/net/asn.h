// Autonomous system registry. The paper identifies scanning actors by AS
// rather than IP (Section 3.3) to group multi-IP campaigns; this registry
// holds the real ASNs the paper names plus synthetic filler ASes used to
// model the long tail of scanning origins.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/geo.h"

namespace cw::net {

using Asn = std::uint32_t;

struct AsInfo {
  Asn asn = 0;
  std::string name;
  CountryCode country;  // registration country (drives geo-avoidance behaviors)
};

// Well-known ASNs referenced in the paper. Values are the real registry
// assignments.
inline constexpr Asn kAsnChinanet = 4134;
inline constexpr Asn kAsnCogent = 174;
inline constexpr Asn kAsnPonyNet = 53667;
inline constexpr Asn kAsnAxtel = 6503;
inline constexpr Asn kAsnChinaMobile = 56046;
inline constexpr Asn kAsnM247 = 9009;
inline constexpr Asn kAsnAvast = 198605;
inline constexpr Asn kAsnCdn77 = 60068;
inline constexpr Asn kAsnEmiratesInternet = 5384;
inline constexpr Asn kAsnSatnet = 14522;
inline constexpr Asn kAsnChinaUnicom = 9808;
inline constexpr Asn kAsnCensys = 398324;
inline constexpr Asn kAsnShodan = 10439;  // historical Shodan scanning origin (CariNet)
inline constexpr Asn kAsnMerit = 237;
inline constexpr Asn kAsnStanford = 32;
inline constexpr Asn kAsnDigitalOcean = 14061;
inline constexpr Asn kAsnOvh = 16276;
inline constexpr Asn kAsnHetzner = 24940;
inline constexpr Asn kAsnTencent = 45090;
inline constexpr Asn kAsnKtCorp = 4766;
inline constexpr Asn kAsnVietnamPt = 45899;
inline constexpr Asn kAsnBharti = 9498;
inline constexpr Asn kAsnTelstra = 1221;

// The registry is immutable after construction; lookup is O(log n).
class AsRegistry {
 public:
  // Builds the default registry: all paper-named ASes plus `synthetic_tail`
  // filler ASes distributed over the major scanning-origin countries.
  static AsRegistry standard(int synthetic_tail = 640);

  [[nodiscard]] const AsInfo* find(Asn asn) const noexcept;
  [[nodiscard]] std::string name_of(Asn asn) const;  // "AS<n>" fallback
  [[nodiscard]] const std::vector<AsInfo>& all() const noexcept { return entries_; }

  // ASes registered in the given country.
  [[nodiscard]] std::vector<Asn> in_country(CountryCode country) const;

 private:
  explicit AsRegistry(std::vector<AsInfo> entries);
  std::vector<AsInfo> entries_;  // sorted by asn
};

}  // namespace cw::net
