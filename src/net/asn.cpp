#include "net/asn.h"

#include <algorithm>

#include "util/rng.h"

namespace cw::net {
namespace {

CountryCode cc(const char (&code)[3]) { return CountryCode(code[0], code[1]); }

}  // namespace

AsRegistry::AsRegistry(std::vector<AsInfo> entries) : entries_(std::move(entries)) {
  std::sort(entries_.begin(), entries_.end(),
            [](const AsInfo& a, const AsInfo& b) { return a.asn < b.asn; });
}

AsRegistry AsRegistry::standard(int synthetic_tail) {
  std::vector<AsInfo> entries = {
      {kAsnChinanet, "Chinanet", cc("CN")},
      {kAsnCogent, "Cogent Communications", cc("US")},
      {kAsnPonyNet, "PonyNet", cc("US")},
      {kAsnAxtel, "Axtel", cc("MX")},
      {kAsnChinaMobile, "China Mobile", cc("CN")},
      {kAsnM247, "M247", cc("GB")},
      {kAsnAvast, "Avast Software", cc("CZ")},
      {kAsnCdn77, "CDN77", cc("GB")},
      {kAsnEmiratesInternet, "Emirates Internet", cc("AE")},
      {kAsnSatnet, "SATNET", cc("EC")},
      {kAsnChinaUnicom, "China Unicom", cc("CN")},
      {kAsnCensys, "Censys", cc("US")},
      {kAsnShodan, "Shodan (CariNet)", cc("US")},
      {kAsnMerit, "Merit Network", cc("US")},
      {kAsnStanford, "Stanford University", cc("US")},
      {kAsnDigitalOcean, "DigitalOcean", cc("US")},
      {kAsnOvh, "OVH", cc("FR")},
      {kAsnHetzner, "Hetzner Online", cc("DE")},
      {kAsnTencent, "Tencent Cloud", cc("CN")},
      {kAsnKtCorp, "KT Corporation", cc("KR")},
      {kAsnVietnamPt, "VNPT", cc("VN")},
      {kAsnBharti, "Bharti Airtel", cc("IN")},
      {kAsnTelstra, "Telstra", cc("AU")},
  };

  // Long tail of scanning origins: synthetic ASes spread across the
  // countries that dominate unsolicited-scan origination. The weights
  // loosely follow published scan-origin breakdowns (China, US, Russia,
  // Brazil, India, ... dominate).
  struct CountryShare {
    const char code[3];
    double share;
  };
  static constexpr CountryShare kShares[] = {
      {"CN", 0.24}, {"US", 0.18}, {"RU", 0.08}, {"BR", 0.06}, {"IN", 0.06}, {"VN", 0.05},
      {"KR", 0.04}, {"TW", 0.04}, {"DE", 0.04}, {"NL", 0.03}, {"GB", 0.03}, {"FR", 0.03},
      {"JP", 0.03}, {"ID", 0.03}, {"EC", 0.02}, {"MX", 0.02}, {"AE", 0.01}, {"AU", 0.01},
  };
  cw::util::Rng rng(0x41535245u);  // fixed: the registry is part of the model, not the run
  double total_share = 0.0;
  for (const auto& share : kShares) total_share += share.share;
  Asn next_asn = 64512;  // private-use range keeps synthetics distinct from real ASNs
  for (const auto& share : kShares) {
    const int count = static_cast<int>(synthetic_tail * share.share / total_share + 0.5);
    for (int i = 0; i < count; ++i) {
      AsInfo info;
      info.asn = next_asn++;
      info.name = std::string("ISP-") + share.code + "-" + std::to_string(i);
      info.country = cc(share.code);
      entries.push_back(info);
    }
  }
  (void)rng;
  return AsRegistry(std::move(entries));
}

const AsInfo* AsRegistry::find(Asn asn) const noexcept {
  auto it = std::lower_bound(entries_.begin(), entries_.end(), asn,
                             [](const AsInfo& info, Asn value) { return info.asn < value; });
  if (it == entries_.end() || it->asn != asn) return nullptr;
  return &*it;
}

std::string AsRegistry::name_of(Asn asn) const {
  const AsInfo* info = find(asn);
  return info ? info->name : "AS" + std::to_string(asn);
}

std::vector<Asn> AsRegistry::in_country(CountryCode country) const {
  std::vector<Asn> out;
  for (const AsInfo& info : entries_) {
    if (info.country == country) out.push_back(info.asn);
  }
  return out;
}

}  // namespace cw::net
