// Geography model: continental groupings follow how AWS and Google group
// datacenters (North America, Europe, Asia Pacific — Section 5.1), and
// regions carry the country/state codes of Table 1.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace cw::net {

enum class Continent : std::uint8_t {
  kNorthAmerica = 0,
  kEurope,
  kAsiaPacific,
  kSouthAmerica,
  kMiddleEast,
  kAfrica,
};

std::string_view continent_name(Continent c) noexcept;
std::string_view continent_code(Continent c) noexcept;  // "US"/"EU"/"AP"/...

// ISO-3166-ish country code (two letters), stored compactly.
class CountryCode {
 public:
  constexpr CountryCode() noexcept : code_{'?', '?'} {}
  constexpr CountryCode(char a, char b) noexcept : code_{a, b} {}
  static std::optional<CountryCode> parse(std::string_view text);

  [[nodiscard]] std::string to_string() const { return std::string(code_, 2); }
  friend constexpr bool operator==(CountryCode, CountryCode) noexcept = default;

 private:
  char code_[2];
};

// A deployment region: a (continent, country, optional state/city) tuple,
// e.g. "US-OR", "AP-SG", "EU-DE". Region identity is its code string.
struct GeoRegion {
  Continent continent = Continent::kNorthAmerica;
  CountryCode country;
  std::string subdivision;  // state/city qualifier, may be empty

  [[nodiscard]] std::string code() const;

  friend bool operator==(const GeoRegion& a, const GeoRegion& b) noexcept {
    return a.continent == b.continent && a.country == b.country && a.subdivision == b.subdivision;
  }
};

// Continent a country belongs to, for the countries in this study.
Continent continent_of(CountryCode country) noexcept;

// Convenience constructor: region from country code text and optional
// subdivision, with the continent inferred.
GeoRegion make_region(std::string_view country, std::string_view subdivision = {});

}  // namespace cw::net
