#include "net/ipv4.h"

#include <charconv>
#include <cstdio>

#include "util/strings.h"

namespace cw::net {

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view text) {
  auto parts = cw::util::split(text, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (std::string_view part : parts) {
    if (part.empty() || part.size() > 3) return std::nullopt;
    unsigned octet = 0;
    auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), octet);
    if (ec != std::errc() || ptr != part.data() + part.size() || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return IPv4Addr(value);
}

std::string IPv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", octet(0), octet(1), octet(2), octet(3));
  return buf;
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  std::size_t slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto base = IPv4Addr::parse(text.substr(0, slash));
  if (!base) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  int length = 0;
  auto [ptr, ec] = std::from_chars(len_text.data(), len_text.data() + len_text.size(), length);
  if (ec != std::errc() || ptr != len_text.data() + len_text.size() || length < 0 || length > 32) {
    return std::nullopt;
  }
  return Prefix(*base, length);
}

std::string Prefix::to_string() const {
  return base_.to_string() + "/" + std::to_string(length_);
}

}  // namespace cw::net
