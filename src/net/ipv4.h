// IPv4 address and prefix value types, plus the octet-structure predicates
// the paper's Section 4.2 analyzes (broadcast-style ".255" octets, first
// address of a /16, last-octet structure).
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace cw::net {

// An IPv4 address as a host-order 32-bit value with octet accessors.
class IPv4Addr {
 public:
  constexpr IPv4Addr() noexcept = default;
  constexpr explicit IPv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr IPv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) | (std::uint32_t{c} << 8) | d) {}

  // Parses dotted-quad notation; rejects out-of-range octets and garbage.
  static std::optional<IPv4Addr> parse(std::string_view text);

  [[nodiscard]] constexpr std::uint32_t value() const noexcept { return value_; }
  [[nodiscard]] constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  [[nodiscard]] std::string to_string() const;

  // True if any octet equals 255 (the over-broad "broadcast-looking" filter
  // the paper hypothesizes scanners apply, Section 4.2).
  [[nodiscard]] constexpr bool has_255_octet() const noexcept {
    return octet(0) == 255 || octet(1) == 255 || octet(2) == 255 || octet(3) == 255;
  }

  // True if the last octet is 255 (an address commonly reserved for
  // directed broadcast in /24-aligned networks).
  [[nodiscard]] constexpr bool ends_in_255() const noexcept { return octet(3) == 255; }

  // True if this is the first address of its /16 (x.B.0.0) — the position
  // Mirai-style scanners over-target (Section 4.2).
  [[nodiscard]] constexpr bool is_first_of_slash16() const noexcept {
    return (value_ & 0xffff) == 0;
  }

  constexpr IPv4Addr operator+(std::uint32_t delta) const noexcept {
    return IPv4Addr(value_ + delta);
  }

  friend constexpr auto operator<=>(IPv4Addr, IPv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix.
class Prefix {
 public:
  constexpr Prefix() noexcept = default;
  constexpr Prefix(IPv4Addr base, int length) noexcept
      : base_(IPv4Addr(length == 0 ? 0 : (base.value() & mask(length)))), length_(length) {}

  static std::optional<Prefix> parse(std::string_view text);

  [[nodiscard]] constexpr IPv4Addr base() const noexcept { return base_; }
  [[nodiscard]] constexpr int length() const noexcept { return length_; }
  [[nodiscard]] constexpr std::uint32_t size() const noexcept {
    return length_ == 0 ? 0xffffffffu : (1u << (32 - length_));  // /0 size saturates
  }

  [[nodiscard]] constexpr bool contains(IPv4Addr addr) const noexcept {
    if (length_ == 0) return true;
    return (addr.value() & mask(length_)) == base_.value();
  }

  // The i-th address inside the prefix (no bounds check beyond size()).
  [[nodiscard]] constexpr IPv4Addr at(std::uint32_t i) const noexcept { return base_ + i; }

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept = default;

 private:
  static constexpr std::uint32_t mask(int length) noexcept {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }
  IPv4Addr base_{};
  int length_ = 32;
};

}  // namespace cw::net
