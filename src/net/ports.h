// Application protocols and the IANA port registry slice relevant to the
// paper: the 13 TCP protocols LZR fingerprints (Section 6) plus the ports
// GreyNoise honeypots expose and the telescope's consistently-targeted set.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace cw::net {

using Port = std::uint16_t;

// Application-layer protocols recognized by the fingerprinter.
enum class Protocol : std::uint8_t {
  kUnknown = 0,
  kHttp,
  kTls,
  kSsh,
  kTelnet,
  kSmb,
  kRtsp,
  kSip,
  kNtp,
  kRdp,
  kAdb,
  kFox,
  kRedis,
  kSql,
};

inline constexpr std::size_t kProtocolCount = 14;

std::string_view protocol_name(Protocol p) noexcept;
std::optional<Protocol> protocol_from_name(std::string_view name) noexcept;

// IANA-assigned protocol for a port, for the ports this study touches
// (22, 2222 -> SSH; 23, 2323 -> Telnet; 80, 8080 -> HTTP; 443 -> TLS; ...).
// Returns kUnknown for ports with no assignment we model.
Protocol iana_assignment(Port port) noexcept;

// Ports with the given IANA assignment within our registry.
std::vector<Port> ports_assigned_to(Protocol p);

// The ten most consistently targeted ports observed by the telescope,
// used in Table 8/9 and the address-structure analysis.
const std::vector<Port>& popular_ports();

// Default ports a GreyNoise honeypot exposes (at least seven popular ports,
// Section 3.1).
const std::vector<Port>& greynoise_ports();

enum class Transport : std::uint8_t { kTcp, kUdp };

std::string_view transport_name(Transport t) noexcept;

}  // namespace cw::net
