#include "capture/collector.h"

namespace cw::capture {

bool is_cowrie_port(net::Port port) noexcept {
  return port == 22 || port == 2222 || port == 23 || port == 2323;
}

bool client_speaks_first(net::Protocol protocol) noexcept {
  switch (protocol) {
    case net::Protocol::kHttp:
    case net::Protocol::kTls:
    case net::Protocol::kRtsp:
    case net::Protocol::kSip:
    case net::Protocol::kRdp:
    case net::Protocol::kAdb:
    case net::Protocol::kFox:
    case net::Protocol::kRedis:
    case net::Protocol::kNtp:
    case net::Protocol::kSmb:
      return true;
    case net::Protocol::kSsh:
      // Both sides send identification strings immediately (RFC 4253 §4.2);
      // scanner clients do transmit their banner unprompted.
      return true;
    case net::Protocol::kTelnet:
      // Option negotiation is symmetric; clients lead with IAC verbs. The
      // *login credentials*, however, only flow after a server prompt.
      return true;
    case net::Protocol::kSql:
      // MySQL is server-first: a real client waits for the server greeting.
      return false;
    case net::Protocol::kUnknown:
      return false;
  }
  return false;
}

void Collector::emit(const SessionRecord& record, std::string_view payload,
                     const std::optional<proto::Credential>& credential) {
  if (store_sink_) {
    store_sink_(record, payload, credential);
    return;
  }
  store_.append(record, payload, credential);
}

bool Collector::deliver(const ScanEvent& event) {
  const auto target_index = universe_->find(event.dst);
  if (!target_index) {
    ++dropped_unmonitored_;
    return false;
  }
  const topology::Target& target = universe_->targets()[*target_index];
  const topology::VantagePoint& vp = universe_->deployment().at(target.vantage);

  if (firewall_ && firewall_(event, vp)) {
    ++dropped_firewalled_;
    return false;
  }

  if (telescope_sink_ && vp.collection == topology::CollectionMethod::kTelescope) {
    const bool consumed = telescope_sink_(event, target);
    if (consumed) ++delivered_;
    return consumed;
  }

  SessionRecord record;
  record.time = event.time;
  record.src = event.src.value();
  record.dst = event.dst.value();
  record.src_as = event.src_as;
  record.port = event.dst_port;
  record.transport = event.transport;
  record.vantage = vp.id;
  record.neighbor = static_cast<std::uint16_t>(target.index_in_vantage);
  record.actor = event.actor;
  record.malicious_truth = event.malicious_intent;

  switch (vp.collection) {
    case topology::CollectionMethod::kTelescope: {
      // First packet only: no handshake, no payload, no credentials.
      record.handshake_completed = false;
      emit(record, {}, std::nullopt);
      break;
    }
    case topology::CollectionMethod::kHoneytrap: {
      // Listens on every port; completes the handshake; records the first
      // client payload. Server-first clients that send nothing leave an
      // empty record (the connection itself is still logged).
      record.handshake_completed = event.transport == net::Transport::kTcp;
      const bool client_sends =
          !event.payload.empty() && (event.transport == net::Transport::kUdp ||
                                     client_speaks_first(event.intended_protocol));
      emit(record, client_sends ? std::string_view(event.payload) : std::string_view{},
           std::nullopt);
      break;
    }
    case topology::CollectionMethod::kGreyNoise: {
      if (!vp.listens_on(event.dst_port)) {
        ++dropped_refused_;
        return false;
      }
      record.handshake_completed = true;
      if (is_cowrie_port(event.dst_port)) {
        // Cowrie walks the client through the full login exchange, so both
        // the banner/negotiation payload and the credentials are retained.
        emit(record, event.payload, event.credential);
      } else {
        emit(record, event.payload, std::nullopt);
      }
      break;
    }
  }
  ++delivered_;
  return true;
}

}  // namespace cw::capture
