#include "capture/pcap.h"

#include <fstream>
#include <ostream>

namespace cw::capture {
namespace {

void put_u16(std::string& out, std::uint16_t value) {
  out += static_cast<char>(value & 0xff);
  out += static_cast<char>((value >> 8) & 0xff);
}

void put_u32(std::string& out, std::uint32_t value) {
  out += static_cast<char>(value & 0xff);
  out += static_cast<char>((value >> 8) & 0xff);
  out += static_cast<char>((value >> 16) & 0xff);
  out += static_cast<char>((value >> 24) & 0xff);
}

void put_u16_be(std::string& out, std::uint16_t value) {
  out += static_cast<char>((value >> 8) & 0xff);
  out += static_cast<char>(value & 0xff);
}

void put_u32_be(std::string& out, std::uint32_t value) {
  out += static_cast<char>((value >> 24) & 0xff);
  out += static_cast<char>((value >> 16) & 0xff);
  out += static_cast<char>((value >> 8) & 0xff);
  out += static_cast<char>(value & 0xff);
}

// RFC 1071 checksum over a buffer (expects even length padding handled by
// the caller appending a zero byte conceptually; here we handle odd tails).
std::uint16_t inet_checksum(const std::string& data, std::size_t offset, std::size_t length,
                            std::uint32_t seed = 0) {
  std::uint32_t sum = seed;
  std::size_t i = 0;
  for (; i + 1 < length; i += 2) {
    sum += (static_cast<std::uint8_t>(data[offset + i]) << 8) |
           static_cast<std::uint8_t>(data[offset + i + 1]);
  }
  if (i < length) sum += static_cast<std::uint8_t>(data[offset + i]) << 8;
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

// Builds the Ethernet + IPv4 + TCP/UDP frame for one record.
std::string build_frame(const SessionRecord& record, const std::string& payload) {
  std::string frame;
  // Ethernet: synthetic MACs, ethertype IPv4.
  frame += std::string("\x02\x00\x00\x00\x00\x01", 6);
  frame += std::string("\x02\x00\x00\x00\x00\x02", 6);
  frame += '\x08';
  frame += '\x00';

  const bool udp = record.transport == net::Transport::kUdp;
  const std::size_t l4_header = udp ? 8 : 20;
  const std::uint16_t total_length =
      static_cast<std::uint16_t>(20 + l4_header + payload.size());

  // IPv4 header (20 bytes, no options).
  std::string ip;
  ip += '\x45';                     // version 4, IHL 5
  ip += '\x00';                     // DSCP/ECN
  put_u16_be(ip, total_length);
  put_u16_be(ip, 0x1234);           // identification
  put_u16_be(ip, 0x4000);           // don't-fragment
  ip += '\x40';                     // TTL 64
  ip += udp ? '\x11' : '\x06';      // protocol
  put_u16_be(ip, 0);                // checksum placeholder
  put_u32_be(ip, record.src);
  put_u32_be(ip, record.dst);
  const std::uint16_t ip_checksum = inet_checksum(ip, 0, ip.size());
  ip[10] = static_cast<char>((ip_checksum >> 8) & 0xff);
  ip[11] = static_cast<char>(ip_checksum & 0xff);
  frame += ip;

  // Source ports are not modeled; derive a stable ephemeral port.
  const std::uint16_t src_port =
      static_cast<std::uint16_t>(32768 + ((record.src ^ record.time) & 0x3fff));

  if (udp) {
    std::string l4;
    put_u16_be(l4, src_port);
    put_u16_be(l4, record.port);
    put_u16_be(l4, static_cast<std::uint16_t>(8 + payload.size()));
    put_u16_be(l4, 0);  // checksum optional in IPv4
    frame += l4;
  } else {
    std::string l4;
    put_u16_be(l4, src_port);
    put_u16_be(l4, record.port);
    put_u32_be(l4, 1000);  // sequence
    put_u32_be(l4, record.handshake_completed ? 2000 : 0);  // ack
    l4 += '\x50';          // data offset 5
    // PSH+ACK for data segments, bare SYN for telescope-style records.
    l4 += payload.empty() && !record.handshake_completed ? '\x02' : '\x18';
    put_u16_be(l4, 65535);  // window
    put_u16_be(l4, 0);      // checksum left zero (Wireshark flags, tools accept)
    put_u16_be(l4, 0);      // urgent
    frame += l4;
  }
  frame += payload;
  return frame;
}

}  // namespace

std::size_t write_pcap(const EventStore& store, std::ostream& out,
                       const PcapWriteOptions& options) {
  std::string header;
  put_u32(header, 0xa1b2c3d4);      // magic, little-endian, microsecond
  put_u16(header, 2);               // version major
  put_u16(header, 4);               // version minor
  put_u32(header, 0);               // thiszone
  put_u32(header, 0);               // sigfigs
  put_u32(header, options.snaplen);
  put_u32(header, 1);               // LINKTYPE_ETHERNET
  out.write(header.data(), static_cast<std::streamsize>(header.size()));

  std::size_t written = 0;
  for (const SessionRecord& record : store.records()) {
    std::string payload;
    if (record.payload_id != kNoPayload) {
      payload = store.payload(record.payload_id);
      if (payload.size() > options.snaplen) payload.resize(options.snaplen);
    }
    const std::string frame = build_frame(record, payload);

    std::string packet_header;
    const std::uint64_t micros = static_cast<std::uint64_t>(record.time) * 1000ULL;
    put_u32(packet_header,
            static_cast<std::uint32_t>(options.epoch_offset_seconds + micros / 1000000ULL));
    put_u32(packet_header, static_cast<std::uint32_t>(micros % 1000000ULL));
    put_u32(packet_header, static_cast<std::uint32_t>(frame.size()));
    put_u32(packet_header, static_cast<std::uint32_t>(frame.size()));
    out.write(packet_header.data(), static_cast<std::streamsize>(packet_header.size()));
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    if (!out) return 0;
    ++written;
  }
  return written;
}

std::size_t save_pcap(const EventStore& store, const std::string& path,
                      const PcapWriteOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return 0;
  return write_pcap(store, out, options);
}

}  // namespace cw::capture
