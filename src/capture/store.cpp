#include "capture/store.h"

#include <algorithm>

namespace cw::capture {

void EventStore::append(SessionRecord record, std::string_view payload,
                        const std::optional<proto::Credential>& credential) {
  record.payload_id = payload.empty() ? kNoPayload : payloads_.intern(payload);
  if (credential.has_value()) {
    record.credential_id = credentials_.intern(credential->username + "\n" + credential->password);
  } else {
    record.credential_id = kNoCredential;
  }
  records_.push_back(record);
  index_valid_ = false;
}

proto::Credential EventStore::credential(std::uint32_t id) const {
  const std::string& joined = credentials_.at(id);
  const std::size_t split = joined.find('\n');
  proto::Credential out;
  out.username = joined.substr(0, split);
  if (split != std::string::npos) out.password = joined.substr(split + 1);
  return out;
}

const std::vector<std::uint32_t>& EventStore::for_vantage(topology::VantageId id) const {
  if (!index_valid_) {
    topology::VantageId max_vantage = 0;
    for (const SessionRecord& record : records_) {
      max_vantage = std::max(max_vantage, record.vantage);
    }
    vantage_index_.assign(max_vantage + 1, {});
    for (std::uint32_t i = 0; i < records_.size(); ++i) {
      vantage_index_[records_[i].vantage].push_back(i);
    }
    index_valid_ = true;
  }
  static const std::vector<std::uint32_t> kEmpty;
  if (id >= vantage_index_.size()) return kEmpty;
  return vantage_index_[id];
}

}  // namespace cw::capture
