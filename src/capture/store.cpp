#include "capture/store.h"

#include <algorithm>
#include <cassert>
#include <charconv>

namespace cw::capture {

std::uint64_t EventStore::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

// Shared tail of the move operations: transfer the index state and identity
// from `other` to `self`, then reset `other` to a coherent empty store — a
// fresh uid (its interned-id space is gone), an invalid index, and a bumped
// epoch so any derived structure still pointing at it reads as detached.
void EventStore::steal_read_state(EventStore& other) noexcept {
  index_valid_.store(other.index_valid_.load(std::memory_order_acquire),
                     std::memory_order_release);
  index_epoch_.store(other.index_epoch_.load(std::memory_order_acquire),
                     std::memory_order_release);
  reader_pins_.store(other.reader_pins_.load(std::memory_order_acquire),
                     std::memory_order_release);
  uid_ = other.uid_;
  other.uid_ = next_uid();
  other.index_valid_.store(false, std::memory_order_release);
  other.index_epoch_.fetch_add(1, std::memory_order_acq_rel);
  other.reader_pins_.store(0, std::memory_order_release);
}

EventStore::EventStore(EventStore&& other) noexcept
    : records_(std::move(other.records_)),
      payloads_(std::move(other.payloads_)),
      credentials_(std::move(other.credentials_)),
      vantage_index_(std::move(other.vantage_index_)) {
  assert(other.reader_pins() == 0 && "EventStore moved while a reader holds a pin");
  steal_read_state(other);
}

EventStore& EventStore::operator=(EventStore&& other) noexcept {
  if (this != &other) {
    assert(reader_pins() == 0 && other.reader_pins() == 0 &&
           "EventStore moved while a reader holds a pin");
    records_ = std::move(other.records_);
    payloads_ = std::move(other.payloads_);
    credentials_ = std::move(other.credentials_);
    vantage_index_ = std::move(other.vantage_index_);
    other.records_.clear();
    other.vantage_index_.clear();
    steal_read_state(other);
  }
  return *this;
}

void EventStore::encode_credential_into(std::string& out, const proto::Credential& credential) {
  out.clear();
  char digits[20];
  const auto [end, ec] =
      std::to_chars(digits, digits + sizeof(digits), credential.username.size());
  static_cast<void>(ec);
  out.append(digits, end);
  out += ':';
  out += credential.username;
  out += credential.password;
}

std::string EventStore::encode_credential(const proto::Credential& credential) {
  std::string out;
  encode_credential_into(out, credential);
  return out;
}

std::optional<proto::Credential> EventStore::decode_credential(std::string_view text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string_view::npos || colon == 0) return std::nullopt;
  std::size_t username_length = 0;
  const auto [end, ec] =
      std::from_chars(text.data(), text.data() + colon, username_length);
  if (ec != std::errc{} || end != text.data() + colon) return std::nullopt;
  const std::string_view rest = text.substr(colon + 1);
  if (username_length > rest.size()) return std::nullopt;
  proto::Credential out;
  out.username = std::string(rest.substr(0, username_length));
  out.password = std::string(rest.substr(username_length));
  return out;
}

void EventStore::append(SessionRecord record, std::string_view payload,
                        const std::optional<proto::Credential>& credential) {
  // Appending invalidates every reference a reader may hold into the
  // per-vantage index (and any SessionFrame built over this store); pinned
  // readers make that a logic error, not a silent stale read.
  assert(reader_pins() == 0 && "append() while a frozen reader holds a pin");
  record.payload_id = payload.empty() ? kNoPayload : payloads_.intern(payload);
  if (credential.has_value()) {
    encode_credential_into(credential_scratch_, *credential);
    record.credential_id = credentials_.intern(credential_scratch_);
  } else {
    record.credential_id = kNoCredential;
  }
  records_.push_back(record);
  // Bumping the epoch on the freeze->append transition (not per append)
  // keeps the simulation hot path to one relaxed load while letting
  // SessionFrame::attached() observe the invalidation immediately.
  if (index_valid_.load(std::memory_order_relaxed)) {
    index_epoch_.fetch_add(1, std::memory_order_acq_rel);
    index_valid_.store(false, std::memory_order_release);
  }
}

proto::Credential EventStore::credential(std::uint32_t id) const {
  const auto decoded = decode_credential(credentials_.at(id));
  return decoded.value_or(proto::Credential{});
}

void EventStore::freeze() const {
  std::lock_guard<std::mutex> lock(index_mutex_);
  if (index_valid_.load(std::memory_order_relaxed)) return;
  topology::VantageId max_vantage = 0;
  for (const SessionRecord& record : records_) {
    max_vantage = std::max(max_vantage, record.vantage);
  }
  vantage_index_.assign(static_cast<std::size_t>(max_vantage) + 1, {});
  for (std::uint32_t i = 0; i < records_.size(); ++i) {
    vantage_index_[records_[i].vantage].push_back(i);
  }
  index_epoch_.fetch_add(1, std::memory_order_acq_rel);
  index_valid_.store(true, std::memory_order_release);
}

const std::vector<std::uint32_t>& EventStore::for_vantage(topology::VantageId id) const {
  if (!index_valid_.load(std::memory_order_acquire)) freeze();
  static const std::vector<std::uint32_t> kEmpty;
  if (id >= vantage_index_.size()) return kEmpty;
  return vantage_index_[id];
}

}  // namespace cw::capture
