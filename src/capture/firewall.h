// Transparent firewall middlebox — Section 7's confounder: "it is possible
// that a network could transparently drop malicious traffic before they
// reach our honeypots". The firewall sits in front of selected vantage
// points, inspects payloads with an IDS rule engine, and drops matching
// connections with a configurable probability (real inline IPS deployments
// are never complete). Installed via Collector::set_firewall, it lets
// experiments quantify how much attacker evidence an upstream filter would
// erase from honeypot data.
#pragma once

#include <cstdint>
#include <unordered_set>

#include "capture/event.h"
#include "ids/engine.h"
#include "topology/deployment.h"

namespace cw::capture {

class SignatureFirewall {
 public:
  // The engine is borrowed and must outlive the firewall.
  SignatureFirewall(const ids::RuleEngine& engine, double drop_probability,
                    std::uint64_t seed = 0x66697265ULL);

  // Enables filtering in front of one vantage point. Unprotected vantage
  // points pass everything through.
  void protect(topology::VantageId id);

  // Collector hook: true means the event is dropped before capture.
  bool inspect(const ScanEvent& event, const topology::VantagePoint& vp);

  [[nodiscard]] std::uint64_t inspected() const noexcept { return inspected_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  const ids::RuleEngine* engine_;
  double drop_probability_;
  std::uint64_t seed_;
  std::unordered_set<topology::VantageId> protected_;
  std::uint64_t inspected_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace cw::capture
