// The collector applies each vantage point's collection semantics to scan
// events on the simulated wire (Section 3.1):
//
//  - Telescope: records the first packet of a connection; no layer-4
//    handshake, hence no payload and no credentials.
//  - Honeytrap: completes the TCP handshake and records the first TCP (or
//    UDP) payload on any port; it speaks no protocols, so server-first
//    clients that stay silent leave an empty-payload record.
//  - GreyNoise: runs Cowrie on 22/2222/23/2323 and records attempted login
//    credentials there; on its other open ports it completes the TCP/TLS
//    handshake and records the first payload. Traffic to ports the honeypot
//    does not expose is not captured (connection refused).
#pragma once

#include <functional>
#include <optional>

#include "capture/event.h"
#include "capture/store.h"
#include "proto/credentials.h"
#include "topology/universe.h"

namespace cw::capture {

// Ports on which GreyNoise honeypots run the Cowrie credential collector.
bool is_cowrie_port(net::Port port) noexcept;

// True if a client of this protocol transmits data before hearing from the
// server. Determines what a protocol-mute Honeytrap honeypot can observe
// (Section 6's "limited to client-first protocols").
bool client_speaks_first(net::Protocol protocol) noexcept;

class Collector {
 public:
  explicit Collector(const topology::TargetUniverse& universe) : universe_(&universe) {}

  // Delivers one event; returns true if some vantage point captured it.
  bool deliver(const ScanEvent& event);

  // Optional streaming sink for telescope traffic: when set, events whose
  // destination is a telescope address are handed to the sink instead of
  // being stored. Full-scale telescope runs (475K addresses, Figure 1) use
  // this to tally per-address counters without materializing records.
  using TelescopeSink = std::function<bool(const ScanEvent&, const topology::Target&)>;
  void set_telescope_sink(TelescopeSink sink) { telescope_sink_ = std::move(sink); }

  // Optional transparent firewall in front of the vantage points: invoked
  // before capture; returning true drops the event (Section 7's upstream-
  // filtering confounder; see capture::SignatureFirewall).
  using FirewallHook = std::function<bool(const ScanEvent&, const topology::VantagePoint&)>;
  void set_firewall(FirewallHook hook) { firewall_ = std::move(hook); }

  // Optional capture sink: when set, records that would be appended to the
  // internal store are handed to the sink instead (with the not-yet-interned
  // payload/credential). The stream ingest layer uses this to route live
  // capture into per-shard buffers; the internal store stays empty.
  using StoreSink = std::function<void(const SessionRecord&, std::string_view,
                                       const std::optional<proto::Credential>&)>;
  void set_store_sink(StoreSink sink) { store_sink_ = std::move(sink); }

  [[nodiscard]] EventStore& store() noexcept { return store_; }
  [[nodiscard]] const EventStore& store() const noexcept { return store_; }

  [[nodiscard]] std::uint64_t delivered() const noexcept { return delivered_; }
  [[nodiscard]] std::uint64_t dropped_unmonitored() const noexcept { return dropped_unmonitored_; }
  [[nodiscard]] std::uint64_t dropped_refused() const noexcept { return dropped_refused_; }
  [[nodiscard]] std::uint64_t dropped_firewalled() const noexcept { return dropped_firewalled_; }

 private:
  // Appends to the store, or diverts to the sink when one is installed.
  void emit(const SessionRecord& record, std::string_view payload,
            const std::optional<proto::Credential>& credential);

  const topology::TargetUniverse* universe_;
  EventStore store_;
  TelescopeSink telescope_sink_;
  FirewallHook firewall_;
  StoreSink store_sink_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_unmonitored_ = 0;
  std::uint64_t dropped_refused_ = 0;
  std::uint64_t dropped_firewalled_ = 0;
};

}  // namespace cw::capture
