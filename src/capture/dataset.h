// Dataset persistence. The paper releases its captured scanning traffic
// (https://scans.io/study/cloud_watching); this module provides the
// equivalent for simulated runs: a compact binary format for full-fidelity
// round-trips and a CSV export for external analysis.
//
// Binary format (little-endian):
//   header:  magic "CWDS", u32 version, u64 record count,
//            u32 payload count, u32 credential count
//   payload table:    per entry u32 length + bytes
//   credential table: per entry u32 length + bytes ("user\npass")
//   records:  fixed-width fields in SessionRecord order
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "capture/store.h"
#include "topology/deployment.h"

namespace cw::capture {

// Serializes the store to the stream. Returns false on I/O failure.
bool write_dataset(const EventStore& store, std::ostream& out);

// Reads a dataset written by write_dataset. Returns nullopt on malformed
// input (bad magic, truncated tables, out-of-range ids).
std::optional<EventStore> read_dataset(std::istream& in);

// Convenience file wrappers.
bool save_dataset(const EventStore& store, const std::string& path);
std::optional<EventStore> load_dataset(const std::string& path);

// Concatenated segment files: a stream ingest seals one immutable store per
// epoch, and a multi-segment snapshot round-trips through a single file as
// back-to-back v2 datasets (each with its own header and tables). Segment
// boundaries are self-describing — every segment re-validates the magic —
// so a truncated or corrupted boundary is rejected rather than mis-parsed.
bool write_dataset_segments(const std::vector<const EventStore*>& segments, std::ostream& out);

// Reads segments until clean EOF. Returns nullopt if any segment is
// malformed or if trailing bytes remain after the last complete segment.
// A file written by write_dataset reads back as one segment.
std::optional<std::vector<EventStore>> read_dataset_segments(std::istream& in);

bool save_dataset_segments(const std::vector<const EventStore*>& segments,
                           const std::string& path);
std::optional<std::vector<EventStore>> load_dataset_segments(const std::string& path);

// CSV export: one row per record with human-readable fields
// (time_ms, src, src_asn, dst, port, transport, handshake, vantage,
//  neighbor, actor, payload_escaped, username, password). The deployment
// is used to annotate each row with the vantage point's name and type.
void write_csv(const EventStore& store, const topology::Deployment& deployment,
               std::ostream& out);

}  // namespace cw::capture
