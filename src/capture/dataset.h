// Dataset persistence. The paper releases its captured scanning traffic
// (https://scans.io/study/cloud_watching); this module provides the
// equivalent for simulated runs: a compact binary format for full-fidelity
// round-trips and a CSV export for external analysis.
//
// Binary format (little-endian), version 3:
//   header:  magic "CWDS", u32 version, u64 record count,
//            u32 payload count, u32 credential count,
//            u32 section flags (bit 0 = frame section present), u32 reserved,
//            u64 frame section offset (relative to the segment's first byte),
//            u64 frame section length
//   payload table:    per entry u32 length + bytes
//   credential table: per entry u32 length + bytes
//   records:  fixed-width fields in SessionRecord order
//   [zero pad to an 8-aligned file offset, then the frame section — the
//    serialized SessionFrame columns; see capture/frame_io.h]
//   trailer:  u32 CRC-32 over every prior byte of the segment
//
// The CRC catches truncation and bit flips at load time — a spilled segment
// is rejected with a clear error instead of being analyzed. Version 1 and 2
// files (no flags/frame/CRC fields) are still readable.
#pragma once

#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "capture/store.h"
#include "topology/deployment.h"

namespace cw::capture {

class SessionFrame;

// Serializes the store to the stream (v3, CRC trailer, no frame section).
// Returns false on I/O failure.
bool write_dataset(const EventStore& store, std::ostream& out);

// As above, but embeds the frame's serialized columns as the segment's frame
// section (the spill-to-disk layout; null behaves like the plain overload).
// The frame must be hot and built over `store`.
bool write_dataset(const EventStore& store, const SessionFrame* frame, std::ostream& out);

// Reads a dataset written by write_dataset (any version). Returns nullopt on
// malformed input (bad magic, truncated tables, out-of-range ids, CRC
// mismatch); *error describes the failure when given.
std::optional<EventStore> read_dataset(std::istream& in, std::string* error = nullptr);

// Convenience file wrappers.
bool save_dataset(const EventStore& store, const std::string& path);
std::optional<EventStore> load_dataset(const std::string& path, std::string* error = nullptr);

// Concatenated segment files: a stream ingest seals one immutable store per
// epoch, and a multi-segment snapshot round-trips through a single file as
// back-to-back datasets (each with its own header, tables, and CRC). Segment
// boundaries are self-describing — every segment re-validates the magic —
// so a truncated or corrupted boundary is rejected rather than mis-parsed.
bool write_dataset_segments(const std::vector<const EventStore*>& segments, std::ostream& out);

// Streaming reader: invokes `sink` once per segment as it is decoded, so a
// batch loader never holds more than one segment beyond what the sink keeps
// (the materializing overload below peaked at ~2x corpus RSS). A sink
// returning false aborts the scan (reported as failure).
bool read_dataset_segments(std::istream& in, const std::function<bool(EventStore&&)>& sink,
                           std::string* error = nullptr);

// Reads segments until clean EOF. Returns nullopt if any segment is
// malformed or if trailing bytes remain after the last complete segment.
// A file written by write_dataset reads back as one segment.
std::optional<std::vector<EventStore>> read_dataset_segments(std::istream& in,
                                                             std::string* error = nullptr);

bool save_dataset_segments(const std::vector<const EventStore*>& segments,
                           const std::string& path);
std::optional<std::vector<EventStore>> load_dataset_segments(const std::string& path,
                                                             std::string* error = nullptr);

// CSV export: one row per record with human-readable fields
// (time_ms, src, src_asn, dst, port, transport, handshake, vantage,
//  neighbor, actor, payload_escaped, username, password). The deployment
// is used to annotate each row with the vantage point's name and type.
void write_csv(const EventStore& store, const topology::Deployment& deployment,
               std::ostream& out);

}  // namespace cw::capture
