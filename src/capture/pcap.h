// PCAP export: writes captured session records as a classic libpcap file
// (synthesizing minimal Ethernet/IPv4/TCP-or-UDP headers around the stored
// first payloads) so a run can be opened in Wireshark/tcpdump or fed to a
// real Suricata instance. One record becomes one packet: the client's first
// data segment (or a bare SYN when no payload was retained — exactly what a
// telescope would have on disk).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "capture/store.h"

namespace cw::capture {

struct PcapWriteOptions {
  // Snap length recorded in the global header (and applied to payloads).
  std::uint32_t snaplen = 65535;
  // Microseconds offset added to every record's simulated time, so packets
  // get plausible absolute epoch timestamps (default: 2021-07-01 00:00 UTC,
  // the paper's collection window).
  std::uint64_t epoch_offset_seconds = 1625097600;
};

// Writes the store as a pcap stream. Returns the number of packets written,
// or 0 on stream failure.
std::size_t write_pcap(const EventStore& store, std::ostream& out,
                       const PcapWriteOptions& options = {});

// Convenience file wrapper.
std::size_t save_pcap(const EventStore& store, const std::string& path,
                      const PcapWriteOptions& options = {});

}  // namespace cw::capture
