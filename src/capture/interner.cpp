#include "capture/interner.h"

namespace cw::capture {

std::uint32_t Interner::intern(std::string_view value) {
  auto it = ids_.find(value);
  if (it != ids_.end()) return it->second;
  const std::uint32_t id = static_cast<std::uint32_t>(values_.size());
  values_.emplace_back(value);
  ids_.emplace(values_.back(), id);
  return id;
}

}  // namespace cw::capture
