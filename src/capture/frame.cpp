#include "capture/frame.h"

#include <algorithm>
#include <limits>
#include <string>

#include "proto/fingerprint.h"
#include "proto/http.h"
#include "runner/thread_pool.h"

namespace cw::capture {
namespace {

// Shard granularity for the column fill. parallel_for submits one task per
// index, so the build fans out over contiguous chunks, not records.
constexpr std::size_t kChunk = 64 * 1024;

// Runs fn over [0, n) in contiguous chunks, on the pool when present.
template <typename Fn>
void for_chunks(runner::ThreadPool* pool, std::size_t n, Fn fn) {
  if (n == 0) return;
  const std::size_t chunks = (n + kChunk - 1) / kChunk;
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, n);
    fn(begin, end);
  };
  if (pool == nullptr || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  pool->parallel_for(chunks, run_chunk);
}

// Open-addressed u64 key -> dense slot map for the sequential per-record
// pass: posting-list routing, distinct-ASN collection, and the pure-verdict
// memo each do one probe per record, where an unordered_map lookup per
// record dominated the seal budget. Slots are assigned in first-sight order
// (record order), which the dictionary-determinism argument relies on.
class FlatSlotMap {
 public:
  FlatSlotMap() : table_(1024) {}

  // Returns the slot for key, assigning the next dense slot on first sight.
  std::uint32_t slot_for(std::uint64_t key) {
    const std::uint64_t stored = key + 1;  // 0 marks an empty bucket
    while (true) {
      std::size_t mask = table_.size() - 1;
      std::size_t pos = static_cast<std::size_t>(mix(stored)) & mask;
      while (true) {
        Entry& e = table_[pos];
        if (e.key == stored) return e.slot;
        if (e.key == 0) {
          if ((count_ + 1) * 4 > table_.size() * 3) break;  // grow, then re-probe
          e.key = stored;
          e.slot = count_;
          return count_++;
        }
        pos = (pos + 1) & mask;
      }
      grow();
    }
  }

  [[nodiscard]] std::uint32_t size() const noexcept { return count_; }

 private:
  struct Entry {
    std::uint64_t key = 0;
    std::uint32_t slot = 0;
  };

  static std::uint64_t mix(std::uint64_t h) noexcept {
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return h;
  }

  void grow() {
    std::vector<Entry> old = std::move(table_);
    table_.assign(old.size() * 2, Entry{});
    const std::size_t mask = table_.size() - 1;
    for (const Entry& e : old) {
      if (e.key == 0) continue;
      std::size_t pos = static_cast<std::size_t>(mix(e.key)) & mask;
      while (table_[pos].key != 0) pos = (pos + 1) & mask;
      table_[pos] = e;
    }
  }

  std::vector<Entry> table_;
  std::uint32_t count_ = 0;
};

constexpr std::size_t column_index(CodedColumn column) noexcept {
  return static_cast<std::size_t>(column);
}

std::string as_text(net::Asn asn) { return "AS" + std::to_string(asn); }

}  // namespace

SharedFrameDicts::SharedFrameDicts() {
  for (auto& dict : dicts) dict = std::make_shared<util::Dictionary>();
}

SessionFrame SessionFrame::build(const EventStore& store,
                                 const topology::Deployment& deployment,
                                 BuildOptions options) {
  store.freeze();
  SessionFrame frame;
  frame.store_ = &store;
  frame.deployment_ = &deployment;
  frame.build_epoch_ = store.index_epoch();
  store.pin_readers();

  frame.vantage_network_.reserve(deployment.size());
  frame.vantage_collection_.reserve(deployment.size());
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    frame.vantage_network_.push_back(vp.type);
    frame.vantage_collection_.push_back(vp.collection);
  }

  const std::vector<SessionRecord>& records = store.records();
  const std::size_t n = records.size();
  frame.time_.resize(n);
  frame.src_.resize(n);
  frame.src_as_.resize(n);
  frame.port_.resize(n);
  frame.vantage_.resize(n);
  frame.neighbor_.resize(n);
  frame.payload_id_.resize(n);
  frame.credential_id_.resize(n);
  frame.actor_.resize(n);
  frame.flags_.resize(n);

  const bool encode = options.encode_characteristics || options.shared_dicts != nullptr;
  SharedFrameDicts* shared = options.shared_dicts;

  // --- per-distinct-payload tables ----------------------------------------
  // Interner ids are dense 0..distinct-1, so both the protocol fingerprint
  // and the normalized-payload code are computed once per distinct payload
  // and gathered per record. In shared mode the experiment-wide memo means
  // only payloads this experiment has never sealed before pay the
  // normalization/fingerprint at all.
  const std::size_t distinct_payloads = store.distinct_payloads();
  std::vector<net::Protocol> payload_protocol;
  std::vector<std::uint32_t> payload_shifted;  // per payload id; code+1
  if (options.fingerprint_payloads) {
    payload_protocol.resize(distinct_payloads, net::Protocol::kUnknown);
    frame.protocol_.resize(n, net::Protocol::kUnknown);
    frame.has_protocols_ = true;
  }
  if (encode) payload_shifted.resize(distinct_payloads, 0);

  if (shared != nullptr) {
    // Sequential first-sight encode in payload-id (= store record) order.
    auto& payload_dict = *shared->dicts[column_index(CodedColumn::kPayload)];
    for (std::size_t id = 0; id < distinct_payloads; ++id) {
      const std::string& raw = store.payload(static_cast<std::uint32_t>(id));
      auto [it, inserted] = shared->payload_memo.try_emplace(raw);
      if (inserted) {
        it->second.protocol = proto::Fingerprinter::identify(raw);
        it->second.shifted_code = payload_dict.encode(proto::normalize_http_payload(raw)) + 1;
      }
      payload_shifted[id] = it->second.shifted_code;
      if (frame.has_protocols_) payload_protocol[id] = it->second.protocol;
    }
  } else if (frame.has_protocols_ || encode) {
    std::vector<std::string> normalized;
    if (encode) normalized.resize(distinct_payloads);
    for_chunks(options.pool, distinct_payloads, [&](std::size_t begin, std::size_t end) {
      for (std::size_t id = begin; id < end; ++id) {
        const std::string& raw = store.payload(static_cast<std::uint32_t>(id));
        if (frame.has_protocols_) payload_protocol[id] = proto::Fingerprinter::identify(raw);
        if (encode) normalized[id] = proto::normalize_http_payload(raw);
      }
    });
    if (encode) {
      auto dict = util::Dictionary::sorted(normalized);
      for (std::size_t id = 0; id < distinct_payloads; ++id) {
        payload_shifted[id] = *dict->find(normalized[id]) + 1;
      }
      frame.dicts_[column_index(CodedColumn::kPayload)] = std::move(dict);
    }
  }

  // --- per-distinct-credential tables -------------------------------------
  const std::size_t distinct_credentials = store.distinct_credentials();
  std::vector<std::uint32_t> username_shifted;
  std::vector<std::uint32_t> password_shifted;
  if (encode) {
    username_shifted.resize(distinct_credentials, 0);
    password_shifted.resize(distinct_credentials, 0);
    if (shared != nullptr) {
      auto& username_dict = *shared->dicts[column_index(CodedColumn::kUsername)];
      auto& password_dict = *shared->dicts[column_index(CodedColumn::kPassword)];
      for (std::size_t id = 0; id < distinct_credentials; ++id) {
        const std::string& text = store.credential_text(static_cast<std::uint32_t>(id));
        auto [it, inserted] = shared->credential_memo.try_emplace(text);
        if (inserted) {
          const proto::Credential credential = store.credential(static_cast<std::uint32_t>(id));
          it->second.shifted_username = username_dict.encode(credential.username) + 1;
          it->second.shifted_password = password_dict.encode(credential.password) + 1;
        }
        username_shifted[id] = it->second.shifted_username;
        password_shifted[id] = it->second.shifted_password;
      }
    } else {
      std::vector<std::string> usernames(distinct_credentials);
      std::vector<std::string> passwords(distinct_credentials);
      for_chunks(options.pool, distinct_credentials, [&](std::size_t begin, std::size_t end) {
        for (std::size_t id = begin; id < end; ++id) {
          proto::Credential credential = store.credential(static_cast<std::uint32_t>(id));
          usernames[id] = std::move(credential.username);
          passwords[id] = std::move(credential.password);
        }
      });
      auto username_dict = util::Dictionary::sorted(usernames);
      auto password_dict = util::Dictionary::sorted(passwords);
      for (std::size_t id = 0; id < distinct_credentials; ++id) {
        username_shifted[id] = *username_dict->find(usernames[id]) + 1;
        password_shifted[id] = *password_dict->find(passwords[id]) + 1;
      }
      frame.dicts_[column_index(CodedColumn::kUsername)] = std::move(username_dict);
      frame.dicts_[column_index(CodedColumn::kPassword)] = std::move(password_dict);
    }
  }

  if (encode) {
    for (auto& column : frame.codes_) column.resize(n, 0);
    frame.has_codes_ = true;
  }
  const bool verdict_per_record = static_cast<bool>(options.verdict) && !options.verdict_pure;
  if (options.verdict) {
    frame.verdict_.resize(n, static_cast<std::uint8_t>(Verdict::kUnobservable));
    frame.has_verdicts_ = true;
  }

  util::Column<std::uint32_t>* payload_codes =
      encode ? &frame.codes_[column_index(CodedColumn::kPayload)] : nullptr;
  util::Column<std::uint32_t>* username_codes =
      encode ? &frame.codes_[column_index(CodedColumn::kUsername)] : nullptr;
  util::Column<std::uint32_t>* password_codes =
      encode ? &frame.codes_[column_index(CodedColumn::kPassword)] : nullptr;

  for_chunks(options.pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const SessionRecord& record = records[i];
      frame.time_[i] = record.time;
      frame.src_[i] = record.src;
      frame.src_as_[i] = record.src_as;
      frame.port_[i] = record.port;
      frame.vantage_[i] = record.vantage;
      frame.neighbor_[i] = record.neighbor;
      frame.payload_id_[i] = record.payload_id;
      frame.credential_id_[i] = record.credential_id;
      frame.actor_[i] = record.actor;
      std::uint8_t flags = 0;
      if (record.payload_id != kNoPayload) flags |= kHasPayload;
      if (record.credential_id != kNoCredential) flags |= kHasCredential;
      if (record.handshake_completed) flags |= kHandshake;
      frame.flags_[i] = flags;
      if (record.payload_id != kNoPayload) {
        if (frame.has_protocols_) frame.protocol_[i] = payload_protocol[record.payload_id];
        if (encode) (*payload_codes)[i] = payload_shifted[record.payload_id];
      }
      if (encode && record.credential_id != kNoCredential) {
        (*username_codes)[i] = username_shifted[record.credential_id];
        (*password_codes)[i] = password_shifted[record.credential_id];
      }
      if (verdict_per_record) {
        frame.verdict_[i] = static_cast<std::uint8_t>(options.verdict(record));
      }
    }
  });

  // --- sequential per-record pass ------------------------------------------
  // One ascending scan builds every posting list (so their order is
  // independent of worker count), partitions by network type, collects
  // distinct ASNs in first-sight order, and memoizes the pure verdict. All
  // per-record probes go through FlatSlotMap: at seal scale an unordered_map
  // lookup per record was the dominant cost of this pass.
  // Ports are 16-bit, so the port->slot map is a direct-indexed table rather
  // than a probe (one load per record on the hottest lookup of this pass).
  constexpr std::uint32_t kNoSlot = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> port_slot_of(65536, kNoSlot);
  std::vector<util::PostingList> port_lists;
  std::vector<net::Port> port_keys;
  FlatSlotMap vp_slots;
  std::vector<util::PostingList> vp_lists;
  std::vector<std::uint64_t> vp_keys;
  FlatSlotMap asn_slots;
  std::vector<net::Asn> distinct_asns;
  FlatSlotMap verdict_slots;
  std::vector<std::uint8_t> verdict_memo;
  const bool verdict_memoized = static_cast<bool>(options.verdict) && options.verdict_pure;
  util::Column<std::uint32_t>* as_codes =
      encode ? &frame.codes_[column_index(CodedColumn::kAs)] : nullptr;

  for (std::uint32_t i = 0; i < n; ++i) {
    const net::Port port = frame.port_[i];
    {
      std::uint32_t slot = port_slot_of[port];
      if (slot == kNoSlot) {
        slot = static_cast<std::uint32_t>(port_lists.size());
        port_slot_of[port] = slot;
        port_lists.emplace_back();
        port_keys.push_back(port);
      }
      port_lists[slot].append(i);
    }
    frame.network_partition_[static_cast<std::size_t>(frame.network_type(i))].push_back(i);
    {
      const std::uint64_t key = (static_cast<std::uint64_t>(frame.vantage_[i]) << 16) | port;
      const std::uint32_t slot = vp_slots.slot_for(key);
      if (slot == vp_lists.size()) {
        vp_lists.emplace_back();
        vp_keys.push_back(key);
      }
      vp_lists[slot].append(i);
    }
    if (encode) {
      const std::uint32_t slot = asn_slots.slot_for(frame.src_as_[i]);
      if (slot == distinct_asns.size()) distinct_asns.push_back(frame.src_as_[i]);
      (*as_codes)[i] = slot;  // remapped to a shifted code below
    }
    if (verdict_memoized) {
      const SessionRecord& record = records[i];
      const std::uint64_t key =
          (static_cast<std::uint64_t>(record.payload_id) << 18) |
          (static_cast<std::uint64_t>(record.port) << 2) |
          (record.transport == net::Transport::kUdp ? 2u : 0u) |
          (record.credential_id != kNoCredential ? 1u : 0u);
      const std::uint32_t slot = verdict_slots.slot_for(key);
      if (slot == verdict_memo.size()) {
        verdict_memo.push_back(static_cast<std::uint8_t>(options.verdict(record)));
      }
      frame.verdict_[i] = verdict_memo[slot];
    }
  }

  frame.port_postings_.reserve(port_lists.size());
  for (std::size_t s = 0; s < port_lists.size(); ++s) {
    port_lists[s].shrink();
    frame.port_postings_.emplace(port_keys[s], std::move(port_lists[s]));
  }
  frame.vantage_port_postings_.reserve(vp_lists.size());
  for (std::size_t s = 0; s < vp_lists.size(); ++s) {
    vp_lists[s].shrink();
    frame.vantage_port_postings_.emplace(vp_keys[s], std::move(vp_lists[s]));
  }

  // --- AS dictionary + code remap ------------------------------------------
  if (encode) {
    std::vector<std::uint32_t> slot_to_shifted(distinct_asns.size(), 0);
    if (shared != nullptr) {
      auto& as_dict = *shared->dicts[column_index(CodedColumn::kAs)];
      for (std::size_t s = 0; s < distinct_asns.size(); ++s) {
        auto [it, inserted] = shared->as_memo.try_emplace(distinct_asns[s]);
        if (inserted) it->second = as_dict.encode(as_text(distinct_asns[s])) + 1;
        slot_to_shifted[s] = it->second;
      }
    } else {
      std::vector<std::string> texts;
      texts.reserve(distinct_asns.size());
      for (const net::Asn asn : distinct_asns) texts.push_back(as_text(asn));
      auto dict = util::Dictionary::sorted(texts);
      for (std::size_t s = 0; s < distinct_asns.size(); ++s) {
        slot_to_shifted[s] = *dict->find(as_text(distinct_asns[s])) + 1;
      }
      frame.dicts_[column_index(CodedColumn::kAs)] = std::move(dict);
    }
    for_chunks(options.pool, n, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        (*as_codes)[i] = slot_to_shifted[(*as_codes)[i]];
      }
    });
    if (shared != nullptr) {
      for (std::size_t c = 0; c < kCodedColumns; ++c) frame.dicts_[c] = shared->dicts[c];
    }
  }
  return frame;
}

SessionFrame::~SessionFrame() { release(); }

void SessionFrame::release() noexcept {
  if (store_ != nullptr) {
    store_->unpin_readers();
    store_ = nullptr;
  }
}

SessionFrame::SessionFrame(SessionFrame&& other) noexcept
    : store_(other.store_),
      deployment_(other.deployment_),
      build_epoch_(other.build_epoch_),
      mapped_(other.mapped_),
      time_(std::move(other.time_)),
      src_(std::move(other.src_)),
      src_as_(std::move(other.src_as_)),
      port_(std::move(other.port_)),
      vantage_(std::move(other.vantage_)),
      neighbor_(std::move(other.neighbor_)),
      payload_id_(std::move(other.payload_id_)),
      credential_id_(std::move(other.credential_id_)),
      actor_(std::move(other.actor_)),
      flags_(std::move(other.flags_)),
      verdict_(std::move(other.verdict_)),
      protocol_(std::move(other.protocol_)),
      has_verdicts_(other.has_verdicts_),
      has_protocols_(other.has_protocols_),
      has_codes_(other.has_codes_),
      codes_(std::move(other.codes_)),
      dicts_(std::move(other.dicts_)),
      vantage_network_(std::move(other.vantage_network_)),
      vantage_collection_(std::move(other.vantage_collection_)),
      port_postings_(std::move(other.port_postings_)),
      vantage_port_postings_(std::move(other.vantage_port_postings_)),
      port_spans_(std::move(other.port_spans_)),
      vp_spans_(std::move(other.vp_spans_)),
      port_span_slot_(std::move(other.port_span_slot_)),
      vp_span_slot_(std::move(other.vp_span_slot_)),
      vantage_slices_(std::move(other.vantage_slices_)) {
  for (std::size_t i = 0; i < 3; ++i) {
    network_partition_[i] = std::move(other.network_partition_[i]);
  }
  other.store_ = nullptr;  // pin ownership transfers; other's dtor must not unpin
  other.deployment_ = nullptr;
  other.mapped_ = false;
}

SessionFrame& SessionFrame::operator=(SessionFrame&& other) noexcept {
  if (this != &other) {
    release();
    store_ = other.store_;
    deployment_ = other.deployment_;
    build_epoch_ = other.build_epoch_;
    mapped_ = other.mapped_;
    time_ = std::move(other.time_);
    src_ = std::move(other.src_);
    src_as_ = std::move(other.src_as_);
    port_ = std::move(other.port_);
    vantage_ = std::move(other.vantage_);
    neighbor_ = std::move(other.neighbor_);
    payload_id_ = std::move(other.payload_id_);
    credential_id_ = std::move(other.credential_id_);
    actor_ = std::move(other.actor_);
    flags_ = std::move(other.flags_);
    verdict_ = std::move(other.verdict_);
    protocol_ = std::move(other.protocol_);
    has_verdicts_ = other.has_verdicts_;
    has_protocols_ = other.has_protocols_;
    has_codes_ = other.has_codes_;
    codes_ = std::move(other.codes_);
    dicts_ = std::move(other.dicts_);
    vantage_network_ = std::move(other.vantage_network_);
    vantage_collection_ = std::move(other.vantage_collection_);
    port_postings_ = std::move(other.port_postings_);
    for (std::size_t i = 0; i < 3; ++i) {
      network_partition_[i] = std::move(other.network_partition_[i]);
    }
    vantage_port_postings_ = std::move(other.vantage_port_postings_);
    port_spans_ = std::move(other.port_spans_);
    vp_spans_ = std::move(other.vp_spans_);
    port_span_slot_ = std::move(other.port_span_slot_);
    vp_span_slot_ = std::move(other.vp_span_slot_);
    vantage_slices_ = std::move(other.vantage_slices_);
    other.store_ = nullptr;
    other.deployment_ = nullptr;
    other.mapped_ = false;
  }
  return *this;
}

std::pair<std::uint64_t, std::uint64_t> SessionFrame::count_verdicts(
    const util::PostingView& indices) const {
  std::uint64_t malicious = 0;
  std::uint64_t benign = 0;
  const std::uint8_t* verdicts = verdict_.data();
  indices.for_each([&](std::uint32_t index) {
    switch (static_cast<Verdict>(verdicts[index])) {
      case Verdict::kMalicious: ++malicious; break;
      case Verdict::kBenign: ++benign; break;
      case Verdict::kUnobservable: break;
    }
  });
  return {malicious, benign};
}

util::PostingView SessionFrame::for_port(net::Port port) const {
  if (mapped_) {
    const auto it = port_span_slot_.find(port);
    if (it == port_span_slot_.end()) return {};
    return util::PostingView(port_spans_[it->second]);
  }
  const auto it = port_postings_.find(port);
  if (it == port_postings_.end()) return {};
  return util::PostingView(it->second);
}

util::PostingView SessionFrame::for_vantage_port(topology::VantageId id, net::Port port) const {
  const std::uint64_t key = (static_cast<std::uint64_t>(id) << 16) | port;
  if (mapped_) {
    const auto it = vp_span_slot_.find(key);
    if (it == vp_span_slot_.end()) return {};
    return util::PostingView(vp_spans_[it->second]);
  }
  const auto it = vantage_port_postings_.find(key);
  if (it == vantage_port_postings_.end()) return {};
  return util::PostingView(it->second);
}

}  // namespace cw::capture
