#include "capture/frame.h"

#include <algorithm>

#include "proto/fingerprint.h"
#include "runner/thread_pool.h"

namespace cw::capture {
namespace {

// Shard granularity for the column fill. parallel_for submits one task per
// index, so the build fans out over contiguous chunks, not records.
constexpr std::size_t kChunk = 64 * 1024;

// Runs fn over [0, n) in contiguous chunks, on the pool when present.
template <typename Fn>
void for_chunks(runner::ThreadPool* pool, std::size_t n, Fn fn) {
  if (n == 0) return;
  const std::size_t chunks = (n + kChunk - 1) / kChunk;
  auto run_chunk = [&](std::size_t chunk) {
    const std::size_t begin = chunk * kChunk;
    const std::size_t end = std::min(begin + kChunk, n);
    fn(begin, end);
  };
  if (pool == nullptr || chunks == 1) {
    for (std::size_t c = 0; c < chunks; ++c) run_chunk(c);
    return;
  }
  pool->parallel_for(chunks, run_chunk);
}

}  // namespace

SessionFrame SessionFrame::build(const EventStore& store,
                                 const topology::Deployment& deployment,
                                 BuildOptions options) {
  store.freeze();
  SessionFrame frame;
  frame.store_ = &store;
  frame.deployment_ = &deployment;
  frame.build_epoch_ = store.index_epoch();
  store.pin_readers();

  frame.vantage_network_.reserve(deployment.size());
  frame.vantage_collection_.reserve(deployment.size());
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    frame.vantage_network_.push_back(vp.type);
    frame.vantage_collection_.push_back(vp.collection);
  }

  const std::vector<SessionRecord>& records = store.records();
  const std::size_t n = records.size();
  frame.time_.resize(n);
  frame.src_.resize(n);
  frame.src_as_.resize(n);
  frame.port_.resize(n);
  frame.vantage_.resize(n);
  frame.neighbor_.resize(n);
  frame.payload_id_.resize(n);
  frame.credential_id_.resize(n);
  frame.actor_.resize(n);
  frame.flags_.resize(n);

  // Protocol column: fingerprint each *distinct* payload once (interner ids
  // are dense 0..distinct-1), then gather per record.
  std::vector<net::Protocol> payload_protocol;
  if (options.fingerprint_payloads) {
    payload_protocol.resize(store.distinct_payloads(), net::Protocol::kUnknown);
    for_chunks(options.pool, payload_protocol.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t id = begin; id < end; ++id) {
        payload_protocol[id] =
            proto::Fingerprinter::identify(store.payload(static_cast<std::uint32_t>(id)));
      }
    });
    frame.protocol_.resize(n, net::Protocol::kUnknown);
    frame.has_protocols_ = true;
  }
  if (options.verdict) {
    frame.verdict_.resize(n, static_cast<std::uint8_t>(Verdict::kUnobservable));
    frame.has_verdicts_ = true;
  }

  for_chunks(options.pool, n, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const SessionRecord& record = records[i];
      frame.time_[i] = record.time;
      frame.src_[i] = record.src;
      frame.src_as_[i] = record.src_as;
      frame.port_[i] = record.port;
      frame.vantage_[i] = record.vantage;
      frame.neighbor_[i] = record.neighbor;
      frame.payload_id_[i] = record.payload_id;
      frame.credential_id_[i] = record.credential_id;
      frame.actor_[i] = record.actor;
      std::uint8_t flags = 0;
      if (record.payload_id != kNoPayload) flags |= kHasPayload;
      if (record.credential_id != kNoCredential) flags |= kHasCredential;
      if (record.handshake_completed) flags |= kHandshake;
      frame.flags_[i] = flags;
      if (frame.has_protocols_ && record.payload_id != kNoPayload) {
        frame.protocol_[i] = payload_protocol[record.payload_id];
      }
      if (frame.has_verdicts_) {
        frame.verdict_[i] = static_cast<std::uint8_t>(options.verdict(record));
      }
    }
  });

  // Secondary structures: one sequential O(n) pass so every posting list is
  // in ascending record order independent of worker count.
  for (std::uint32_t i = 0; i < n; ++i) {
    frame.port_postings_[frame.port_[i]].push_back(i);
    frame.network_partition_[static_cast<std::size_t>(frame.network_type(i))].push_back(i);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(frame.vantage_[i]) << 16) | frame.port_[i];
    frame.vantage_port_postings_[key].push_back(i);
  }
  return frame;
}

SessionFrame::~SessionFrame() { release(); }

void SessionFrame::release() noexcept {
  if (store_ != nullptr) {
    store_->unpin_readers();
    store_ = nullptr;
  }
}

SessionFrame::SessionFrame(SessionFrame&& other) noexcept
    : store_(other.store_),
      deployment_(other.deployment_),
      build_epoch_(other.build_epoch_),
      time_(std::move(other.time_)),
      src_(std::move(other.src_)),
      src_as_(std::move(other.src_as_)),
      port_(std::move(other.port_)),
      vantage_(std::move(other.vantage_)),
      neighbor_(std::move(other.neighbor_)),
      payload_id_(std::move(other.payload_id_)),
      credential_id_(std::move(other.credential_id_)),
      actor_(std::move(other.actor_)),
      flags_(std::move(other.flags_)),
      verdict_(std::move(other.verdict_)),
      protocol_(std::move(other.protocol_)),
      has_verdicts_(other.has_verdicts_),
      has_protocols_(other.has_protocols_),
      vantage_network_(std::move(other.vantage_network_)),
      vantage_collection_(std::move(other.vantage_collection_)),
      port_postings_(std::move(other.port_postings_)),
      vantage_port_postings_(std::move(other.vantage_port_postings_)) {
  for (std::size_t i = 0; i < 3; ++i) {
    network_partition_[i] = std::move(other.network_partition_[i]);
  }
  other.store_ = nullptr;  // pin ownership transfers; other's dtor must not unpin
  other.deployment_ = nullptr;
}

SessionFrame& SessionFrame::operator=(SessionFrame&& other) noexcept {
  if (this != &other) {
    release();
    store_ = other.store_;
    deployment_ = other.deployment_;
    build_epoch_ = other.build_epoch_;
    time_ = std::move(other.time_);
    src_ = std::move(other.src_);
    src_as_ = std::move(other.src_as_);
    port_ = std::move(other.port_);
    vantage_ = std::move(other.vantage_);
    neighbor_ = std::move(other.neighbor_);
    payload_id_ = std::move(other.payload_id_);
    credential_id_ = std::move(other.credential_id_);
    actor_ = std::move(other.actor_);
    flags_ = std::move(other.flags_);
    verdict_ = std::move(other.verdict_);
    protocol_ = std::move(other.protocol_);
    has_verdicts_ = other.has_verdicts_;
    has_protocols_ = other.has_protocols_;
    vantage_network_ = std::move(other.vantage_network_);
    vantage_collection_ = std::move(other.vantage_collection_);
    port_postings_ = std::move(other.port_postings_);
    for (std::size_t i = 0; i < 3; ++i) {
      network_partition_[i] = std::move(other.network_partition_[i]);
    }
    vantage_port_postings_ = std::move(other.vantage_port_postings_);
    other.store_ = nullptr;
    other.deployment_ = nullptr;
  }
  return *this;
}

std::pair<std::uint64_t, std::uint64_t> SessionFrame::count_verdicts(
    const std::vector<std::uint32_t>& indices) const {
  std::uint64_t malicious = 0;
  std::uint64_t benign = 0;
  for (std::uint32_t index : indices) {
    switch (verdict(index)) {
      case Verdict::kMalicious: ++malicious; break;
      case Verdict::kBenign: ++benign; break;
      case Verdict::kUnobservable: break;
    }
  }
  return {malicious, benign};
}

namespace {
const std::vector<std::uint32_t> kEmptyPostings;
}  // namespace

const std::vector<std::uint32_t>& SessionFrame::for_port(net::Port port) const {
  const auto it = port_postings_.find(port);
  return it != port_postings_.end() ? it->second : kEmptyPostings;
}

const std::vector<std::uint32_t>& SessionFrame::for_vantage_port(topology::VantageId id,
                                                                 net::Port port) const {
  const auto it =
      vantage_port_postings_.find((static_cast<std::uint64_t>(id) << 16) | port);
  return it != vantage_port_postings_.end() ? it->second : kEmptyPostings;
}

}  // namespace cw::capture
