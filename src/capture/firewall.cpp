#include "capture/firewall.h"

#include "util/rng.h"

namespace cw::capture {

SignatureFirewall::SignatureFirewall(const ids::RuleEngine& engine, double drop_probability,
                                     std::uint64_t seed)
    : engine_(&engine), drop_probability_(drop_probability), seed_(seed) {}

void SignatureFirewall::protect(topology::VantageId id) { protected_.insert(id); }

bool SignatureFirewall::inspect(const ScanEvent& event, const topology::VantagePoint& vp) {
  if (!protected_.contains(vp.id)) return false;
  ++inspected_;
  // A signature firewall sees the same first payload the honeypot would;
  // credential-bearing events carry the client's banner, which no signature
  // matches, so brute force passes (matching real inline-IPS blind spots).
  if (event.payload.empty()) return false;
  if (!engine_->matches(event.payload, event.dst_port, event.transport)) return false;
  // Deterministic per-flow coin: the same connection is always treated the
  // same way across reruns.
  std::uint64_t h = seed_ ^ (static_cast<std::uint64_t>(event.src.value()) << 32) ^
                    event.dst.value() ^ (static_cast<std::uint64_t>(event.dst_port) << 48) ^
                    static_cast<std::uint64_t>(event.time);
  const double coin = static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
  if (coin >= drop_probability_) return false;
  ++dropped_;
  return true;
}

}  // namespace cw::capture
