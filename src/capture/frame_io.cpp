#include "capture/frame_io.h"

#include <algorithm>
#include <cstring>
#include <type_traits>

namespace cw::capture {
namespace {

// "CWFR" little-endian.
constexpr std::uint32_t kFrameMagic = 0x52465743u;
constexpr std::uint32_t kFrameVersion = 1;

constexpr std::uint32_t kFlagVerdicts = 1;
constexpr std::uint32_t kFlagProtocols = 2;
constexpr std::uint32_t kFlagCodes = 4;

// Column slot order inside SectionHeader::column_offsets. An offset of 0
// (inside the header) marks an absent column.
enum ColumnSlot : std::size_t {
  kColTime = 0,
  kColSrc,
  kColSrcAs,
  kColPort,
  kColVantage,
  kColNeighbor,
  kColPayloadId,
  kColCredentialId,
  kColActor,
  kColFlags,
  kColVerdict,
  kColProtocol,
  kColCodes0,  // kColCodes0 + c for CodedColumn c
  kColumnSlots = kColCodes0 + kCodedColumns,
};

constexpr std::size_t kColumnElemSize[kColumnSlots] = {
    sizeof(util::SimTime),       // time
    sizeof(std::uint32_t),       // src
    sizeof(net::Asn),            // src_as
    sizeof(net::Port),           // port
    sizeof(topology::VantageId), // vantage
    sizeof(std::uint16_t),       // neighbor
    sizeof(std::uint32_t),       // payload_id
    sizeof(std::uint32_t),       // credential_id
    sizeof(ActorId),             // actor
    sizeof(std::uint8_t),        // flags
    sizeof(std::uint8_t),        // verdict
    sizeof(net::Protocol),       // protocol
    sizeof(std::uint32_t),       // codes x4
    sizeof(std::uint32_t),
    sizeof(std::uint32_t),
    sizeof(std::uint32_t),
};

struct SectionHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t record_count;
  std::uint32_t flags;
  std::uint32_t vantage_count;
  std::uint64_t column_offsets[kColumnSlots];
  std::uint64_t partition_offsets[3];
  std::uint64_t partition_counts[3];
  std::uint64_t vantage_dir_offset;  // vantage_count x VantageDirEntry
  std::uint64_t port_dir_offset;     // port_dir_count x PortDirEntry, ports ascending
  std::uint64_t port_dir_count;
  std::uint64_t vp_dir_offset;       // vp_dir_count x VpDirEntry, keys ascending
  std::uint64_t vp_dir_count;
  std::uint64_t dict_offset;         // 0 = no inline dictionaries
  std::uint64_t section_length;
};
static_assert(sizeof(SectionHeader) == 24 + kColumnSlots * 8 + 48 + 56);

struct VantageDirEntry {
  std::uint64_t offset;
  std::uint64_t count;
};

struct PortDirEntry {
  std::uint32_t port;
  std::uint32_t reserved;
  std::uint64_t offset;
};

struct VpDirEntry {
  std::uint64_t key;
  std::uint64_t offset;
};

void pad8(std::vector<std::uint8_t>& out) {
  while (out.size() % 8 != 0) out.push_back(0);
}

// Appends `bytes` of raw data 8-aligned; returns the start offset.
std::uint64_t append_array(std::vector<std::uint8_t>& out, const void* data, std::size_t bytes) {
  pad8(out);
  const std::uint64_t offset = out.size();
  if (bytes != 0) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out.insert(out.end(), p, p + bytes);
  }
  return offset;
}

template <typename T>
void append_pod(std::vector<std::uint8_t>& out, const T& value) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&value);
  out.insert(out.end(), p, p + sizeof(T));
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

}  // namespace

std::vector<std::uint8_t> FrameView::serialize(const SessionFrame& frame) {
  const std::size_t n = frame.size();
  SectionHeader hdr{};
  hdr.magic = kFrameMagic;
  hdr.version = kFrameVersion;
  hdr.record_count = n;
  hdr.vantage_count = static_cast<std::uint32_t>(frame.vantage_network_.size());
  if (frame.has_verdicts_) hdr.flags |= kFlagVerdicts;
  if (frame.has_protocols_) hdr.flags |= kFlagProtocols;
  if (frame.has_codes_) hdr.flags |= kFlagCodes;

  std::vector<std::uint8_t> out(sizeof(SectionHeader), 0);

  hdr.column_offsets[kColTime] = append_array(out, frame.time_.data(), n * sizeof(util::SimTime));
  hdr.column_offsets[kColSrc] = append_array(out, frame.src_.data(), n * sizeof(std::uint32_t));
  hdr.column_offsets[kColSrcAs] = append_array(out, frame.src_as_.data(), n * sizeof(net::Asn));
  hdr.column_offsets[kColPort] = append_array(out, frame.port_.data(), n * sizeof(net::Port));
  hdr.column_offsets[kColVantage] =
      append_array(out, frame.vantage_.data(), n * sizeof(topology::VantageId));
  hdr.column_offsets[kColNeighbor] =
      append_array(out, frame.neighbor_.data(), n * sizeof(std::uint16_t));
  hdr.column_offsets[kColPayloadId] =
      append_array(out, frame.payload_id_.data(), n * sizeof(std::uint32_t));
  hdr.column_offsets[kColCredentialId] =
      append_array(out, frame.credential_id_.data(), n * sizeof(std::uint32_t));
  hdr.column_offsets[kColActor] = append_array(out, frame.actor_.data(), n * sizeof(ActorId));
  hdr.column_offsets[kColFlags] = append_array(out, frame.flags_.data(), n);
  if (frame.has_verdicts_) {
    hdr.column_offsets[kColVerdict] = append_array(out, frame.verdict_.data(), n);
  }
  if (frame.has_protocols_) {
    hdr.column_offsets[kColProtocol] =
        append_array(out, frame.protocol_.data(), n * sizeof(net::Protocol));
  }
  if (frame.has_codes_) {
    for (std::size_t c = 0; c < kCodedColumns; ++c) {
      hdr.column_offsets[kColCodes0 + c] =
          append_array(out, frame.codes_[c].data(), n * sizeof(std::uint32_t));
    }
  }

  for (std::size_t p = 0; p < 3; ++p) {
    const auto& partition = frame.network_partition_[p];
    hdr.partition_offsets[p] =
        append_array(out, partition.data(), partition.size() * sizeof(std::uint32_t));
    hdr.partition_counts[p] = partition.size();
  }

  // Per-vantage record index: each vantage's ascending index array, then the
  // directory pointing at them.
  std::vector<VantageDirEntry> vantage_dir(hdr.vantage_count);
  for (std::uint32_t v = 0; v < hdr.vantage_count; ++v) {
    const std::span<const std::uint32_t> indices = frame.for_vantage(v);
    vantage_dir[v].offset =
        append_array(out, indices.data(), indices.size() * sizeof(std::uint32_t));
    vantage_dir[v].count = indices.size();
  }
  hdr.vantage_dir_offset =
      append_array(out, vantage_dir.data(), vantage_dir.size() * sizeof(VantageDirEntry));

  // Posting lists, directories sorted by key so the blob is a deterministic
  // function of the frame (the source maps are unordered).
  std::vector<net::Port> ports;
  ports.reserve(frame.port_postings_.size());
  for (const auto& [port, list] : frame.port_postings_) ports.push_back(port);
  std::sort(ports.begin(), ports.end());
  std::vector<PortDirEntry> port_dir(ports.size());
  for (std::size_t i = 0; i < ports.size(); ++i) {
    port_dir[i].port = ports[i];
    port_dir[i].offset = frame.port_postings_.at(ports[i]).serialize(out);
  }
  hdr.port_dir_offset =
      append_array(out, port_dir.data(), port_dir.size() * sizeof(PortDirEntry));
  hdr.port_dir_count = port_dir.size();

  std::vector<std::uint64_t> vp_keys;
  vp_keys.reserve(frame.vantage_port_postings_.size());
  for (const auto& [key, list] : frame.vantage_port_postings_) vp_keys.push_back(key);
  std::sort(vp_keys.begin(), vp_keys.end());
  std::vector<VpDirEntry> vp_dir(vp_keys.size());
  for (std::size_t i = 0; i < vp_keys.size(); ++i) {
    vp_dir[i].key = vp_keys[i];
    vp_dir[i].offset = frame.vantage_port_postings_.at(vp_keys[i]).serialize(out);
  }
  hdr.vp_dir_offset = append_array(out, vp_dir.data(), vp_dir.size() * sizeof(VpDirEntry));
  hdr.vp_dir_count = vp_dir.size();

  // Inline dictionaries: strings in code order, so a cold restart rebuilds
  // the exact code assignment with first-sight encodes.
  if (frame.has_codes_) {
    pad8(out);
    hdr.dict_offset = out.size();
    for (std::size_t c = 0; c < kCodedColumns; ++c) {
      const auto& dict = frame.dicts_[c];
      const std::uint64_t count = dict != nullptr ? dict->size() : 0;
      append_pod(out, count);
      for (std::uint32_t code = 0; code < count; ++code) {
        const std::string& text = dict->at(code);
        append_pod(out, static_cast<std::uint32_t>(text.size()));
        out.insert(out.end(), text.begin(), text.end());
      }
    }
  }

  pad8(out);
  hdr.section_length = out.size();
  std::memcpy(out.data(), &hdr, sizeof(hdr));
  return out;
}

bool FrameView::open(const std::string& path, std::uint64_t offset, std::uint64_t length,
                     const topology::Deployment& deployment, const Options& options,
                     std::string* error) {
  opened_ = false;
  file_.reset();
  path_ = path;
  offset_ = offset;
  length_ = length;
  deployment_ = &deployment;

  util::MappedFile probe;
  if (!probe.map(path, offset, length, error)) return false;
  if (!parse_directory(probe.data(), probe.size(), options.load_dicts, error)) return false;
  opened_ = true;
  return true;
}

bool FrameView::parse_directory(const std::uint8_t* base, std::size_t size, bool load_dicts,
                                std::string* error) {
  const std::string where = "frame section of " + path_;
  if (size < sizeof(SectionHeader)) return fail(error, where + ": truncated header");
  SectionHeader hdr;
  std::memcpy(&hdr, base, sizeof(hdr));
  if (hdr.magic != kFrameMagic) return fail(error, where + ": bad magic");
  if (hdr.version != kFrameVersion) {
    return fail(error, where + ": unsupported version " + std::to_string(hdr.version));
  }
  if (hdr.section_length != size) {
    return fail(error, where + ": section length mismatch (header says " +
                           std::to_string(hdr.section_length) + ", have " +
                           std::to_string(size) + ")");
  }

  record_count_ = hdr.record_count;
  flags_ = hdr.flags;
  vantage_count_ = hdr.vantage_count;

  column_offsets_.assign(hdr.column_offsets, hdr.column_offsets + kColumnSlots);
  for (std::size_t c = 0; c < kColumnSlots; ++c) {
    const std::uint64_t off = column_offsets_[c];
    if (off == 0) continue;
    if (off % 8 != 0 || off + record_count_ * kColumnElemSize[c] > size) {
      return fail(error, where + ": column " + std::to_string(c) + " out of bounds");
    }
  }
  const auto require = [&](std::size_t slot) {
    return column_offsets_[slot] != 0 || record_count_ == 0;
  };
  for (std::size_t c = kColTime; c <= kColFlags; ++c) {
    if (!require(c)) return fail(error, where + ": missing column " + std::to_string(c));
  }
  if ((flags_ & kFlagVerdicts) != 0 && !require(kColVerdict)) {
    return fail(error, where + ": verdict column missing");
  }
  if ((flags_ & kFlagProtocols) != 0 && !require(kColProtocol)) {
    return fail(error, where + ": protocol column missing");
  }
  if ((flags_ & kFlagCodes) != 0) {
    for (std::size_t c = 0; c < kCodedColumns; ++c) {
      if (!require(kColCodes0 + c)) return fail(error, where + ": code column missing");
    }
  }

  for (std::size_t p = 0; p < 3; ++p) {
    partition_offsets_[p] = hdr.partition_offsets[p];
    partition_counts_[p] = hdr.partition_counts[p];
    if (partition_offsets_[p] % 8 != 0 ||
        partition_offsets_[p] + partition_counts_[p] * 4 > size) {
      return fail(error, where + ": network partition out of bounds");
    }
  }

  if (hdr.vantage_dir_offset % 8 != 0 ||
      hdr.vantage_dir_offset + static_cast<std::uint64_t>(vantage_count_) * sizeof(VantageDirEntry) >
          size) {
    return fail(error, where + ": vantage directory out of bounds");
  }
  vantage_dir_.resize(vantage_count_);
  for (std::uint32_t v = 0; v < vantage_count_; ++v) {
    VantageDirEntry entry;
    std::memcpy(&entry, base + hdr.vantage_dir_offset + v * sizeof(entry), sizeof(entry));
    if (entry.offset % 8 != 0 || entry.offset + entry.count * 4 > size) {
      return fail(error, where + ": vantage slice out of bounds");
    }
    vantage_dir_[v] = {entry.offset, entry.count};
  }

  if (hdr.port_dir_offset % 8 != 0 ||
      hdr.port_dir_offset + hdr.port_dir_count * sizeof(PortDirEntry) > size) {
    return fail(error, where + ": port directory out of bounds");
  }
  port_dir_.resize(hdr.port_dir_count);
  port_slot_.clear();
  port_slot_.reserve(hdr.port_dir_count);
  for (std::uint64_t i = 0; i < hdr.port_dir_count; ++i) {
    PortDirEntry entry;
    std::memcpy(&entry, base + hdr.port_dir_offset + i * sizeof(entry), sizeof(entry));
    if (i > 0 && entry.port <= port_dir_[i - 1].first) {
      return fail(error, where + ": port directory not ascending");
    }
    util::PostingSpan span;
    std::size_t span_length = 0;
    if (entry.offset >= size ||
        !util::PostingSpan::parse(base + entry.offset, size - entry.offset, span, span_length)) {
      return fail(error, where + ": corrupt posting list (port " +
                             std::to_string(entry.port) + ")");
    }
    port_dir_[i] = {static_cast<net::Port>(entry.port), entry.offset};
    port_slot_.emplace(static_cast<net::Port>(entry.port), static_cast<std::uint32_t>(i));
  }

  if (hdr.vp_dir_offset % 8 != 0 ||
      hdr.vp_dir_offset + hdr.vp_dir_count * sizeof(VpDirEntry) > size) {
    return fail(error, where + ": vantage-port directory out of bounds");
  }
  vp_dir_.resize(hdr.vp_dir_count);
  vp_slot_.clear();
  vp_slot_.reserve(hdr.vp_dir_count);
  for (std::uint64_t i = 0; i < hdr.vp_dir_count; ++i) {
    VpDirEntry entry;
    std::memcpy(&entry, base + hdr.vp_dir_offset + i * sizeof(entry), sizeof(entry));
    if (i > 0 && entry.key <= vp_dir_[i - 1].first) {
      return fail(error, where + ": vantage-port directory not ascending");
    }
    util::PostingSpan span;
    std::size_t span_length = 0;
    if (entry.offset >= size ||
        !util::PostingSpan::parse(base + entry.offset, size - entry.offset, span, span_length)) {
      return fail(error, where + ": corrupt posting list (vantage-port)");
    }
    vp_dir_[i] = {entry.key, entry.offset};
    vp_slot_.emplace(entry.key, static_cast<std::uint32_t>(i));
  }

  dicts_ = {};
  if (load_dicts) {
    if ((flags_ & kFlagCodes) != 0 && hdr.dict_offset == 0) {
      return fail(error, where + ": coded frame without inline dictionaries");
    }
    if (hdr.dict_offset != 0) {
      std::uint64_t pos = hdr.dict_offset;
      for (std::size_t c = 0; c < kCodedColumns; ++c) {
        if (pos + 8 > size) return fail(error, where + ": truncated dictionary section");
        std::uint64_t count = 0;
        std::memcpy(&count, base + pos, 8);
        pos += 8;
        auto dict = std::make_shared<util::Dictionary>();
        for (std::uint64_t code = 0; code < count; ++code) {
          if (pos + 4 > size) return fail(error, where + ": truncated dictionary entry");
          std::uint32_t len = 0;
          std::memcpy(&len, base + pos, 4);
          pos += 4;
          if (pos + len > size) return fail(error, where + ": truncated dictionary entry");
          dict->encode(std::string_view(reinterpret_cast<const char*>(base + pos), len));
          pos += len;
        }
        dicts_[c] = std::move(dict);
      }
    }
  }
  return true;
}

bool FrameView::map(SessionFrame& target, std::string* error) {
  if (!opened_) return fail(error, "FrameView::map: view not opened");
  if (!mapped()) {
    if (!file_.map(path_, offset_, length_, error)) return false;
  }
  return bind(target, file_.data(), error);
}

bool FrameView::bind(SessionFrame& target, const std::uint8_t* base, std::string* error) {
  // The frame gives up any store claim: a mapped frame is backed by the file
  // alone (the caller is about to free the store — that is the point).
  target.release();

  const std::size_t n = static_cast<std::size_t>(record_count_);
  const auto col = [&](auto& column, std::size_t slot) {
    using T = std::remove_cvref_t<decltype(column[0])>;
    const std::uint64_t off = column_offsets_[slot];
    column.bind_external(off != 0 ? reinterpret_cast<const T*>(base + off) : nullptr, n);
  };
  col(target.time_, kColTime);
  col(target.src_, kColSrc);
  col(target.src_as_, kColSrcAs);
  col(target.port_, kColPort);
  col(target.vantage_, kColVantage);
  col(target.neighbor_, kColNeighbor);
  col(target.payload_id_, kColPayloadId);
  col(target.credential_id_, kColCredentialId);
  col(target.actor_, kColActor);
  col(target.flags_, kColFlags);

  target.has_verdicts_ = (flags_ & kFlagVerdicts) != 0;
  target.has_protocols_ = (flags_ & kFlagProtocols) != 0;
  target.has_codes_ = (flags_ & kFlagCodes) != 0;
  if (target.has_verdicts_) {
    col(target.verdict_, kColVerdict);
  } else {
    target.verdict_ = {};
  }
  if (target.has_protocols_) {
    col(target.protocol_, kColProtocol);
  } else {
    target.protocol_ = {};
  }
  for (std::size_t c = 0; c < kCodedColumns; ++c) {
    if (target.has_codes_) {
      col(target.codes_[c], kColCodes0 + c);
    } else {
      target.codes_[c] = {};
    }
  }

  for (std::size_t p = 0; p < 3; ++p) {
    target.network_partition_[p].bind_external(
        reinterpret_cast<const std::uint32_t*>(base + partition_offsets_[p]),
        static_cast<std::size_t>(partition_counts_[p]));
  }

  target.vantage_slices_.resize(vantage_count_);
  for (std::uint32_t v = 0; v < vantage_count_; ++v) {
    target.vantage_slices_[v] = std::span<const std::uint32_t>(
        reinterpret_cast<const std::uint32_t*>(base + vantage_dir_[v].first),
        static_cast<std::size_t>(vantage_dir_[v].second));
  }

  // Posting spans are re-parsed per map: the kernel may hand back a
  // different address each time, so every pointer is recomputed.
  target.port_spans_.resize(port_dir_.size());
  for (std::size_t i = 0; i < port_dir_.size(); ++i) {
    std::size_t span_length = 0;
    if (!util::PostingSpan::parse(base + port_dir_[i].second, length_ - port_dir_[i].second,
                                  target.port_spans_[i], span_length)) {
      return fail(error, "FrameView::map: posting list changed underfoot");
    }
  }
  target.vp_spans_.resize(vp_dir_.size());
  for (std::size_t i = 0; i < vp_dir_.size(); ++i) {
    std::size_t span_length = 0;
    if (!util::PostingSpan::parse(base + vp_dir_[i].second, length_ - vp_dir_[i].second,
                                  target.vp_spans_[i], span_length)) {
      return fail(error, "FrameView::map: posting list changed underfoot");
    }
  }
  target.port_span_slot_ = port_slot_;
  target.vp_span_slot_ = vp_slot_;

  // The hot-side structures are dead weight once mapped; free them.
  target.port_postings_.clear();
  target.vantage_port_postings_.clear();

  if (dicts_[0] != nullptr || dicts_[1] != nullptr) target.dicts_ = dicts_;
  if (target.vantage_network_.empty()) {
    target.vantage_network_.reserve(deployment_->size());
    target.vantage_collection_.reserve(deployment_->size());
    for (const topology::VantagePoint& vp : deployment_->vantage_points()) {
      target.vantage_network_.push_back(vp.type);
      target.vantage_collection_.push_back(vp.collection);
    }
  }
  target.deployment_ = deployment_;
  target.mapped_ = true;
  return true;
}

void FrameView::unmap(SessionFrame& target) {
  target.time_.unbind();
  target.src_.unbind();
  target.src_as_.unbind();
  target.port_.unbind();
  target.vantage_.unbind();
  target.neighbor_.unbind();
  target.payload_id_.unbind();
  target.credential_id_.unbind();
  target.actor_.unbind();
  target.flags_.unbind();
  target.verdict_.unbind();
  target.protocol_.unbind();
  for (auto& column : target.codes_) column.unbind();
  for (auto& partition : target.network_partition_) partition.unbind();
  target.vantage_slices_.clear();
  target.port_spans_.clear();
  target.vp_spans_.clear();
  target.port_span_slot_.clear();
  target.vp_span_slot_.clear();
  target.mapped_ = false;
  file_.reset();
}

}  // namespace cw::capture
