// Wire-level events. A ScanEvent is what an agent puts on the simulated
// wire: one connection attempt with the payload the client would send after
// a completed handshake. A SessionRecord is what a vantage point's
// collection method retains of it — the telescope keeps no payload and
// completes no handshake, Honeytrap keeps the first payload, GreyNoise
// additionally captures SSH/Telnet credentials (Section 3.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "net/asn.h"
#include "net/ipv4.h"
#include "net/ports.h"
#include "proto/credentials.h"
#include "topology/deployment.h"
#include "util/sim_time.h"

namespace cw::capture {

using ActorId = std::uint32_t;

struct ScanEvent {
  util::SimTime time = 0;
  net::IPv4Addr src;
  net::Asn src_as = 0;
  net::IPv4Addr dst;
  net::Port dst_port = 0;
  net::Transport transport = net::Transport::kTcp;
  std::string payload;                             // first client payload (may be empty)
  std::optional<proto::Credential> credential;     // SSH/Telnet login attempt
  net::Protocol intended_protocol = net::Protocol::kUnknown;
  bool malicious_intent = false;                   // ground truth (hidden from analyses)
  ActorId actor = 0;
};

// Sentinel ids for "nothing collected".
inline constexpr std::uint32_t kNoPayload = ~std::uint32_t{0};
inline constexpr std::uint32_t kNoCredential = ~std::uint32_t{0};

// Compact captured record; payloads and credentials are interned in the
// owning EventStore.
struct SessionRecord {
  util::SimTime time = 0;
  std::uint32_t src = 0;
  std::uint32_t dst = 0;
  net::Asn src_as = 0;
  net::Port port = 0;
  net::Transport transport = net::Transport::kTcp;
  bool handshake_completed = false;
  topology::VantageId vantage = 0;
  std::uint16_t neighbor = 0;  // index of the destination within its vantage point
  std::uint32_t payload_id = kNoPayload;
  std::uint32_t credential_id = kNoCredential;
  ActorId actor = 0;
  bool malicious_truth = false;

  [[nodiscard]] net::IPv4Addr src_addr() const noexcept { return net::IPv4Addr(src); }
  [[nodiscard]] net::IPv4Addr dst_addr() const noexcept { return net::IPv4Addr(dst); }
};

}  // namespace cw::capture
