// The event store: every SessionRecord captured during a run, with interned
// payloads/credentials and per-vantage indices for the analysis pipelines.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "capture/event.h"
#include "capture/interner.h"
#include "proto/credentials.h"
#include "topology/deployment.h"

namespace cw::capture {

class EventStore {
 public:
  // Appends a record whose payload/credential have not been interned yet.
  // Empty payload => kNoPayload.
  void append(SessionRecord record, std::string_view payload,
              const std::optional<proto::Credential>& credential);

  [[nodiscard]] const std::vector<SessionRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // Interned lookup. Ids must be valid (not the kNo* sentinels).
  [[nodiscard]] const std::string& payload(std::uint32_t id) const { return payloads_.at(id); }
  [[nodiscard]] proto::Credential credential(std::uint32_t id) const;

  [[nodiscard]] std::size_t distinct_payloads() const noexcept { return payloads_.size(); }
  [[nodiscard]] std::size_t distinct_credentials() const noexcept { return credentials_.size(); }

  // Raw interned credential text ("username\npassword"), for serialization.
  [[nodiscard]] const std::string& credential_text(std::uint32_t id) const {
    return credentials_.at(id);
  }

  // Record indices captured by one vantage point. Built lazily on first use
  // and invalidated by append.
  [[nodiscard]] const std::vector<std::uint32_t>& for_vantage(topology::VantageId id) const;

 private:
  std::vector<SessionRecord> records_;
  Interner payloads_;
  Interner credentials_;  // interned as "username\npassword"
  mutable std::vector<std::vector<std::uint32_t>> vantage_index_;
  mutable bool index_valid_ = false;
};

}  // namespace cw::capture
