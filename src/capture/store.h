// The event store: every SessionRecord captured during a run, with interned
// payloads/credentials and per-vantage indices for the analysis pipelines.
//
// Threading model: the store is single-writer during the simulation phase
// (append), then read-only during analysis. All const members, including the
// lazily built for_vantage index, are safe to call from concurrent reader
// threads once the last append has happened-before the readers start (the
// pipeline runner joins the simulation before fanning out). The frozen-store
// contract is load-bearing for derived read-side structures: a
// capture::SessionFrame snapshots the store at one index epoch, and any
// append after that invalidates both the per-vantage index and the frame.
// Long-lived readers therefore register themselves through pin_readers()
// (SessionFrame does this automatically); in debug builds an append while a
// pin is held trips an assertion, and in all builds it bumps index_epoch()
// so a stale frame is detectable via SessionFrame::attached().
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "capture/event.h"
#include "capture/interner.h"
#include "proto/credentials.h"
#include "topology/deployment.h"

namespace cw::capture {

class EventStore {
 public:
  EventStore() = default;
  // Moves transfer the whole read-side state coherently: records, interners,
  // the per-vantage index together with its validity flag and epoch, and the
  // store uid (so memoizations keyed by uid stay correct for the surviving
  // store). Moving while any reader holds a pin is a logic error (asserted in
  // debug builds): the readers' spans would dangle. The moved-from store is
  // left empty with a fresh uid, an invalid index, and a bumped epoch so any
  // (illegally) surviving derived structure detaches.
  EventStore(EventStore&& other) noexcept;
  EventStore& operator=(EventStore&& other) noexcept;

  // Appends a record whose payload/credential have not been interned yet.
  // Empty payload => kNoPayload. Not safe concurrently with any reader.
  void append(SessionRecord record, std::string_view payload,
              const std::optional<proto::Credential>& credential);

  // Pre-sizes the record vector and interner maps for a bulk append (the
  // stream layer seals a whole epoch's buffered records at once).
  void reserve(std::size_t records, std::size_t payload_hint = 0,
               std::size_t credential_hint = 0) {
    records_.reserve(records);
    if (payload_hint != 0) payloads_.reserve(payload_hint);
    if (credential_hint != 0) credentials_.reserve(credential_hint);
  }

  [[nodiscard]] const std::vector<SessionRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // Interned lookup. Ids must be valid (not the kNo* sentinels).
  [[nodiscard]] const std::string& payload(std::uint32_t id) const { return payloads_.at(id); }
  [[nodiscard]] proto::Credential credential(std::uint32_t id) const;

  [[nodiscard]] std::size_t distinct_payloads() const noexcept { return payloads_.size(); }
  [[nodiscard]] std::size_t distinct_credentials() const noexcept { return credentials_.size(); }

  // Raw interned credential text in the length-prefixed encoding below, for
  // serialization.
  [[nodiscard]] const std::string& credential_text(std::uint32_t id) const {
    return credentials_.at(id);
  }

  // Credentials are interned as "<username length>:<username><password>".
  // A plain '\n' join corrupted round-trips whenever the username itself
  // contained a newline (Cowrie-style SSH capture does observe those) and
  // made ("a\nb", "c") collide with ("a", "b\nc").
  static std::string encode_credential(const proto::Credential& credential);
  // Appends the encoding to `out` (cleared first) — the bulk-seal append path
  // reuses one scratch buffer instead of allocating a string per record.
  static void encode_credential_into(std::string& out, const proto::Credential& credential);
  static std::optional<proto::Credential> decode_credential(std::string_view text);

  // Record indices captured by one vantage point. The index is built once on
  // first use (or by freeze()) and is safe for concurrent readers; append
  // invalidates it.
  [[nodiscard]] const std::vector<std::uint32_t>& for_vantage(topology::VantageId id) const;

  // Eagerly builds the per-vantage index (idempotent, safe to race). Call
  // after the simulation phase so concurrent analysis readers never contend
  // on the first-use build.
  void freeze() const;

  // Monotonic generation counter for the per-vantage index: 0 before the
  // first build, bumped on every rebuild. A derived structure (SessionFrame)
  // records the epoch it was built against; append() invalidates the index,
  // so a mismatch means the structure is stale.
  [[nodiscard]] std::uint64_t index_epoch() const noexcept {
    return index_epoch_.load(std::memory_order_acquire);
  }

  // Process-unique identity of this store's interned-id space. Fresh at
  // construction, transferred by move (the moved-from store gets a new one).
  // Memoizations keyed on interned ids (MaliciousClassifier's verdict memo)
  // include the uid so the same classifier can serve records from many
  // stores — the segment stores a stream ingest seals every epoch — without
  // id collisions across stores.
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  // Registration for long-lived readers that hold references into the store
  // (frames, for_vantage spans cached across calls). append() asserts no pin
  // is held — appending would invalidate what the reader is looking at.
  void pin_readers() const noexcept {
    reader_pins_.fetch_add(1, std::memory_order_acq_rel);
  }
  void unpin_readers() const noexcept {
    reader_pins_.fetch_sub(1, std::memory_order_acq_rel);
  }
  [[nodiscard]] int reader_pins() const noexcept {
    return reader_pins_.load(std::memory_order_acquire);
  }

 private:
  static std::uint64_t next_uid() noexcept;
  void steal_read_state(EventStore& other) noexcept;

  std::uint64_t uid_ = next_uid();
  std::vector<SessionRecord> records_;
  // Writer-side scratch for credential encoding; never read outside append().
  std::string credential_scratch_;
  Interner payloads_;
  Interner credentials_;
  // Lazily built per-vantage index. index_valid_ is the double-checked flag:
  // acquire-loaded on the read path, set under index_mutex_ by the builder.
  mutable std::mutex index_mutex_;
  mutable std::atomic<bool> index_valid_{false};
  mutable std::atomic<std::uint64_t> index_epoch_{0};
  mutable std::atomic<int> reader_pins_{0};
  mutable std::vector<std::vector<std::uint32_t>> vantage_index_;
};

}  // namespace cw::capture
