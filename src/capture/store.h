// The event store: every SessionRecord captured during a run, with interned
// payloads/credentials and per-vantage indices for the analysis pipelines.
//
// Threading model: the store is single-writer during the simulation phase
// (append), then read-only during analysis. All const members, including the
// lazily built for_vantage index, are safe to call from concurrent reader
// threads once the last append has happened-before the readers start (the
// pipeline runner joins the simulation before fanning out).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "capture/event.h"
#include "capture/interner.h"
#include "proto/credentials.h"
#include "topology/deployment.h"

namespace cw::capture {

class EventStore {
 public:
  EventStore() = default;
  EventStore(EventStore&& other) noexcept;
  EventStore& operator=(EventStore&& other) noexcept;

  // Appends a record whose payload/credential have not been interned yet.
  // Empty payload => kNoPayload. Not safe concurrently with any reader.
  void append(SessionRecord record, std::string_view payload,
              const std::optional<proto::Credential>& credential);

  [[nodiscard]] const std::vector<SessionRecord>& records() const noexcept { return records_; }
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }

  // Interned lookup. Ids must be valid (not the kNo* sentinels).
  [[nodiscard]] const std::string& payload(std::uint32_t id) const { return payloads_.at(id); }
  [[nodiscard]] proto::Credential credential(std::uint32_t id) const;

  [[nodiscard]] std::size_t distinct_payloads() const noexcept { return payloads_.size(); }
  [[nodiscard]] std::size_t distinct_credentials() const noexcept { return credentials_.size(); }

  // Raw interned credential text in the length-prefixed encoding below, for
  // serialization.
  [[nodiscard]] const std::string& credential_text(std::uint32_t id) const {
    return credentials_.at(id);
  }

  // Credentials are interned as "<username length>:<username><password>".
  // A plain '\n' join corrupted round-trips whenever the username itself
  // contained a newline (Cowrie-style SSH capture does observe those) and
  // made ("a\nb", "c") collide with ("a", "b\nc").
  static std::string encode_credential(const proto::Credential& credential);
  static std::optional<proto::Credential> decode_credential(std::string_view text);

  // Record indices captured by one vantage point. The index is built once on
  // first use (or by freeze()) and is safe for concurrent readers; append
  // invalidates it.
  [[nodiscard]] const std::vector<std::uint32_t>& for_vantage(topology::VantageId id) const;

  // Eagerly builds the per-vantage index (idempotent, safe to race). Call
  // after the simulation phase so concurrent analysis readers never contend
  // on the first-use build.
  void freeze() const;

 private:
  std::vector<SessionRecord> records_;
  Interner payloads_;
  Interner credentials_;
  // Lazily built per-vantage index. index_valid_ is the double-checked flag:
  // acquire-loaded on the read path, set under index_mutex_ by the builder.
  mutable std::mutex index_mutex_;
  mutable std::atomic<bool> index_valid_{false};
  mutable std::vector<std::vector<std::uint32_t>> vantage_index_;
};

}  // namespace cw::capture
