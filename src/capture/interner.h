// String interning for payloads and credentials: scanning campaigns repeat
// identical byte strings millions of times, so records store 32-bit ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cw::capture {

class Interner {
 public:
  // Returns a stable id for the string, inserting it on first sight.
  std::uint32_t intern(std::string_view value);

  // The interned string for an id. Precondition: id came from intern().
  [[nodiscard]] const std::string& at(std::uint32_t id) const { return values_.at(id); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

 private:
  std::vector<std::string> values_;
  std::unordered_map<std::string, std::uint32_t> ids_;
};

}  // namespace cw::capture
