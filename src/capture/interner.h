// String interning for payloads and credentials: scanning campaigns repeat
// identical byte strings millions of times, so records store 32-bit ids.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cw::capture {

class Interner {
 public:
  // Returns a stable id for the string, inserting it on first sight. Probes
  // with the string_view directly (transparent hash/equal) — a repeat of a
  // seen value allocates nothing.
  std::uint32_t intern(std::string_view value);

  // The interned string for an id. Precondition: id came from intern().
  [[nodiscard]] const std::string& at(std::uint32_t id) const { return values_.at(id); }

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }

  // Pre-sizes the lookup map for a bulk insert (stream epoch seal).
  void reserve(std::size_t n) {
    values_.reserve(n);
    ids_.reserve(n);
  }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view value) const noexcept {
      return std::hash<std::string_view>{}(value);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept { return a == b; }
  };

  std::vector<std::string> values_;
  std::unordered_map<std::string, std::uint32_t, Hash, Eq> ids_;
};

}  // namespace cw::capture
