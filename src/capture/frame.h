// SessionFrame: an immutable, columnar (SoA) projection of a frozen
// EventStore, shared by every analysis pipeline. The paper's tables are all
// filtered aggregations over the same one-week corpus; instead of each
// pipeline re-scanning store.records() and re-resolving deployment.at() per
// record, the frame materializes the hot columns once plus the secondary
// structures the pipelines select on:
//
//   - parallel column vectors (time/src/src_as/port/vantage/neighbor/
//     payload_id/credential_id/actor/flags),
//   - dictionary-encoded characteristic columns (v2): the AS / username /
//     password / normalized-payload text each record contributes to the
//     Section 3.3 frequency tables, stored as dense u32 codes against
//     per-column dictionaries so the table kernels count without touching a
//     string (see codes()/dict() and stats::FrequencyTable::from_codes),
//   - packed per-port and per-(vantage, port) posting lists
//     (util::PostingList — roaring-style array/bitmap containers yielding
//     ascending indices, so report bytes cannot change) plus per-network
//     partitions (vantage ids resolved through the Deployment once),
//   - a malicious-verdict column evaluated through an opaque callback
//     (capture cannot depend on analysis) — once per *distinct*
//     (credential-presence, payload, port, transport) tuple when the caller
//     declares the callback pure, once per record otherwise — and a
//     protocol column fingerprinted once per distinct payload.
//
// Code assignment is deterministic: batch frames sort each dictionary, so
// insertion order cannot perturb codes; stream frames built against
// SharedFrameDicts assign codes first-sight in store record order, which is
// itself a pure function of the sealed corpus. Output bytes never depend on
// either choice — every table renders through dictionary *text* with
// lexicographic tie-breaks.
//
// Shifted-code convention: code columns store (dictionary code + 1); 0
// means "no value" (telescope records have no payload/credential). Count
// kernels index a vector sized dict->size()+1 and slot 0 absorbs the
// missing rows branchlessly.
//
// The build shards over contiguous record chunks through
// runner::ThreadPool::parallel_for and is deterministic: every secondary
// structure lists record indices in ascending order regardless of worker
// count, so frame-backed pipelines produce byte-identical reports.
//
// Lifetime: build() freezes the store and pins it (EventStore::pin_readers);
// the destructor unpins. An append after the build bumps the store's index
// epoch, which attached() detects — and trips the store's debug assertion,
// because every span the frame returns points into invalidated state.
//
// Hot vs cold (out-of-core spill): every column is a util::Column that
// either owns its vector (a hot frame, built as above) or views external
// memory. capture::FrameView binds a frame's columns, posting lists, and
// vantage slices straight into an mmapped CWDS frame section — the same
// accessor surface then reads zero-copy out of the file, so every analysis
// kernel is oblivious to where a segment lives. A mapped frame has no
// EventStore behind it: store()/record() must not be called (store_ptr()
// returns nullptr), and for_vantage serves from the serialized per-vantage
// index instead of the store's.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "capture/event.h"
#include "capture/store.h"
#include "net/ports.h"
#include "topology/deployment.h"
#include "topology/provider.h"
#include "util/column.h"
#include "util/dict.h"
#include "util/postings.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::capture {

// The dictionary-encoded characteristic columns a frame carries.
enum class CodedColumn : std::uint8_t { kAs = 0, kUsername, kPassword, kPayload };
inline constexpr std::size_t kCodedColumns = 4;

// Shared per-experiment dictionaries + encode memos for stream mode: the
// ingest layer owns one instance and hands it to every epoch's frame build,
// so sealing encodes only *novel* values — history keeps its codes and
// per-segment count vectors stay mergeable code-wise forever.
//
// Thread contract: mutated only inside SessionFrame::build under the stream
// layer's seal serialization (one seal at a time, renders quiesced); frames
// alias the dictionaries as shared_ptr<const Dictionary>.
struct SharedFrameDicts {
  SharedFrameDicts();

  std::array<std::shared_ptr<util::Dictionary>, kCodedColumns> dicts;

  // Raw payload text -> (shifted normalized-payload code, protocol). One
  // normalization + LZR fingerprint per novel payload per experiment.
  struct PayloadInfo {
    std::uint32_t shifted_code = 0;
    net::Protocol protocol = net::Protocol::kUnknown;
  };
  std::unordered_map<std::string, PayloadInfo> payload_memo;

  // Interned credential text -> (shifted username code, shifted password
  // code). One decode per novel credential per experiment.
  struct CredentialCodes {
    std::uint32_t shifted_username = 0;
    std::uint32_t shifted_password = 0;
  };
  std::unordered_map<std::string, CredentialCodes> credential_memo;

  // ASN -> shifted "AS<n>" code.
  std::unordered_map<net::Asn, std::uint32_t> as_memo;
};

class SessionFrame {
 public:
  // Verdict of the malicious-intent measurement, mirroring
  // analysis::MeasuredIntent without a capture->analysis dependency.
  enum class Verdict : std::uint8_t { kUnobservable = 0, kBenign, kMalicious };

  using VerdictFn = std::function<Verdict(const SessionRecord&)>;

  struct BuildOptions {
    BuildOptions() {}
    // Shards the column fill across the pool; null builds sequentially.
    runner::ThreadPool* pool = nullptr;
    // Evaluated into the verdict column. Empty leaves the frame without
    // verdicts (has_verdicts() == false).
    VerdictFn verdict;
    // Declares that `verdict` is a pure function of (credential presence,
    // payload_id, port, transport) — true for the Section 3.2 classifier.
    // The build then memoizes it per distinct tuple instead of invoking it
    // per record (the callback typically hides a shared_mutex memo of its
    // own; at seal scale the per-record virtual call dominated).
    bool verdict_pure = false;
    // Fingerprint each distinct payload into the protocol column.
    bool fingerprint_payloads = true;
    // Materialize the dictionary-encoded characteristic columns.
    bool encode_characteristics = true;
    // Stream mode: encode against these shared dictionaries instead of
    // building frame-local sorted ones. Borrowed; mutated during build.
    SharedFrameDicts* shared_dicts = nullptr;
  };

  // Freezes the store, pins it, and materializes every column and secondary
  // structure. Deterministic at any pool size.
  static SessionFrame build(const EventStore& store, const topology::Deployment& deployment,
                            BuildOptions options = {});

  // An empty frame: the target a FrameView maps a spilled segment into.
  SessionFrame() = default;

  ~SessionFrame();
  SessionFrame(SessionFrame&& other) noexcept;
  SessionFrame& operator=(SessionFrame&& other) noexcept;
  SessionFrame(const SessionFrame&) = delete;
  SessionFrame& operator=(const SessionFrame&) = delete;

  // Column sizes survive an unmap, so a cold segment still reports its size.
  [[nodiscard]] std::size_t size() const noexcept { return time_.size(); }

  // True while every span below is valid: either the frame is bound to a
  // live mapping, or the underlying store has not been appended to since
  // the build.
  [[nodiscard]] bool attached() const noexcept {
    return mapped_ || (store_ != nullptr && store_->index_epoch() == build_epoch_);
  }

  // True when the columns view an mmapped frame section (no store behind).
  [[nodiscard]] bool mapped() const noexcept { return mapped_; }

  // --- column accessors ----------------------------------------------------
  [[nodiscard]] util::SimTime time(std::uint32_t i) const { return time_[i]; }
  [[nodiscard]] std::uint32_t src(std::uint32_t i) const { return src_[i]; }
  [[nodiscard]] net::Asn src_as(std::uint32_t i) const { return src_as_[i]; }
  [[nodiscard]] net::Port port(std::uint32_t i) const { return port_[i]; }
  [[nodiscard]] topology::VantageId vantage(std::uint32_t i) const { return vantage_[i]; }
  [[nodiscard]] std::uint16_t neighbor(std::uint32_t i) const { return neighbor_[i]; }
  [[nodiscard]] std::uint32_t payload_id(std::uint32_t i) const { return payload_id_[i]; }
  [[nodiscard]] std::uint32_t credential_id(std::uint32_t i) const { return credential_id_[i]; }
  [[nodiscard]] ActorId actor(std::uint32_t i) const { return actor_[i]; }

  [[nodiscard]] bool has_payload(std::uint32_t i) const { return (flags_[i] & kHasPayload) != 0; }
  [[nodiscard]] bool has_credential(std::uint32_t i) const {
    return (flags_[i] & kHasCredential) != 0;
  }
  [[nodiscard]] bool handshake(std::uint32_t i) const { return (flags_[i] & kHandshake) != 0; }

  // Network type of the record's vantage point, resolved at build time.
  [[nodiscard]] topology::NetworkType network_type(std::uint32_t i) const {
    return vantage_network_[vantage_[i]];
  }
  [[nodiscard]] topology::NetworkType network_of(topology::VantageId id) const {
    return vantage_network_[id];
  }
  [[nodiscard]] topology::CollectionMethod collection_of(topology::VantageId id) const {
    return vantage_collection_[id];
  }

  // Verdict column (empty VerdictFn => has_verdicts() false, verdict() must
  // not be called).
  [[nodiscard]] bool has_verdicts() const noexcept { return has_verdicts_; }
  [[nodiscard]] Verdict verdict(std::uint32_t i) const {
    return static_cast<Verdict>(verdict_[i]);
  }
  // (malicious, benign) over a set of record indices; unobservable excluded.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> count_verdicts(
      const util::PostingView& indices) const;

  // Protocol column: LZR fingerprint of the record's payload (kUnknown when
  // none), computed once per distinct payload.
  [[nodiscard]] bool has_protocols() const noexcept { return has_protocols_; }
  [[nodiscard]] net::Protocol protocol(std::uint32_t i) const { return protocol_[i]; }

  // --- encoded characteristic columns (v2) ---------------------------------
  [[nodiscard]] bool has_codes() const noexcept { return has_codes_; }
  // Shifted codes (code+1; 0 = no value), one entry per record.
  [[nodiscard]] std::span<const std::uint32_t> codes(CodedColumn column) const {
    return codes_[static_cast<std::size_t>(column)].span();
  }
  [[nodiscard]] const std::shared_ptr<const util::Dictionary>& dict(CodedColumn column) const {
    return dicts_[static_cast<std::size_t>(column)];
  }

  // --- secondary structures ------------------------------------------------
  // All record-index sets list indices in ascending order. The views are
  // cheap by-value handles; an unknown port / vantage yields an empty view.
  [[nodiscard]] util::PostingView for_port(net::Port port) const;
  [[nodiscard]] std::span<const std::uint32_t> for_network(topology::NetworkType type) const {
    return network_partition_[static_cast<std::size_t>(type)].span();
  }
  [[nodiscard]] std::span<const std::uint32_t> for_vantage(topology::VantageId id) const {
    if (store_ != nullptr) return store_->for_vantage(id);
    return id < vantage_slices_.size() ? vantage_slices_[id]
                                       : std::span<const std::uint32_t>{};
  }
  [[nodiscard]] util::PostingView for_vantage_port(topology::VantageId id, net::Port port) const;

  // Hot frames only: a mapped frame has no store (store_ptr() == nullptr).
  [[nodiscard]] const SessionRecord& record(std::uint32_t i) const {
    return store_->records()[i];
  }
  [[nodiscard]] const EventStore& store() const noexcept { return *store_; }
  [[nodiscard]] const EventStore* store_ptr() const noexcept { return store_; }
  [[nodiscard]] const topology::Deployment& deployment() const noexcept { return *deployment_; }

 private:
  friend class FrameView;
  void release() noexcept;

  static constexpr std::uint8_t kHasPayload = 1;
  static constexpr std::uint8_t kHasCredential = 2;
  static constexpr std::uint8_t kHandshake = 4;

  const EventStore* store_ = nullptr;
  const topology::Deployment* deployment_ = nullptr;
  std::uint64_t build_epoch_ = 0;
  // Columns view an mmapped frame section (set/cleared by FrameView).
  bool mapped_ = false;

  util::Column<util::SimTime> time_;
  util::Column<std::uint32_t> src_;
  util::Column<net::Asn> src_as_;
  util::Column<net::Port> port_;
  util::Column<topology::VantageId> vantage_;
  util::Column<std::uint16_t> neighbor_;
  util::Column<std::uint32_t> payload_id_;
  util::Column<std::uint32_t> credential_id_;
  util::Column<ActorId> actor_;
  util::Column<std::uint8_t> flags_;
  util::Column<std::uint8_t> verdict_;
  util::Column<net::Protocol> protocol_;
  bool has_verdicts_ = false;
  bool has_protocols_ = false;
  bool has_codes_ = false;

  std::array<util::Column<std::uint32_t>, kCodedColumns> codes_;
  std::array<std::shared_ptr<const util::Dictionary>, kCodedColumns> dicts_;

  std::vector<topology::NetworkType> vantage_network_;
  std::vector<topology::CollectionMethod> vantage_collection_;

  std::unordered_map<net::Port, util::PostingList> port_postings_;
  util::Column<std::uint32_t> network_partition_[3];
  // Key packs vantage << 16 | port (ports are 16-bit).
  std::unordered_map<std::uint64_t, util::PostingList> vantage_port_postings_;

  // Cold-side secondary structures: posting spans into the mapping plus the
  // slot maps FrameView builds once at open. Empty on hot frames.
  std::vector<util::PostingSpan> port_spans_;
  std::vector<util::PostingSpan> vp_spans_;
  std::unordered_map<net::Port, std::uint32_t> port_span_slot_;
  std::unordered_map<std::uint64_t, std::uint32_t> vp_span_slot_;
  std::vector<std::span<const std::uint32_t>> vantage_slices_;
};

}  // namespace cw::capture
