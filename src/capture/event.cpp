#include "capture/event.h"

// SessionRecord and ScanEvent are plain data; this translation unit exists
// so the header's layout assumptions are compiled (and static_asserted)
// exactly once.
namespace cw::capture {

static_assert(sizeof(SessionRecord) <= 56,
              "SessionRecord is kept compact; millions are stored per run");

}  // namespace cw::capture
