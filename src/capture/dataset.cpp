#include "capture/dataset.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "capture/frame_io.h"
#include "util/crc32.h"
#include "util/strings.h"
#include "util/table.h"

namespace cw::capture {
namespace {

constexpr char kMagic[4] = {'C', 'W', 'D', 'S'};
// Version 2 switched the interned credential blobs from the '\n'-joined
// encoding to the length-prefixed one (see EventStore::encode_credential).
// Version 3 added the section-flags/frame-section header fields and the
// per-segment CRC-32 trailer. Older files are still readable; writing
// always uses the current version.
constexpr std::uint32_t kVersion = 3;
constexpr std::uint32_t kVersion2 = 2;
constexpr std::uint32_t kLegacyVersion = 1;

constexpr std::uint32_t kSectionFrame = 1;  // section-flags bit: frame section present

// Fixed byte size of the v3 header (through frame section length).
constexpr std::uint64_t kHeaderBytesV3 = 48;
// v1/v2 header: magic + version + record count + payload/credential counts.
constexpr std::uint64_t kHeaderBytesV2 = 24;
// Fixed-width record encoding (see write_dataset).
constexpr std::uint64_t kRecordBytes = 43;

// Version 1 joined a credential as "<username>\n<password>" and split on the
// first newline. A blob with more than one newline is ambiguous under that
// scheme — ("a\nb", "c") and ("a", "b\nc") produced the same bytes — so
// such blobs are rejected rather than silently mis-split.
std::optional<proto::Credential> decode_legacy_credential(std::string_view text) {
  const std::size_t split = text.find('\n');
  if (split == std::string_view::npos) return std::nullopt;
  if (text.find('\n', split + 1) != std::string_view::npos) return std::nullopt;
  proto::Credential out;
  out.username = std::string(text.substr(0, split));
  out.password = std::string(text.substr(split + 1));
  return out;
}

// Stream wrappers feeding every byte through an incremental CRC-32, so the
// v3 trailer costs no extra pass over the data.
struct CrcWriter {
  std::ostream& out;
  util::Crc32 crc;

  void write(const void* data, std::size_t size) {
    out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    crc.update(data, size);
  }
  template <typename T>
  void pod(T value) {
    write(&value, sizeof value);
  }
  void str(const std::string& value) {
    pod(static_cast<std::uint32_t>(value.size()));
    write(value.data(), value.size());
  }
};

struct CrcReader {
  std::istream& in;
  util::Crc32 crc;
  std::uint64_t consumed = 0;  // bytes read since the segment's first byte

  bool read(void* data, std::size_t size) {
    in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
    if (!in) return false;
    crc.update(data, size);
    consumed += size;
    return true;
  }
  template <typename T>
  bool pod(T& value) {
    return read(&value, sizeof value);
  }
  bool str(std::string& value) {
    std::uint32_t length = 0;
    if (!pod(length)) return false;
    if (length > (1u << 24)) return false;  // sanity bound: 16 MiB per entry
    value.resize(length);
    return read(value.data(), length);
  }
  // Reads and discards `size` bytes (pad + frame section on the store-only
  // path), still feeding the CRC.
  bool skip(std::uint64_t size) {
    char buffer[64 * 1024];
    while (size > 0) {
      const std::size_t chunk = static_cast<std::size_t>(std::min<std::uint64_t>(size, sizeof buffer));
      if (!read(buffer, chunk)) return false;
      size -= chunk;
    }
    return true;
  }
};

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

std::uint64_t table_bytes(const EventStore& store) {
  std::uint64_t total = 0;
  for (std::uint32_t id = 0; id < store.distinct_payloads(); ++id) {
    total += 4 + store.payload(id).size();
  }
  for (std::uint32_t id = 0; id < store.distinct_credentials(); ++id) {
    total += 4 + store.credential_text(id).size();
  }
  return total;
}

bool write_dataset_impl(const EventStore& store, const SessionFrame* frame, std::ostream& out) {
  // The frame section's internal arrays are 8-aligned relative to its base,
  // so the base itself must land on an 8-aligned *file* offset for mmapped
  // column pointers to be naturally aligned.
  const std::streampos pos = out.tellp();
  const std::uint64_t segment_start = pos == std::streampos(-1) ? 0 : static_cast<std::uint64_t>(pos);

  std::vector<std::uint8_t> section;
  if (frame != nullptr) section = FrameView::serialize(*frame);

  const std::uint64_t body_end = kHeaderBytesV3 + table_bytes(store) +
                                 static_cast<std::uint64_t>(store.size()) * kRecordBytes;
  const std::uint64_t pad =
      frame != nullptr ? (8 - (segment_start + body_end) % 8) % 8 : 0;
  const std::uint64_t frame_offset = frame != nullptr ? body_end + pad : 0;

  CrcWriter w{out};
  w.write(kMagic, sizeof kMagic);
  w.pod(kVersion);
  w.pod(static_cast<std::uint64_t>(store.size()));
  w.pod(static_cast<std::uint32_t>(store.distinct_payloads()));
  w.pod(static_cast<std::uint32_t>(store.distinct_credentials()));
  w.pod(frame != nullptr ? kSectionFrame : std::uint32_t{0});
  w.pod(std::uint32_t{0});  // reserved
  w.pod(frame_offset);
  w.pod(static_cast<std::uint64_t>(section.size()));

  for (std::uint32_t id = 0; id < store.distinct_payloads(); ++id) {
    w.str(store.payload(id));
  }
  for (std::uint32_t id = 0; id < store.distinct_credentials(); ++id) {
    w.str(store.credential_text(id));
  }

  for (const SessionRecord& record : store.records()) {
    w.pod(record.time);
    w.pod(record.src);
    w.pod(record.dst);
    w.pod(record.src_as);
    w.pod(record.port);
    w.pod(static_cast<std::uint8_t>(record.transport));
    w.pod(static_cast<std::uint8_t>(record.handshake_completed ? 1 : 0));
    w.pod(record.vantage);
    w.pod(record.neighbor);
    w.pod(record.payload_id);
    w.pod(record.credential_id);
    w.pod(record.actor);
    w.pod(static_cast<std::uint8_t>(record.malicious_truth ? 1 : 0));
  }

  if (frame != nullptr) {
    static constexpr char kZeros[8] = {};
    w.write(kZeros, static_cast<std::size_t>(pad));
    w.write(section.data(), section.size());
  }

  // Trailer: CRC over everything above, itself excluded.
  const std::uint32_t crc = w.crc.value();
  out.write(reinterpret_cast<const char*>(&crc), sizeof crc);
  return static_cast<bool>(out);
}

std::optional<EventStore> read_dataset_impl(std::istream& in, std::string* error) {
  const auto failed = [&](const std::string& message) -> std::optional<EventStore> {
    fail(error, message);
    return std::nullopt;
  };

  CrcReader r{in};
  char magic[4];
  if (!r.read(magic, sizeof magic) || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    return failed("dataset: bad magic");
  }
  std::uint32_t version = 0;
  std::uint64_t record_count = 0;
  std::uint32_t payload_count = 0;
  std::uint32_t credential_count = 0;
  if (!r.pod(version)) return failed("dataset: truncated header");
  if (version != kVersion && version != kVersion2 && version != kLegacyVersion) {
    return failed("dataset: unsupported version " + std::to_string(version));
  }
  if (!r.pod(record_count) || !r.pod(payload_count) || !r.pod(credential_count)) {
    return failed("dataset: truncated header");
  }
  std::uint32_t section_flags = 0;
  std::uint64_t frame_offset = 0;
  std::uint64_t frame_length = 0;
  if (version >= kVersion) {
    std::uint32_t reserved = 0;
    if (!r.pod(section_flags) || !r.pod(reserved) || !r.pod(frame_offset) ||
        !r.pod(frame_length)) {
      return failed("dataset: truncated header");
    }
  }

  std::vector<std::string> payloads(payload_count);
  for (std::string& payload : payloads) {
    if (!r.str(payload)) return failed("dataset: truncated payload table");
  }
  std::vector<proto::Credential> credentials(credential_count);
  for (proto::Credential& credential : credentials) {
    std::string encoded;
    if (!r.str(encoded)) return failed("dataset: truncated credential table");
    auto decoded = version == kLegacyVersion ? decode_legacy_credential(encoded)
                                             : EventStore::decode_credential(encoded);
    if (!decoded.has_value()) return failed("dataset: malformed credential entry");
    credential = std::move(*decoded);
  }

  EventStore store;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    SessionRecord record;
    std::uint8_t transport = 0;
    std::uint8_t handshake = 0;
    std::uint8_t malicious = 0;
    std::uint32_t payload_id = kNoPayload;
    std::uint32_t credential_id = kNoCredential;
    if (!r.pod(record.time) || !r.pod(record.src) || !r.pod(record.dst) ||
        !r.pod(record.src_as) || !r.pod(record.port) || !r.pod(transport) ||
        !r.pod(handshake) || !r.pod(record.vantage) || !r.pod(record.neighbor) ||
        !r.pod(payload_id) || !r.pod(credential_id) || !r.pod(record.actor) ||
        !r.pod(malicious)) {
      return failed("dataset: truncated records");
    }
    record.transport = static_cast<net::Transport>(transport);
    record.handshake_completed = handshake != 0;
    record.malicious_truth = malicious != 0;
    if (payload_id != kNoPayload && payload_id >= payloads.size()) {
      return failed("dataset: payload id out of range");
    }
    if (credential_id != kNoCredential && credential_id >= credentials.size()) {
      return failed("dataset: credential id out of range");
    }
    // Payloads are re-interned as records arrive, so the numeric ids may be
    // renumbered relative to the source store; the (record, payload text,
    // credential) associations — all any analysis reads — are preserved.
    store.append(record, payload_id == kNoPayload ? std::string_view{} : payloads[payload_id],
                 credential_id == kNoCredential
                     ? std::nullopt
                     : std::optional<proto::Credential>(credentials[credential_id]));
  }

  if (version >= kVersion) {
    if ((section_flags & kSectionFrame) != 0) {
      if (frame_offset < r.consumed || frame_offset - r.consumed > 8) {
        return failed("dataset: frame section offset inconsistent");
      }
      if (!r.skip(frame_offset - r.consumed) || !r.skip(frame_length)) {
        return failed("dataset: truncated frame section");
      }
    }
    std::uint32_t expected = 0;
    const std::uint32_t actual = r.crc.value();  // trailer itself is not CRC'd
    in.read(reinterpret_cast<char*>(&expected), sizeof expected);
    if (!in) return failed("dataset: missing CRC trailer");
    if (expected != actual) {
      return failed("dataset: CRC mismatch (file corrupt or truncated)");
    }
  }
  return store;
}

}  // namespace

bool write_dataset(const EventStore& store, std::ostream& out) {
  return write_dataset_impl(store, nullptr, out);
}

bool write_dataset(const EventStore& store, const SessionFrame* frame, std::ostream& out) {
  return write_dataset_impl(store, frame, out);
}

std::optional<EventStore> read_dataset(std::istream& in, std::string* error) {
  return read_dataset_impl(in, error);
}

bool probe_frame_section(const std::string& path, std::uint64_t& offset_out,
                         std::uint64_t& length_out, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return fail(error, "dataset: cannot open " + path);
  char header[kHeaderBytesV3];
  in.read(header, sizeof header);
  if (!in) return fail(error, "dataset: truncated header in " + path);
  if (std::memcmp(header, kMagic, sizeof kMagic) != 0) {
    return fail(error, "dataset: bad magic in " + path);
  }
  std::uint32_t version = 0;
  std::memcpy(&version, header + 4, 4);
  if (version < kVersion) {
    return fail(error, "dataset: " + path + " predates frame sections (version " +
                           std::to_string(version) + ")");
  }
  std::uint32_t section_flags = 0;
  std::memcpy(&section_flags, header + 24, 4);
  if ((section_flags & kSectionFrame) == 0) {
    return fail(error, "dataset: " + path + " has no frame section");
  }
  // Offsets are relative to the segment's first byte; a spill file holds
  // exactly one segment starting at byte 0, so they are file-absolute here.
  std::memcpy(&offset_out, header + 32, 8);
  std::memcpy(&length_out, header + 40, 8);
  return true;
}

bool write_dataset_segments(const std::vector<const EventStore*>& segments, std::ostream& out) {
  for (const EventStore* segment : segments) {
    if (segment == nullptr || !write_dataset(*segment, out)) return false;
  }
  return static_cast<bool>(out);
}

bool read_dataset_segments(std::istream& in, const std::function<bool(EventStore&&)>& sink,
                           std::string* error) {
  while (true) {
    // Clean EOF between segments ends the file; anything else must parse as
    // a complete segment (read_dataset fails on a bad magic or truncation,
    // which covers garbage at a segment boundary).
    if (in.peek() == std::char_traits<char>::eof()) break;
    auto segment = read_dataset(in, error);
    if (!segment.has_value()) return false;
    if (!sink(std::move(*segment))) return fail(error, "dataset: segment sink aborted");
  }
  return true;
}

std::optional<std::vector<EventStore>> read_dataset_segments(std::istream& in,
                                                             std::string* error) {
  std::vector<EventStore> segments;
  if (!read_dataset_segments(
          in,
          [&segments](EventStore&& segment) {
            segments.push_back(std::move(segment));
            return true;
          },
          error)) {
    return std::nullopt;
  }
  return segments;
}

bool save_dataset_segments(const std::vector<const EventStore*>& segments,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return write_dataset_segments(segments, out);
}

std::optional<std::vector<EventStore>> load_dataset_segments(const std::string& path,
                                                             std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "dataset: cannot open " + path);
    return std::nullopt;
  }
  return read_dataset_segments(in, error);
}

bool save_dataset(const EventStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return write_dataset(store, out);
}

std::optional<EventStore> load_dataset(const std::string& path, std::string* error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    fail(error, "dataset: cannot open " + path);
    return std::nullopt;
  }
  return read_dataset(in, error);
}

void write_csv(const EventStore& store, const topology::Deployment& deployment,
               std::ostream& out) {
  util::CsvWriter csv;
  csv.add_row({"time_ms", "src", "src_asn", "dst", "port", "transport", "handshake", "vantage",
               "network_type", "neighbor", "actor", "payload", "username", "password"});
  for (const SessionRecord& record : store.records()) {
    const topology::VantagePoint& vp = deployment.at(record.vantage);
    std::string username;
    std::string password;
    if (record.credential_id != kNoCredential) {
      const proto::Credential credential = store.credential(record.credential_id);
      username = credential.username;
      password = credential.password;
    }
    csv.add_row({std::to_string(record.time), record.src_addr().to_string(),
                 std::to_string(record.src_as), record.dst_addr().to_string(),
                 std::to_string(record.port), std::string(net::transport_name(record.transport)),
                 record.handshake_completed ? "1" : "0", vp.name,
                 std::string(topology::network_type_name(vp.type)),
                 std::to_string(record.neighbor), std::to_string(record.actor),
                 record.payload_id == kNoPayload
                     ? std::string()
                     : util::escape_payload(store.payload(record.payload_id), 96),
                 username, password});
  }
  out << csv.str();
}

}  // namespace cw::capture
