#include "capture/dataset.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/strings.h"
#include "util/table.h"

namespace cw::capture {
namespace {

constexpr char kMagic[4] = {'C', 'W', 'D', 'S'};
// Version 2 switched the interned credential blobs from the '\n'-joined
// encoding to the length-prefixed one (see EventStore::encode_credential).
// Version-1 files are still readable via the legacy decoder below; writing
// always uses the current version.
constexpr std::uint32_t kVersion = 2;
constexpr std::uint32_t kLegacyVersion = 1;

// Version 1 joined a credential as "<username>\n<password>" and split on the
// first newline. A blob with more than one newline is ambiguous under that
// scheme — ("a\nb", "c") and ("a", "b\nc") produced the same bytes — so
// such blobs are rejected rather than silently mis-split.
std::optional<proto::Credential> decode_legacy_credential(std::string_view text) {
  const std::size_t split = text.find('\n');
  if (split == std::string_view::npos) return std::nullopt;
  if (text.find('\n', split + 1) != std::string_view::npos) return std::nullopt;
  proto::Credential out;
  out.username = std::string(text.substr(0, split));
  out.password = std::string(text.substr(split + 1));
  return out;
}

template <typename T>
void write_pod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
bool read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof value);
  return static_cast<bool>(in);
}

void write_string(std::ostream& out, const std::string& value) {
  write_pod(out, static_cast<std::uint32_t>(value.size()));
  out.write(value.data(), static_cast<std::streamsize>(value.size()));
}

bool read_string(std::istream& in, std::string& value) {
  std::uint32_t length = 0;
  if (!read_pod(in, length)) return false;
  if (length > (1u << 24)) return false;  // sanity bound: 16 MiB per entry
  value.resize(length);
  in.read(value.data(), length);
  return static_cast<bool>(in);
}

}  // namespace

bool write_dataset(const EventStore& store, std::ostream& out) {
  out.write(kMagic, sizeof kMagic);
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint64_t>(store.size()));
  write_pod(out, static_cast<std::uint32_t>(store.distinct_payloads()));
  write_pod(out, static_cast<std::uint32_t>(store.distinct_credentials()));

  for (std::uint32_t id = 0; id < store.distinct_payloads(); ++id) {
    write_string(out, store.payload(id));
  }
  for (std::uint32_t id = 0; id < store.distinct_credentials(); ++id) {
    write_string(out, store.credential_text(id));
  }

  for (const SessionRecord& record : store.records()) {
    write_pod(out, record.time);
    write_pod(out, record.src);
    write_pod(out, record.dst);
    write_pod(out, record.src_as);
    write_pod(out, record.port);
    write_pod(out, static_cast<std::uint8_t>(record.transport));
    write_pod(out, static_cast<std::uint8_t>(record.handshake_completed ? 1 : 0));
    write_pod(out, record.vantage);
    write_pod(out, record.neighbor);
    write_pod(out, record.payload_id);
    write_pod(out, record.credential_id);
    write_pod(out, record.actor);
    write_pod(out, static_cast<std::uint8_t>(record.malicious_truth ? 1 : 0));
  }
  return static_cast<bool>(out);
}

std::optional<EventStore> read_dataset(std::istream& in) {
  char magic[4];
  in.read(magic, sizeof magic);
  if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0) return std::nullopt;
  std::uint32_t version = 0;
  std::uint64_t record_count = 0;
  std::uint32_t payload_count = 0;
  std::uint32_t credential_count = 0;
  if (!read_pod(in, version) || (version != kVersion && version != kLegacyVersion)) {
    return std::nullopt;
  }
  if (!read_pod(in, record_count) || !read_pod(in, payload_count) ||
      !read_pod(in, credential_count)) {
    return std::nullopt;
  }

  std::vector<std::string> payloads(payload_count);
  for (std::string& payload : payloads) {
    if (!read_string(in, payload)) return std::nullopt;
  }
  std::vector<proto::Credential> credentials(credential_count);
  for (proto::Credential& credential : credentials) {
    std::string encoded;
    if (!read_string(in, encoded)) return std::nullopt;
    auto decoded = version == kLegacyVersion ? decode_legacy_credential(encoded)
                                             : EventStore::decode_credential(encoded);
    if (!decoded.has_value()) return std::nullopt;
    credential = std::move(*decoded);
  }

  EventStore store;
  for (std::uint64_t i = 0; i < record_count; ++i) {
    SessionRecord record;
    std::uint8_t transport = 0;
    std::uint8_t handshake = 0;
    std::uint8_t malicious = 0;
    std::uint32_t payload_id = kNoPayload;
    std::uint32_t credential_id = kNoCredential;
    if (!read_pod(in, record.time) || !read_pod(in, record.src) || !read_pod(in, record.dst) ||
        !read_pod(in, record.src_as) || !read_pod(in, record.port) ||
        !read_pod(in, transport) || !read_pod(in, handshake) || !read_pod(in, record.vantage) ||
        !read_pod(in, record.neighbor) || !read_pod(in, payload_id) ||
        !read_pod(in, credential_id) || !read_pod(in, record.actor) ||
        !read_pod(in, malicious)) {
      return std::nullopt;
    }
    record.transport = static_cast<net::Transport>(transport);
    record.handshake_completed = handshake != 0;
    record.malicious_truth = malicious != 0;
    if (payload_id != kNoPayload && payload_id >= payloads.size()) return std::nullopt;
    if (credential_id != kNoCredential && credential_id >= credentials.size()) {
      return std::nullopt;
    }
    // Payloads are re-interned as records arrive, so the numeric ids may be
    // renumbered relative to the source store; the (record, payload text,
    // credential) associations — all any analysis reads — are preserved.
    store.append(record, payload_id == kNoPayload ? std::string_view{} : payloads[payload_id],
                 credential_id == kNoCredential
                     ? std::nullopt
                     : std::optional<proto::Credential>(credentials[credential_id]));
  }
  return store;
}

bool write_dataset_segments(const std::vector<const EventStore*>& segments, std::ostream& out) {
  for (const EventStore* segment : segments) {
    if (segment == nullptr || !write_dataset(*segment, out)) return false;
  }
  return static_cast<bool>(out);
}

std::optional<std::vector<EventStore>> read_dataset_segments(std::istream& in) {
  std::vector<EventStore> segments;
  while (true) {
    // Clean EOF between segments ends the file; anything else must parse as
    // a complete segment (read_dataset fails on a bad magic or truncation,
    // which covers garbage at a segment boundary).
    if (in.peek() == std::char_traits<char>::eof()) break;
    auto segment = read_dataset(in);
    if (!segment.has_value()) return std::nullopt;
    segments.push_back(std::move(*segment));
  }
  return segments;
}

bool save_dataset_segments(const std::vector<const EventStore*>& segments,
                           const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return write_dataset_segments(segments, out);
}

std::optional<std::vector<EventStore>> load_dataset_segments(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return read_dataset_segments(in);
}

bool save_dataset(const EventStore& store, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  return write_dataset(store, out);
}

std::optional<EventStore> load_dataset(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  return read_dataset(in);
}

void write_csv(const EventStore& store, const topology::Deployment& deployment,
               std::ostream& out) {
  util::CsvWriter csv;
  csv.add_row({"time_ms", "src", "src_asn", "dst", "port", "transport", "handshake", "vantage",
               "network_type", "neighbor", "actor", "payload", "username", "password"});
  for (const SessionRecord& record : store.records()) {
    const topology::VantagePoint& vp = deployment.at(record.vantage);
    std::string username;
    std::string password;
    if (record.credential_id != kNoCredential) {
      const proto::Credential credential = store.credential(record.credential_id);
      username = credential.username;
      password = credential.password;
    }
    csv.add_row({std::to_string(record.time), record.src_addr().to_string(),
                 std::to_string(record.src_as), record.dst_addr().to_string(),
                 std::to_string(record.port), std::string(net::transport_name(record.transport)),
                 record.handshake_completed ? "1" : "0", vp.name,
                 std::string(topology::network_type_name(vp.type)),
                 std::to_string(record.neighbor), std::to_string(record.actor),
                 record.payload_id == kNoPayload
                     ? std::string()
                     : util::escape_payload(store.payload(record.payload_id), 96),
                 username, password});
  }
  out << csv.str();
}

}  // namespace cw::capture
