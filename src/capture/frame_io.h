// FrameView: the serialization and mmap-binding layer that lets a
// SessionFrame live out-of-core. Two halves:
//
//   serialize(frame)  — flattens a (hot) frame's exact in-memory column
//     layout into one byte blob: every column as a raw 8-aligned array, the
//     per-port / per-(vantage, port) posting lists in their packed container
//     form (util::PostingList::serialize), the per-vantage record index, the
//     per-network partitions, and (when the frame carries codes) the four
//     characteristic dictionaries inline. The blob is the CWDS v3 "frame
//     section"; capture::write_dataset embeds it per segment.
//
//   open/map/unmap    — opens that section back up (from a file offset the
//     dataset reader reports), validates its structure, and binds a target
//     SessionFrame's columns, posting spans, and vantage slices straight
//     into the mapping. The bound frame answers the full analysis query
//     surface zero-copy from the file; unmap() releases the address space
//     (a real munmap — the coldstore tier runs under `ulimit -v`) while the
//     frame keeps its sizes; a later map() re-binds at whatever address the
//     kernel returns.
//
// Directory order inside the section is fully sorted (ports ascending,
// vantage-port keys ascending), so a spill file is a deterministic function
// of the frame — byte-identical across runs regardless of unordered_map
// iteration order.
//
// The view is resident state (slot maps, parsed header, optional reloaded
// dictionaries); only map() touches the mapping. One FrameView serves one
// frame; it is move-only and must outlive any frame currently bound to it.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "capture/frame.h"
#include "util/mmap.h"

namespace cw::capture {

class FrameView {
 public:
  struct Options {
    Options() {}
    // Rebuild the four characteristic dictionaries from the inline dict
    // section and hand them to mapped frames (cold restart). A live spill
    // leaves them false: the frame keeps the experiment's shared dicts.
    bool load_dicts = false;
  };

  FrameView() = default;
  FrameView(FrameView&&) = default;
  FrameView& operator=(FrameView&&) = default;
  FrameView(const FrameView&) = delete;
  FrameView& operator=(const FrameView&) = delete;

  // Flattens the frame into a CWDS v3 frame-section blob. The frame must be
  // hot (attached, store-backed): the per-vantage index is read through the
  // store.
  static std::vector<std::uint8_t> serialize(const SessionFrame& frame);

  // Parses and validates the frame section stored at [offset, offset+length)
  // of `path`. Builds the resident directory (slot maps, dictionaries when
  // requested); the mapping itself is dropped again until map() is called.
  // On failure returns false with a structural error in *error.
  bool open(const std::string& path, std::uint64_t offset, std::uint64_t length,
            const topology::Deployment& deployment, const Options& options = {},
            std::string* error = nullptr);

  // Maps the section and binds `target`'s columns, posting spans, and
  // vantage slices into it. The target's store pointer is dropped (a mapped
  // frame has no store); vantage metadata comes from the deployment given to
  // open(). Safe to call repeatedly (remaps after an unmap()).
  bool map(SessionFrame& target, std::string* error = nullptr);

  // Unbinds the target's columns (sizes survive) and releases the mapping.
  void unmap(SessionFrame& target);

  [[nodiscard]] bool opened() const noexcept { return opened_; }
  [[nodiscard]] bool mapped() const noexcept { return file_.mapped() && !file_.empty(); }
  [[nodiscard]] std::uint64_t record_count() const noexcept { return record_count_; }

  // madvise(SEQUENTIAL) over the mapping ahead of a scan; no-op when cold.
  void advise_sequential() const noexcept { file_.advise_sequential(); }

 private:
  bool parse_directory(const std::uint8_t* base, std::size_t size, bool load_dicts,
                       std::string* error);
  bool bind(SessionFrame& target, const std::uint8_t* base, std::string* error);

  std::string path_;
  std::uint64_t offset_ = 0;
  std::uint64_t length_ = 0;
  const topology::Deployment* deployment_ = nullptr;
  bool opened_ = false;

  // Parsed header state (offsets relative to the section base).
  std::uint64_t record_count_ = 0;
  std::uint32_t flags_ = 0;
  std::uint32_t vantage_count_ = 0;
  std::vector<std::uint64_t> column_offsets_;
  std::array<std::uint64_t, 3> partition_offsets_{};
  std::array<std::uint64_t, 3> partition_counts_{};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> vantage_dir_;  // (offset, count)
  std::vector<std::pair<net::Port, std::uint64_t>> port_dir_;         // (port, offset)
  std::vector<std::pair<std::uint64_t, std::uint64_t>> vp_dir_;       // (key, offset)
  std::unordered_map<net::Port, std::uint32_t> port_slot_;
  std::unordered_map<std::uint64_t, std::uint32_t> vp_slot_;
  std::array<std::shared_ptr<const util::Dictionary>, kCodedColumns> dicts_;

  util::MappedFile file_;
};

// Convenience: byte range of the frame section inside a CWDS v3 file that
// holds exactly one segment (the spill layout). Returns false when the file
// has no frame section. Defined in dataset.cpp (it owns the container
// format).
bool probe_frame_section(const std::string& path, std::uint64_t& offset_out,
                         std::uint64_t& length_out, std::string* error = nullptr);

}  // namespace cw::capture
