#include "topology/universe.h"

namespace cw::topology {

TargetUniverse::TargetUniverse(const Deployment& deployment) : deployment_(&deployment) {
  for (const VantagePoint& vp : deployment.vantage_points()) {
    for (std::uint32_t i = 0; i < vp.addresses.size(); ++i) {
      Target target;
      target.address = vp.addresses[i];
      target.vantage = vp.id;
      target.index_in_vantage = i;
      target.type = vp.type;
      target.provider = vp.provider;
      target.continent = vp.region.continent;
      const std::size_t index = targets_.size();
      targets_.push_back(target);
      by_address_.emplace(target.address.value(), index);
      switch (vp.type) {
        case NetworkType::kCloud: cloud_.push_back(index); break;
        case NetworkType::kEducation: education_.push_back(index); break;
        case NetworkType::kTelescope: telescope_.push_back(index); break;
      }
    }
  }
}

std::optional<std::size_t> TargetUniverse::find(net::IPv4Addr addr) const {
  auto it = by_address_.find(addr.value());
  if (it == by_address_.end()) return std::nullopt;
  return it->second;
}

const std::vector<std::size_t>& TargetUniverse::of_type(NetworkType type) const {
  switch (type) {
    case NetworkType::kCloud: return cloud_;
    case NetworkType::kEducation: return education_;
    case NetworkType::kTelescope: return telescope_;
  }
  return cloud_;
}

std::vector<std::size_t> TargetUniverse::of_vantage(VantageId id) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    if (targets_[i].vantage == id) out.push_back(i);
  }
  return out;
}

}  // namespace cw::topology
