#include "topology/provider.h"

namespace cw::topology {

std::string_view provider_name(Provider p) noexcept {
  switch (p) {
    case Provider::kAws: return "AWS";
    case Provider::kGoogle: return "Google";
    case Provider::kAzure: return "Azure";
    case Provider::kLinode: return "Linode";
    case Provider::kHurricaneElectric: return "Hurricane Electric";
    case Provider::kStanford: return "Stanford";
    case Provider::kMerit: return "Merit";
    case Provider::kOrion: return "Orion";
  }
  return "Unknown";
}

NetworkType network_type(Provider p) noexcept {
  switch (p) {
    case Provider::kAws:
    case Provider::kGoogle:
    case Provider::kAzure:
    case Provider::kLinode:
    case Provider::kHurricaneElectric: return NetworkType::kCloud;
    case Provider::kStanford:
    case Provider::kMerit: return NetworkType::kEducation;
    case Provider::kOrion: return NetworkType::kTelescope;
  }
  return NetworkType::kCloud;
}

std::string_view network_type_name(NetworkType t) noexcept {
  switch (t) {
    case NetworkType::kCloud: return "cloud";
    case NetworkType::kEducation: return "education";
    case NetworkType::kTelescope: return "telescope";
  }
  return "unknown";
}

std::string_view collection_method_name(CollectionMethod m) noexcept {
  switch (m) {
    case CollectionMethod::kGreyNoise: return "GreyNoise";
    case CollectionMethod::kHoneytrap: return "Honeytrap";
    case CollectionMethod::kTelescope: return "Telescope";
  }
  return "unknown";
}

net::Prefix provider_pool(Provider p) noexcept {
  using net::IPv4Addr;
  using net::Prefix;
  // Pools are modeled on each operator's real allocations but what matters
  // to the simulation is only that they are disjoint and large enough.
  switch (p) {
    case Provider::kAws: return Prefix(IPv4Addr(3, 0, 0, 0), 9);
    case Provider::kGoogle: return Prefix(IPv4Addr(34, 64, 0, 0), 10);
    case Provider::kAzure: return Prefix(IPv4Addr(20, 0, 0, 0), 10);
    case Provider::kLinode: return Prefix(IPv4Addr(45, 33, 0, 0), 16);
    case Provider::kHurricaneElectric: return Prefix(IPv4Addr(216, 218, 0, 0), 16);
    case Provider::kStanford: return Prefix(IPv4Addr(171, 64, 0, 0), 14);
    case Provider::kMerit: return Prefix(IPv4Addr(207, 72, 0, 0), 16);
    case Provider::kOrion: return Prefix(IPv4Addr(71, 96, 0, 0), 13);
  }
  return Prefix(IPv4Addr(10, 0, 0, 0), 8);
}

}  // namespace cw::topology
