// Vantage-point deployments. `Deployment::table1(...)` reconstructs the
// paper's Table 1: GreyNoise honeypots across AWS (16 regions), Google (21),
// Azure (3), Linode (7) and a Hurricane Electric /24; Honeytrap /26 networks
// at Stanford, Merit, AWS and Google; and the Orion network telescope.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/geo.h"
#include "net/ipv4.h"
#include "net/ports.h"
#include "topology/provider.h"
#include "util/rng.h"

namespace cw::topology {

using VantageId = std::uint32_t;

// One deployment site: a set of honeypot (or telescope) addresses sharing a
// provider, geographic region, and collection method. The addresses of one
// vantage point are the paper's "neighboring services".
struct VantagePoint {
  VantageId id = 0;
  std::string name;                     // e.g. "AWS/AP-SG" or "Orion"
  Provider provider = Provider::kAws;
  NetworkType type = NetworkType::kCloud;
  CollectionMethod collection = CollectionMethod::kGreyNoise;
  net::GeoRegion region;
  std::vector<net::IPv4Addr> addresses;
  std::vector<net::Port> open_ports;    // empty means "listens on all ports"

  [[nodiscard]] bool listens_on(net::Port port) const noexcept;
};

// Which year's Table 1 to build. GreyNoise data exists for 2020-2021;
// Honeytrap vantage points exist for 2021-2022 (Appendix C).
enum class ScenarioYear : std::uint8_t { k2020 = 0, k2021, k2022 };

std::string_view scenario_year_name(ScenarioYear y) noexcept;

struct DeploymentConfig {
  ScenarioYear year = ScenarioYear::k2021;
  // Telescope size in /24 networks. The real Orion telescope spans 1,856
  // /24s (475K addresses); the default is scaled down so unit tests and
  // laptop runs stay fast. Benches that need Figure 1's long contiguous
  // ranges raise it.
  int telescope_slash24s = 64;
  // Honeypot addresses per GreyNoise cloud region (the paper keeps >= 4
  // SSH/Telnet honeypots and 2 HTTP honeypots per region; we expose all
  // ports on 4 addresses).
  int greynoise_per_region = 4;
  // Honeytrap network size (/26 -> 64 addresses).
  int honeytrap_per_network = 64;
  std::uint64_t seed = 0x7461626c6531ULL;
};

class Deployment {
 public:
  // Builds the full Table 1 deployment for the configured year.
  static Deployment table1(const DeploymentConfig& config);

  // Builds an empty deployment for custom experiments (e.g. the Section 4.3
  // leak experiment constructs its own Stanford-only vantage points).
  Deployment() = default;

  // Adds a vantage point; assigns and returns its id.
  VantageId add(VantagePoint vp);

  [[nodiscard]] const std::vector<VantagePoint>& vantage_points() const noexcept {
    return points_;
  }
  [[nodiscard]] const VantagePoint& at(VantageId id) const { return points_.at(id); }
  [[nodiscard]] std::size_t size() const noexcept { return points_.size(); }

  // All vantage points with the given network type / provider.
  [[nodiscard]] std::vector<VantageId> with_type(NetworkType type) const;
  [[nodiscard]] std::vector<VantageId> with_provider(Provider provider) const;
  [[nodiscard]] std::vector<VantageId> with_collection(CollectionMethod method) const;

  // Cities/states hosting >= 2 distinct cloud providers, used for the
  // geography-controlled cloud-to-cloud comparisons (Table 6).
  struct CoLocation {
    std::string city_code;               // e.g. "US-CA"
    std::vector<VantageId> vantage_ids;  // one per provider present
  };
  [[nodiscard]] std::vector<CoLocation> colocated_clouds() const;

  // Allocates `count` distinct random addresses from a provider pool,
  // skipping addresses with any 255 octet (matching the paper's observation
  // that none of the cloud honeypots landed on such addresses).
  static std::vector<net::IPv4Addr> allocate_random(util::Rng& rng, net::Prefix pool, int count);

  // Allocates a contiguous block (used for the HE /24 and Honeytrap /26s).
  static std::vector<net::IPv4Addr> allocate_block(net::IPv4Addr base, int count);

 private:
  std::vector<VantagePoint> points_;
};

}  // namespace cw::topology
