// Network operators hosting vantage points, their network types, address
// pools, and collection methods (Table 1).
#pragma once

#include <cstdint>
#include <string_view>

#include "net/ipv4.h"

namespace cw::topology {

enum class Provider : std::uint8_t {
  kAws = 0,
  kGoogle,
  kAzure,
  kLinode,
  kHurricaneElectric,
  kStanford,
  kMerit,
  kOrion,
};

inline constexpr std::size_t kProviderCount = 8;

enum class NetworkType : std::uint8_t {
  kCloud = 0,      // dense, recycled IP space hosting real services
  kEducation,      // enterprise-style network hosting real services
  kTelescope,      // unused address space, publicly known to host nothing
};

enum class CollectionMethod : std::uint8_t {
  kGreyNoise = 0,  // Cowrie credentials on 22/2222/23/2323; first payload after
                   // TCP/TLS handshake elsewhere
  kHoneytrap,      // first TCP payload after handshake; first UDP payload
  kTelescope,      // first packet only, no layer-4 handshake, no payload
};

std::string_view provider_name(Provider p) noexcept;
NetworkType network_type(Provider p) noexcept;
std::string_view network_type_name(NetworkType t) noexcept;
std::string_view collection_method_name(CollectionMethod m) noexcept;

// The address pool a provider draws honeypot/telescope addresses from. The
// pools are disjoint so an address maps back to its provider unambiguously.
net::Prefix provider_pool(Provider p) noexcept;

}  // namespace cw::topology
