// The target universe: a flattened, queryable view of every monitored
// address in a deployment. Scanner agents sample targets from here (traffic
// to unmonitored space is unobservable, so the simulator never generates
// it), and capture components map a destination address back to its vantage
// point in O(1).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/geo.h"
#include "net/ipv4.h"
#include "topology/deployment.h"

namespace cw::topology {

struct Target {
  net::IPv4Addr address;
  VantageId vantage = 0;
  std::uint32_t index_in_vantage = 0;  // the paper's "neighbor" index
  NetworkType type = NetworkType::kCloud;
  Provider provider = Provider::kAws;
  net::Continent continent = net::Continent::kNorthAmerica;
};

class TargetUniverse {
 public:
  explicit TargetUniverse(const Deployment& deployment);

  [[nodiscard]] const std::vector<Target>& targets() const noexcept { return targets_; }
  [[nodiscard]] std::size_t size() const noexcept { return targets_.size(); }

  // Index of a monitored address, or nullopt if the address is unmonitored.
  [[nodiscard]] std::optional<std::size_t> find(net::IPv4Addr addr) const;

  // Target indices filtered by network type (cached; cheap to call often).
  [[nodiscard]] const std::vector<std::size_t>& of_type(NetworkType type) const;

  // All target indices belonging to one vantage point.
  [[nodiscard]] std::vector<std::size_t> of_vantage(VantageId id) const;

  [[nodiscard]] const Deployment& deployment() const noexcept { return *deployment_; }

 private:
  const Deployment* deployment_;
  std::vector<Target> targets_;
  std::unordered_map<std::uint32_t, std::size_t> by_address_;
  std::vector<std::size_t> cloud_;
  std::vector<std::size_t> education_;
  std::vector<std::size_t> telescope_;
};

}  // namespace cw::topology
