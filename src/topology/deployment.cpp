#include "topology/deployment.h"

#include <algorithm>
#include <map>
#include <set>

namespace cw::topology {

bool VantagePoint::listens_on(net::Port port) const noexcept {
  if (open_ports.empty()) return true;
  return std::find(open_ports.begin(), open_ports.end(), port) != open_ports.end();
}

std::string_view scenario_year_name(ScenarioYear y) noexcept {
  switch (y) {
    case ScenarioYear::k2020: return "2020";
    case ScenarioYear::k2021: return "2021";
    case ScenarioYear::k2022: return "2022";
  }
  return "?";
}

VantageId Deployment::add(VantagePoint vp) {
  vp.id = static_cast<VantageId>(points_.size());
  points_.push_back(std::move(vp));
  return points_.back().id;
}

std::vector<VantageId> Deployment::with_type(NetworkType type) const {
  std::vector<VantageId> out;
  for (const VantagePoint& vp : points_) {
    if (vp.type == type) out.push_back(vp.id);
  }
  return out;
}

std::vector<VantageId> Deployment::with_provider(Provider provider) const {
  std::vector<VantageId> out;
  for (const VantagePoint& vp : points_) {
    if (vp.provider == provider) out.push_back(vp.id);
  }
  return out;
}

std::vector<VantageId> Deployment::with_collection(CollectionMethod method) const {
  std::vector<VantageId> out;
  for (const VantagePoint& vp : points_) {
    if (vp.collection == method) out.push_back(vp.id);
  }
  return out;
}

std::vector<Deployment::CoLocation> Deployment::colocated_clouds() const {
  // Key: country + subdivision; only GreyNoise cloud vantage points take
  // part (matching the paper's cloud-to-cloud methodology).
  std::map<std::string, std::vector<VantageId>> by_city;
  for (const VantagePoint& vp : points_) {
    if (vp.type != NetworkType::kCloud || vp.collection != CollectionMethod::kGreyNoise) continue;
    std::string key = vp.region.country.to_string();
    if (!vp.region.subdivision.empty()) key += "-" + vp.region.subdivision;
    by_city[key].push_back(vp.id);
  }
  std::vector<CoLocation> out;
  for (auto& [city, ids] : by_city) {
    std::set<Provider> providers;
    for (VantageId id : ids) providers.insert(points_[id].provider);
    if (providers.size() >= 2) out.push_back(CoLocation{city, std::move(ids)});
  }
  return out;
}

std::vector<net::IPv4Addr> Deployment::allocate_random(util::Rng& rng, net::Prefix pool,
                                                       int count) {
  std::set<net::IPv4Addr> chosen;
  while (static_cast<int>(chosen.size()) < count) {
    const net::IPv4Addr addr = pool.at(static_cast<std::uint32_t>(rng.next_below(pool.size())));
    if (addr.has_255_octet()) continue;  // cloud honeypots never landed on 255-octet addresses
    if (addr.octet(3) == 0) continue;    // skip network addresses for realism
    chosen.insert(addr);
  }
  return {chosen.begin(), chosen.end()};
}

std::vector<net::IPv4Addr> Deployment::allocate_block(net::IPv4Addr base, int count) {
  std::vector<net::IPv4Addr> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(base + static_cast<std::uint32_t>(i));
  return out;
}

namespace {

struct RegionSpec {
  const char* country;
  const char* subdivision;
};

// Table 1 region lists.
constexpr RegionSpec kAwsRegions[] = {
    {"US", "OR"}, {"US", "CA"}, {"US", "GA"}, {"BR", ""}, {"BH", ""}, {"FR", ""},
    {"IE", ""},   {"DE", ""},   {"CA", ""},   {"AU", ""}, {"SG", ""}, {"IN", ""},
    {"KR", ""},   {"JP", ""},   {"HK", ""},   {"ZA", ""},
};
constexpr RegionSpec kGoogleRegions[] = {
    {"US", "NV"}, {"US", "UT"}, {"US", "CA"}, {"US", "OR"}, {"US", "VA"}, {"US", "SC"},
    {"US", "IA"}, {"CA", "QC"}, {"CH", ""},   {"NL", ""},   {"DE", ""},   {"GB", ""},
    {"BE", ""},   {"FI", ""},   {"AU", ""},   {"ID", ""},   {"SG", ""},   {"KR", ""},
    {"JP", ""},   {"HK", ""},   {"TW", ""},
};
constexpr RegionSpec kAzureRegions[] = {{"US", "TX"}, {"SG", ""}, {"IN", ""}};
constexpr RegionSpec kLinodeRegions[] = {{"US", "CA"}, {"US", "NY"}, {"GB", ""}, {"DE", ""},
                                         {"IN", ""},   {"AU", ""},   {"SG", ""}};

void add_greynoise_provider(Deployment& deployment, util::Rng& rng, Provider provider,
                            const RegionSpec* regions, std::size_t region_count,
                            int addresses_per_region) {
  const net::Prefix pool = provider_pool(provider);
  for (std::size_t i = 0; i < region_count; ++i) {
    VantagePoint vp;
    vp.provider = provider;
    vp.type = NetworkType::kCloud;
    vp.collection = CollectionMethod::kGreyNoise;
    vp.region = net::make_region(regions[i].country, regions[i].subdivision);
    vp.name = std::string(provider_name(provider)) + "/" + vp.region.code();
    util::Rng region_rng = rng.stream(vp.name);
    vp.addresses = Deployment::allocate_random(region_rng, pool, addresses_per_region);
    vp.open_ports = net::greynoise_ports();
    deployment.add(std::move(vp));
  }
}

void add_honeytrap(Deployment& deployment, Provider provider, net::GeoRegion region,
                   const char* label, net::IPv4Addr base, int count) {
  VantagePoint vp;
  vp.provider = provider;
  vp.type = network_type(provider);
  vp.collection = CollectionMethod::kHoneytrap;
  vp.region = std::move(region);
  vp.name = std::string(provider_name(provider)) + "/" + label;
  vp.addresses = Deployment::allocate_block(base, count);
  // Honeytrap accepts connections on any port (open_ports empty = all).
  deployment.add(std::move(vp));
}

}  // namespace

Deployment Deployment::table1(const DeploymentConfig& config) {
  Deployment deployment;
  util::Rng rng(config.seed);

  const bool has_greynoise =
      config.year == ScenarioYear::k2020 || config.year == ScenarioYear::k2021;
  const bool has_honeytrap =
      config.year == ScenarioYear::k2021 || config.year == ScenarioYear::k2022;

  if (has_greynoise) {
    // Hurricane Electric: a full /24 of GreyNoise honeypots in US-OH.
    VantagePoint he;
    he.provider = Provider::kHurricaneElectric;
    he.type = NetworkType::kCloud;
    he.collection = CollectionMethod::kGreyNoise;
    he.region = net::make_region("US", "OH");
    he.name = "HurricaneElectric/US-OH";
    he.addresses = allocate_block(provider_pool(Provider::kHurricaneElectric).at(47 * 256), 256);
    he.open_ports = net::greynoise_ports();
    deployment.add(std::move(he));

    add_greynoise_provider(deployment, rng, Provider::kAws, kAwsRegions, std::size(kAwsRegions),
                           config.greynoise_per_region);
    add_greynoise_provider(deployment, rng, Provider::kAzure, kAzureRegions,
                           std::size(kAzureRegions), config.greynoise_per_region);
    add_greynoise_provider(deployment, rng, Provider::kGoogle, kGoogleRegions,
                           std::size(kGoogleRegions), config.greynoise_per_region);
    add_greynoise_provider(deployment, rng, Provider::kLinode, kLinodeRegions,
                           std::size(kLinodeRegions), config.greynoise_per_region);
  }

  if (has_honeytrap) {
    const int n = config.honeytrap_per_network;
    add_honeytrap(deployment, Provider::kStanford, net::make_region("US", "CA"), "US-West",
                  provider_pool(Provider::kStanford).at(12 * 256), n);
    add_honeytrap(deployment, Provider::kAws, net::make_region("US", "CA"), "US-West-HT",
                  provider_pool(Provider::kAws).at(1021 * 256), n);
    add_honeytrap(deployment, Provider::kGoogle, net::make_region("US", "CA"), "US-West-HT",
                  provider_pool(Provider::kGoogle).at(2077 * 256), n);
    add_honeytrap(deployment, Provider::kMerit, net::make_region("US", "MI"), "US-East",
                  provider_pool(Provider::kMerit).at(88 * 256), n);
    add_honeytrap(deployment, Provider::kGoogle, net::make_region("US", "VA"), "US-East-HT",
                  provider_pool(Provider::kGoogle).at(3301 * 256), 2);
  }

  // The Orion telescope exists in all years.
  {
    VantagePoint orion;
    orion.provider = Provider::kOrion;
    orion.type = NetworkType::kTelescope;
    orion.collection = CollectionMethod::kTelescope;
    orion.region = net::make_region("US", "MI");
    orion.name = "Orion";
    const net::Prefix pool = provider_pool(Provider::kOrion);
    const int slash24s = std::min<int>(config.telescope_slash24s,
                                       static_cast<int>(pool.size() / 256));
    orion.addresses = allocate_block(pool.base(), slash24s * 256);
    deployment.add(std::move(orion));
  }

  return deployment;
}

}  // namespace cw::topology
