// runner::Fleet — the scenario sweep harness. Executes a campaign's matrix
// of independent experiments (scenario config × seed × scale cells, plus
// analysis-only variants layered on each simulation) through the shared
// nest-safe ThreadPool and reduces every cell to its paper-finding verdicts
// (sweep.h).
//
// Grid shape. A cell names a simulation (`sim_label`) and an analysis
// variant (AnalysisOptions). Cells with *distinct* sim_labels get one
// sim::Engine each, run via core::LiveExperiment on a pool task; cells that
// share a sim_label — the DESIGN.md §6 ablation grid, where only the
// statistics knobs move — share one simulated ExperimentResult and its
// cached frame/tables, so the corpus is simulated and columnarized once per
// sim, not once per cell.
//
// Determinism contract (enforced by `scripts/check.sh fleet`):
//   - Per-cell seeding is positional-independent: the cell's experiment
//     seed is Rng(campaign.seed).stream(sim_label).seed() — a pure function
//     of the campaign seed and the cell's own label, never of cell order,
//     worker count, or which other cells run.
//   - Simulation groups run concurrently, but each group's cells extract
//     findings sequentially inside the group's task, and all results land
//     in pre-assigned slots (campaign cell order). Nested table builds
//     shard through the pool, whose merges are exact-count and
//     order-independent — so fleet output is byte-identical at any --jobs,
//     and any cell rerun in isolation (a one-cell campaign with the same
//     campaign seed) reproduces its in-fleet bytes exactly.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/experiment.h"
#include "runner/sweep.h"

namespace cw::runner {

class ThreadPool;

// One cell of the sweep grid.
struct FleetCell {
  std::string label;      // unique within the campaign; names the cell everywhere
  std::string sim_label;  // simulation identity; equal labels share one engine
  // Simulation shape (scale, telescope size, year, duration, ...). `seed`
  // is overwritten by Fleet::run with cell_seed(); cells sharing a
  // sim_label must carry identical configs (the first cell's is used).
  core::ExperimentConfig config;
  AnalysisOptions analysis;
};

struct Campaign {
  std::string name;
  std::uint64_t seed = 0x636c6f7564666cULL;  // campaign master seed
  std::vector<FleetCell> cells;
};

// One completed simulation as delivered to the findings extractors. The
// default runner is the batch path (LiveExperiment to the end of the window);
// alternative runners — notably stream::make_spill_sim_runner, which runs the
// window in epochs and spills cold segments to disk — substitute a result
// whose corpus lives in whatever substrate `context` keeps alive.
struct SimHandle {
  // Destroyed after `result` (members are destroyed in reverse declaration
  // order): the result borrows snapshot segments, caches, and pagers that
  // live in the context.
  std::shared_ptr<void> context;
  std::unique_ptr<core::ExperimentResult> result;
  std::uint64_t records = 0;  // corpus size (the store may be empty in spill mode)
  std::uint64_t events = 0;   // engine events processed
};

// Runs one simulation to completion for the given (seeded) config.
using SimRunner = std::function<SimHandle(const core::ExperimentConfig&)>;

// A finished cell: provenance plus the seven finding verdicts.
struct CellResult {
  std::string label;
  std::string sim_label;
  std::uint64_t seed = 0;     // the derived per-sim experiment seed
  std::uint64_t records = 0;  // corpus size the findings were extracted from
  std::uint64_t events = 0;   // engine events processed by the simulation
  CellFindings findings{};
  // Present iff the cell's AnalysisOptions enabled attacker clustering.
  std::optional<analysis::ClusterScores> clusters;
  // Rendered blocks, "" when the cell has nothing to report (the common
  // case); render_cell appends them verbatim so the baseline report bytes
  // are unchanged.
  std::string colocation;
  std::string adversary;
};

class Fleet {
 public:
  explicit Fleet(ThreadPool& pool) noexcept : pool_(&pool) {}

  // Runs every cell of the campaign; returns results in campaign cell
  // order regardless of scheduling. Safe to call repeatedly (each run is
  // independent); not safe to call concurrently on one Fleet from multiple
  // threads that share the pool's wait_idle discipline.
  [[nodiscard]] std::vector<CellResult> run(const Campaign& campaign) const;

  // The per-cell experiment seed: pure function of campaign seed and the
  // cell's simulation label (see the determinism contract above).
  [[nodiscard]] static std::uint64_t cell_seed(std::uint64_t campaign_seed,
                                               std::string_view sim_label) noexcept;

  // Substitute the simulation runner for every group (e.g. the out-of-core
  // epoch runner). The runner is invoked once per simulation group, possibly
  // concurrently from pool workers, and must be deterministic in the config:
  // the fleet byte-identity contract extends through it.
  void set_sim_runner(SimRunner runner) { runner_ = std::move(runner); }

 private:
  ThreadPool* pool_;
  SimRunner runner_;
};

// ---------------------------------------------------------------------------
// Named campaigns (the first two shipped grids; `cloudwatch_cli sweep`).

struct CampaignParams {
  double scale = 0.3;            // base population scale
  int telescope_slash24s = 16;   // telescope size in /24s
  std::uint64_t seed = 0x636c6f7564666cULL;
  topology::ScenarioYear year = topology::ScenarioYear::k2021;
};

// DESIGN.md §6 ablation grid: one simulation, analysis variants
// top-k {3, 5, 100} × Bonferroni {on, off} — how much of each finding is an
// artifact of the statistical recipe rather than of attacker policy.
Campaign make_ablation_campaign(const CampaignParams& params = {});

// DESIGN.md §4 calibration-sensitivity sweep: the paper's qualitative
// findings must be properties of the calibrated agent policies, not of one
// lucky seed or population size. Three seed streams × two scales
// (params.scale and 0.6×), fixed paper-default analysis.
Campaign make_calibration_campaign(const CampaignParams& params = {});

// Stress grid: `engines` single-cell simulations, every cell its own
// sim::Engine over a one-day window at params.scale. Exists to exercise the
// harness itself at fleet width — scheduling, per-group teardown (memory
// high-water must track the concurrent group set, not the campaign), and
// byte-identical sweep reports at any --jobs. Run via the opt-in
// `scripts/check.sh stress` tier, which pins scale/telescope small so a
// thousand engines stay cheap.
Campaign make_stress_campaign(const CampaignParams& params = {}, std::size_t engines = 1000);

// Adversarial scenario grid (DESIGN.md §8): five simulations over the same
// calibrated population — no adversary (baseline), fixed-probability
// attackers, adaptive attackers against static services, adaptive attackers
// against a rotating moving-target defense, and an aggressive-rotation
// variant — so the matrix shows how the seven headline deltas shift when
// the attacker adapts and the defender rotates.
Campaign make_adaptive_campaign(const CampaignParams& params = {});

// Co-location probing grid: baseline, a small prober family, and a dense
// high-share-rate variant, each cell reporting the per-city cross-provider
// probe summary next to the paper findings.
Campaign make_colocation_campaign(const CampaignParams& params = {});

// Ground-truth clustering grid: distinct-fingerprint attacker families
// alone (the ≥0.9 purity/ARI acceptance cell), the same families on top of
// the calibrated background population, and the calibrated population by
// itself — every cell clustered and scored against actor identity.
Campaign make_clustering_campaign(const CampaignParams& params = {});

// ---------------------------------------------------------------------------
// The preset registry (`cloudwatch_cli sweep --list`). Names match the CLI's
// positional campaign argument; make_campaign returns nullopt for unknown
// names so the CLI can print the registry as the error message.

struct CampaignInfo {
  std::string_view name;
  std::string_view description;
};

[[nodiscard]] const std::vector<CampaignInfo>& campaign_registry();
[[nodiscard]] std::optional<Campaign> make_campaign(std::string_view name,
                                                    const CampaignParams& params = {},
                                                    std::size_t stress_engines = 1000);

}  // namespace cw::runner
