// The sweep analysis layer of runner::Fleet (fleet.h): reduces one cell's
// finished corpus to the seven table-level paper verdicts the grid tracks
// (Tables 2/4/5/7/8/9/10), each with the effect size the paper reports for
// it — Cramér's V where the finding is a chi-squared family, overlap-
// fraction deltas for the telescope-avoidance tables — and renders the
// cells × findings matrix (runner::SweepReport) as markdown.
//
// extract_findings() is a pure function of (ExperimentResult, options): it
// reads the result's shared frame/table-cache and never mutates the corpus,
// so every cell of a fleet that shares a simulation shares one set of
// cached tables, and a cell rerun standalone over the same corpus produces
// byte-identical findings (the check.sh fleet tier's invariant).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/clusters.h"
#include "core/experiment.h"

namespace cw::runner {

class ThreadPool;
struct Campaign;    // fleet.h
struct CellResult;  // fleet.h

// Per-cell analysis knobs — the DESIGN.md §6 ablation axes. Simulation
// knobs live in core::ExperimentConfig; these only shape the statistics run
// over a finished corpus, so cells that differ solely here share one
// simulated ExperimentResult inside a fleet. The Bonferroni toggle applies
// to the Table 2 neighborhood family (the axis NeighborhoodOptions exposes
// for ablation); the pairwise comparisons keep the paper's study-wide
// correction regardless.
struct AnalysisOptions {
  std::size_t top_k = 3;       // union size of the Section 3.3 recipe
  bool use_bonferroni = true;  // Table 2 neighborhood family correction
  // Attacker clustering (analysis::clusters): fingerprint malicious sources
  // and score the partition against ground-truth actor identity. Off by
  // default — only the clustering presets pay for the O(n^2) linkage.
  bool cluster_attackers = false;
  analysis::ClusterOptions cluster;
  // Co-location probe summary (DESIGN.md §8b): per colocated city, how many
  // probe-port records and distinct cross-provider sources landed on cloud
  // vantage points.
  bool colocation_probes = false;
  net::Port colocation_port = 80;
};

// The paper findings a sweep tracks across cells, in render order.
enum class PaperFinding : std::uint8_t {
  kT2NeighborhoodAses = 0,   // Table 2: neighborhoods differ in top ASes > passwords
  kT4AwsAustraliaRegion,     // Table 4: AWS's most-different region is AP-AU
  kT5ApacPayloadDivergence,  // Table 5: APAC pairs diverge in HTTP payloads
  kT7EduNetworksAlike,       // Table 7: education networks look alike
  kT8TelnetIgnoresTelescope, // Table 8: Telnet scans the telescope, SSH avoids it
  kT9SshAttackersAvoid,      // Table 9: SSH attackers avoid the telescope
  kT10TelescopeAsesDiffer,   // Table 10: telescope sees different ASes than cloud
};
inline constexpr std::size_t kPaperFindingCount = 7;

// Short row label ("T2 neighborhood ASes") and the one-line claim.
std::string_view finding_name(PaperFinding finding) noexcept;
std::string_view finding_claim(PaperFinding finding) noexcept;

// One finding's verdict in one cell. `effect` is the finding's headline
// effect size (see the per-extractor comments in sweep.cpp); `detail` is a
// deterministic human-readable summary rendered into the per-cell report.
struct FindingOutcome {
  PaperFinding finding = PaperFinding::kT2NeighborhoodAses;
  bool holds = false;
  double effect = 0.0;
  std::string detail;
};

// Outcomes indexed by PaperFinding value.
using CellFindings = std::array<FindingOutcome, kPaperFindingCount>;

// Runs the seven extractors over one corpus. `pool` shards the frame and
// table builds (nest-safe; byte-identical at any worker count, the same
// invariant the full_report golden enforces); nullptr runs sequentially.
CellFindings extract_findings(const core::ExperimentResult& result,
                              const AnalysisOptions& options, ThreadPool* pool = nullptr);

// Clusters the corpus's malicious sources and scores them against ground
// truth (options.cluster). Walks the result's segment frames when bound
// (spill mode), else the cumulative frame — identical scores either way.
analysis::ClusterScores extract_clusters(const core::ExperimentResult& result,
                                         const AnalysisOptions& options,
                                         ThreadPool* pool = nullptr);

// Renders the per-city co-location probe summary (empty campaign → counts of
// zero, still rendered so the block's presence tracks the toggle, not the
// traffic). Deterministic markdown, one line per colocated city.
std::string render_colocation(const core::ExperimentResult& result,
                              const AnalysisOptions& options, ThreadPool* pool = nullptr);

// Renders the adversary-side instrumentation lines for a finished cell:
// adaptive-attacker probabilities and learned-service counts, the defense's
// rotation/hit counters and final TTL, and prober pair statistics. Returns
// "" when the population holds no adversary actors, so baseline cells'
// report bytes are untouched.
std::string render_adversary(const core::ExperimentResult& result);

// One cell's standalone report block: label, sim/seed provenance, corpus
// size, then a markdown checklist of the seven verdicts. This exact string
// is what the fleet writes per cell (`cloudwatch_cli sweep --cells-dir`)
// and what a standalone rerun prints (`--cell LABEL`); the check.sh fleet
// tier diffs the two.
std::string render_cell(const CellResult& cell);

// The cross-cell aggregation report: a markdown matrix with one row per
// paper finding and one column per cell ("Y 0.412" = holds with effect
// 0.412), footer rows for per-cell provenance, and the per-cell blocks.
struct SweepReport {
  static std::string render(const Campaign& campaign, const std::vector<CellResult>& results);
  // Machine-readable variant: one JSON object with campaign provenance and a
  // `cells` array carrying every field render() prints (findings, cluster
  // scores, adversary/colocation blocks). Stable key order; bytes are as
  // deterministic as the markdown.
  static std::string render_json(const Campaign& campaign,
                                 const std::vector<CellResult>& results);
};

}  // namespace cw::runner
