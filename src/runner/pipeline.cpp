#include "runner/pipeline.h"

#include <chrono>
#include <exception>

#include "util/strings.h"
#include "util/table.h"

namespace cw::runner {
namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

}  // namespace

double RunReport::pipeline_wall_ms_sum() const {
  double sum = 0.0;
  for (const PipelineMetrics& m : pipelines) sum += m.wall_ms;
  return sum;
}

std::string RunReport::render() const {
  util::TextTable table({"Pipeline", "Wall ms", "Events", "Output bytes"});
  for (const PipelineMetrics& m : pipelines) {
    table.add_row({m.failed ? m.name + " (FAILED)" : m.name,
                   util::format_double(m.wall_ms, 2), std::to_string(m.events),
                   std::to_string(m.output_bytes)});
  }
  std::string out = table.render();
  out += "jobs=" + std::to_string(jobs) +
         "  total wall=" + util::format_double(total_wall_ms, 1) + " ms" +
         "  pipeline wall sum=" + util::format_double(pipeline_wall_ms_sum(), 1) + " ms" +
         "  speedup=" +
         util::format_double(
             total_wall_ms > 0.0 ? pipeline_wall_ms_sum() / total_wall_ms : 0.0, 2) +
         "x\n";
  return out;
}

RunResult run_pipelines(const std::vector<Pipeline>& pipelines, unsigned jobs) {
  RunResult result;
  result.outputs.resize(pipelines.size());
  result.report.pipelines.resize(pipelines.size());

  const auto total_start = std::chrono::steady_clock::now();
  ThreadPool pool(jobs);
  result.report.jobs = pool.worker_count();

  for (std::size_t i = 0; i < pipelines.size(); ++i) {
    const Pipeline& pipeline = pipelines[i];
    std::string& slot = result.outputs[i];
    PipelineMetrics& metrics = result.report.pipelines[i];
    metrics.name = pipeline.name;
    metrics.events = pipeline.events;
    pool.submit([&pipeline, &slot, &metrics, &pool] {
      const auto start = std::chrono::steady_clock::now();
      try {
        slot = pipeline.run_sharded ? pipeline.run_sharded(pool) : pipeline.run();
      } catch (const std::exception& e) {
        slot = pipeline.name + ": error: " + e.what() + "\n";
        metrics.failed = true;
      } catch (...) {
        slot = pipeline.name + ": error: unknown exception\n";
        metrics.failed = true;
      }
      metrics.wall_ms = elapsed_ms(start);
      metrics.output_bytes = slot.size();
    });
  }
  pool.wait_idle();
  result.report.total_wall_ms = elapsed_ms(total_start);
  return result;
}

}  // namespace cw::runner
