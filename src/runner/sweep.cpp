#include "runner/sweep.h"

#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

#include "adversary/adaptive.h"
#include "adversary/colocation.h"
#include "adversary/moving_target.h"
#include "agents/population.h"
#include "analysis/geography.h"
#include "analysis/neighborhood.h"
#include "analysis/network.h"
#include "analysis/overlap.h"
#include "runner/fleet.h"
#include "runner/thread_pool.h"

namespace cw::runner {
namespace {

// The search-engine crawlers are excluded from every overlap denominator,
// matching the paper-claims tests: at real scale their handful of source
// IPs is negligible, but a scaled-down population would let them dominate.
std::vector<capture::ActorId> crawler_actors() {
  return {agents::Population::kCensysActorId, agents::Population::kShodanActorId};
}

std::string format(const char* fmt, ...) {
  char buffer[192];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

// Table 2: neighborhoods differ in top ASes far more often than in
// passwords. Effect: mean Cramér's V over the significant AS tests.
FindingOutcome extract_t2(const analysis::CharacteristicTableCache& cache,
                          const AnalysisOptions& options) {
  FindingOutcome out;
  out.finding = PaperFinding::kT2NeighborhoodAses;
  analysis::NeighborhoodOptions nopts;
  nopts.top_k = options.top_k;
  nopts.use_bonferroni = options.use_bonferroni;
  const auto as = analysis::analyze_neighborhoods(cache, analysis::TrafficScope::kSsh22,
                                                  analysis::Characteristic::kTopAs, nopts);
  const auto pwd = analysis::analyze_neighborhoods(
      cache, analysis::TrafficScope::kSsh22, analysis::Characteristic::kTopPassword, nopts);
  out.holds = as.pct_different > 20.0 && pwd.pct_different < as.pct_different;
  out.effect = as.avg_phi;
  out.detail = format("ASes differ in %.1f%% of %zu neighborhoods (avg V %.4f), passwords %.1f%%",
                      as.pct_different, as.neighborhoods_tested, as.avg_phi, pwd.pct_different);
  return out;
}

// Table 4: AWS's most-different region is Australia (Telnet usernames, the
// Huawei-targeting regional dictionary). Effect: that region's mean V.
FindingOutcome extract_t4(const analysis::CharacteristicTableCache& cache,
                          const AnalysisOptions& options) {
  FindingOutcome out;
  out.finding = PaperFinding::kT4AwsAustraliaRegion;
  analysis::GeoOptions gopts;
  gopts.top_k = options.top_k;
  const auto most = analysis::most_different_region(
      cache, topology::Provider::kAws, analysis::TrafficScope::kTelnet23,
      analysis::Characteristic::kTopUsername, gopts);
  if (!most.any_significant) {
    out.detail = "no AWS region with significant Telnet-username deviations";
    return out;
  }
  out.holds = most.region_code == "AP-AU";
  out.effect = most.avg_phi;
  out.detail = format("most-different AWS region %s (avg V %.4f over %zu significant pairs)",
                      most.region_code.c_str(), most.avg_phi, most.significant_pairs);
  return out;
}

// Table 5: Asia-Pacific pairs diverge in HTTP payloads more than US pairs.
// Effect: the similar-share gap (US minus APAC, as a fraction).
FindingOutcome extract_t5(const analysis::CharacteristicTableCache& cache,
                          const AnalysisOptions& options) {
  FindingOutcome out;
  out.finding = PaperFinding::kT5ApacPayloadDivergence;
  analysis::GeoOptions gopts;
  gopts.top_k = options.top_k;
  const auto similarity = analysis::geo_similarity(cache, analysis::TrafficScope::kHttpAllPorts,
                                                   analysis::Characteristic::kTopPayload, gopts);
  const double us = similarity.pct_similar(analysis::PairGroup::kUs);
  const double apac = similarity.pct_similar(analysis::PairGroup::kApac);
  out.holds = apac < us && apac < 80.0;
  out.effect = (us - apac) / 100.0;
  out.detail = format("APAC %.1f%% similar vs US %.1f%% (HTTP payloads)", apac, us);
  return out;
}

// Table 7: education networks are rarely told apart. Effect: the largest
// mean V any scope reaches (small when the finding holds).
FindingOutcome extract_t7(const core::ExperimentResult& result,
                          const analysis::CharacteristicTableCache& cache,
                          const AnalysisOptions& options, ThreadPool* pool) {
  FindingOutcome out;
  out.finding = PaperFinding::kT7EduNetworksAlike;
  const auto pairs = analysis::edu_edu_pairs(result.deployment());
  analysis::NetworkOptions nopts;
  nopts.top_k = options.top_k;
  std::size_t different = 0;
  std::size_t tested = 0;
  double max_phi = 0.0;
  for (const auto scope : {analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
                           analysis::TrafficScope::kHttp80}) {
    const auto comparison = analysis::compare_vantage_pairs(
        cache, pairs, scope, analysis::Characteristic::kTopAs, nopts, pool);
    different += comparison.pairs_different;
    tested += comparison.pairs_tested;
    if (comparison.avg_phi > max_phi) max_phi = comparison.avg_phi;
  }
  out.holds = tested > 0 && different <= 1;
  out.effect = max_phi;
  out.detail = format("%zu of %zu edu-edu scope tests significantly different (max avg V %.4f)",
                      different, tested, max_phi);
  return out;
}

// Table 8: Telnet scanners hit the telescope, SSH scanners avoid it.
// Effect: the overlap gap (telnet minus ssh telescope-over-cloud share).
FindingOutcome extract_t8(const core::ExperimentResult& result, ThreadPool* pool) {
  FindingOutcome out;
  out.finding = PaperFinding::kT8TelnetIgnoresTelescope;
  // A spill-mode result has per-segment frames instead of a cumulative one;
  // the segmented scan unions the same per-port source sets (bit-identical).
  const auto rows =
      result.segment_frames().empty()
          ? analysis::scanner_overlap(result.frame(pool), {22, 23}, crawler_actors())
          : analysis::scanner_overlap(result.segment_frames(), {22, 23}, crawler_actors(),
                                      result.segment_pager());
  const auto& ssh = rows[0].tel_cloud_over_cloud;
  const auto& telnet = rows[1].tel_cloud_over_cloud;
  if (!ssh.has_value() || !telnet.has_value()) {
    out.detail = "scanner overlap unmeasurable (empty cloud denominator)";
    return out;
  }
  out.holds = *telnet > 0.75 && *ssh < 0.35 && *telnet > *ssh;
  out.effect = *telnet - *ssh;
  out.detail = format("telescope-over-cloud scanner overlap: telnet %.3f vs ssh %.3f", *telnet,
                      *ssh);
  return out;
}

// Table 9: SSH *attackers* avoid the telescope, Telnet attackers do not.
// Effect: the malicious-overlap gap (telnet minus ssh).
FindingOutcome extract_t9(const core::ExperimentResult& result, ThreadPool* pool) {
  FindingOutcome out;
  out.finding = PaperFinding::kT9SshAttackersAvoid;
  const auto rows =
      result.segment_frames().empty()
          ? analysis::attacker_overlap(result.frame(pool), {22, 23}, crawler_actors())
          : analysis::attacker_overlap(result.segment_frames(), {22, 23}, crawler_actors(),
                                      result.segment_pager());
  const auto& ssh = rows[0].tel_over_malicious_cloud;
  const auto& telnet = rows[1].tel_over_malicious_cloud;
  if (!ssh.has_value() || !telnet.has_value()) {
    out.detail = "attacker overlap unmeasurable (no malicious cloud sources)";
    return out;
  }
  out.holds = *ssh < 0.35 && *telnet > 0.70;
  out.effect = *telnet - *ssh;
  out.detail = format("telescope share of attackers: telnet %.3f vs ssh %.3f", *telnet, *ssh);
  return out;
}

// Table 10: the telescope sees a different AS population than cloud
// vantage points. Effect: mean Cramér's V over the significant pairs.
FindingOutcome extract_t10(const core::ExperimentResult& result,
                           const analysis::CharacteristicTableCache& cache,
                           const AnalysisOptions& options, ThreadPool* pool) {
  FindingOutcome out;
  out.finding = PaperFinding::kT10TelescopeAsesDiffer;
  const auto pairs = analysis::telescope_cloud_pairs(result.deployment());
  analysis::NetworkOptions nopts;
  nopts.top_k = options.top_k;
  const auto comparison = analysis::compare_vantage_pairs(
      cache, pairs, analysis::TrafficScope::kSsh22, analysis::Characteristic::kTopAs, nopts,
      pool);
  out.holds = comparison.pairs_different > 0 && comparison.avg_phi > 0.3;
  out.effect = comparison.avg_phi;
  out.detail = format("%zu/%zu telescope-cloud pairs differ in top ASes (avg V %.4f)",
                      comparison.pairs_different, comparison.pairs_tested, comparison.avg_phi);
  return out;
}

}  // namespace

std::string_view finding_name(PaperFinding finding) noexcept {
  switch (finding) {
    case PaperFinding::kT2NeighborhoodAses: return "T2 neighborhood ASes";
    case PaperFinding::kT4AwsAustraliaRegion: return "T4 AWS AP-AU";
    case PaperFinding::kT5ApacPayloadDivergence: return "T5 APAC payloads";
    case PaperFinding::kT7EduNetworksAlike: return "T7 edu alike";
    case PaperFinding::kT8TelnetIgnoresTelescope: return "T8 telnet telescope";
    case PaperFinding::kT9SshAttackersAvoid: return "T9 ssh attackers";
    case PaperFinding::kT10TelescopeAsesDiffer: return "T10 telescope ASes";
  }
  return "unknown";
}

std::string_view finding_claim(PaperFinding finding) noexcept {
  switch (finding) {
    case PaperFinding::kT2NeighborhoodAses:
      return "neighboring services differ in top ASes more often than in passwords (SSH)";
    case PaperFinding::kT4AwsAustraliaRegion:
      return "AWS's most-different region is Australia (Telnet usernames)";
    case PaperFinding::kT5ApacPayloadDivergence:
      return "Asia-Pacific pairs diverge in HTTP payloads more than US pairs";
    case PaperFinding::kT7EduNetworksAlike:
      return "education networks are rarely told apart (top ASes)";
    case PaperFinding::kT8TelnetIgnoresTelescope:
      return "Telnet scanners hit the telescope while SSH scanners avoid it";
    case PaperFinding::kT9SshAttackersAvoid:
      return "SSH attackers avoid the telescope, Telnet attackers do not";
    case PaperFinding::kT10TelescopeAsesDiffer:
      return "the telescope sees a different AS population than cloud (SSH)";
  }
  return "unknown";
}

CellFindings extract_findings(const core::ExperimentResult& result,
                              const AnalysisOptions& options, ThreadPool* pool) {
  const analysis::CharacteristicTableCache& cache = result.table_cache(pool);
  CellFindings findings{};
  findings[0] = extract_t2(cache, options);
  findings[1] = extract_t4(cache, options);
  findings[2] = extract_t5(cache, options);
  findings[3] = extract_t7(result, cache, options, pool);
  findings[4] = extract_t8(result, pool);
  findings[5] = extract_t9(result, pool);
  findings[6] = extract_t10(result, cache, options, pool);
  return findings;
}

analysis::ClusterScores extract_clusters(const core::ExperimentResult& result,
                                         const AnalysisOptions& options, ThreadPool* pool) {
  const auto& segments = result.segment_frames();
  const analysis::ClusterResult clustered =
      segments.empty()
          ? analysis::cluster_attackers(result.frame(pool), options.cluster)
          : analysis::cluster_attackers(segments, options.cluster, result.segment_pager());
  return clustered.scores;
}

namespace {

// Per-city probe tally, accumulated frame by frame (so the spill path folds
// segments into the same totals the cumulative frame produces).
struct CityTally {
  std::uint64_t records = 0;
  // src -> distinct vantage ids hit in this city; a source touching >= 2 is
  // a cross-provider prober (CoLocation lists one vantage per provider).
  std::map<std::uint32_t, std::set<topology::VantageId>> sources;
};

void tally_colocation(const capture::SessionFrame& frame, net::Port port,
                      const std::vector<topology::Deployment::CoLocation>& cities,
                      std::vector<CityTally>& tallies) {
  frame.for_port(port).for_each([&](std::uint32_t i) {
    const topology::VantageId vantage = frame.vantage(i);
    for (std::size_t c = 0; c < cities.size(); ++c) {
      bool member = false;
      for (const topology::VantageId id : cities[c].vantage_ids) member |= id == vantage;
      if (!member) continue;
      CityTally& tally = tallies[c];
      ++tally.records;
      tally.sources[frame.src(i)].insert(vantage);
      break;
    }
  });
}

}  // namespace

std::string render_colocation(const core::ExperimentResult& result,
                              const AnalysisOptions& options, ThreadPool* pool) {
  const auto cities = result.deployment().colocated_clouds();
  std::vector<CityTally> tallies(cities.size());
  const auto& segments = result.segment_frames();
  if (segments.empty()) {
    tally_colocation(result.frame(pool), options.colocation_port, cities, tallies);
  } else {
    const analysis::SegmentPager& pager = result.segment_pager();
    for (std::size_t s = 0; s < segments.size(); ++s) {
      if (pager) pager(s, true);
      tally_colocation(*segments[s], options.colocation_port, cities, tallies);
      if (pager) pager(s, false);
    }
  }
  std::string out = format("\n### co-location probes (port %u)\n\n",
                           static_cast<unsigned>(options.colocation_port));
  for (std::size_t c = 0; c < cities.size(); ++c) {
    const CityTally& tally = tallies[c];
    std::size_t cross = 0;
    for (const auto& [src, vantages] : tally.sources) cross += vantages.size() >= 2 ? 1 : 0;
    out += format("- %s (%zu providers): %llu records, %zu sources, %zu cross-provider\n",
                  cities[c].city_code.c_str(), cities[c].vantage_ids.size(),
                  static_cast<unsigned long long>(tally.records), tally.sources.size(), cross);
  }
  return out;
}

std::string render_adversary(const core::ExperimentResult& result) {
  std::size_t attackers = 0;
  double probability_sum = 0.0;
  std::uint64_t known = 0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  const adversary::MovingTargetDefense* defense = nullptr;
  std::size_t probers = 0;
  std::uint64_t pairs_probed = 0;
  std::uint64_t pairs_shared = 0;
  std::uint64_t localization = 0;
  for (const auto& actor : result.population().actors()) {
    if (const auto* attacker = dynamic_cast<const adversary::AdaptiveAttacker*>(actor.get())) {
      ++attackers;
      probability_sum += attacker->policy().probability();
      known += attacker->known_services();
      attempts += attacker->policy().attempts();
      successes += attacker->policy().successes();
    } else if (const auto* agent = dynamic_cast<const adversary::DefenseAgent*>(actor.get())) {
      defense = &agent->defense();
    } else if (const auto* prober = dynamic_cast<const adversary::CoLocationProber*>(actor.get())) {
      ++probers;
      pairs_probed += prober->pairs_probed();
      pairs_shared += prober->pairs_shared();
      localization += prober->localization_probes();
    }
  }
  std::string out;
  if (attackers > 0) {
    out += format(
        "- adversary: %zu adaptive attackers, mean probability %.4f, %llu known services, "
        "%llu/%llu attacks landed\n",
        attackers, probability_sum / static_cast<double>(attackers),
        static_cast<unsigned long long>(known), static_cast<unsigned long long>(successes),
        static_cast<unsigned long long>(attempts));
  }
  if (defense != nullptr) {
    out += format(
        "- defense: %zu services (%s), %llu rotations, %llu hits / %llu misses, ttl %lld min\n",
        defense->services(), defense->rotates() ? "rotating" : "static",
        static_cast<unsigned long long>(defense->rotations()),
        static_cast<unsigned long long>(defense->hits()),
        static_cast<unsigned long long>(defense->misses()),
        static_cast<long long>(defense->current_ttl() / util::kMinute));
  }
  if (probers > 0) {
    out += format(
        "- probers: %zu co-location probers, %llu pairs probed, %llu shared, "
        "%llu localization probes\n",
        probers, static_cast<unsigned long long>(pairs_probed),
        static_cast<unsigned long long>(pairs_shared),
        static_cast<unsigned long long>(localization));
  }
  return out;
}

std::string render_cell(const CellResult& cell) {
  std::string out = "## cell " + cell.label + "\n\n";
  out += format("sim %s, seed 0x%016llx, %llu records, %llu events\n\n", cell.sim_label.c_str(),
                static_cast<unsigned long long>(cell.seed),
                static_cast<unsigned long long>(cell.records),
                static_cast<unsigned long long>(cell.events));
  for (const FindingOutcome& outcome : cell.findings) {
    out += format("- [%c] %s (effect %.4f): %s\n", outcome.holds ? 'x' : ' ',
                  std::string(finding_name(outcome.finding)).c_str(), outcome.effect,
                  outcome.detail.c_str());
  }
  if (cell.clusters.has_value()) {
    const analysis::ClusterScores& scores = *cell.clusters;
    out += format(
        "- clusters: %zu clusters over %zu sources (%zu true actors), purity %.4f, "
        "ARI %.4f, assignment fnv %016llx\n",
        scores.clusters, scores.entities, scores.truth_actors, scores.purity, scores.ari,
        static_cast<unsigned long long>(scores.assignment_fnv));
  }
  out += cell.adversary;
  out += cell.colocation;
  return out;
}

std::string SweepReport::render(const Campaign& campaign,
                                const std::vector<CellResult>& results) {
  std::string out = "# sweep: " + campaign.name + "\n\n";
  std::size_t sims = 0;
  {
    std::vector<std::string_view> seen;
    for (const CellResult& cell : results) {
      bool found = false;
      for (const std::string_view label : seen) found |= label == cell.sim_label;
      if (!found) seen.push_back(cell.sim_label);
    }
    sims = seen.size();
  }
  out += format("campaign seed 0x%016llx, %zu cells, %zu simulations\n\n",
                static_cast<unsigned long long>(campaign.seed), results.size(), sims);

  // The findings × cells matrix. "Y 0.412" = the finding holds in that cell
  // with headline effect 0.412; "n" = it does not.
  out += "| finding |";
  for (const CellResult& cell : results) out += " " + cell.label + " |";
  out += " holds |\n|---|";
  for (std::size_t i = 0; i < results.size(); ++i) out += "---|";
  out += "---|\n";
  for (std::size_t f = 0; f < kPaperFindingCount; ++f) {
    out += "| " + std::string(finding_name(static_cast<PaperFinding>(f))) + " |";
    std::size_t holds = 0;
    for (const CellResult& cell : results) {
      const FindingOutcome& outcome = cell.findings[f];
      holds += outcome.holds ? 1 : 0;
      out += format(" %c %.3f |", outcome.holds ? 'Y' : 'n', outcome.effect);
    }
    out += format(" %zu/%zu |\n", holds, results.size());
  }
  // Provenance footer rows.
  out += "| records |";
  for (const CellResult& cell : results) {
    out += format(" %llu |", static_cast<unsigned long long>(cell.records));
  }
  out += " |\n| sim seed |";
  for (const CellResult& cell : results) {
    out += format(" %016llx |", static_cast<unsigned long long>(cell.seed));
  }
  out += " |\n\n## claims\n\n";
  for (std::size_t f = 0; f < kPaperFindingCount; ++f) {
    const auto finding = static_cast<PaperFinding>(f);
    out += "- " + std::string(finding_name(finding)) + ": " +
           std::string(finding_claim(finding)) + "\n";
  }
  out += "\n";
  for (const CellResult& cell : results) {
    out += render_cell(cell);
    out += "\n";
  }
  return out;
}

namespace {

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += format("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string render_cell_json(const CellResult& cell) {
  std::string out = "    {\n";
  out += "      \"label\": \"" + json_escape(cell.label) + "\",\n";
  out += "      \"sim\": \"" + json_escape(cell.sim_label) + "\",\n";
  out += format("      \"seed\": \"%016llx\",\n", static_cast<unsigned long long>(cell.seed));
  out += format("      \"records\": %llu,\n", static_cast<unsigned long long>(cell.records));
  out += format("      \"events\": %llu,\n", static_cast<unsigned long long>(cell.events));
  out += "      \"findings\": [\n";
  for (std::size_t f = 0; f < kPaperFindingCount; ++f) {
    const FindingOutcome& outcome = cell.findings[f];
    out += "        {\"name\": \"" + json_escape(finding_name(outcome.finding)) + "\", " +
           format("\"holds\": %s, \"effect\": %.6f, ", outcome.holds ? "true" : "false",
                  outcome.effect) +
           "\"detail\": \"" + json_escape(outcome.detail) + "\"}" +
           (f + 1 < kPaperFindingCount ? ",\n" : "\n");
  }
  out += "      ]";
  if (cell.clusters.has_value()) {
    const analysis::ClusterScores& scores = *cell.clusters;
    out += format(
        ",\n      \"clusters\": {\"entities\": %zu, \"clusters\": %zu, "
        "\"truth_actors\": %zu, \"purity\": %.6f, \"ari\": %.6f, "
        "\"assignment_fnv\": \"%016llx\"}",
        scores.entities, scores.clusters, scores.truth_actors, scores.purity, scores.ari,
        static_cast<unsigned long long>(scores.assignment_fnv));
  }
  if (!cell.adversary.empty()) {
    out += ",\n      \"adversary\": \"" + json_escape(cell.adversary) + "\"";
  }
  if (!cell.colocation.empty()) {
    out += ",\n      \"colocation\": \"" + json_escape(cell.colocation) + "\"";
  }
  out += "\n    }";
  return out;
}

}  // namespace

std::string SweepReport::render_json(const Campaign& campaign,
                                     const std::vector<CellResult>& results) {
  std::string out = "{\n";
  out += "  \"campaign\": \"" + json_escape(campaign.name) + "\",\n";
  out += format("  \"seed\": \"%016llx\",\n", static_cast<unsigned long long>(campaign.seed));
  out += format("  \"cells\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    out += render_cell_json(results[i]);
    out += i + 1 < results.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace cw::runner
