#include "runner/fleet.h"

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#include "adversary/scenario.h"
#include "agents/population.h"
#include "runner/thread_pool.h"
#include "util/rng.h"

namespace cw::runner {

std::uint64_t Fleet::cell_seed(std::uint64_t campaign_seed, std::string_view sim_label) noexcept {
  return util::Rng(campaign_seed).stream(sim_label).seed();
}

std::vector<CellResult> Fleet::run(const Campaign& campaign) const {
  // Group cells by simulation identity, preserving first-appearance order
  // so the grouping (and therefore the schedule shape) is a function of the
  // campaign alone.
  struct Group {
    std::string_view sim_label;
    std::vector<std::size_t> cells;  // indices into campaign.cells
  };
  std::vector<Group> groups;
  std::unordered_map<std::string_view, std::size_t> group_of;
  for (std::size_t i = 0; i < campaign.cells.size(); ++i) {
    const std::string_view sim_label = campaign.cells[i].sim_label;
    const auto [it, inserted] = group_of.try_emplace(sim_label, groups.size());
    if (inserted) groups.push_back(Group{sim_label, {}});
    groups[it->second].cells.push_back(i);
  }

  std::vector<CellResult> results(campaign.cells.size());
  // One pool task per simulation group: the engine runs to the end of its
  // window, then the group's cells extract their findings sequentially over
  // the shared result. Nested fan-out (frame builds, pair sharding) uses
  // parallel_for, which is nest-safe, so groups neither deadlock nor
  // serialize behind each other's table builds.
  pool_->parallel_for(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    core::ExperimentConfig config = campaign.cells[group.cells.front()].config;
    config.seed = cell_seed(campaign.seed, group.sim_label);
    SimHandle handle;
    if (runner_) {
      handle = runner_(config);
    } else {
      core::LiveExperiment live(config);
      live.advance_to(config.duration);
      handle.result = live.take();
      handle.records = handle.result->store().size();
      handle.events = handle.result->events_processed();
    }
    for (const std::size_t index : group.cells) {
      const FleetCell& cell = campaign.cells[index];
      CellResult& out = results[index];
      out.label = cell.label;
      out.sim_label = cell.sim_label;
      out.seed = handle.result->config().seed;
      out.records = handle.records;
      out.events = handle.events;
      out.findings = extract_findings(*handle.result, cell.analysis, pool_);
      if (cell.analysis.cluster_attackers) {
        out.clusters = extract_clusters(*handle.result, cell.analysis, pool_);
      }
      if (cell.analysis.colocation_probes) {
        out.colocation = render_colocation(*handle.result, cell.analysis, pool_);
      }
      out.adversary = render_adversary(*handle.result);
    }
    // `handle` (engine corpus, frame, cached tables, and any spill substrate
    // in its context) is released here, so a fleet's memory high-water tracks
    // the widest concurrent group set, not the whole campaign (bench_fleet
    // measures this).
  });
  return results;
}

namespace {

std::string format_topk_label(std::size_t top_k, bool bonferroni) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "k%zu%s", top_k, bonferroni ? "+bonf" : "-bonf");
  return buffer;
}

}  // namespace

Campaign make_ablation_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "ablation";
  campaign.seed = params.seed;
  core::ExperimentConfig config;
  config.scale = params.scale;
  config.telescope_slash24s = params.telescope_slash24s;
  config.year = params.year;
  for (const std::size_t top_k : {std::size_t{3}, std::size_t{5}, std::size_t{100}}) {
    for (const bool bonferroni : {true, false}) {
      FleetCell cell;
      cell.label = format_topk_label(top_k, bonferroni);
      cell.sim_label = "base";  // every variant reads the same corpus
      cell.config = config;
      cell.analysis.top_k = top_k;
      cell.analysis.use_bonferroni = bonferroni;
      campaign.cells.push_back(std::move(cell));
    }
  }
  return campaign;
}

Campaign make_calibration_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "calibration";
  campaign.seed = params.seed;
  for (const std::string_view seed_stream : {"alpha", "beta", "gamma"}) {
    for (const double multiplier : {1.0, 0.6}) {
      FleetCell cell;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/x%.2f", std::string(seed_stream).c_str(),
                    multiplier);
      cell.label = label;
      cell.sim_label = label;  // every cell is its own simulation
      cell.config.scale = params.scale * multiplier;
      cell.config.telescope_slash24s = params.telescope_slash24s;
      cell.config.year = params.year;
      campaign.cells.push_back(std::move(cell));
    }
  }
  return campaign;
}

Campaign make_stress_campaign(const CampaignParams& params, std::size_t engines) {
  Campaign campaign;
  campaign.name = "stress";
  campaign.seed = params.seed;
  campaign.cells.reserve(engines);
  for (std::size_t i = 0; i < engines; ++i) {
    FleetCell cell;
    char label[32];
    std::snprintf(label, sizeof(label), "e%04zu", i);
    cell.label = label;
    cell.sim_label = label;  // every cell is its own engine
    cell.config.scale = params.scale;
    cell.config.telescope_slash24s = params.telescope_slash24s;
    cell.config.year = params.year;
    // One simulated day: the point is engine count, not window length.
    cell.config.duration = util::kDay;
    campaign.cells.push_back(std::move(cell));
  }
  return campaign;
}

namespace {

// Shared base config for the adversary grids.
core::ExperimentConfig adversary_base(const CampaignParams& params) {
  core::ExperimentConfig config;
  config.scale = params.scale;
  config.telescope_slash24s = params.telescope_slash24s;
  config.year = params.year;
  return config;
}

std::vector<capture::ActorId> crawler_ids() {
  return {agents::Population::kCensysActorId, agents::Population::kShodanActorId};
}

}  // namespace

Campaign make_adaptive_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "adaptive";
  campaign.seed = params.seed;
  const auto add = [&](std::string label, adversary::ScenarioKind kind,
                       const std::function<void(adversary::ScenarioConfig&)>& tweak = {}) {
    FleetCell cell;
    cell.label = label;
    cell.sim_label = std::move(label);  // every scenario is its own simulation
    cell.config = adversary_base(params);
    cell.config.adversary.kind = kind;
    if (tweak) tweak(cell.config.adversary);
    campaign.cells.push_back(std::move(cell));
  };
  add("baseline", adversary::ScenarioKind::kNone);
  add("fixed", adversary::ScenarioKind::kFixedAttackers);
  add("adaptive", adversary::ScenarioKind::kAdaptiveAttackers);
  add("mtd", adversary::ScenarioKind::kMovingTarget);
  add("mtd-fast", adversary::ScenarioKind::kMovingTarget, [](adversary::ScenarioConfig& sc) {
    sc.defense.ttl.initial_ttl = 4 * util::kHour;
    sc.defense.ttl.min_ttl = util::kHour;
    sc.defense.ttl.tolerable_attacks = 5;
  });
  return campaign;
}

Campaign make_colocation_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "colocation";
  campaign.seed = params.seed;
  const auto add = [&](std::string label, adversary::ScenarioKind kind, int probers,
                       double share_rate) {
    FleetCell cell;
    cell.label = label;
    cell.sim_label = std::move(label);
    cell.config = adversary_base(params);
    cell.config.adversary.kind = kind;
    cell.config.adversary.probers = probers;
    cell.config.adversary.share_rate = share_rate;
    cell.analysis.colocation_probes = true;
    campaign.cells.push_back(std::move(cell));
  };
  add("baseline", adversary::ScenarioKind::kNone, 0, 0.5);
  add("probers", adversary::ScenarioKind::kColocation, 3, 0.5);
  add("dense", adversary::ScenarioKind::kColocation, 8, 0.7);
  return campaign;
}

Campaign make_clustering_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "clustering";
  campaign.seed = params.seed;
  const auto add = [&](std::string label, adversary::ScenarioKind kind, bool replace) {
    FleetCell cell;
    cell.label = label;
    cell.sim_label = std::move(label);
    cell.config = adversary_base(params);
    cell.config.adversary.kind = kind;
    cell.config.adversary.replace_population = replace;
    cell.analysis.cluster_attackers = true;
    cell.analysis.cluster.exclude_actors = crawler_ids();
    campaign.cells.push_back(std::move(cell));
  };
  // The acceptance cell: distinct-fingerprint families with no background
  // population, where the partition must recover actor identity (purity and
  // ARI >= 0.9; tests/analysis/clusters_test.cpp pins this).
  add("families", adversary::ScenarioKind::kClusterFamilies, /*replace=*/true);
  // The same families on top of the calibrated background noise.
  add("families+bg", adversary::ScenarioKind::kClusterFamilies, /*replace=*/false);
  // The calibrated population by itself: how separable the paper's own
  // attacker classes are.
  add("population", adversary::ScenarioKind::kNone, /*replace=*/false);
  return campaign;
}

const std::vector<CampaignInfo>& campaign_registry() {
  static const std::vector<CampaignInfo> kRegistry = {
      {"ablation", "one corpus, analysis variants top-k x Bonferroni (DESIGN.md 6)"},
      {"calibration", "seed streams x population scales, paper-default analysis"},
      {"stress", "N single-cell one-day engines; exercises the harness itself"},
      {"adaptive", "adaptive attackers vs fixed policy and moving-target defense"},
      {"colocation", "cross-provider co-location probers over the Table 6 control set"},
      {"clustering", "ground-truth attacker families scored by clustering purity/ARI"},
  };
  return kRegistry;
}

std::optional<Campaign> make_campaign(std::string_view name, const CampaignParams& params,
                                      std::size_t stress_engines) {
  if (name == "ablation") return make_ablation_campaign(params);
  if (name == "calibration") return make_calibration_campaign(params);
  if (name == "stress") return make_stress_campaign(params, stress_engines);
  if (name == "adaptive") return make_adaptive_campaign(params);
  if (name == "colocation") return make_colocation_campaign(params);
  if (name == "clustering") return make_clustering_campaign(params);
  return std::nullopt;
}

}  // namespace cw::runner
