#include "runner/fleet.h"

#include <cstdio>
#include <memory>
#include <unordered_map>
#include <utility>

#include "runner/thread_pool.h"
#include "util/rng.h"

namespace cw::runner {

std::uint64_t Fleet::cell_seed(std::uint64_t campaign_seed, std::string_view sim_label) noexcept {
  return util::Rng(campaign_seed).stream(sim_label).seed();
}

std::vector<CellResult> Fleet::run(const Campaign& campaign) const {
  // Group cells by simulation identity, preserving first-appearance order
  // so the grouping (and therefore the schedule shape) is a function of the
  // campaign alone.
  struct Group {
    std::string_view sim_label;
    std::vector<std::size_t> cells;  // indices into campaign.cells
  };
  std::vector<Group> groups;
  std::unordered_map<std::string_view, std::size_t> group_of;
  for (std::size_t i = 0; i < campaign.cells.size(); ++i) {
    const std::string_view sim_label = campaign.cells[i].sim_label;
    const auto [it, inserted] = group_of.try_emplace(sim_label, groups.size());
    if (inserted) groups.push_back(Group{sim_label, {}});
    groups[it->second].cells.push_back(i);
  }

  std::vector<CellResult> results(campaign.cells.size());
  // One pool task per simulation group: the engine runs to the end of its
  // window, then the group's cells extract their findings sequentially over
  // the shared result. Nested fan-out (frame builds, pair sharding) uses
  // parallel_for, which is nest-safe, so groups neither deadlock nor
  // serialize behind each other's table builds.
  pool_->parallel_for(groups.size(), [&](std::size_t g) {
    const Group& group = groups[g];
    core::ExperimentConfig config = campaign.cells[group.cells.front()].config;
    config.seed = cell_seed(campaign.seed, group.sim_label);
    SimHandle handle;
    if (runner_) {
      handle = runner_(config);
    } else {
      core::LiveExperiment live(config);
      live.advance_to(config.duration);
      handle.result = live.take();
      handle.records = handle.result->store().size();
      handle.events = handle.result->events_processed();
    }
    for (const std::size_t index : group.cells) {
      const FleetCell& cell = campaign.cells[index];
      CellResult& out = results[index];
      out.label = cell.label;
      out.sim_label = cell.sim_label;
      out.seed = handle.result->config().seed;
      out.records = handle.records;
      out.events = handle.events;
      out.findings = extract_findings(*handle.result, cell.analysis, pool_);
    }
    // `handle` (engine corpus, frame, cached tables, and any spill substrate
    // in its context) is released here, so a fleet's memory high-water tracks
    // the widest concurrent group set, not the whole campaign (bench_fleet
    // measures this).
  });
  return results;
}

namespace {

std::string format_topk_label(std::size_t top_k, bool bonferroni) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "k%zu%s", top_k, bonferroni ? "+bonf" : "-bonf");
  return buffer;
}

}  // namespace

Campaign make_ablation_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "ablation";
  campaign.seed = params.seed;
  core::ExperimentConfig config;
  config.scale = params.scale;
  config.telescope_slash24s = params.telescope_slash24s;
  config.year = params.year;
  for (const std::size_t top_k : {std::size_t{3}, std::size_t{5}, std::size_t{100}}) {
    for (const bool bonferroni : {true, false}) {
      FleetCell cell;
      cell.label = format_topk_label(top_k, bonferroni);
      cell.sim_label = "base";  // every variant reads the same corpus
      cell.config = config;
      cell.analysis.top_k = top_k;
      cell.analysis.use_bonferroni = bonferroni;
      campaign.cells.push_back(std::move(cell));
    }
  }
  return campaign;
}

Campaign make_calibration_campaign(const CampaignParams& params) {
  Campaign campaign;
  campaign.name = "calibration";
  campaign.seed = params.seed;
  for (const std::string_view seed_stream : {"alpha", "beta", "gamma"}) {
    for (const double multiplier : {1.0, 0.6}) {
      FleetCell cell;
      char label[64];
      std::snprintf(label, sizeof(label), "%s/x%.2f", std::string(seed_stream).c_str(),
                    multiplier);
      cell.label = label;
      cell.sim_label = label;  // every cell is its own simulation
      cell.config.scale = params.scale * multiplier;
      cell.config.telescope_slash24s = params.telescope_slash24s;
      cell.config.year = params.year;
      campaign.cells.push_back(std::move(cell));
    }
  }
  return campaign;
}

Campaign make_stress_campaign(const CampaignParams& params, std::size_t engines) {
  Campaign campaign;
  campaign.name = "stress";
  campaign.seed = params.seed;
  campaign.cells.reserve(engines);
  for (std::size_t i = 0; i < engines; ++i) {
    FleetCell cell;
    char label[32];
    std::snprintf(label, sizeof(label), "e%04zu", i);
    cell.label = label;
    cell.sim_label = label;  // every cell is its own engine
    cell.config.scale = params.scale;
    cell.config.telescope_slash24s = params.telescope_slash24s;
    cell.config.year = params.year;
    // One simulated day: the point is engine count, not window length.
    cell.config.duration = util::kDay;
    campaign.cells.push_back(std::move(cell));
  }
  return campaign;
}

}  // namespace cw::runner
