// A work-stealing thread pool for the analysis pipeline runner. Each worker
// owns a deque: submitted tasks are dealt round-robin, a worker pops from
// the front of its own deque, and an idle worker steals from the back of a
// victim's. Task execution order is therefore nondeterministic — callers
// that need deterministic results write into pre-assigned slots (see
// pipeline.h) rather than relying on completion order.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace cw::runner {

// Parses a worker-count argument ("--jobs N" on the CLI, CW_JOBS in the
// bench harnesses). Rejects negative, non-numeric, or trailing-garbage
// input with nullopt; values above hardware_concurrency() are clamped to it
// so a typo cannot ask for billions of threads. 0 is valid and keeps its
// "use hardware concurrency" meaning.
std::optional<unsigned> parse_jobs(const char* text);

class ThreadPool {
 public:
  using Task = std::function<void()>;

  // 0 workers => hardware_concurrency() (at least 1).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Safe from any thread, including from inside a running
  // task (the pool is not idle until nested submissions also finish).
  void submit(Task task);

  // Blocks until every submitted task has completed. Safe to call
  // repeatedly; the pool stays usable afterwards. Must NOT be called from
  // inside a pool task (the running task counts as outstanding, so it would
  // deadlock) — nested fan-out uses parallel_for instead.
  void wait_idle();

  // Runs fn(0..n-1) on the pool and returns when all n calls have finished.
  // Safe to call from inside a pool task: instead of blocking, the calling
  // thread claims and runs shards of its own loop while idle workers claim
  // the rest, so nested fan-out composes with pipeline-level parallelism
  // without deadlocking even on a single worker. The caller never executes
  // unrelated queued tasks. If fn throws, the first exception is rethrown
  // on the caller after in-flight shards settle; shards not yet started are
  // skipped.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(queues_.size());
  }

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(std::size_t index);
  // Pops from own front, else steals from the back of the other queues.
  bool try_pop(std::size_t self, Task& out);
  // Executes a popped task and performs the idle bookkeeping.
  void run_task(Task& task);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> threads_;

  // queued_ counts tasks sitting in deques; outstanding_ additionally
  // includes tasks currently executing.
  std::atomic<std::size_t> queued_{0};
  std::atomic<std::size_t> outstanding_{0};
  std::atomic<std::size_t> next_queue_{0};
  std::atomic<bool> stop_{false};

  std::mutex sleep_mutex_;
  std::condition_variable work_cv_;
  std::condition_variable idle_cv_;
};

}  // namespace cw::runner
