#include "runner/report.h"

#include <string>

#include "core/tables.h"

namespace cw::runner {

std::vector<Pipeline> paper_report_pipelines(const core::ExperimentResult& result,
                                             const ReportOptions& options) {
  const std::uint64_t records = result.store().size();
  std::vector<Pipeline> pipelines;

  auto add = [&](std::string name, std::function<std::string()> run) {
    Pipeline pipeline;
    pipeline.name = std::move(name);
    pipeline.run = std::move(run);
    pipeline.events = records;
    pipelines.push_back(std::move(pipeline));
  };
  // The heavyweight tables expose their computation grid as independent
  // closures; running those through the shared pool (nested fan-out) keeps
  // the report's critical path close to the slowest single comparison
  // instead of the slowest whole table.
  auto add_sharded = [&](std::string name, std::function<std::string(ThreadPool&)> run) {
    Pipeline pipeline;
    pipeline.name = std::move(name);
    pipeline.run_sharded = std::move(run);
    pipeline.events = records;
    pipelines.push_back(std::move(pipeline));
  };

  add("Table 1: vantage points", [&result] { return core::render_table1(result); });
  add("Section 3.2: malicious-traffic fractions",
      [&result] { return core::render_sec32(result); });
  add_sharded("Table 2: neighboring services", [&result](ThreadPool& pool) {
    const auto tasks = core::table2_tasks(result);
    return core::render_table2_from(parallel_map<analysis::NeighborhoodSummary>(
        pool, tasks.size(), [&tasks](std::size_t i) { return tasks[i](); }));
  });
  if (options.include_leak) {
    Pipeline leak;
    leak.name = "Table 3: search-engine leak experiment";
    leak.run = [&options] {
      return core::render_table3(analysis::run_leak_experiment(options.leak_config));
    };
    pipelines.push_back(std::move(leak));
  }
  add("Table 4: most-different geographic regions",
      [&result] { return core::render_table4(result); });
  add("Table 5: geographic similarity", [&result] { return core::render_table5(result); });
  add("Table 6: co-located clouds", [&result] { return core::render_table6(result); });
  add("Table 7: network types", [&result] { return core::render_table7(result); });
  add("Table 8: scanner overlap with the telescope",
      [&result] { return core::render_table8(result); });
  add("Table 9: attacker overlap with the telescope",
      [&result] { return core::render_table9(result); });
  // Each Table 10 task also shards per pair on the same pool (nested
  // parallel_for), so the eight comparisons and their pairs all feed the
  // same workers.
  add_sharded("Table 10: telescope scanners differ", [&result](ThreadPool& pool) {
    const auto tasks = core::table10_tasks(result);
    return core::render_table10_from(parallel_map<analysis::NetworkComparison>(
        pool, tasks.size(), [&tasks, &pool](std::size_t i) { return tasks[i](&pool); }));
  });
  add("Table 11: scanner-targeted protocols",
      [&result] { return core::render_table11(result); });
  add("Table 17: protocol breakdown without reputation",
      [&result] { return core::render_table17(result); });
  for (const net::Port port : options.figure1_ports) {
    add("Figure 1 (port " + std::to_string(port) + ")",
        [&result, port] { return core::render_figure1(result, port); });
  }
  return pipelines;
}

}  // namespace cw::runner
