#include "runner/thread_pool.h"

#include <cerrno>
#include <cstdlib>
#include <exception>
#include <utility>

namespace cw::runner {

std::optional<unsigned> parse_jobs(const char* text) {
  if (text == nullptr || *text == '\0') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || errno == ERANGE || value < 0) {
    return std::nullopt;
  }
  unsigned max_jobs = std::thread::hardware_concurrency();
  if (max_jobs == 0) max_jobs = 1;
  if (value > static_cast<long>(max_jobs)) return max_jobs;
  return static_cast<unsigned>(value);
}

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 1;
  }
  queues_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back(&ThreadPool::worker_loop, this, i);
  }
}

ThreadPool::~ThreadPool() {
  wait_idle();
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::submit(Task task) {
  const std::size_t slot =
      next_queue_.fetch_add(1, std::memory_order_relaxed) % queues_.size();
  // Count the task before publishing it: a stealing worker may pop and
  // finish it the instant it lands in the deque, and if the counters did not
  // already cover it the fetch_subs would underflow and wait_idle() could
  // observe a spurious zero while tasks are still running. A worker that
  // wakes in the window before the push only spins through an empty
  // try_pop, which is harmless.
  outstanding_.fetch_add(1, std::memory_order_release);
  queued_.fetch_add(1, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(queues_[slot]->mutex);
    queues_[slot]->tasks.push_back(std::move(task));
  }
  {
    // Empty critical section: pairs the queued_ increment with the sleeping
    // worker's predicate check so the notify can't slip in between.
    std::lock_guard<std::mutex> lock(sleep_mutex_);
  }
  work_cv_.notify_one();
}

bool ThreadPool::try_pop(std::size_t self, Task& out) {
  {
    WorkerQueue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      out = std::move(own.tasks.front());
      own.tasks.pop_front();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  for (std::size_t offset = 1; offset < queues_.size(); ++offset) {
    WorkerQueue& victim = *queues_[(self + offset) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mutex);
    if (!victim.tasks.empty()) {
      out = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      queued_.fetch_sub(1, std::memory_order_release);
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(Task& task) {
  task();
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    idle_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t index) {
  for (;;) {
    Task task;
    if (try_pop(index, task)) {
      run_task(task);
      continue;
    }
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    work_cv_.wait(lock, [this] {
      return stop_.load(std::memory_order_acquire) ||
             queued_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        queued_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Shards are claimed through an atomic index rather than popped off the
  // deques: the caller may itself be a pool task, so blocking on idle_cv_
  // would deadlock (its own task keeps outstanding_ nonzero). Instead the
  // caller claims and runs shards directly while submitted wrappers let the
  // other workers claim in parallel; the caller never executes unrelated
  // queued tasks, so a pipeline's wall time covers only its own work.
  struct Group {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::atomic<bool> failed{false};
    std::mutex mutex;  // guards error capture and pairs with done_cv
    std::condition_variable done_cv;
    std::exception_ptr error;
  };
  auto group = std::make_shared<Group>();
  // Every claimed shard increments done exactly once, even when fn throws:
  // otherwise the caller's done != n wait below would never finish, and a
  // throw inside a submitted wrapper would escape the pool's Task and
  // std::terminate. The first exception is captured and rethrown on the
  // caller once the loop settles; shards claimed after a failure are
  // skipped (their done still counts) so the loop winds down quickly.
  auto claim_one = [group, &fn, n]() -> bool {
    const std::size_t i = group->next.fetch_add(1, std::memory_order_relaxed);
    if (i >= n) return false;
    if (!group->failed.load(std::memory_order_acquire)) {
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(group->mutex);
        if (!group->error) group->error = std::current_exception();
        group->failed.store(true, std::memory_order_release);
      }
    }
    if (group->done.fetch_add(1, std::memory_order_acq_rel) + 1 == n) {
      // Empty critical section pairs the increment with the caller's
      // predicate check (same discipline as submit/work_cv_), so the notify
      // cannot fire between the caller's last predicate read and its sleep.
      { std::lock_guard<std::mutex> lock(group->mutex); }
      group->done_cv.notify_all();
    }
    return true;
  };
  // n - 1 wrappers: the caller runs at least one shard itself. A wrapper
  // that finds every index claimed is a no-op; `fn` is only dereferenced
  // for claimed indices, which all finish before parallel_for returns.
  for (std::size_t k = 1; k < n; ++k) {
    submit([claim_one] { claim_one(); });
  }
  while (claim_one()) {
  }
  // Unclaimed-by-us shards may still be running on other workers; their
  // runtime bounds this wait. Spin briefly for the common almost-done case,
  // then sleep on the group's cv — an unbounded yield() loop burns a full
  // timeslice per straggler shard on machines where the straggler needs the
  // caller's core (the 1-vCPU CI box pays it on every nested fan-out).
  constexpr int kSpinIterations = 256;
  for (int spin = 0; spin < kSpinIterations; ++spin) {
    if (group->done.load(std::memory_order_acquire) == n) break;
    std::this_thread::yield();
  }
  if (group->done.load(std::memory_order_acquire) != n) {
    std::unique_lock<std::mutex> lock(group->mutex);
    group->done_cv.wait(
        lock, [&group, n] { return group->done.load(std::memory_order_acquire) == n; });
  }
  // The acquire wait above synchronizes with the release increment a failing
  // shard performs after recording its exception, so this read is safe.
  if (group->error) std::rethrow_exception(group->error);
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(sleep_mutex_);
  idle_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

}  // namespace cw::runner
