// Deterministic parallel pipeline runner. The paper's result set is ~28
// independent table/figure pipelines; this module shards them across a
// work-stealing ThreadPool while keeping every reported number bit-identical
// to a sequential run: each pipeline owns a fixed output slot assigned
// before any thread starts, so neither scheduling order nor worker count can
// reorder or perturb the rendered artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "runner/thread_pool.h"

namespace cw::runner {

struct Pipeline {
  std::string name;
  // Renders one artifact (a table, a figure panel, ...). Must only read
  // shared state; pipelines run concurrently.
  std::function<std::string()> run;
  // Alternative entry point for pipelines that can shard internally: when
  // set it takes precedence over `run` and receives the runner's pool so the
  // pipeline can fan its own sub-computations out (via parallel_map /
  // parallel_for) instead of hogging one worker for its whole critical path.
  std::function<std::string(ThreadPool&)> run_sharded;
  // Number of records/events this pipeline analyzes, for the RunReport
  // throughput column. Purely informational.
  std::uint64_t events = 0;
};

struct PipelineMetrics {
  std::string name;
  double wall_ms = 0.0;
  std::uint64_t events = 0;
  std::size_t output_bytes = 0;
  bool failed = false;
};

// Wall-time and throughput metrics for one runner invocation. Pipeline rows
// are in slot (submission) order, not completion order.
struct RunReport {
  unsigned jobs = 1;
  double total_wall_ms = 0.0;
  std::vector<PipelineMetrics> pipelines;

  [[nodiscard]] double pipeline_wall_ms_sum() const;
  // Text-table summary (per-pipeline wall time, events, output size).
  [[nodiscard]] std::string render() const;
};

struct RunResult {
  // outputs[i] is pipelines[i]'s rendered artifact, independent of jobs.
  std::vector<std::string> outputs;
  RunReport report;
};

// Runs every pipeline on `jobs` workers (0 => hardware_concurrency) and
// collects outputs into their fixed slots. A pipeline that throws reports
// "<name>: error: <what>" as its output and is flagged in the report.
RunResult run_pipelines(const std::vector<Pipeline>& pipelines, unsigned jobs = 0);

// Deterministic parallel map over [0, n): applies fn(i) on the pool and
// collects results into slot i. Built on ThreadPool::parallel_for, so it is
// safe to call from inside a running pipeline (nested fan-out); used to
// shard per-vantage analysis passes and per-scope table computations.
template <typename T>
std::vector<T> parallel_map(ThreadPool& pool, std::size_t n,
                            const std::function<T(std::size_t)>& fn) {
  std::vector<T> out(n);
  pool.parallel_for(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
  return out;
}

}  // namespace cw::runner
