// The paper's full result set as runner pipelines: one Pipeline per table /
// figure panel / headline-number block, all reading one completed
// (immutable) ExperimentResult. This is the shared entry point wired into
// examples/full_report and the bench harnesses — slot order is print order,
// so rendering the outputs in sequence reproduces the sequential report
// byte for byte at any worker count.
#pragma once

#include <vector>

#include "analysis/leak.h"
#include "core/experiment.h"
#include "runner/pipeline.h"

namespace cw::runner {

struct ReportOptions {
  // The leak experiment (Table 3) simulates its own populations and is by
  // far the heaviest pipeline; disable it for quick runs.
  bool include_leak = true;
  analysis::LeakExperimentConfig leak_config;
  // Figure 1 panels, one pipeline per port.
  std::vector<net::Port> figure1_ports = {22, 445, 80, 17128};
};

// Builds the pipeline set over `result`. Each Pipeline::name is the section
// title ("Table 1: vantage points", ...); `result` (and `options`) must
// outlive the returned pipelines.
std::vector<Pipeline> paper_report_pipelines(const core::ExperimentResult& result,
                                             const ReportOptions& options);

}  // namespace cw::runner
