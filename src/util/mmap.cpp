#include "util/mmap.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace cw::util {
namespace {

void set_error(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
}

}  // namespace

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = std::exchange(other.base_, nullptr);
    base_size_ = std::exchange(other.base_size_, 0);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

bool MappedFile::map(const std::string& path, std::uint64_t offset, std::uint64_t length,
                     std::string* error) {
  reset();
  if (length == 0) return true;

  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    set_error(error, "mmap: cannot open " + path + ": " + std::strerror(errno));
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    set_error(error, "mmap: cannot stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return false;
  }
  if (offset + length > static_cast<std::uint64_t>(st.st_size)) {
    set_error(error, "mmap: range past end of " + path);
    ::close(fd);
    return false;
  }

  const std::uint64_t page = static_cast<std::uint64_t>(::sysconf(_SC_PAGESIZE));
  const std::uint64_t floor = offset - (offset % page);
  const std::size_t span = static_cast<std::size_t>(length + (offset - floor));
  void* base = ::mmap(nullptr, span, PROT_READ, MAP_PRIVATE, fd, static_cast<off_t>(floor));
  ::close(fd);
  if (base == MAP_FAILED) {
    set_error(error, "mmap: map of " + path + " failed: " + std::strerror(errno));
    return false;
  }
  base_ = base;
  base_size_ = span;
  data_ = static_cast<const std::uint8_t*>(base) + (offset - floor);
  size_ = static_cast<std::size_t>(length);
  return true;
}

void MappedFile::reset() noexcept {
  if (base_ != nullptr) ::munmap(base_, base_size_);
  base_ = nullptr;
  base_size_ = 0;
  data_ = nullptr;
  size_ = 0;
}

void MappedFile::advise_sequential() const noexcept {
  if (base_ != nullptr) ::madvise(base_, base_size_, MADV_SEQUENTIAL);
}

void MappedFile::advise_dontneed() const noexcept {
  if (base_ != nullptr) ::madvise(base_, base_size_, MADV_DONTNEED);
}

bool MappedFile::file_size(const std::string& path, std::uint64_t& size_out, std::string* error) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) {
    set_error(error, "mmap: cannot stat " + path + ": " + std::strerror(errno));
    return false;
  }
  size_out = static_cast<std::uint64_t>(st.st_size);
  return true;
}

}  // namespace cw::util
