#include "util/strings.h"

#include <cctype>
#include <cstdio>

namespace cw::util {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string_view> split_trimmed(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  for (std::string_view part : split(text, sep)) {
    std::string_view t = trim(part);
    if (!t.empty()) out.push_back(t);
  }
  return out;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with_ci(std::string_view text, std::string_view prefix) {
  if (text.size() < prefix.size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(text[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

bool contains_ci(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return true;
  if (haystack.size() < needle.size()) return false;
  for (std::size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (starts_with_ci(haystack.substr(i), needle)) return true;
  }
  return false;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string replace_all(std::string_view text, std::string_view from, std::string_view to) {
  if (from.empty()) return std::string(text);
  std::string out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(text.substr(start));
      return out;
    }
    out.append(text.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string format_double(double value, int precision, bool trim_whole) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  std::string out(buf);
  if (trim_whole) {
    std::size_t dot = out.find('.');
    if (dot != std::string::npos) {
      std::size_t last = out.find_last_not_of('0');
      if (last == dot) last = dot - 1;
      out.erase(last + 1);
    }
  }
  return out;
}

std::string escape_payload(std::string_view payload, std::size_t max_len) {
  std::string out;
  out.reserve(payload.size());
  for (char c : payload) {
    if (out.size() >= max_len) {
      out += "...";
      break;
    }
    unsigned char uc = static_cast<unsigned char>(c);
    if (uc == '\n') {
      out += "\\n";
    } else if (uc == '\r') {
      out += "\\r";
    } else if (uc == '\t') {
      out += "\\t";
    } else if (std::isprint(uc)) {
      out += c;
    } else {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\x%02x", uc);
      out += buf;
    }
  }
  return out;
}

}  // namespace cw::util
