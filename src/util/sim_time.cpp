#include "util/sim_time.h"

#include <cstdio>

namespace cw::util {

std::string format_sim_time(SimTime t) {
  const bool negative = t < 0;
  if (negative) t = -t;
  const std::int64_t ms = t % kSecond;
  const std::int64_t s = (t / kSecond) % 60;
  const std::int64_t m = (t / kMinute) % 60;
  const std::int64_t h = (t / kHour) % 24;
  const std::int64_t d = t / kDay;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s%lldd %02lld:%02lld:%02lld.%03lld", negative ? "-" : "",
                static_cast<long long>(d), static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
  return buf;
}

}  // namespace cw::util
