#include "util/dict.h"

#include <algorithm>

namespace cw::util {

std::shared_ptr<const Dictionary> Dictionary::sorted(std::vector<std::string> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  auto dict = std::make_shared<Dictionary>();
  dict->values_ = std::move(values);
  dict->codes_.reserve(dict->values_.size());
  for (std::uint32_t code = 0; code < dict->values_.size(); ++code) {
    dict->codes_.emplace(dict->values_[code], code);
  }
  return dict;
}

std::uint32_t Dictionary::encode(std::string_view value) {
  const auto it = codes_.find(value);
  if (it != codes_.end()) return it->second;
  const std::uint32_t code = static_cast<std::uint32_t>(values_.size());
  values_.emplace_back(value);
  codes_.emplace(values_.back(), code);
  return code;
}

}  // namespace cw::util
