// Dictionary: a stable text <-> dense-u32-code mapping for categorical
// columns. The SessionFrame v2 encodings rest on two construction modes:
//
//   - sorted():   freeze a distinct-value set with codes assigned in
//                 lexicographic order. Insertion order cannot perturb the
//                 assignment, so two frames built over the same value set —
//                 sequentially or sharded — carry identical dictionaries.
//   - encode():   append-only first-sight assignment for the *shared*
//                 per-experiment dictionaries the stream layer seals epochs
//                 against: codes handed out in earlier epochs stay valid
//                 forever, so per-segment count vectors indexed by code can
//                 be merged across epochs without re-encoding history.
//
// Thread contract: encode()/find() mutate or read the lookup map and need
// external serialization against writers (the stream layer's seal mutex
// provides it; batch dictionaries are frozen after construction and then
// safe for concurrent find()/at()). at()/size() readers must not overlap a
// writer either — the live driver quiesces analysis between seals.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cw::util {

class Dictionary {
 public:
  Dictionary() = default;

  // Frozen dictionary over a distinct-value set, codes in lexicographic
  // order of the values. Duplicates are collapsed.
  [[nodiscard]] static std::shared_ptr<const Dictionary> sorted(std::vector<std::string> values);

  // First-sight append: returns the existing code for a seen value or
  // assigns the next one. Writer-side; serialize against all other access.
  std::uint32_t encode(std::string_view value);

  // The code for a value, if interned. Safe for concurrent readers only
  // while no writer runs.
  [[nodiscard]] std::optional<std::uint32_t> find(std::string_view value) const {
    const auto it = codes_.find(value);
    if (it == codes_.end()) return std::nullopt;
    return it->second;
  }

  // The value for a code. Precondition: code < size().
  [[nodiscard]] const std::string& at(std::uint32_t code) const { return values_[code]; }

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(values_.size());
  }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

 private:
  struct Hash {
    using is_transparent = void;
    std::size_t operator()(std::string_view value) const noexcept {
      return std::hash<std::string_view>{}(value);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view a, std::string_view b) const noexcept { return a == b; }
  };

  std::vector<std::string> values_;
  std::unordered_map<std::string, std::uint32_t, Hash, Eq> codes_;
};

}  // namespace cw::util
