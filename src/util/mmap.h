// MappedFile: read-only mmap of a byte range of a file, the storage layer
// under capture::FrameView. A cold segment's columns are read zero-copy out
// of the mapping; the view is dropped (munmap, not just madvise) between
// scans so a spilled corpus costs address space proportional to the mapped
// window, not the corpus — which is what lets a campaign run under a hard
// `ulimit -v` cap (scripts/check.sh coldstore).
//
// The requested offset need not be page-aligned: the mapping is floored to
// the containing page and data() points at the requested byte. All higher
// alignment guarantees (the frame section keeps its arrays 8-aligned) are
// relative to the section base, which the dataset writer places at a
// multiple of 8 — combined with the page-aligned floor this keeps every
// bound column pointer naturally aligned.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace cw::util {

class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile() { reset(); }

  MappedFile(MappedFile&& other) noexcept { *this = std::move(other); }
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  // Maps `length` bytes of `path` starting at byte `offset` read-only.
  // Returns false (and sets *error when given) on open/map failure or if the
  // range extends past the end of the file. A zero-length range succeeds
  // with data() == nullptr.
  bool map(const std::string& path, std::uint64_t offset, std::uint64_t length,
           std::string* error = nullptr);

  // Unmaps; safe to call repeatedly. After reset() the view is empty.
  void reset() noexcept;

  [[nodiscard]] bool mapped() const noexcept { return base_ != nullptr || size_ == 0; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  // First byte of the requested range (not the page floor).
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // madvise hints over the whole mapping; best-effort (ignored on failure).
  void advise_sequential() const noexcept;
  void advise_dontneed() const noexcept;

  // Size of `path` in bytes, or false on stat failure.
  static bool file_size(const std::string& path, std::uint64_t& size_out,
                        std::string* error = nullptr);

 private:
  void* base_ = nullptr;        // page-floored mapping base
  std::size_t base_size_ = 0;   // mapped length from base_
  const std::uint8_t* data_ = nullptr;  // base_ + (offset - page floor)
  std::size_t size_ = 0;        // requested range length
};

}  // namespace cw::util
