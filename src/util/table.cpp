#include "util/table.h"

#include <algorithm>

namespace cw::util {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(Row{std::move(cells), /*separator=*/false});
}

void TextTable::add_separator() { rows_.push_back(Row{{}, /*separator=*/true}); }

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t i = 0; i < header_.size(); ++i) widths[i] = header_[i].size();
  for (const Row& row : rows_) {
    for (std::size_t i = 0; i < row.cells.size(); ++i) {
      if (i >= widths.size()) widths.resize(i + 1, 0);
      widths[i] = std::max(widths[i], row.cells[i].size());
    }
  }

  auto render_line = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      std::string cell = i < cells.size() ? cells[i] : std::string();
      cell.resize(widths[i], ' ');
      line += " " + cell + " |";
    }
    line += "\n";
    return line;
  };
  auto render_separator = [&] {
    std::string line = "|";
    for (std::size_t w : widths) line += std::string(w + 2, '-') + "|";
    line += "\n";
    return line;
  };

  std::string out = render_line(header_);
  out += render_separator();
  for (const Row& row : rows_) {
    out += row.separator ? render_separator() : render_line(row.cells);
  }
  return out;
}

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ += ',';
    const std::string& cell = cells[i];
    const bool needs_quote = cell.find_first_of(",\"\n") != std::string::npos;
    if (!needs_quote) {
      out_ += cell;
      continue;
    }
    out_ += '"';
    for (char c : cell) {
      if (c == '"') out_ += '"';
      out_ += c;
    }
    out_ += '"';
  }
  out_ += '\n';
}

}  // namespace cw::util
