// Small string helpers used across the library. All functions are pure and
// allocation-conscious (string_view in, owned strings out only when needed).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cw::util {

// Splits on a single character; empty fields are preserved.
std::vector<std::string_view> split(std::string_view text, char sep);

// Splits and drops empty fields after trimming whitespace from each field.
std::vector<std::string_view> split_trimmed(std::string_view text, char sep);

std::string_view trim(std::string_view text);

std::string to_lower(std::string_view text);

bool starts_with_ci(std::string_view text, std::string_view prefix);

bool contains_ci(std::string_view haystack, std::string_view needle);

std::string join(const std::vector<std::string>& parts, std::string_view sep);

// Replaces every occurrence of `from` with `to`.
std::string replace_all(std::string_view text, std::string_view from, std::string_view to);

// Renders a double with fixed precision, trimming a trailing ".0" for
// whole values when `trim_whole` is set (used in table output).
std::string format_double(double value, int precision, bool trim_whole = false);

// Escapes a payload for single-line display: non-printable bytes become
// \xNN, and the result is truncated to `max_len` with an ellipsis.
std::string escape_payload(std::string_view payload, std::size_t max_len = 64);

}  // namespace cw::util
