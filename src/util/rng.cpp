#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <utility>

namespace cw::util {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng Rng::stream(std::string_view label) const noexcept {
  return stream(fnv1a64(label));
}

Rng Rng::stream(std::uint64_t label) const noexcept {
  std::uint64_t mix = seed_ ^ (label * 0x9e3779b97f4a7c15ULL);
  std::uint64_t sm = mix;
  // One extra round decorrelates adjacent labels.
  (void)splitmix64(sm);
  return Rng(splitmix64(sm));
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless technique.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = (0 - bound) % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform() noexcept {
  // 53 random mantissa bits.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

bool Rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double lambda) noexcept {
  double u;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) return 0;
  if (mean < 30.0) {
    // Knuth's product-of-uniforms method.
    const double limit = std::exp(-mean);
    std::uint64_t k = 0;
    double product = uniform();
    while (product > limit) {
      ++k;
      product *= uniform();
    }
    return k;
  }
  // Normal approximation with continuity correction; adequate for workload
  // generation at these means.
  const double draw = normal(mean, std::sqrt(mean));
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
}

double Rng::normal() noexcept {
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mu, double sigma) noexcept { return mu + sigma * normal(); }

namespace {

// Cumulative harmonic weights for one (n, s) pair: cdf[k] is the partial sum
// of i^-s for i = 1..k+1, accumulated in ascending order so cdf.back() is
// bit-identical to the running normalizer the pre-cache implementation
// recomputed per draw.
struct ZipfTable {
  std::uint64_t n = 0;
  double s = 0.0;
  std::vector<double> cdf;
};

const ZipfTable& zipf_table(std::uint64_t n, double s) {
  // The simulator draws over a handful of distinct (n, s) pairs — AS
  // popularity, credential dictionaries — so a tiny per-thread pool with
  // linear lookup beats any map. thread_local keeps concurrent engines
  // (one per fleet cell) from contending or racing on the cache.
  constexpr std::size_t kMaxCachedTables = 16;
  thread_local std::vector<ZipfTable> cache;
  for (const ZipfTable& entry : cache) {
    if (entry.n == n && entry.s == s) return entry;
  }
  ZipfTable entry;
  entry.n = n;
  entry.s = s;
  entry.cdf.reserve(n);
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    entry.cdf.push_back(acc);
  }
  if (cache.size() >= kMaxCachedTables) cache.erase(cache.begin());
  cache.push_back(std::move(entry));
  return cache.back();
}

}  // namespace

std::uint64_t Rng::zipf(std::uint64_t n, double s) noexcept {
  if (n <= 1) return 0;
  // Inverse CDF over cached cumulative weights. Exactly one uniform() is
  // consumed per draw and the selected rank matches the former O(n)
  // recompute-and-walk draw for draw: the cached partial sums are built with
  // the identical ascending accumulation, and lower_bound returns the first
  // index whose partial sum is >= u — the same index the linear walk's
  // `u <= acc` test stopped at.
  const ZipfTable& table = zipf_table(n, s);
  const double u = uniform() * table.cdf.back();
  const auto it = std::lower_bound(table.cdf.begin(), table.cdf.end(), u);
  if (it == table.cdf.end()) return n - 1;
  return static_cast<std::uint64_t>(it - table.cdf.begin());
}

std::optional<std::size_t> Rng::weighted_index(const std::vector<double>& weights) noexcept {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  // No uniform is consumed when there is nothing to choose: callers can
  // branch on the sentinel without perturbing the draw sequence.
  if (total <= 0.0) return std::nullopt;
  double u = uniform() * total;
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (weights[i] <= 0.0) continue;
    acc += weights[i];
    if (u <= acc) return i;
  }
  // Floating-point slack pushed u past the last partial sum; pick the last
  // positive-weight index (never a zero-weight element).
  for (std::size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return std::nullopt;
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) noexcept {
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  if (k >= n) return all;
  // Partial Fisher-Yates: the first k slots become the sample.
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + static_cast<std::size_t>(next_below(n - i));
    std::swap(all[i], all[j]);
  }
  all.resize(k);
  return all;
}

}  // namespace cw::util
