// Simulated time. The simulator runs over one-week observation windows
// (matching the paper's July 1-7 collection periods); time is kept as
// integral milliseconds since the start of the window so event ordering is
// exact and platform-independent.
#pragma once

#include <cstdint>
#include <string>

namespace cw::util {

// Milliseconds since the start of the observation window.
using SimTime = std::int64_t;

// Durations, also in milliseconds.
using SimDuration = std::int64_t;

constexpr SimDuration kMillisecond = 1;
constexpr SimDuration kSecond = 1000 * kMillisecond;
constexpr SimDuration kMinute = 60 * kSecond;
constexpr SimDuration kHour = 60 * kMinute;
constexpr SimDuration kDay = 24 * kHour;
constexpr SimDuration kWeek = 7 * kDay;

// Renders "dD hh:mm:ss.mmm" for log and trace output.
std::string format_sim_time(SimTime t);

// Index of the hour bucket a timestamp falls into; used by the traffic-rate
// analyses (fold increase in traffic *per hour*, spike detection).
constexpr std::int64_t hour_bucket(SimTime t) noexcept { return t / kHour; }

}  // namespace cw::util
