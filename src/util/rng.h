// Deterministic pseudo-random number generation for the simulator.
//
// Every stochastic decision in cloudwatch flows through an Rng instance that
// is seeded from the experiment seed plus a stable stream label, so a run is
// reproducible bit-for-bit regardless of actor scheduling order.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace cw::util {

// SplitMix64: used to expand a single 64-bit seed into the 256-bit state of
// xoshiro256**, and as a cheap standalone mixer for stream derivation.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
// reimplemented here; fast, 2^256-1 period, passes BigCrush.
class Rng {
 public:
  // Seeds the generator from a 64-bit seed via SplitMix64 expansion.
  explicit Rng(std::uint64_t seed = 0x6c6f75647761746bULL) noexcept;

  // Derives an independent stream from this generator's seed and a label.
  // Two streams with different labels are statistically independent, and a
  // stream does not perturb its parent.
  [[nodiscard]] Rng stream(std::string_view label) const noexcept;
  [[nodiscard]] Rng stream(std::uint64_t label) const noexcept;

  std::uint64_t next() noexcept;

  // Uniform in [0, bound). bound == 0 returns 0. Uses Lemire rejection to
  // avoid modulo bias.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  // Uniform in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  // Uniform double in [0, 1).
  double uniform() noexcept;

  // Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  // Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  // Exponential with rate lambda (> 0); used for inter-arrival times.
  double exponential(double lambda) noexcept;

  // Poisson-distributed count with the given mean (>= 0). Uses Knuth's
  // method for small means and a normal approximation for large ones.
  std::uint64_t poisson(double mean) noexcept;

  // Standard normal via Box-Muller (no cached second value; simple and
  // deterministic).
  double normal() noexcept;
  double normal(double mu, double sigma) noexcept;

  // Zipf-distributed rank in [0, n) with exponent s (> 0): rank 0 is the
  // most popular. Inverse CDF over cumulative harmonic weights cached per
  // (n, s) in thread-local storage, so repeated draws inside agent hot loops
  // cost one uniform plus a binary search instead of an O(n) recompute.
  std::uint64_t zipf(std::uint64_t n, double s) noexcept;

  // Picks a uniformly random element index for a container of given size.
  std::size_t index(std::size_t size) noexcept { return static_cast<std::size_t>(next_below(size)); }

  // Picks an index according to non-negative weights. Returns nullopt — and
  // consumes no uniform — when the vector is empty or no weight is positive;
  // a returned index always has positive weight.
  std::optional<std::size_t> weighted_index(const std::vector<double>& weights) noexcept;

  // Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    if (v.size() < 2) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i + 1));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  // Samples k distinct indices from [0, n) (k > n yields all of [0, n)).
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t s_[4];
  std::uint64_t seed_;
};

// Stable 64-bit FNV-1a hash, used for stream-label derivation and payload
// dedup keys.
constexpr std::uint64_t fnv1a64(std::string_view data) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char c : data) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace cw::util
