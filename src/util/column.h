// Column<T>: a frame column that either owns its storage (a hot frame built
// from a live EventStore) or views external memory (a cold frame bound to an
// mmapped spill file by capture::FrameView). Readers see one interface —
// data()/size()/operator[] — so the analysis kernels are oblivious to where
// a column lives; only the build (resize/push_back, owning) and the binder
// (bind_external/unbind, viewing) know the difference.
//
// unbind() drops the data pointer but keeps the size: an unmapped cold frame
// still answers size() (the tiering layer needs segment sizes while the
// bytes are released), it just must not be scanned until the FrameView maps
// it again and refreshes the pointers — mmap may return a different address
// each time.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace cw::util {

template <typename T>
class Column {
 public:
  Column() = default;

  Column(Column&& other) noexcept { *this = std::move(other); }
  Column& operator=(Column&& other) noexcept {
    if (this != &other) {
      // Moving the vector keeps its heap buffer, so a data_ pointing into it
      // stays valid under the new owner.
      own_ = std::move(other.own_);
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  Column(const Column&) = delete;
  Column& operator=(const Column&) = delete;

  // --- owning build side ---------------------------------------------------
  void resize(std::size_t n, T value = T{}) {
    own_.resize(n, value);
    rebind();
  }
  void push_back(T value) {
    own_.push_back(value);
    rebind();
  }
  // Mutable access during the build; only valid while owning.
  [[nodiscard]] T& operator[](std::size_t i) { return own_[i]; }

  // --- external (mapped) side ----------------------------------------------
  void bind_external(const T* data, std::size_t n) {
    own_.clear();
    own_.shrink_to_fit();
    data_ = data;
    size_ = n;
  }
  // Keeps the size, drops the pointer (the mapping is gone).
  void unbind() noexcept { data_ = nullptr; }

  // --- read side -----------------------------------------------------------
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const T* data() const noexcept { return data_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::span<const T> span() const noexcept { return {data_, size_}; }

 private:
  void rebind() noexcept {
    data_ = own_.data();
    size_ = own_.size();
  }

  std::vector<T> own_;
  const T* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace cw::util
