// Incremental IEEE CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320).
// The CWDS v3 dataset format appends one CRC trailer per segment so a
// truncated or bit-flipped spill file is rejected at load instead of being
// analyzed; the checksum is computed incrementally by the stream read/write
// wrappers, so no extra pass over the bytes is ever taken.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace cw::util {

class Crc32 {
 public:
  void update(const void* data, std::size_t size) noexcept {
    const auto* bytes = static_cast<const unsigned char*>(data);
    std::uint32_t crc = state_;
    for (std::size_t i = 0; i < size; ++i) {
      crc = (crc >> 8) ^ table()[(crc ^ bytes[i]) & 0xFF];
    }
    state_ = crc;
  }

  // The CRC of everything fed to update() so far.
  [[nodiscard]] std::uint32_t value() const noexcept { return state_ ^ 0xFFFFFFFFu; }

  void reset() noexcept { state_ = 0xFFFFFFFFu; }

 private:
  static const std::array<std::uint32_t, 256>& table() noexcept {
    static const std::array<std::uint32_t, 256> kTable = [] {
      std::array<std::uint32_t, 256> t{};
      for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
      }
      return t;
    }();
    return kTable;
  }

  std::uint32_t state_ = 0xFFFFFFFFu;
};

inline std::uint32_t crc32(const void* data, std::size_t size) noexcept {
  Crc32 crc;
  crc.update(data, size);
  return crc.value();
}

}  // namespace cw::util
