// Plain-text table renderer used by the benchmark harnesses to print the
// paper's tables, plus a minimal CSV writer for machine-readable output.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace cw::util {

// A simple column-aligned text table. Rows may have fewer cells than the
// header; missing cells render empty.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  // Adds a data row.
  void add_row(std::vector<std::string> cells);

  // Adds a horizontal separator at the current position.
  void add_separator();

  // Renders with single-space-padded `|` separated columns, aligned to the
  // widest cell per column.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

// Escapes and writes rows as RFC-4180-ish CSV (quotes fields containing
// comma, quote, or newline).
class CsvWriter {
 public:
  void add_row(const std::vector<std::string>& cells);
  [[nodiscard]] const std::string& str() const noexcept { return out_; }

 private:
  std::string out_;
};

}  // namespace cw::util
