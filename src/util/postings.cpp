#include "util/postings.h"

#include <stdexcept>
#include <string>

namespace cw::util {

void PostingList::append(std::uint32_t value) {
  // The ascending contract is validated in every build, not just debug: a
  // non-increasing append would silently produce an out-of-order container
  // list, breaking the ascending for_each/iterator contract every consumer
  // relies on once NDEBUG compiles an assert away. The comparison is
  // always-false on the hot path, so the branch predicts perfectly.
  if (static_cast<std::uint64_t>(value) + 1 <= last_appended_) {
    throw std::logic_error("PostingList::append: value " + std::to_string(value) +
                           " is not strictly greater than the previous append (" +
                           std::to_string(last_appended_ - 1) + ")");
  }
  last_appended_ = static_cast<std::uint64_t>(value) + 1;
  const auto key = static_cast<std::uint16_t>(value >> 16);
  const auto low = static_cast<std::uint16_t>(value & 0xFFFFu);
  if (containers_.empty() || containers_.back().key != key) {
    containers_.emplace_back();
    containers_.back().key = key;
  }
  Container& c = containers_.back();
  if (!c.bits.empty()) {
    c.bits[low >> 6] |= std::uint64_t{1} << (low & 63u);
  } else if (c.array.size() < kArrayMax) {
    c.array.push_back(low);
  } else {
    c.bits.assign(kBitmapWords, 0);
    for (const std::uint16_t v : c.array) c.bits[v >> 6] |= std::uint64_t{1} << (v & 63u);
    c.array.clear();
    c.array.shrink_to_fit();
    c.bits[low >> 6] |= std::uint64_t{1} << (low & 63u);
  }
  ++size_;
}

std::size_t PostingList::bytes() const noexcept {
  std::size_t total = sizeof(*this) + containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    total += c.array.capacity() * sizeof(std::uint16_t);
    total += c.bits.capacity() * sizeof(std::uint64_t);
  }
  return total;
}

void PostingList::shrink() {
  containers_.shrink_to_fit();
  for (Container& c : containers_) c.array.shrink_to_fit();
}

std::vector<std::uint32_t> PostingList::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(size_);
  for_each([&out](std::uint32_t value) { out.push_back(value); });
  return out;
}

void PostingList::const_iterator::settle() {
  pos_ = 0;
  if (list_ == nullptr || container_ >= list_->containers_.size()) {
    current_ = 0;
    return;
  }
  // Containers are created on append and thus never empty.
  const Container& c = list_->containers_[container_];
  const std::uint32_t base = static_cast<std::uint32_t>(c.key) << 16;
  if (c.bits.empty()) {
    current_ = base | c.array[0];
    return;
  }
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    if (c.bits[w] != 0) {
      pos_ = static_cast<std::uint32_t>((w << 6) | std::countr_zero(c.bits[w]));
      current_ = base | pos_;
      return;
    }
  }
}

void PostingList::const_iterator::advance() {
  const Container& c = list_->containers_[container_];
  const std::uint32_t base = static_cast<std::uint32_t>(c.key) << 16;
  if (c.bits.empty()) {
    if (pos_ + 1 < c.array.size()) {
      ++pos_;
      current_ = base | c.array[pos_];
      return;
    }
  } else if (pos_ < 65535u) {
    std::uint32_t low = pos_ + 1;
    std::size_t w = low >> 6;
    std::uint64_t word = c.bits[w] & (~std::uint64_t{0} << (low & 63u));
    while (true) {
      if (word != 0) {
        pos_ = static_cast<std::uint32_t>((w << 6) | std::countr_zero(word));
        current_ = base | pos_;
        return;
      }
      if (++w == kBitmapWords) break;
      word = c.bits[w];
    }
  }
  ++container_;
  settle();
}

std::size_t PostingList::serialize(std::vector<std::uint8_t>& out) const {
  while (out.size() % 8 != 0) out.push_back(0);
  const std::size_t base = out.size();

  const auto append_pod = [&out](const auto& value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    out.insert(out.end(), bytes, bytes + sizeof(value));
  };

  append_pod(static_cast<std::uint64_t>(size_));
  append_pod(static_cast<std::uint32_t>(containers_.size()));
  append_pod(std::uint32_t{0});

  // Directory first (16 bytes per container keeps the payloads 8-aligned
  // without inter-entry padding), payload offsets filled as they land.
  const std::size_t dir_base = out.size();
  out.resize(out.size() + containers_.size() * sizeof(PostingSpan::DirEntry));

  for (std::size_t i = 0; i < containers_.size(); ++i) {
    const Container& c = containers_[i];
    PostingSpan::DirEntry entry{};
    entry.key = c.key;
    entry.payload_offset = static_cast<std::uint64_t>(out.size() - base);
    if (c.bits.empty()) {
      entry.kind = PostingSpan::kArray;
      entry.count = static_cast<std::uint32_t>(c.array.size());
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(c.array.data());
      out.insert(out.end(), bytes, bytes + c.array.size() * sizeof(std::uint16_t));
      while (out.size() % 8 != 0) out.push_back(0);
    } else {
      entry.kind = PostingSpan::kBitmap;
      std::uint32_t count = 0;
      for (const std::uint64_t word : c.bits) count += std::popcount(word);
      entry.count = count;
      const auto* bytes = reinterpret_cast<const std::uint8_t*>(c.bits.data());
      out.insert(out.end(), bytes, bytes + c.bits.size() * sizeof(std::uint64_t));
    }
    std::memcpy(out.data() + dir_base + i * sizeof(entry), &entry, sizeof(entry));
  }
  return base;
}

bool PostingSpan::parse(const std::uint8_t* base, std::size_t avail, PostingSpan& out,
                        std::size_t& length_out) noexcept {
  out = PostingSpan{};
  if (base == nullptr || avail < kHeaderBytes) return false;
  std::uint64_t size = 0;
  std::uint32_t containers = 0;
  std::memcpy(&size, base, sizeof(size));
  std::memcpy(&containers, base + 8, sizeof(containers));

  const std::uint64_t dir_end =
      kHeaderBytes + static_cast<std::uint64_t>(containers) * sizeof(DirEntry);
  if (dir_end > avail) return false;

  std::uint64_t end = dir_end;
  std::uint64_t total = 0;
  std::uint16_t prev_key = 0;
  for (std::uint32_t c = 0; c < containers; ++c) {
    DirEntry entry;
    std::memcpy(&entry, base + kHeaderBytes + c * sizeof(DirEntry), sizeof(DirEntry));
    if (c > 0 && entry.key <= prev_key) return false;
    prev_key = entry.key;
    if (entry.payload_offset % 8 != 0) return false;
    std::uint64_t payload_bytes = 0;
    if (entry.kind == kArray) {
      if (entry.count > PostingList::kArrayMax) return false;
      payload_bytes = static_cast<std::uint64_t>(entry.count) * sizeof(std::uint16_t);
    } else if (entry.kind == kBitmap) {
      payload_bytes = PostingList::kBitmapWords * sizeof(std::uint64_t);
    } else {
      return false;
    }
    const std::uint64_t payload_end = entry.payload_offset + payload_bytes;
    if (entry.payload_offset < dir_end || payload_end > avail) return false;
    const std::uint64_t aligned_end = (payload_end + 7) & ~std::uint64_t{7};
    if (aligned_end > end) end = aligned_end;
    total += entry.count;
  }
  if (total != size) return false;

  out.base_ = base;
  out.size_ = static_cast<std::size_t>(size);
  out.container_count_ = containers;
  length_out = static_cast<std::size_t>(end > avail ? avail : end);
  return true;
}

std::vector<std::uint32_t> PostingSpan::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(size_);
  for_each([&out](std::uint32_t value) { out.push_back(value); });
  return out;
}

std::vector<std::uint32_t> PostingView::to_vector() const {
  if (vec_ != nullptr) return *vec_;
  if (list_ != nullptr) return list_->to_vector();
  if (span_ != nullptr) return span_->to_vector();
  return {data_, data_ + raw_size_};
}

}  // namespace cw::util
