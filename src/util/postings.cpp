#include "util/postings.h"

#include <stdexcept>
#include <string>

namespace cw::util {

void PostingList::append(std::uint32_t value) {
  // The ascending contract is validated in every build, not just debug: a
  // non-increasing append would silently produce an out-of-order container
  // list, breaking the ascending for_each/iterator contract every consumer
  // relies on once NDEBUG compiles an assert away. The comparison is
  // always-false on the hot path, so the branch predicts perfectly.
  if (static_cast<std::uint64_t>(value) + 1 <= last_appended_) {
    throw std::logic_error("PostingList::append: value " + std::to_string(value) +
                           " is not strictly greater than the previous append (" +
                           std::to_string(last_appended_ - 1) + ")");
  }
  last_appended_ = static_cast<std::uint64_t>(value) + 1;
  const auto key = static_cast<std::uint16_t>(value >> 16);
  const auto low = static_cast<std::uint16_t>(value & 0xFFFFu);
  if (containers_.empty() || containers_.back().key != key) {
    containers_.emplace_back();
    containers_.back().key = key;
  }
  Container& c = containers_.back();
  if (!c.bits.empty()) {
    c.bits[low >> 6] |= std::uint64_t{1} << (low & 63u);
  } else if (c.array.size() < kArrayMax) {
    c.array.push_back(low);
  } else {
    c.bits.assign(kBitmapWords, 0);
    for (const std::uint16_t v : c.array) c.bits[v >> 6] |= std::uint64_t{1} << (v & 63u);
    c.array.clear();
    c.array.shrink_to_fit();
    c.bits[low >> 6] |= std::uint64_t{1} << (low & 63u);
  }
  ++size_;
}

std::size_t PostingList::bytes() const noexcept {
  std::size_t total = sizeof(*this) + containers_.capacity() * sizeof(Container);
  for (const Container& c : containers_) {
    total += c.array.capacity() * sizeof(std::uint16_t);
    total += c.bits.capacity() * sizeof(std::uint64_t);
  }
  return total;
}

void PostingList::shrink() {
  containers_.shrink_to_fit();
  for (Container& c : containers_) c.array.shrink_to_fit();
}

std::vector<std::uint32_t> PostingList::to_vector() const {
  std::vector<std::uint32_t> out;
  out.reserve(size_);
  for_each([&out](std::uint32_t value) { out.push_back(value); });
  return out;
}

void PostingList::const_iterator::settle() {
  pos_ = 0;
  if (list_ == nullptr || container_ >= list_->containers_.size()) {
    current_ = 0;
    return;
  }
  // Containers are created on append and thus never empty.
  const Container& c = list_->containers_[container_];
  const std::uint32_t base = static_cast<std::uint32_t>(c.key) << 16;
  if (c.bits.empty()) {
    current_ = base | c.array[0];
    return;
  }
  for (std::size_t w = 0; w < kBitmapWords; ++w) {
    if (c.bits[w] != 0) {
      pos_ = static_cast<std::uint32_t>((w << 6) | std::countr_zero(c.bits[w]));
      current_ = base | pos_;
      return;
    }
  }
}

void PostingList::const_iterator::advance() {
  const Container& c = list_->containers_[container_];
  const std::uint32_t base = static_cast<std::uint32_t>(c.key) << 16;
  if (c.bits.empty()) {
    if (pos_ + 1 < c.array.size()) {
      ++pos_;
      current_ = base | c.array[pos_];
      return;
    }
  } else if (pos_ < 65535u) {
    std::uint32_t low = pos_ + 1;
    std::size_t w = low >> 6;
    std::uint64_t word = c.bits[w] & (~std::uint64_t{0} << (low & 63u));
    while (true) {
      if (word != 0) {
        pos_ = static_cast<std::uint32_t>((w << 6) | std::countr_zero(word));
        current_ = base | pos_;
        return;
      }
      if (++w == kBitmapWords) break;
      word = c.bits[w];
    }
  }
  ++container_;
  settle();
}

std::vector<std::uint32_t> PostingView::to_vector() const {
  if (vec_ != nullptr) return *vec_;
  if (list_ != nullptr) return list_->to_vector();
  return {};
}

}  // namespace cw::util
