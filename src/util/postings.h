// PostingList: a packed, roaring-style set of ascending u32 record indices.
//
// The SessionFrame keeps one posting list per port and per (vantage, port);
// at telescope scale the dense lists (port 22/23/80/445 on the telescope
// vantage) hold millions of near-contiguous indices, which a plain
// vector<uint32> stores at 4 bytes each. Here the index space is chunked by
// the high 16 bits into containers of two shapes — a sorted u16 array while
// sparse (<= 4096 entries) and a 65536-bit bitmap once dense — so a full
// run costs 2 bits/index and a sparse tail 2 bytes/index, with the
// array->bitmap cutover exactly at the break-even point (4096 * 16 bits ==
// 65536 bits).
//
// Everything iterates in ascending index order (for_each, the forward
// iterator, to_vector), so a consumer that walks a packed list observes the
// identical sequence the v1 vector held — report bytes cannot change.
//
// Build contract: append() values strictly ascending (the frame's
// secondary-structure pass is a single ascending scan). The contract is
// enforced in every build — a non-increasing append throws std::logic_error
// instead of corrupting the container order (a debug-only assert would let
// release builds silently break the ascending iteration contract). The
// check is a single always-false branch on the hot path. Not thread-safe
// during build; immutable and freely shared after.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace cw::util {

class PostingList {
 public:
  // Array -> bitmap cutover: 4096 u16s occupy exactly one bitmap's 8 KiB.
  static constexpr std::size_t kArrayMax = 4096;
  static constexpr std::size_t kBitmapWords = 65536 / 64;

  // Appends one index; must be strictly greater than every prior append.
  // Throws std::logic_error otherwise — in all build modes — leaving the
  // list exactly as it was before the call.
  void append(std::uint32_t value);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Packed footprint in bytes (diagnostics / bench).
  [[nodiscard]] std::size_t bytes() const noexcept;

  // Drops build-time slack (call once after the last append).
  void shrink();

  // Ascending iteration. for_each is the fast path (two tight loops, no
  // per-element dispatch); the iterator exists so range-for consumers read
  // exactly like they did over the v1 vector.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Container& c : containers_) {
      const std::uint32_t base = static_cast<std::uint32_t>(c.key) << 16;
      if (c.bits.empty()) {
        for (const std::uint16_t low : c.array) fn(base | low);
      } else {
        for (std::size_t w = 0; w < kBitmapWords; ++w) {
          std::uint64_t word = c.bits[w];
          while (word != 0) {
            fn(base | static_cast<std::uint32_t>((w << 6) | std::countr_zero(word)));
            word &= word - 1;
          }
        }
      }
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;

  // Appends the spill-file representation of this list to `out` (padding
  // `out` to 8 alignment first) and returns the byte offset of the blob
  // base. The layout PostingSpan reads back:
  //   u64 size (index count)
  //   u32 container_count, u32 reserved(0)
  //   container_count x {u16 key, u16 kind(0=array,1=bitmap), u32 count,
  //                      u64 payload_offset}   // offset relative to blob base
  //   8-aligned payloads: array = count x u16, bitmap = kBitmapWords x u64
  // Containers appear in ascending key order (the build order), so a
  // PostingSpan traversal yields the identical ascending index sequence.
  std::size_t serialize(std::vector<std::uint8_t>& out) const;

  class const_iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = std::uint32_t;
    using difference_type = std::ptrdiff_t;
    using pointer = const std::uint32_t*;
    using reference = std::uint32_t;

    const_iterator() = default;
    reference operator*() const { return current_; }
    const_iterator& operator++() {
      advance();
      return *this;
    }
    const_iterator operator++(int) {
      const_iterator tmp = *this;
      advance();
      return tmp;
    }
    friend bool operator==(const const_iterator& a, const const_iterator& b) {
      return a.container_ == b.container_ && a.pos_ == b.pos_;
    }
    friend bool operator!=(const const_iterator& a, const const_iterator& b) { return !(a == b); }

   private:
    friend class PostingList;
    const_iterator(const PostingList* list, std::size_t container) noexcept
        : list_(list), container_(container) {
      settle();
    }
    void advance();
    // Positions on the first element of container_ (or end).
    void settle();

    const PostingList* list_ = nullptr;
    std::size_t container_ = 0;
    // Array containers: rank of the current element. Bitmap containers: the
    // current low 16 bits. Within one container the two never mix, so
    // (container_, pos_) is a total position.
    std::uint32_t pos_ = 0;
    std::uint32_t current_ = 0;
  };

  [[nodiscard]] const_iterator begin() const noexcept { return const_iterator(this, 0); }
  [[nodiscard]] const_iterator end() const noexcept {
    return const_iterator(this, containers_.size());
  }

 private:
  struct Container {
    std::uint16_t key = 0;                // high 16 bits of every member
    std::vector<std::uint16_t> array;     // sorted; empty once bitmap
    std::vector<std::uint64_t> bits;      // kBitmapWords words; empty while array
  };

  friend class const_iterator;
  std::vector<Container> containers_;
  std::size_t size_ = 0;
  std::uint64_t last_appended_ = 0;  // (value + 1); 0 = nothing appended yet
};

// A read-only posting list parsed out of a serialized blob (the spill-file
// bytes PostingList::serialize wrote), iterated in place — no container is
// rebuilt on load. A cold SessionFrame holds one PostingSpan per port /
// (vantage, port) list, pointing straight into the mmapped frame section.
class PostingSpan {
 public:
  PostingSpan() = default;

  // Parses and validates a serialized posting list at `base` with at most
  // `avail` bytes available. On success fills `out` and `length_out` (the
  // blob's total byte length, payloads included) and returns true; on any
  // structural violation (short header, directory past the end, payload out
  // of bounds, unknown container kind) returns false and leaves `out` empty.
  static bool parse(const std::uint8_t* base, std::size_t avail, PostingSpan& out,
                    std::size_t& length_out) noexcept;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // Ascending iteration, matching PostingList::for_each element for element.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t c = 0; c < container_count_; ++c) {
      DirEntry entry;
      std::memcpy(&entry, base_ + kHeaderBytes + c * sizeof(DirEntry), sizeof(DirEntry));
      const std::uint32_t base = static_cast<std::uint32_t>(entry.key) << 16;
      if (entry.kind == kArray) {
        const auto* lows = reinterpret_cast<const std::uint16_t*>(base_ + entry.payload_offset);
        for (std::uint32_t i = 0; i < entry.count; ++i) fn(base | lows[i]);
      } else {
        const auto* words = reinterpret_cast<const std::uint64_t*>(base_ + entry.payload_offset);
        for (std::size_t w = 0; w < PostingList::kBitmapWords; ++w) {
          std::uint64_t word = words[w];
          while (word != 0) {
            fn(base | static_cast<std::uint32_t>((w << 6) | std::countr_zero(word)));
            word &= word - 1;
          }
        }
      }
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;

 private:
  static constexpr std::size_t kHeaderBytes = 16;
  static constexpr std::uint16_t kArray = 0;
  static constexpr std::uint16_t kBitmap = 1;

  struct DirEntry {
    std::uint16_t key;
    std::uint16_t kind;
    std::uint32_t count;
    std::uint64_t payload_offset;
  };
  static_assert(sizeof(DirEntry) == 16);

  friend class PostingList;  // serialize() mirrors this layout
  const std::uint8_t* base_ = nullptr;
  std::size_t size_ = 0;
  std::uint32_t container_count_ = 0;
};

// A non-owning view over any of the analysis layer's record-set shapes: a
// packed PostingList, a serialized PostingSpan (cold frame), a plain
// ascending vector<uint32>, or a raw u32 span (a frame column slice). Slices
// the table cache owns stay plain vectors; hot frame posting lists arrive
// packed; cold frames hand out spans into the mapping; kernels iterate all
// four through one branch-hoisted for_each.
class PostingView {
 public:
  PostingView() = default;
  /*implicit*/ PostingView(const PostingList& list) noexcept : list_(&list) {}
  /*implicit*/ PostingView(const PostingSpan& span) noexcept : span_(&span) {}
  /*implicit*/ PostingView(const std::vector<std::uint32_t>& vec) noexcept : vec_(&vec) {}
  /*implicit*/ PostingView(std::span<const std::uint32_t> raw) noexcept
      : data_(raw.data()), raw_size_(raw.size()) {}

  [[nodiscard]] std::size_t size() const noexcept {
    if (vec_ != nullptr) return vec_->size();
    if (list_ != nullptr) return list_->size();
    if (span_ != nullptr) return span_->size();
    return raw_size_;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (vec_ != nullptr) {
      for (const std::uint32_t value : *vec_) fn(value);
    } else if (list_ != nullptr) {
      list_->for_each(fn);
    } else if (span_ != nullptr) {
      span_->for_each(fn);
    } else {
      for (std::size_t i = 0; i < raw_size_; ++i) fn(data_[i]);
    }
  }

  [[nodiscard]] std::vector<std::uint32_t> to_vector() const;

  // The underlying vector when this view wraps one (random-access chunked
  // builds keep their v1 sharding in that case), nullptr otherwise.
  [[nodiscard]] const std::vector<std::uint32_t>* as_vector() const noexcept { return vec_; }

 private:
  const PostingList* list_ = nullptr;
  const PostingSpan* span_ = nullptr;
  const std::vector<std::uint32_t>* vec_ = nullptr;
  const std::uint32_t* data_ = nullptr;
  std::size_t raw_size_ = 0;
};

}  // namespace cw::util
