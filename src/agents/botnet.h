// Botnet actors, expressed as calibrated campaign configurations plus a
// worker pool:
//
//  - Mirai-like: hundreds of infected sources across consumer ISP ASes,
//    Telnet credential stuffing from the Mirai dictionary, no telescope
//    avoidance (botnets historically scan unused space freely), and the
//    first-address-of-a-/16 seeding preference on port 22 (Section 4.2,
//    Figure 1a).
//  - Tsunami-like: thousands of sources that latch onto a handful of fixed
//    addresses (the single Hurricane Electric IP and the four telescope IPs
//    of Figure 1d) instead of sweeping.
#pragma once

#include <vector>

#include "agents/campaign.h"

namespace cw::agents {

// Mirai-style Telnet worker swarm configuration. `asn` is the consumer ISP
// the workers live in; a real deployment spreads across several ASes, so
// population construction instantiates this for a list of ASes.
CampaignConfig mirai_config(net::Asn asn, int sources, double telescope_coverage = 0.9);

// The Mirai SSH-port seeding wave: port 22, strong first-of-/16 preference.
CampaignConfig mirai_ssh_seed_config(net::Asn asn, int sources);

// Tsunami-style latching botnet: all sources hammer exactly the given
// addresses on the given port.
CampaignConfig tsunami_config(net::Asn asn, int sources, std::vector<net::IPv4Addr> latched,
                              net::Port port);

}  // namespace cw::agents
