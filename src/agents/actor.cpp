#include "agents/actor.h"

#include "util/rng.h"

namespace cw::agents {
namespace {

// Source addresses live in a reserved simulation block (176.0.0.0/6-ish)
// that never overlaps the monitored provider pools, so a source IP can
// never be mistaken for a vantage point. Uniqueness per actor is guaranteed
// by embedding the actor id.
net::IPv4Addr make_source(capture::ActorId actor, std::uint32_t index) {
  return net::IPv4Addr(0xb0000000u | ((actor & 0xffffu) << 12) | (index & 0xfffu));
}

}  // namespace

Actor::Actor(capture::ActorId id, net::Asn asn, int source_count, util::Rng rng)
    : rng_(rng), id_(id), asn_(asn) {
  sources_.reserve(static_cast<std::size_t>(source_count));
  for (int i = 0; i < source_count; ++i) {
    sources_.push_back(make_source(id, static_cast<std::uint32_t>(i)));
  }
}

net::IPv4Addr Actor::next_source() {
  const net::IPv4Addr addr = sources_[next_source_];
  next_source_ = (next_source_ + 1) % sources_.size();
  return addr;
}

bool Actor::covers(net::IPv4Addr addr, double coverage, std::uint64_t salt) const noexcept {
  if (coverage >= 1.0) return true;
  if (coverage <= 0.0) return false;
  // A deterministic hash coin. Salt 0 yields a stable subset: the same
  // actor always covers the same addresses, which is what makes neighboring
  // honeypots see persistently different actor populations (Section 4.1).
  std::uint64_t h = (static_cast<std::uint64_t>(id_) << 32) | addr.value();
  h ^= salt * 0xd1342543de82ef95ULL;
  h = util::splitmix64(h);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < coverage;
}

void Actor::emit(AgentContext& ctx, util::SimTime time, net::IPv4Addr dst, net::Port port,
                 std::string payload, std::optional<proto::Credential> credential,
                 net::Protocol intended, bool malicious, net::Transport transport) {
  if (time < 0 || time >= ctx.window_end) return;  // outside the observation window
  capture::ScanEvent event;
  event.transport = transport;
  event.time = time;
  event.src = next_source();
  event.src_as = asn_;
  event.dst = dst;
  event.dst_port = port;
  event.payload = std::move(payload);
  event.credential = std::move(credential);
  event.intended_protocol = intended;
  event.malicious_intent = malicious;
  event.actor = id_;
  ctx.collector->deliver(event);
}

}  // namespace cw::agents
