// The calibrated scanning population. Build() instantiates every actor
// class with parameters tuned so the analysis pipelines recover the paper's
// qualitative results from raw traffic:
//
//  * per-port telescope participation rates (Tables 8-10),
//  * botnet structure preferences and latching (Section 4.2, Figure 1),
//  * search-engine mining with the Censys/Shodan protocol asymmetry
//    (Section 4.3, Table 3),
//  * Asia-Pacific geographic discrimination (Section 5.1, Tables 4-5),
//  * unexpected-protocol scanning on ports 80/8080 (Section 6, Table 11),
//  * a long tail of background radiation that dominates telescope volume.
//
// The numbers of actors scale linearly with `scale` so tests can run the
// same population cheaply.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "agents/actor.h"
#include "topology/deployment.h"

namespace cw::agents {

struct PopulationConfig {
  std::uint64_t seed = 0x706f70756c617465ULL;
  double scale = 1.0;
  topology::ScenarioYear year = topology::ScenarioYear::k2021;
};

class Population {
 public:
  static Population build(const PopulationConfig& config,
                          const topology::Deployment& deployment);

  // Schedules every actor on the context's engine.
  void start_all(AgentContext& ctx);

  [[nodiscard]] const std::vector<std::unique_ptr<Actor>>& actors() const noexcept {
    return actors_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return actors_.size(); }

  // Ground-truth intent per actor id (feeds the reputation oracle).
  [[nodiscard]] std::unordered_map<capture::ActorId, bool> ground_truth() const;

  // Installs an extra actor after build() — used by adversary scenarios to
  // graft adaptive attackers, defenders, and probers onto (or in place of)
  // the calibrated population.
  void adopt(std::unique_ptr<Actor> actor) { actors_.push_back(std::move(actor)); }

  // Smallest actor id that is safe for an adopted actor: past the crawler
  // reservations and every actor built so far.
  [[nodiscard]] capture::ActorId next_actor_id() const noexcept {
    capture::ActorId next = kFirstPopulationActorId;
    for (const std::unique_ptr<Actor>& actor : actors_) {
      next = std::max(next, static_cast<capture::ActorId>(actor->id() + 1));
    }
    return next;
  }

  // Reserved actor ids for infrastructure "actors" whose traffic is emitted
  // outside the population (the search-engine crawlers).
  static constexpr capture::ActorId kCensysActorId = 1;
  static constexpr capture::ActorId kShodanActorId = 2;
  static constexpr capture::ActorId kFirstPopulationActorId = 16;

 private:
  std::vector<std::unique_ptr<Actor>> actors_;
};

}  // namespace cw::agents
