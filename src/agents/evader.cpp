#include "agents/evader.h"

#include <algorithm>

#include "proto/payloads.h"
#include "util/rng.h"

namespace cw::agents {

FingerprintingEvader::FingerprintingEvader(capture::ActorId id, util::Rng rng,
                                           EvaderConfig config)
    : Actor(id, config.asn, std::max(config.sources, 1), rng), config_(std::move(config)) {}

void FingerprintingEvader::start(AgentContext& ctx) {
  for (int wave = 0; wave < config_.waves; ++wave) {
    const util::SimTime latest_start =
        std::max<util::SimTime>(ctx.window_end - config_.wave_duration, 1);
    const util::SimTime wave_start =
        static_cast<util::SimTime>(rng_.next_below(static_cast<std::uint64_t>(latest_start)));
    ctx.engine->schedule_at(wave_start,
                            [this, &ctx, wave_start](sim::Engine&) { run_wave(ctx, wave_start); });
  }
}

bool FingerprintingEvader::detects_honeypot(net::IPv4Addr addr) const noexcept {
  // Stable per-(actor, address) verdict: fingerprinting is a deterministic
  // procedure against a fixed service, so re-probing never changes it.
  std::uint64_t h = (static_cast<std::uint64_t>(id()) << 32) ^ addr.value() ^
                    0x66707265766164ULL;
  const double coin = static_cast<double>(util::splitmix64(h) >> 11) * 0x1.0p-53;
  return coin < config_.detection_rate;
}

void FingerprintingEvader::run_wave(AgentContext& ctx, util::SimTime wave_start) {
  const auto scan_class = [&](topology::NetworkType type, double coverage) {
    if (coverage <= 0.0) return;
    for (const std::size_t index : ctx.universe->of_type(type)) {
      const topology::Target& target = ctx.universe->targets()[index];
      if (!covers(target.address, coverage)) continue;
      const util::SimTime t = wave_start + static_cast<util::SimTime>(rng_.next_below(
                                               static_cast<std::uint64_t>(config_.wave_duration)));
      // The fingerprinting probe itself: a banner grab, benign on the wire.
      emit(ctx, t, target.address, config_.port, proto::probe_payload(config_.protocol),
           std::nullopt, config_.protocol, /*malicious=*/false);
      ++probed_;
      if (detects_honeypot(target.address)) {
        ++evaded_;  // classified as a honeypot: never attacked
        continue;
      }
      const int attempts = static_cast<int>(
          rng_.uniform_int(config_.min_attempts, std::max(config_.max_attempts,
                                                          config_.min_attempts)));
      for (int i = 0; i < attempts; ++i) {
        const proto::Credential& credential =
            proto::sample_credential(config_.dictionary, rng_);
        emit(ctx, t + (i + 1) * 4 * util::kSecond, target.address, config_.port,
             config_.protocol == net::Protocol::kSsh ? proto::ssh_client_banner()
                                                     : proto::telnet_negotiation(),
             credential, config_.protocol, /*malicious=*/true);
      }
    }
  };
  scan_class(topology::NetworkType::kCloud, config_.cloud_coverage);
  scan_class(topology::NetworkType::kEducation, config_.edu_coverage);
}

}  // namespace cw::agents
