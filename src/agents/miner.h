// Actors that consult the Internet-service search engines:
//
//  - SearchEngineMiner (Section 4.3): periodically queries Censys and/or
//    Shodan for live services on its protocol and attacks each hit in a
//    short burst — producing the traffic spikes and elevated unique-
//    credential counts the leak experiment measures.
//  - NmapProber: the Avast/M247/CDN77 behavior — nmap-style HTTP probing
//    of cloud and education networks that actively *avoids* services
//    currently listed on Censys (it sources only up-to-date index data, so
//    previously-indexed-but-delisted services are still probed).
#pragma once

#include <optional>

#include "agents/actor.h"
#include "agents/campaign.h"
#include "proto/credentials.h"
#include "proto/exploits.h"

namespace cw::agents {

enum class EnginePreference : std::uint8_t { kCensys = 0, kShodan, kBoth };

struct MinerConfig {
  std::string label;
  net::Asn asn = 0;
  int sources = 2;
  net::Port port = 22;
  net::Protocol protocol = net::Protocol::kSsh;
  EnginePreference engines = EnginePreference::kBoth;
  PayloadKind payload = PayloadKind::kBruteforce;
  proto::CredentialDictionary dictionary = proto::CredentialDictionary::kGenericSsh;
  std::optional<proto::ExploitKind> exploit;
  util::SimDuration query_interval = 12 * util::kHour;
  // When set, the miner searches the engines by banner text ("OpenSSH_7.4")
  // instead of by port — how attackers actually use Shodan/Censys to find
  // specific vulnerable software.
  std::string banner_query;
  // When set, the miner also mines *historical* index data: addresses ever
  // indexed on `history_port` are attacked on `port` even if the old
  // service is gone — the mechanism behind the previously-leaked effect.
  bool mine_history = false;
  net::Port history_port = 80;
  double attack_fraction = 1.0;       // fraction of index hits attacked per burst
  // Hard cap on targets attacked per query round; miners work from curated
  // hit lists, not the full index dump.
  std::size_t max_targets_per_query = 40;
  int burst_attempts_min = 6;         // unique credentials per burst (the paper
  int burst_attempts_max = 15;        // measures ~3x more unique passwords)
  util::SimDuration burst_duration = 20 * util::kMinute;
};

class SearchEngineMiner : public Actor {
 public:
  SearchEngineMiner(capture::ActorId id, util::Rng rng, MinerConfig config);

  void start(AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "search-miner"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return true; }

  [[nodiscard]] const MinerConfig& config() const noexcept { return config_; }

 private:
  void query_and_attack(AgentContext& ctx);
  void attack(AgentContext& ctx, net::IPv4Addr target);

  MinerConfig config_;
};

struct NmapProberConfig {
  net::Asn asn = 0;
  int sources = 2;
  net::Port port = 80;
  double cloud_coverage = 0.8;
  double edu_coverage = 0.8;
  int waves = 2;
  util::SimDuration wave_duration = util::kDay;
};

class NmapProber : public Actor {
 public:
  NmapProber(capture::ActorId id, util::Rng rng, NmapProberConfig config);

  void start(AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "nmap-prober"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return false; }

 private:
  void run_wave(AgentContext& ctx, util::SimTime wave_start);

  NmapProberConfig config_;
};

}  // namespace cw::agents
