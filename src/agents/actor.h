// Scanner-actor framework. An actor models one scanning campaign (a botnet,
// a brute-force operation, a research scanner, a search-engine miner): it
// owns a source-IP pool inside one autonomous system, derives all its
// randomness from a per-actor stream, and schedules its scanning waves on
// the discrete-event engine.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "capture/collector.h"
#include "capture/event.h"
#include "net/asn.h"
#include "searchengine/engine.h"
#include "sim/engine.h"
#include "topology/universe.h"
#include "util/rng.h"

namespace cw::agents {

struct AgentContext {
  sim::Engine* engine = nullptr;
  const topology::TargetUniverse* universe = nullptr;
  capture::Collector* collector = nullptr;
  search::ServiceSearchEngine* censys = nullptr;
  search::ServiceSearchEngine* shodan = nullptr;
  util::SimTime window_end = util::kWeek;  // observation window length
};

class Actor {
 public:
  Actor(capture::ActorId id, net::Asn asn, int source_count, util::Rng rng);
  virtual ~Actor() = default;
  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  // Schedules this actor's activity on the context's event engine.
  virtual void start(AgentContext& ctx) = 0;

  [[nodiscard]] virtual std::string_view kind() const noexcept = 0;

  // Ground-truth intent; feeds the reputation oracle, never the analyses.
  [[nodiscard]] virtual bool is_malicious() const noexcept = 0;

  [[nodiscard]] capture::ActorId id() const noexcept { return id_; }
  [[nodiscard]] net::Asn asn() const noexcept { return asn_; }
  [[nodiscard]] const std::vector<net::IPv4Addr>& sources() const noexcept { return sources_; }

 protected:
  // A source address for the next connection: actors rotate through their
  // pool, which is how multi-IP campaigns appear as many unique scan IPs
  // from one AS.
  net::IPv4Addr next_source();

  // Deterministic per-(actor, target, salt) coin: true if this actor's
  // sub-sampled Internet-wide scan covers the address. With salt 0 the
  // subset is stable across waves (a persistent target preference); passing
  // the wave index re-randomizes per wave, like a ZMap run re-sampling its
  // target list.
  [[nodiscard]] bool covers(net::IPv4Addr addr, double coverage,
                            std::uint64_t salt = 0) const noexcept;

  // Sends one connection attempt through the collector.
  void emit(AgentContext& ctx, util::SimTime time, net::IPv4Addr dst, net::Port port,
            std::string payload, std::optional<proto::Credential> credential,
            net::Protocol intended, bool malicious,
            net::Transport transport = net::Transport::kTcp);

  util::Rng rng_;

 private:
  capture::ActorId id_;
  net::Asn asn_;
  std::vector<net::IPv4Addr> sources_;
  std::size_t next_source_ = 0;
};

}  // namespace cw::agents
