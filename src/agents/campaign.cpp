#include "agents/campaign.h"

#include <algorithm>

#include "proto/payloads.h"

namespace cw::agents {

ScanCampaign::ScanCampaign(capture::ActorId id, util::Rng rng, CampaignConfig config)
    : Actor(id, config.asn, std::max(config.sources, 1), rng), config_(std::move(config)) {}

void ScanCampaign::start(AgentContext& ctx) {
  for (int wave = 0; wave < config_.waves; ++wave) {
    const util::SimTime latest_start =
        std::max<util::SimTime>(ctx.window_end - config_.wave_duration, 1);
    const util::SimTime wave_start =
        static_cast<util::SimTime>(rng_.next_below(static_cast<std::uint64_t>(latest_start)));
    ctx.engine->schedule_at(wave_start,
                            [this, &ctx, wave_start](sim::Engine&) { run_wave(ctx, wave_start); });
  }
}

bool ScanCampaign::region_admitted(const topology::Target& target,
                                   const AgentContext& ctx) const {
  const TargetFilter& filter = config_.filter;
  if (filter.region_allow.empty() && filter.region_deny.empty()) return true;
  // Geographic targeting is a policy about *services*; telescope sweeps are
  // governed solely by telescope_coverage.
  if (target.type == topology::NetworkType::kTelescope) return true;
  // Entries match either a bare region code ("AP-SG": any provider there)
  // or a provider-qualified vantage name ("AWS/AP-AU").
  const topology::VantagePoint& vp = ctx.universe->deployment().at(target.vantage);
  const std::string code = vp.region.code();
  for (const std::string& denied : filter.region_deny) {
    if (code == denied || vp.name == denied) return false;
  }
  if (filter.region_allow.empty()) return true;
  for (const std::string& allowed : filter.region_allow) {
    if (code == allowed || vp.name == allowed) return true;
  }
  return false;
}

double ScanCampaign::effective_coverage(const topology::Target& target, double base) const {
  const TargetFilter& filter = config_.filter;
  double coverage = base;
  if (target.address.has_255_octet()) coverage *= filter.weight_any_255;
  if (target.address.ends_in_255()) coverage *= filter.weight_last_255;
  if (target.address.is_first_of_slash16()) coverage *= filter.weight_first_of_16;
  auto it = filter.continent_weight.find(target.continent);
  if (it != filter.continent_weight.end()) coverage *= it->second;
  return std::min(coverage, 1.0);
}

void ScanCampaign::scan_target(AgentContext& ctx, util::SimTime time,
                               const topology::Target& target, net::Port port) {
  const net::Protocol protocol = config_.protocol != net::Protocol::kUnknown
                                     ? config_.protocol
                                     : net::iana_assignment(port);
  switch (config_.payload) {
    case PayloadKind::kSynOnly:
      emit(ctx, time, target.address, port, {}, std::nullopt, protocol, config_.malicious,
           config_.transport);
      return;
    case PayloadKind::kBenignProbe:
      // Benign HTTP sweeps fetch a handful of paths per operator (/, then
      // /robots.txt, ...), so one actor contributes several distinct
      // payloads — real benign HTTP is far more diverse than exploit
      // campaigns, which reuse one byte-identical payload.
      emit(ctx, time, target.address, port,
           protocol == net::Protocol::kHttp
               ? proto::http_benign_request(static_cast<std::uint32_t>(id() * 8 + current_wave_))
               : proto::probe_payload(protocol),
           std::nullopt, protocol, config_.malicious, config_.transport);
      return;
    case PayloadKind::kNmapProbe:
      emit(ctx, time, target.address, port,
           "GET / HTTP/1.0\r\nUser-Agent: Mozilla/5.0 (compatible; Nmap Scripting Engine)"
           "\r\n\r\n",
           std::nullopt, protocol, config_.malicious);
      return;
    case PayloadKind::kExploit: {
      const proto::ExploitKind kind =
          config_.exploit.value_or(proto::ExploitKind::kLog4Shell);
      // Exploit chains retry delivery; attempts bounds model that.
      const int attempts = static_cast<int>(rng_.uniform_int(
          config_.min_attempts, std::max(config_.max_attempts, config_.min_attempts)));
      for (int i = 0; i < attempts; ++i) {
        emit(ctx, time + i * 5 * util::kSecond, target.address, port,
             proto::exploit_payload(kind, id()), std::nullopt, proto::exploit_protocol(kind),
             /*malicious=*/true, config_.transport);
      }
      return;
    }
    case PayloadKind::kBruteforce: {
      const int attempts = static_cast<int>(
          rng_.uniform_int(config_.min_attempts, std::max(config_.max_attempts, config_.min_attempts)));
      const auto& dict = proto::dictionary(config_.dictionary);
      for (int i = 0; i < attempts; ++i) {
        proto::Credential credential =
            config_.dict_slice_count > 0
                ? proto::sample_credential_slice(
                      config_.dictionary, static_cast<std::size_t>(config_.dict_slice_offset),
                      static_cast<std::size_t>(config_.dict_slice_count), rng_)
                : proto::sample_credential(config_.dictionary, rng_);
        if (config_.favorite_weight > 0.0 && rng_.bernoulli(config_.favorite_weight)) {
          const proto::Credential& favorite =
              dict[static_cast<std::size_t>(config_.dict_offset) % dict.size()];
          credential.username = favorite.username;
          if (!config_.favorite_username_only) credential.password = favorite.password;
        }
        const std::string banner = protocol == net::Protocol::kSsh
                                       ? (config_.ssh_software.empty()
                                              ? proto::ssh_client_banner()
                                              : proto::ssh_client_banner(config_.ssh_software))
                                       : proto::telnet_negotiation();
        emit(ctx, time + i * 3 * util::kSecond, target.address, port, banner,
             std::move(credential), protocol, /*malicious=*/true);
      }
      return;
    }
  }
}

void ScanCampaign::run_wave(AgentContext& ctx, util::SimTime wave_start) {
  ++current_wave_;
  const TargetFilter& filter = config_.filter;
  const auto& targets = ctx.universe->targets();

  // Latched campaigns fixate on their addresses and hammer them.
  if (!filter.latch_addresses.empty()) {
    for (const net::IPv4Addr addr : filter.latch_addresses) {
      const auto index = ctx.universe->find(addr);
      if (!index) continue;
      const topology::Target& target = targets[*index];
      for (net::Port port : config_.ports) {
        // Every source IP in the pool hits the latched target once per wave.
        const int hits = static_cast<int>(sources().size());
        for (int i = 0; i < hits; ++i) {
          const util::SimTime t =
              wave_start + static_cast<util::SimTime>(rng_.next_below(
                               static_cast<std::uint64_t>(config_.wave_duration)));
          scan_target(ctx, t, target, port);
        }
      }
    }
    return;
  }

  struct ClassCoverage {
    topology::NetworkType type;
    double coverage;
  };
  const ClassCoverage classes[] = {
      {topology::NetworkType::kCloud, filter.cloud_coverage},
      {topology::NetworkType::kEducation, filter.edu_coverage},
      {topology::NetworkType::kTelescope, filter.telescope_coverage},
  };

  for (const ClassCoverage& cls : classes) {
    if (cls.coverage <= 0.0) continue;
    const std::vector<std::size_t>& indices = ctx.universe->of_type(cls.type);
    if (indices.empty()) continue;
    // Spread the wave's probes across its duration in address order with
    // jitter — the zmap-style randomized-order detail does not affect any
    // analysis, but keeping per-target times spread out does (hourly rates).
    for (const std::size_t index : indices) {
      const topology::Target& target = targets[index];
      if (!region_admitted(target, ctx)) continue;
      const double coverage = effective_coverage(target, cls.coverage);
      const std::uint64_t salt =
          config_.stable_subset ? 0 : static_cast<std::uint64_t>(current_wave_);
      if (!covers(target.address, coverage, salt)) continue;
      for (net::Port port : config_.ports) {
        const util::SimTime t =
            wave_start + static_cast<util::SimTime>(
                             rng_.next_below(static_cast<std::uint64_t>(config_.wave_duration)));
        scan_target(ctx, t, target, port);
      }
    }
  }
}

}  // namespace cw::agents
