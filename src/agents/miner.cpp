#include "agents/miner.h"

#include <algorithm>
#include <set>

#include "proto/payloads.h"

namespace cw::agents {

SearchEngineMiner::SearchEngineMiner(capture::ActorId id, util::Rng rng, MinerConfig config)
    : Actor(id, config.asn, std::max(config.sources, 1), rng), config_(std::move(config)) {}

void SearchEngineMiner::start(AgentContext& ctx) {
  // First query lands at a random offset within one interval, then repeats.
  const util::SimTime first = static_cast<util::SimTime>(
      rng_.next_below(static_cast<std::uint64_t>(config_.query_interval)));
  for (util::SimTime t = first; t < ctx.window_end; t += config_.query_interval) {
    ctx.engine->schedule_at(t, [this, &ctx](sim::Engine&) { query_and_attack(ctx); });
  }
}

void SearchEngineMiner::query_and_attack(AgentContext& ctx) {
  std::set<std::uint32_t> hits;
  const bool use_censys =
      config_.engines == EnginePreference::kCensys || config_.engines == EnginePreference::kBoth;
  const bool use_shodan =
      config_.engines == EnginePreference::kShodan || config_.engines == EnginePreference::kBoth;
  if (use_censys && ctx.censys != nullptr) {
    if (config_.banner_query.empty()) {
      for (net::IPv4Addr addr : ctx.censys->query_port(config_.port)) hits.insert(addr.value());
    } else {
      for (net::IPv4Addr addr : ctx.censys->query_banner(config_.banner_query)) {
        hits.insert(addr.value());
      }
    }
    if (config_.mine_history) {
      for (net::IPv4Addr addr : ctx.censys->query_port_history(config_.history_port)) {
        hits.insert(addr.value());
      }
    }
  }
  if (use_shodan && ctx.shodan != nullptr) {
    if (config_.banner_query.empty()) {
      for (net::IPv4Addr addr : ctx.shodan->query_port(config_.port)) hits.insert(addr.value());
    } else {
      for (net::IPv4Addr addr : ctx.shodan->query_banner(config_.banner_query)) {
        hits.insert(addr.value());
      }
    }
    if (config_.mine_history) {
      for (net::IPv4Addr addr : ctx.shodan->query_port_history(config_.history_port)) {
        hits.insert(addr.value());
      }
    }
  }
  // Sample the hit list uniformly so the cap doesn't bias toward low
  // addresses (the miner's "curated list" is a random subset of the dump).
  std::vector<std::uint32_t> hit_list(hits.begin(), hits.end());
  rng_.shuffle(hit_list);
  std::size_t attacked = 0;
  for (std::uint32_t value : hit_list) {
    if (attacked >= config_.max_targets_per_query) break;
    if (!rng_.bernoulli(config_.attack_fraction)) continue;
    attack(ctx, net::IPv4Addr(value));
    ++attacked;
  }
}

void SearchEngineMiner::attack(AgentContext& ctx, net::IPv4Addr target) {
  const util::SimTime start = ctx.engine->now();
  if (config_.payload == PayloadKind::kExploit) {
    const proto::ExploitKind kind = config_.exploit.value_or(proto::ExploitKind::kLog4Shell);
    // Exploit bursts: several delivery attempts of the same payload.
    const int shots = static_cast<int>(rng_.uniform_int(2, 3));
    for (int i = 0; i < shots; ++i) {
      const util::SimTime t = start + static_cast<util::SimTime>(rng_.next_below(
                                          static_cast<std::uint64_t>(config_.burst_duration)));
      emit(ctx, t, target, config_.port, proto::exploit_payload(kind, id()), std::nullopt,
           proto::exploit_protocol(kind), /*malicious=*/true);
    }
    return;
  }
  // Brute-force burst: many *unique* credentials in a short window — the
  // spike signature the KS test detects.
  const int attempts = static_cast<int>(rng_.uniform_int(
      config_.burst_attempts_min,
      std::max(config_.burst_attempts_max, config_.burst_attempts_min)));
  std::set<std::pair<std::string, std::string>> used;
  for (int i = 0; i < attempts; ++i) {
    proto::Credential credential = proto::sample_credential(config_.dictionary, rng_);
    // Force uniqueness within the burst by perturbing repeats.
    if (!used.insert({credential.username, credential.password}).second) {
      credential.password += std::to_string(i);
    }
    const util::SimTime t = start + static_cast<util::SimTime>(rng_.next_below(
                                        static_cast<std::uint64_t>(config_.burst_duration)));
    const std::string banner = config_.protocol == net::Protocol::kSsh
                                   ? proto::ssh_client_banner()
                                   : proto::telnet_negotiation();
    emit(ctx, t, target, config_.port, banner, credential, config_.protocol,
         /*malicious=*/true);
  }
}

NmapProber::NmapProber(capture::ActorId id, util::Rng rng, NmapProberConfig config)
    : Actor(id, config.asn, std::max(config.sources, 1), rng), config_(std::move(config)) {}

void NmapProber::start(AgentContext& ctx) {
  for (int wave = 0; wave < config_.waves; ++wave) {
    const util::SimTime latest_start =
        std::max<util::SimTime>(ctx.window_end - config_.wave_duration, 1);
    const util::SimTime wave_start =
        static_cast<util::SimTime>(rng_.next_below(static_cast<std::uint64_t>(latest_start)));
    ctx.engine->schedule_at(wave_start,
                            [this, &ctx, wave_start](sim::Engine&) { run_wave(ctx, wave_start); });
  }
}

void NmapProber::run_wave(AgentContext& ctx, util::SimTime wave_start) {
  const auto scan_class = [&](topology::NetworkType type, double coverage) {
    if (coverage <= 0.0) return;
    for (std::size_t index : ctx.universe->of_type(type)) {
      const topology::Target& target = ctx.universe->targets()[index];
      // The live Censys index is consulted before each probe: currently
      // listed services are skipped.
      if (ctx.censys != nullptr && ctx.censys->currently_indexed(target.address, config_.port)) {
        continue;
      }
      if (!covers(target.address, coverage)) continue;
      const util::SimTime t = wave_start + static_cast<util::SimTime>(rng_.next_below(
                                               static_cast<std::uint64_t>(config_.wave_duration)));
      emit(ctx, t, target.address, config_.port,
           "GET / HTTP/1.0\r\nUser-Agent: Mozilla/5.0 (compatible; Nmap Scripting Engine)"
           "\r\n\r\n",
           std::nullopt, net::Protocol::kHttp, /*malicious=*/false);
    }
  };
  scan_class(topology::NetworkType::kCloud, config_.cloud_coverage);
  scan_class(topology::NetworkType::kEducation, config_.edu_coverage);
}

}  // namespace cw::agents
