#include "agents/population.h"

#include <algorithm>
#include <cmath>

#include "agents/botnet.h"
#include "agents/campaign.h"
#include "agents/evader.h"
#include "agents/miner.h"
#include "net/asn.h"

namespace cw::agents {
namespace {

// Builder state threaded through the per-port constructors.
struct Builder {
  const PopulationConfig* config;
  const topology::Deployment* deployment;
  util::Rng rng;
  capture::ActorId next_id = Population::kFirstPopulationActorId;
  std::vector<std::unique_ptr<Actor>>* actors;
  std::vector<net::Asn> tail_ases;       // synthetic long-tail origins
  std::vector<net::Asn> cn_ases;         // China-registered origins
  // Bulk-hosting origins shared by many campaigns. Partial-coverage
  // campaigns draw from this pool: several independent half-coverage
  // subsets under one AS smooth out at the AS level (which is why the
  // paper's username differences outnumber its AS differences on SSH).
  std::vector<net::Asn> bulk_ases = {net::kAsnChinanet, net::kAsnChinaMobile,
                                     net::kAsnDigitalOcean, net::kAsnOvh, net::kAsnHetzner};

  net::Asn random_bulk_as() { return bulk_ases[rng.index(bulk_ases.size())]; }

  [[nodiscard]] int scaled(int count) const {
    return std::max(1, static_cast<int>(std::lround(count * config->scale)));
  }

  net::Asn random_tail_as() { return tail_ases[rng.index(tail_ases.size())]; }
  net::Asn random_cn_as() { return cn_ases[rng.index(cn_ases.size())]; }

  void add_campaign(CampaignConfig config_in) {
    const capture::ActorId id = next_id++;
    actors->push_back(std::make_unique<ScanCampaign>(id, rng.stream(id), std::move(config_in)));
  }
  void add_miner(MinerConfig config_in) {
    const capture::ActorId id = next_id++;
    actors->push_back(std::make_unique<SearchEngineMiner>(id, rng.stream(id), std::move(config_in)));
  }
  void add_nmap(NmapProberConfig config_in) {
    const capture::ActorId id = next_id++;
    actors->push_back(std::make_unique<NmapProber>(id, rng.stream(id), std::move(config_in)));
  }
  void add_evader(EvaderConfig config_in) {
    const capture::ActorId id = next_id++;
    actors->push_back(
        std::make_unique<FingerprintingEvader>(id, rng.stream(id), std::move(config_in)));
  }
};

// Locates a vantage point by its display name; returns nullptr when the
// scenario year does not deploy it.
const topology::VantagePoint* find_vantage(const topology::Deployment& deployment,
                                           std::string_view name) {
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    if (vp.name == name) return &vp;
  }
  return nullptr;
}

// --- SSH (ports 22, 2222) ---------------------------------------------------
// Attackers on SSH-assigned ports avoid the telescope hardest: <= 7.5% of
// malicious cloud-targeting IPs appear there (Table 9); overall scanner
// overlap is 13% on 22 and 9% on 2222 (Table 8).
void build_ssh(Builder& b) {
  const int bruteforcers = b.scaled(22);
  for (int i = 0; i < bruteforcers; ++i) {
    CampaignConfig c;
    c.label = "ssh-bruteforce";
    // Chinanet and China Mobile dominate cloud-/edu-targeting SSH attackers
    // (12x / 2.5x more than in the telescope, Section 5.2).
    const double cn = b.rng.uniform();
    c.asn = cn < 0.25   ? net::kAsnChinanet
            : cn < 0.40 ? net::kAsnChinaMobile
            : cn < 0.50 ? b.random_cn_as()
                        : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(2, 8));
    c.ports = {22};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericSsh;
    c.malicious = true;
    c.waves = static_cast<int>(b.rng.uniform_int(2, 4));
    c.min_attempts = 3;
    c.max_attempts = 12;
    // Tool-specific username preference (Table 2: SSH top usernames differ
    // across neighborhoods far more than top passwords do).
    c.dict_offset = i;
    c.favorite_weight = 0.45;
    c.favorite_username_only = true;
    // Most campaigns sweep nearly everything; a minority's stable
    // half-coverage subsets create the neighborhood differences.
    const bool partial = b.rng.bernoulli(0.3);
    if (partial) c.asn = b.random_bulk_as();
    c.filter.cloud_coverage = partial ? b.rng.uniform(0.45, 0.7) : b.rng.uniform(0.9, 1.0);
    c.filter.edu_coverage = c.filter.cloud_coverage;
    c.filter.telescope_coverage = b.rng.bernoulli(0.05) ? 0.6 : 0.0;
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
  // Stable-subset brute-force tools: each persistently covers its own
  // half of the address space with its own favorite username, and they all
  // originate from the two dominant source ASes. Summed per AS the subsets
  // smooth out, so neighborhoods differ in top usernames more often than in
  // top ASes — exactly Table 2's SSH pattern (55% vs 44%).
  const int tools = b.scaled(8);
  for (int i = 0; i < tools; ++i) {
    CampaignConfig c;
    c.label = "ssh-bruteforce-tool";
    c.asn = i % 2 == 0 ? net::kAsnChinanet : net::kAsnChinaMobile;
    c.sources = static_cast<int>(b.rng.uniform_int(2, 6));
    c.ports = {22};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericSsh;
    c.malicious = true;
    c.waves = 3;
    c.min_attempts = 3;
    c.max_attempts = 8;
    c.dict_offset = 5 + i;
    c.favorite_weight = 0.6;
    c.favorite_username_only = true;
    c.stable_subset = true;  // a persistent neighbor preference
    c.filter.cloud_coverage = b.rng.uniform(0.4, 0.6);
    c.filter.edu_coverage = b.rng.uniform(0.4, 0.6);
    c.filter.telescope_coverage = 0.0;
    b.add_campaign(std::move(c));
  }
  // Benign/recon banner grabbers participate in the telescope more often.
  const int recon = b.scaled(8);
  for (int i = 0; i < recon; ++i) {
    CampaignConfig c;
    c.label = "ssh-recon";
    // Cogent-hosted scanners prefer clouds over education networks
    // (7x more in clouds, Section 5.2).
    c.asn = i == 0 ? net::kAsnCogent : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
    c.ports = {22};
    c.payload = PayloadKind::kBenignProbe;
    c.malicious = false;
    c.waves = 1;
    c.filter.cloud_coverage = b.rng.uniform(0.85, 1.0);
    c.filter.edu_coverage = i == 0 ? 0.1 : b.rng.uniform(0.85, 1.0);
    c.filter.telescope_coverage = b.rng.bernoulli(0.5) ? 0.7 : 0.0;
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
  // Port 2222: same shape, even stronger telescope avoidance.
  const int alt = b.scaled(9);
  for (int i = 0; i < alt; ++i) {
    CampaignConfig c;
    c.label = "ssh2222-bruteforce";
    c.asn = b.rng.bernoulli(0.3) ? b.random_cn_as() : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 4));
    c.ports = {2222};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericSsh;
    c.malicious = true;
    c.waves = static_cast<int>(b.rng.uniform_int(1, 2));
    c.min_attempts = 2;
    c.max_attempts = 6;
    c.dict_offset = 3 + i;
    c.favorite_weight = 0.3;
    c.favorite_username_only = true;
    c.filter.cloud_coverage = b.rng.bernoulli(0.3) ? b.rng.uniform(0.5, 0.7)
                                                   : b.rng.uniform(0.9, 1.0);
    c.filter.edu_coverage = c.filter.cloud_coverage;
    c.filter.telescope_coverage = b.rng.bernoulli(0.04) ? 0.6 : 0.0;
    b.add_campaign(std::move(c));
  }
}

// --- Telnet (ports 23, 2323) ------------------------------------------------
// Botnet-dominated; historically no unused-space avoidance, so >= 91% of
// Telnet/23 scanners also appear in the telescope (Table 8).
void build_telnet(Builder& b) {
  static constexpr net::Asn kConsumerIsps[] = {
      net::kAsnKtCorp, net::kAsnVietnamPt, net::kAsnBharti, net::kAsnChinaUnicom,
      net::kAsnTelstra,
  };
  const int mirai_swarms = b.scaled(6);
  for (int i = 0; i < mirai_swarms; ++i) {
    const net::Asn asn = kConsumerIsps[static_cast<std::size_t>(i) % std::size(kConsumerIsps)];
    const int sources = static_cast<int>(b.rng.uniform_int(40, 120));
    CampaignConfig c = mirai_config(asn, sources, /*telescope_coverage=*/0.9);
    // The 2323 worker arm concentrates on unused space and education
    // networks; cloud 2323 services are mostly reached by a separate,
    // telescope-shy population (Table 8's 53% vs 94% asymmetry).
    c.ports = {23};
    b.add_campaign(std::move(c));
    CampaignConfig alt = mirai_config(asn, sources / 3 + 1, /*telescope_coverage=*/0.85);
    alt.label = "mirai-telnet-2323";
    alt.ports = {2323};
    alt.filter.cloud_coverage = 0.0;
    b.add_campaign(std::move(alt));
  }
  // The Mirai port-22 seeding wave plus PonyNet's copycat (Figure 1a).
  b.add_campaign(mirai_ssh_seed_config(net::kAsnKtCorp, 30));
  b.add_campaign(mirai_ssh_seed_config(net::kAsnPonyNet, 20));

  const int generic = b.scaled(10);
  for (int i = 0; i < generic; ++i) {
    CampaignConfig c;
    c.label = "telnet-bruteforce";
    const bool chinese = b.rng.bernoulli(0.4);
    c.asn = chinese ? b.random_cn_as() : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(2, 10));
    c.ports = {23};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericTelnet;
    c.malicious = true;
    c.waves = static_cast<int>(b.rng.uniform_int(1, 3));
    c.min_attempts = 2;
    c.max_attempts = 6;
    c.dict_offset = i;
    c.favorite_weight = 0.4;
    const bool partial = b.rng.bernoulli(0.35);
    if (partial) {
      c.asn = b.random_bulk_as();
      c.min_attempts = 2;
      c.max_attempts = 5;
      c.stable_subset = true;
    }
    c.filter.cloud_coverage = partial ? b.rng.uniform(0.45, 0.7) : b.rng.uniform(0.9, 1.0);
    c.filter.edu_coverage = c.filter.cloud_coverage;
    // China-registered ASes actively avoid the telescope (Section 5.2);
    // the rest of the commodity Telnet population does not.
    c.filter.telescope_coverage =
        b.rng.bernoulli(chinese ? 0.25 : 0.9) ? 0.8 : 0.0;
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
  // Port 2323 attracts a smaller population with weaker telescope ties
  // (53% overlap in the cloud).
  const int alt = b.scaled(10);
  for (int i = 0; i < alt; ++i) {
    CampaignConfig c;
    c.label = "telnet2323-bruteforce";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(2, 8));
    c.ports = {2323};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericTelnet;
    c.malicious = true;
    c.waves = 1;
    c.min_attempts = 1;
    c.max_attempts = 4;
    c.filter.cloud_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.edu_coverage = b.rng.uniform(0.02, 0.1);
    c.filter.telescope_coverage = b.rng.bernoulli(0.2) ? 0.7 : 0.0;
    b.add_campaign(std::move(c));
  }
  // A smaller 2323 population sweeps everything including the telescope.
  const int wide_alt = b.scaled(4);
  for (int i = 0; i < wide_alt; ++i) {
    CampaignConfig c;
    c.label = "telnet2323-wide";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(3, 6));
    c.ports = {2323};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericTelnet;
    c.malicious = true;
    c.waves = 1;
    c.min_attempts = 1;
    c.max_attempts = 4;
    c.filter.cloud_coverage = b.rng.uniform(0.5, 0.8);
    c.filter.edu_coverage = b.rng.uniform(0.5, 0.8);
    c.filter.telescope_coverage = 0.9;
    b.add_campaign(std::move(c));
  }
  // Benign Telnet reachability probes.
  const int recon = b.scaled(4);
  for (int i = 0; i < recon; ++i) {
    CampaignConfig c;
    c.label = "telnet-recon";
    c.asn = b.random_tail_as();
    c.sources = 1;
    c.ports = {23};
    c.payload = PayloadKind::kBenignProbe;
    c.malicious = false;
    c.waves = 1;
    c.filter.cloud_coverage = b.rng.uniform(0.6, 0.9);
    c.filter.edu_coverage = b.rng.uniform(0.6, 0.9);
    c.filter.telescope_coverage = 0.8;
    b.add_campaign(std::move(c));
  }
}

// --- HTTP (ports 80, 8080, 443) ----------------------------------------------
void build_http(Builder& b) {
  // Exploit campaigns: one actor per circulating exploit family.
  const auto& exploits = proto::http_exploits();
  const int exploit_campaigns = b.scaled(static_cast<int>(exploits.size()));
  for (int i = 0; i < exploit_campaigns; ++i) {
    CampaignConfig c;
    const proto::ExploitKind kind = exploits[static_cast<std::size_t>(i) % exploits.size()];
    c.label = std::string("http-exploit-") + std::string(proto::exploit_name(kind));
    c.asn = b.rng.bernoulli(0.45) ? b.random_cn_as() : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 6));
    c.ports = b.rng.bernoulli(0.5) ? std::vector<net::Port>{80} : std::vector<net::Port>{80, 8080};
    c.payload = PayloadKind::kExploit;
    c.exploit = kind;
    c.malicious = true;
    c.waves = static_cast<int>(b.rng.uniform_int(1, 2));
    const bool partial = b.rng.bernoulli(0.4);
    if (partial) c.asn = b.random_bulk_as();
    c.filter.cloud_coverage = partial ? b.rng.uniform(0.4, 0.6) : b.rng.uniform(0.85, 1.0);
    c.filter.edu_coverage = c.filter.cloud_coverage;
    c.filter.telescope_coverage = b.rng.bernoulli(0.85) ? 0.7 : 0.0;
    c.filter.weight_any_255 = 1.0 / 3.5;
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
  // Benign GET sweeps dominate HTTP/80 volume (75% of port-80 payloads are
  // not exploits, Section 3.2).
  const int benign = b.scaled(12);
  for (int i = 0; i < benign; ++i) {
    CampaignConfig c;
    c.label = "http-benign-sweep";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(2, 8));
    c.ports = {80, 8080};
    c.payload = PayloadKind::kBenignProbe;
    c.malicious = false;
    c.waves = static_cast<int>(b.rng.uniform_int(2, 4));
    c.filter.cloud_coverage = b.rng.uniform(0.85, 1.0);
    c.filter.edu_coverage = c.filter.cloud_coverage;
    c.filter.telescope_coverage = b.rng.bernoulli(0.75) ? 0.8 : 0.0;
    c.filter.weight_any_255 = 1.0 / 3.5;
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
  // The nmap trio that avoids Censys-listed HTTP services (Section 4.3).
  static constexpr net::Asn kNmapTrio[] = {net::kAsnAvast, net::kAsnM247, net::kAsnCdn77};
  for (net::Asn asn : kNmapTrio) {
    NmapProberConfig c;
    c.asn = asn;
    c.sources = 2;
    c.port = 80;
    c.cloud_coverage = 0.85;
    c.edu_coverage = 0.85;
    c.waves = 2;
    b.add_nmap(c);
  }
  // TLS-assigned port 443: probes with low telescope participation.
  const int tls = b.scaled(8);
  for (int i = 0; i < tls; ++i) {
    CampaignConfig c;
    c.label = "tls-probe";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
    c.ports = {443};
    c.protocol = net::Protocol::kTls;
    c.payload = PayloadKind::kBenignProbe;
    c.malicious = false;
    c.waves = 1;
    c.filter.cloud_coverage = b.rng.uniform(0.6, 0.9);
    c.filter.edu_coverage = b.rng.uniform(0.6, 0.9);
    c.filter.telescope_coverage = b.rng.bernoulli(0.2) ? 0.7 : 0.0;
    b.add_campaign(std::move(c));
  }
}

// --- Unexpected protocols on HTTP ports (Section 6, Table 11) ----------------
void build_unexpected(Builder& b, bool doubled) {
  struct AltSpec {
    net::Protocol protocol;
    int count;
    double malicious_fraction;
  };
  // Shares follow the paper: TLS dominates (7% of port-80 scanners),
  // followed by Telnet, SQL, RTSP, SMB (Section 6).
  const AltSpec specs[] = {
      {net::Protocol::kTls, 7, 0.45},  {net::Protocol::kTelnet, 2, 0.8},
      {net::Protocol::kSql, 2, 0.8},   {net::Protocol::kRtsp, 1, 0.6},
      {net::Protocol::kSmb, 1, 0.8},   {net::Protocol::kRedis, 1, 1.0},
  };
  for (const AltSpec& spec : specs) {
    const int count = b.scaled(doubled ? spec.count * 2 : spec.count);
    for (int i = 0; i < count; ++i) {
      CampaignConfig c;
      c.label = std::string("unexpected-") + std::string(net::protocol_name(spec.protocol));
      const bool malicious = b.rng.bernoulli(spec.malicious_fraction);
      // China-registered ASes lead malicious unexpected-protocol scanning;
      // Censys leads the benign side.
      c.asn = malicious ? (b.rng.bernoulli(0.5) ? net::kAsnChinanet : net::kAsnChinaUnicom)
                        : (b.rng.bernoulli(0.4) ? net::kAsnCensys : b.random_tail_as());
      c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
      c.ports = {80, 8080};
      c.protocol = spec.protocol;
      if (spec.protocol == net::Protocol::kRedis && malicious) {
        c.payload = PayloadKind::kExploit;
        c.exploit = proto::ExploitKind::kRedisHijack;
      } else {
        c.payload = PayloadKind::kBenignProbe;
      }
      c.malicious = malicious;
      c.waves = 1;
      c.filter.cloud_coverage = b.rng.uniform(0.5, 0.9);
      c.filter.edu_coverage = b.rng.uniform(0.5, 0.9);
      c.filter.telescope_coverage = b.rng.bernoulli(0.5) ? 0.6 : 0.0;
      b.add_campaign(std::move(c));
    }
  }
}

// --- Other popular ports (21, 25, 7547, 445) ---------------------------------
void build_other_ports(Builder& b) {
  struct PortSpec {
    net::Port port;
    int cloud_actors;
    double cloud_tel_rate;  // telescope participation of cloud-targeting actors
    int edu_actors;         // regional actors: edu + telescope, no cloud
  };
  // cloud_tel_rate tracks Table 8's cloud column; the edu-regional actors
  // (Merit shares an AS with Orion) pull the EDU column up.
  const PortSpec specs[] = {
      {21, 16, 0.29, 5},
      {25, 16, 0.15, 5},
      {7547, 12, 0.2, 4},
  };
  for (const PortSpec& spec : specs) {
    const int cloud_actors = b.scaled(spec.cloud_actors);
    for (int i = 0; i < cloud_actors; ++i) {
      CampaignConfig c;
      c.label = "port" + std::to_string(spec.port) + "-scan";
      c.asn = b.random_tail_as();
      c.sources = static_cast<int>(b.rng.uniform_int(2, 6));
      c.ports = {spec.port};
      c.payload = spec.port == 7547 ? PayloadKind::kExploit : PayloadKind::kSynOnly;
      if (spec.port == 7547) c.exploit = proto::ExploitKind::kTr069Injection;
      c.malicious = spec.port == 7547;
      c.waves = 1;
      c.filter.cloud_coverage = b.rng.uniform(0.5, 0.9);
      c.filter.edu_coverage = b.rng.uniform(0.5, 0.9);
      c.filter.telescope_coverage = b.rng.bernoulli(spec.cloud_tel_rate) ? 0.7 : 0.0;
      b.add_campaign(std::move(c));
    }
    const int edu_actors = b.scaled(spec.edu_actors);
    for (int i = 0; i < edu_actors; ++i) {
      CampaignConfig c;
      c.label = "port" + std::to_string(spec.port) + "-edu-regional";
      c.asn = b.random_tail_as();
      c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
      c.ports = {spec.port};
      c.payload = PayloadKind::kSynOnly;
      c.malicious = false;
      c.waves = 1;
      c.filter.cloud_coverage = 0.0;
      c.filter.edu_coverage = b.rng.uniform(0.6, 0.9);
      c.filter.telescope_coverage = 0.9;  // Merit and Orion share an AS
      b.add_campaign(std::move(c));
    }
  }
  // Education-focused scanners on 2222/443 (Merit's AS neighbors the
  // telescope, pulling the EDU overlap columns up on ports whose cloud
  // population is telescope-shy).
  struct EduSpec {
    net::Port port;
    int actors;
  };
  const EduSpec edu_specs[] = {{2222, 5}, {443, 4}, {22, 6}, {80, 5}, {25, 5}, {21, 5}};
  for (const EduSpec& spec : edu_specs) {
    const int actors = b.scaled(spec.actors);
    for (int i = 0; i < actors; ++i) {
      CampaignConfig c;
      c.label = "port" + std::to_string(spec.port) + "-edu-regional";
      c.asn = b.random_tail_as();
      c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
      c.ports = {spec.port};
      c.payload = PayloadKind::kSynOnly;
      c.malicious = false;
      c.waves = 1;
      c.filter.edu_coverage = b.rng.uniform(0.6, 0.9);
      c.filter.telescope_coverage = 0.9;
      b.add_campaign(std::move(c));
    }
  }

  // SMB/445: structure-aware scanners that filter broadcast-looking
  // addresses — 9x less likely on any-255 octets, a further 3.5x on .255
  // endings (Section 4.2, Figure 1b).
  const int smb = b.scaled(10);
  for (int i = 0; i < smb; ++i) {
    CampaignConfig c;
    c.label = "smb-structure-aware";
    c.asn = b.rng.bernoulli(0.3) ? b.random_cn_as() : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 6));
    c.ports = {445};
    c.payload = PayloadKind::kBenignProbe;
    c.protocol = net::Protocol::kSmb;
    c.malicious = b.rng.bernoulli(0.5);
    c.waves = 1;
    c.filter.cloud_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.edu_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.telescope_coverage = 0.9;
    c.filter.weight_any_255 = 1.0 / 9.0;
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
}

// --- UDP services (NTP, SIP) ---------------------------------------------------
// The honeypots record the first UDP datagram but never answer (the
// paper's no-amplification ethics posture); GreyNoise honeypots do not
// expose UDP services at all, so this traffic lands on the Honeytrap
// networks and the telescope.
void build_udp(Builder& b) {
  const int ntp_probes = b.scaled(5);
  for (int i = 0; i < ntp_probes; ++i) {
    CampaignConfig c;
    c.label = "ntp-udp-probe";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
    c.ports = {123};
    c.transport = net::Transport::kUdp;
    c.protocol = net::Protocol::kNtp;
    c.payload = PayloadKind::kBenignProbe;
    c.malicious = false;
    c.waves = 1;
    c.filter.cloud_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.edu_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.telescope_coverage = 0.8;
    b.add_campaign(std::move(c));
  }
  const int sip_brute = b.scaled(4);
  for (int i = 0; i < sip_brute; ++i) {
    CampaignConfig c;
    c.label = "sipvicious-udp";
    c.asn = b.rng.bernoulli(0.4) ? b.random_cn_as() : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 4));
    c.ports = {5060};
    c.transport = net::Transport::kUdp;
    c.payload = PayloadKind::kExploit;
    c.exploit = proto::ExploitKind::kSipRegister;
    c.malicious = true;
    c.waves = static_cast<int>(b.rng.uniform_int(1, 2));
    c.min_attempts = 2;
    c.max_attempts = 6;
    c.filter.cloud_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.edu_coverage = b.rng.uniform(0.5, 0.9);
    c.filter.telescope_coverage = b.rng.bernoulli(0.6) ? 0.7 : 0.0;
    b.add_campaign(std::move(c));
  }
}

// --- Background radiation ----------------------------------------------------
// A long tail of low-rate random sub-sampled scans. Individually they
// almost never hit a 4-address cloud region, but the telescope's sheer size
// catches them all — which is why the telescope's unique-scanner counts
// dwarf every honeypot's (Table 1).
void build_background(Builder& b) {
  const int actors = b.scaled(500);
  for (int i = 0; i < actors; ++i) {
    CampaignConfig c;
    c.label = "background";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(1, 2));
    const net::Port port = net::popular_ports()[b.rng.index(net::popular_ports().size())];
    c.ports = {port};
    c.payload = PayloadKind::kSynOnly;
    c.malicious = false;
    c.waves = 1;
    // A real sub-1%-of-IPv4 sampler lands on a handful of a 475K-address
    // telescope's IPs but almost never on a 4-address honeypot region. Our
    // telescope is ~100x smaller than Orion, so the telescope coverage is
    // boosted relative to the honeypot-side coverage to preserve that
    // asymmetry: most background sources appear *only* in the telescope.
    const double telescope_rate = b.rng.uniform(0.01, 0.12);
    c.filter.cloud_coverage = telescope_rate / 150.0;
    c.filter.edu_coverage = telescope_rate / 150.0;
    c.filter.telescope_coverage = telescope_rate;
    // Mild last-octet broadcast filtering is widespread (Figure 1c).
    c.filter.weight_last_255 = 1.0 / 3.5;
    b.add_campaign(std::move(c));
  }
}

// --- Search-engine miners (Section 4.3, Table 3) ------------------------------
void build_miners(Builder& b) {
  // SSH miners rely on Shodan, HTTP miners on Censys; Telnet attackers use
  // both but lean on the engines less (lower attack fractions).
  struct MinerSpec {
    net::Port port;
    net::Protocol protocol;
    EnginePreference engines;
    int count;
    double attack_fraction;
    PayloadKind payload;
  };
  const MinerSpec specs[] = {
      {22, net::Protocol::kSsh, EnginePreference::kShodan, 4, 0.9, PayloadKind::kBruteforce},
      {22, net::Protocol::kSsh, EnginePreference::kCensys, 1, 0.7, PayloadKind::kBruteforce},
      {80, net::Protocol::kHttp, EnginePreference::kCensys, 4, 0.9, PayloadKind::kExploit},
      {80, net::Protocol::kHttp, EnginePreference::kShodan, 2, 0.7, PayloadKind::kExploit},
      {23, net::Protocol::kTelnet, EnginePreference::kBoth, 2, 0.35, PayloadKind::kBruteforce},
  };
  for (const MinerSpec& spec : specs) {
    const int count = b.scaled(spec.count);
    for (int i = 0; i < count; ++i) {
      MinerConfig c;
      c.label = "miner-" + std::string(net::protocol_name(spec.protocol));
      c.asn = b.rng.bernoulli(0.4) ? b.random_cn_as() : b.random_tail_as();
      c.sources = static_cast<int>(b.rng.uniform_int(1, 4));
      c.port = spec.port;
      c.protocol = spec.protocol;
      c.engines = spec.engines;
      c.payload = spec.payload;
      c.attack_fraction = spec.attack_fraction;
      c.dictionary = spec.protocol == net::Protocol::kTelnet
                         ? proto::CredentialDictionary::kGenericTelnet
                         : proto::CredentialDictionary::kGenericSsh;
      if (spec.payload == PayloadKind::kExploit) {
        const auto& exploits = proto::http_exploits();
        c.exploit = exploits[b.rng.index(exploits.size())];
      }
      // A fraction of SSH miners hunt a specific software version by banner
      // search rather than dumping everything on the port.
      if (spec.port == 22 && b.rng.bernoulli(0.4)) c.banner_query = "OpenSSH";
      b.add_miner(std::move(c));
    }
  }
}

// --- Geographic discrimination (Section 5.1, Tables 4-5) ----------------------
void build_geography(Builder& b) {
  // Asia-Pacific sub-region exploit campaigns: each targets exactly one AP
  // region with its own payload, so AP region pairs diverge in top-3
  // payloads while US/EU pairs (covered uniformly above) do not.
  static constexpr const char* kApRegions[] = {
      "AP-SG", "AP-JP", "AP-HK", "AP-ID", "AP-AU", "AP-IN", "AP-KR", "AP-TW",
  };
  const auto& exploits = proto::http_exploits();
  int exploit_cursor = 0;
  for (const char* region : kApRegions) {
    const int per_region = b.scaled(3);
    for (int i = 0; i < per_region; ++i) {
      CampaignConfig c;
      c.label = std::string("ap-exploit-") + region;
      c.asn = b.rng.bernoulli(0.5) ? b.random_cn_as() : b.random_tail_as();
      c.sources = static_cast<int>(b.rng.uniform_int(1, 3));
      c.ports = {80, 8080};
      c.payload = PayloadKind::kExploit;
      c.exploit = exploits[static_cast<std::size_t>(exploit_cursor++) % exploits.size()];
      c.malicious = true;
      c.waves = 4;
      c.min_attempts = 2;
      c.max_attempts = 4;
      c.filter.cloud_coverage = 0.9;
      c.filter.telescope_coverage = b.rng.bernoulli(0.7) ? 0.6 : 0.0;
      c.filter.region_allow = {region};
      b.add_campaign(std::move(c));
    }
  }
  // Campaigns that avoid (or exclusively target) the whole Asia-Pacific
  // block on SSH/Telnet: these drive the AS-level AP divergence that every
  // provider shows (Table 4's Top-3-AS rows).
  for (int i = 0; i < b.scaled(4); ++i) {
    CampaignConfig c;
    c.label = "ap-avoider";
    c.asn = b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(3, 8));
    c.ports = b.rng.bernoulli(0.5) ? std::vector<net::Port>{22} : std::vector<net::Port>{23};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = c.ports[0] == 22 ? proto::CredentialDictionary::kGenericSsh
                                    : proto::CredentialDictionary::kGenericTelnet;
    c.malicious = true;
    c.waves = 2;
    c.min_attempts = 2;
    c.max_attempts = 8;
    c.filter.cloud_coverage = 0.95;
    c.filter.edu_coverage = 0.95;
    c.filter.continent_weight[net::Continent::kAsiaPacific] = 0.05;
    b.add_campaign(std::move(c));
  }
  for (int i = 0; i < b.scaled(3); ++i) {
    CampaignConfig c;
    c.label = "ap-only";
    c.asn = b.rng.bernoulli(0.6) ? b.random_cn_as() : b.random_tail_as();
    c.sources = static_cast<int>(b.rng.uniform_int(3, 8));
    c.ports = b.rng.bernoulli(0.5) ? std::vector<net::Port>{22} : std::vector<net::Port>{23};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kMirai;
    c.malicious = true;
    c.waves = 2;
    c.min_attempts = 2;
    c.max_attempts = 8;
    c.dict_offset = 10 + i;
    c.favorite_weight = 0.3;
    c.filter.cloud_coverage = 0.95;
    c.filter.continent_weight[net::Continent::kNorthAmerica] = 0.03;
    c.filter.continent_weight[net::Continent::kEurope] = 0.03;
    b.add_campaign(std::move(c));
  }

  // The Huawei-credential Telnet campaign that dominates AWS Australia
  // ("mother" / "e8ehome", Section 5.1).
  {
    CampaignConfig c;
    c.label = "huawei-telnet-ap-au";
    c.asn = b.random_cn_as();
    c.sources = 12;
    c.ports = {23};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kHuaweiRegional;
    c.malicious = true;
    c.waves = 3;
    c.min_attempts = 6;
    c.max_attempts = 14;
    c.filter.cloud_coverage = 0.95;
    c.filter.region_allow = {"AWS/AP-AU"};
    b.add_campaign(std::move(c));
  }
  // AP-JP SSH campaign with a distinct (Mirai) username mix — the AWS AP-JP
  // top-username divergence of Table 4.
  {
    CampaignConfig c;
    c.label = "ap-jp-ssh";
    c.asn = b.random_tail_as();
    c.sources = 8;
    c.ports = {22};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kMirai;
    c.malicious = true;
    c.waves = 3;
    c.min_attempts = 5;
    c.max_attempts = 12;
    c.filter.cloud_coverage = 0.95;
    c.filter.region_allow = {"AWS/AP-JP"};
    b.add_campaign(std::move(c));
  }
  // Emirates Internet: HTTP POST login requests only toward Mumbai (the
  // closest region); SATNET Ecuador scans everywhere *except* Mumbai.
  {
    CampaignConfig c;
    c.label = "emirates-mumbai";
    c.asn = net::kAsnEmiratesInternet;
    c.sources = 3;
    c.ports = {80};
    c.payload = PayloadKind::kExploit;
    c.exploit = proto::ExploitKind::kHttpPostLogin;
    c.malicious = true;
    c.waves = 2;
    c.filter.cloud_coverage = 0.95;
    c.filter.region_allow = {"AP-IN"};
    b.add_campaign(std::move(c));
  }
  {
    CampaignConfig c;
    c.label = "satnet-avoids-mumbai";
    c.asn = net::kAsnSatnet;
    c.sources = 3;
    c.ports = {80};
    c.payload = PayloadKind::kBenignProbe;
    c.malicious = false;
    c.waves = 1;
    c.filter.cloud_coverage = 0.9;
    c.filter.edu_coverage = 0.9;
    c.filter.region_deny = {"AP-IN"};
    b.add_campaign(std::move(c));
  }
  // Flavor campaigns from Section 5.1's US/EU observations: elevated Telnet
  // payloads toward AWS Paris and Android-emulator commands toward AWS
  // Frankfurt. Both are small effects by construction.
  {
    CampaignConfig c;
    c.label = "paris-telnet";
    c.asn = b.random_tail_as();
    c.sources = 2;
    c.ports = {23};
    c.payload = PayloadKind::kBruteforce;
    c.dictionary = proto::CredentialDictionary::kGenericTelnet;
    c.malicious = true;
    c.waves = 1;
    c.min_attempts = 2;
    c.max_attempts = 4;
    c.filter.cloud_coverage = 0.8;
    c.filter.region_allow = {"AWS/EU-FR"};
    b.add_campaign(std::move(c));
  }
  {
    CampaignConfig c;
    c.label = "frankfurt-adb";
    c.asn = b.random_tail_as();
    c.sources = 2;
    c.ports = {5555};
    c.payload = PayloadKind::kExploit;
    c.exploit = proto::ExploitKind::kAdbShell;
    c.malicious = true;
    c.waves = 1;
    c.filter.cloud_coverage = 0.8;
    c.filter.region_allow = {"AWS/EU-DE"};
    b.add_campaign(std::move(c));
  }
}

// --- Neighborhood anomalies (Section 4.1) -------------------------------------
void build_neighborhood_anomalies(Builder& b) {
  // Axtel: three orders of magnitude more unique scanning IPs against one
  // of the four identical Linode Singapore services.
  if (const auto* vp = find_vantage(*b.deployment, "Linode/AP-SG");
      vp != nullptr && !vp->addresses.empty()) {
    CampaignConfig c = tsunami_config(net::kAsnAxtel, 80, {vp->addresses.front()}, 22);
    c.label = "axtel-linode-sg-latch";
    b.add_campaign(std::move(c));
  }
  // Tsunami: thousands of bot IPs locked onto a single Hurricane Electric
  // honeypot address.
  if (const auto* vp = find_vantage(*b.deployment, "HurricaneElectric/US-OH");
      vp != nullptr && vp->addresses.size() > 37) {
    CampaignConfig c = tsunami_config(b.random_tail_as(), 90, {vp->addresses[37]}, 22);
    c.label = "tsunami-he-latch";
    b.add_campaign(std::move(c));
  }
  // Azure Singapore: an order of magnitude more HTTP POST login attempts
  // against one of the four identical honeypots.
  if (const auto* vp = find_vantage(*b.deployment, "Azure/AP-SG");
      vp != nullptr && !vp->addresses.empty()) {
    CampaignConfig c;
    c.label = "azure-sg-post-latch";
    c.asn = b.random_tail_as();
    c.sources = 30;
    c.ports = {80};
    c.payload = PayloadKind::kExploit;
    c.exploit = proto::ExploitKind::kHttpPostLogin;
    c.malicious = true;
    c.waves = 3;
    c.filter.latch_addresses = {vp->addresses.front()};
    b.add_campaign(std::move(c));
  }
  // Tsunami's four fixed telescope targets on port 17128 (Figure 1d). The
  // offsets scale with the configured telescope size.
  if (const auto* vp = find_vantage(*b.deployment, "Orion");
      vp != nullptr && vp->addresses.size() >= 1024) {
    const std::size_t n = vp->addresses.size();
    std::vector<net::IPv4Addr> latched = {vp->addresses[n / 8], vp->addresses[n / 8 + 1],
                                          vp->addresses[n / 2], vp->addresses[n / 2 + 1]};
    CampaignConfig c = tsunami_config(b.random_tail_as(), 500, std::move(latched), 17128);
    c.label = "tsunami-telescope-17128";
    b.add_campaign(std::move(c));
  }
}

}  // namespace

Population Population::build(const PopulationConfig& config,
                             const topology::Deployment& deployment) {
  Population population;
  Builder b{
      .config = &config,
      .deployment = &deployment,
      .rng = util::Rng(config.seed ^ (static_cast<std::uint64_t>(config.year) << 48)),
      .next_id = Population::kFirstPopulationActorId,
      .actors = &population.actors_,
      .tail_ases = {},
      .cn_ases = {},
  };
  const net::AsRegistry registry = net::AsRegistry::standard();
  for (const net::AsInfo& info : registry.all()) {
    if (info.asn >= 64512) b.tail_ases.push_back(info.asn);
    if (info.country == net::CountryCode('C', 'N')) b.cn_ases.push_back(info.asn);
  }

  build_ssh(b);
  build_telnet(b);
  build_http(b);
  // 2022 saw roughly double the unexpected-protocol share (Table 17).
  build_unexpected(b, /*doubled=*/config.year == topology::ScenarioYear::k2022);
  build_other_ports(b);
  build_udp(b);
  build_background(b);
  build_miners(b);
  // A small population of honeypot-fingerprinting attackers (Section 7):
  // sophisticated SSH brute-forcers that recognize most honeypots from the
  // probe response and walk away, biasing honeypot data against them.
  for (int i = 0; i < b.scaled(3); ++i) {
    EvaderConfig e;
    e.asn = b.random_cn_as();
    e.sources = static_cast<int>(b.rng.uniform_int(2, 5));
    e.detection_rate = b.rng.uniform(0.6, 0.9);
    e.cloud_coverage = b.rng.uniform(0.5, 0.9);
    e.edu_coverage = e.cloud_coverage;
    b.add_evader(std::move(e));
  }
  build_geography(b);
  build_neighborhood_anomalies(b);

  // Year-specific anomalies: 2020 carried one-off SSH campaigns that made
  // US/EU sub-regions look different (Appendix C.3).
  if (config.year == topology::ScenarioYear::k2020) {
    static constexpr const char* kUsEuRegions[] = {"AWS/US-OR", "AWS/EU-FR", "Google/EU-NL"};
    for (const char* region : kUsEuRegions) {
      CampaignConfig c;
      c.label = std::string("anomaly2020-") + region;
      c.asn = b.random_tail_as();
      c.sources = 6;
      c.ports = {22};
      c.payload = PayloadKind::kBruteforce;
      c.dictionary = proto::CredentialDictionary::kMirai;
      c.malicious = true;
      c.waves = 2;
      c.min_attempts = 4;
      c.max_attempts = 10;
      c.filter.cloud_coverage = 0.9;
      c.filter.region_allow = {region};
      b.add_campaign(std::move(c));
    }
  }
  return population;
}

void Population::start_all(AgentContext& ctx) {
  for (const std::unique_ptr<Actor>& actor : actors_) actor->start(ctx);
}

std::unordered_map<capture::ActorId, bool> Population::ground_truth() const {
  std::unordered_map<capture::ActorId, bool> out;
  out.emplace(kCensysActorId, false);
  out.emplace(kShodanActorId, false);
  for (const std::unique_ptr<Actor>& actor : actors_) {
    out.emplace(actor->id(), actor->is_malicious());
  }
  return out;
}

}  // namespace cw::agents
