#include "agents/botnet.h"

namespace cw::agents {

CampaignConfig mirai_config(net::Asn asn, int sources, double telescope_coverage) {
  CampaignConfig config;
  config.label = "mirai-telnet";
  config.asn = asn;
  config.sources = sources;
  config.ports = {23, 2323};
  config.payload = PayloadKind::kBruteforce;
  config.dictionary = proto::CredentialDictionary::kMirai;
  config.malicious = true;
  config.waves = 3;
  config.wave_duration = 2 * util::kDay;
  config.min_attempts = 2;
  config.max_attempts = 6;
  config.filter.cloud_coverage = 0.8;
  config.filter.edu_coverage = 0.8;
  config.filter.telescope_coverage = telescope_coverage;
  return config;
}

CampaignConfig mirai_ssh_seed_config(net::Asn asn, int sources) {
  CampaignConfig config;
  config.label = "mirai-ssh-seed";
  config.asn = asn;
  config.sources = sources;
  config.ports = {22};
  config.payload = PayloadKind::kBruteforce;
  config.dictionary = proto::CredentialDictionary::kMirai;
  config.malicious = true;
  config.waves = 4;
  config.wave_duration = util::kDay;
  config.min_attempts = 1;
  config.max_attempts = 3;
  config.filter.cloud_coverage = 0.3;
  config.filter.edu_coverage = 0.3;
  // The bot picks the first address of a /16 as its first scanning target
  // an order of magnitude more often than any other address.
  config.filter.telescope_coverage = 0.08;
  config.filter.weight_first_of_16 = 10.0;
  return config;
}

CampaignConfig tsunami_config(net::Asn asn, int sources, std::vector<net::IPv4Addr> latched,
                              net::Port port) {
  CampaignConfig config;
  config.label = "tsunami-latch";
  config.asn = asn;
  config.sources = sources;
  config.ports = {port};
  config.payload =
      (port == 22 || port == 23 || port == 2222 || port == 2323)
          ? PayloadKind::kBruteforce
          : PayloadKind::kSynOnly;
  config.dictionary = proto::CredentialDictionary::kMirai;
  config.malicious = true;
  config.waves = 2;
  config.wave_duration = 3 * util::kDay;
  config.min_attempts = 1;
  config.max_attempts = 2;
  config.filter.latch_addresses = std::move(latched);
  return config;
}

}  // namespace cw::agents
