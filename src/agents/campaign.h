// Config-driven scanning campaign: the workhorse actor. One instance models
// one coordinated scan operation — a commodity SSH brute-forcer, an HTTP
// exploit campaign, a benign research sweep, a structure-aware SYN scanner.
// The configuration encodes the target-selection *policy* (which network
// types, what coverage, geographic and address-structure biases, telescope
// participation); the analyses must then recover those policies from the
// captured traffic alone.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "agents/actor.h"
#include "net/geo.h"
#include "proto/credentials.h"
#include "proto/exploits.h"

namespace cw::agents {

enum class PayloadKind : std::uint8_t {
  kBenignProbe = 0,  // banner-grab / GET / — no auth attempt, no state change
  kBruteforce,       // credential attempts from a dictionary (SSH/Telnet)
  kExploit,          // a payload from the exploit library
  kNmapProbe,        // nmap-style service probe (benign)
  kSynOnly,          // bare SYN scan: no payload at all
};

struct TargetFilter {
  // Fraction of each network class the campaign's sub-sampled scan covers.
  // 0 disables the class entirely (e.g. telescope avoidance).
  double cloud_coverage = 0.0;
  double edu_coverage = 0.0;
  double telescope_coverage = 0.0;

  // Address-structure multipliers applied on top of coverage (Section 4.2).
  // weight < 1 models avoidance (broadcast-style filtering); weight > 1
  // models preference (Mirai's first-of-/16 seeding).
  double weight_any_255 = 1.0;    // any octet == 255
  double weight_last_255 = 1.0;   // last octet == 255 (applied after any_255)
  double weight_first_of_16 = 1.0;

  // Geographic policy, evaluated against the target vantage point's region
  // code (e.g. "AP-SG") and continent. An empty allow-list admits all.
  std::vector<std::string> region_allow;
  std::vector<std::string> region_deny;
  std::map<net::Continent, double> continent_weight;

  // If non-empty the campaign latches onto exactly these addresses and
  // ignores every other knob (Tsunami-style single-target fixation).
  std::vector<net::IPv4Addr> latch_addresses;
};

struct CampaignConfig {
  std::string label;  // diagnostic name
  net::Asn asn = 0;
  int sources = 1;

  std::vector<net::Port> ports;
  net::Transport transport = net::Transport::kTcp;
  // Protocol actually spoken; kUnknown means "the port's IANA assignment"
  // — setting it explicitly models Section 6's unexpected-protocol traffic.
  net::Protocol protocol = net::Protocol::kUnknown;

  PayloadKind payload = PayloadKind::kBenignProbe;
  proto::CredentialDictionary dictionary = proto::CredentialDictionary::kGenericSsh;
  // Different brute-force tools favor different list entries: with
  // probability `favorite_weight` the campaign attempts its favorite
  // (dictionary[dict_offset]) instead of a popularity-sampled entry. When
  // `favorite_username_only` is set, only the username is pinned — top SSH
  // usernames vary by tool far more than top passwords do (Table 2).
  int dict_offset = 0;
  double favorite_weight = 0.0;
  bool favorite_username_only = false;
  // Restrict popularity sampling to dictionary[dict_slice_offset,
  // dict_slice_offset + dict_slice_count) — an operator running their own
  // excerpt of a public wordlist (the adversary cluster families use
  // disjoint slices as distinct fingerprints). A zero count samples the
  // whole dictionary, byte-identical to the historical behavior.
  int dict_slice_offset = 0;
  int dict_slice_count = 0;
  // SSH client software banner; empty keeps the stock banner. Distinct
  // operators ship distinct client stacks, which Cowrie-style capture
  // records verbatim — a payload-level fingerprint facet.
  std::string ssh_software;
  std::optional<proto::ExploitKind> exploit;
  bool malicious = false;

  int waves = 1;
  util::SimDuration wave_duration = util::kDay;
  // Stable subsets persist across waves (Section 4.1's persistent
  // neighbor preferences); the default re-samples every wave like ZMap.
  bool stable_subset = false;
  // Credential attempts per target per wave (brute-force only).
  int min_attempts = 1;
  int max_attempts = 1;

  TargetFilter filter;
};

class ScanCampaign : public Actor {
 public:
  ScanCampaign(capture::ActorId id, util::Rng rng, CampaignConfig config);

  void start(AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "campaign"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return config_.malicious; }

  [[nodiscard]] const CampaignConfig& config() const noexcept { return config_; }

 private:
  void run_wave(AgentContext& ctx, util::SimTime wave_start);

  // Index of the wave currently being emitted; benign HTTP payloads vary
  // per wave (operators rotate fetched paths), not per target — per-target
  // variation would fabricate neighborhood payload differences.
  int current_wave_ = 0;
  void scan_target(AgentContext& ctx, util::SimTime time, const topology::Target& target,
                   net::Port port);
  [[nodiscard]] double effective_coverage(const topology::Target& target, double base) const;
  [[nodiscard]] bool region_admitted(const topology::Target& target,
                                     const AgentContext& ctx) const;

  CampaignConfig config_;
};

}  // namespace cw::agents
