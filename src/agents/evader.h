// Honeypot-fingerprinting evader — Section 7's sophistication bias:
// "Scanners occasionally fingerprint honeypots to avoid detection. ...
// other fingerprinting techniques could bias results against sophisticated
// attackers." The evader probes a target first; with probability
// `detection_rate` it recognizes the service as a honeypot (Cowrie
// artifacts, protocol-mute servers) and walks away after the single probe,
// otherwise it proceeds with its brute-force attack. The detection verdict
// is stable per (actor, address), so an evader never returns to a target it
// has classified.
//
// Honeypot operators therefore observe only (1 - detection_rate) of an
// evader's attack traffic plus its recon probes — the measurable
// sophistication bias bench_ablation_fingerprinting quantifies.
#pragma once

#include "agents/actor.h"
#include "proto/credentials.h"

namespace cw::agents {

struct EvaderConfig {
  std::string label = "fingerprinting-evader";
  net::Asn asn = 0;
  int sources = 2;
  net::Port port = 22;
  net::Protocol protocol = net::Protocol::kSsh;
  proto::CredentialDictionary dictionary = proto::CredentialDictionary::kGenericSsh;
  // Probability the evader identifies a honeypot before attacking it.
  // 0 models a naive attacker (attacks everything it probes).
  double detection_rate = 0.8;
  double cloud_coverage = 0.8;
  double edu_coverage = 0.8;
  int waves = 2;
  util::SimDuration wave_duration = util::kDay;
  int min_attempts = 3;
  int max_attempts = 8;
};

class FingerprintingEvader : public Actor {
 public:
  FingerprintingEvader(capture::ActorId id, util::Rng rng, EvaderConfig config);

  void start(AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "evader"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return true; }

  [[nodiscard]] const EvaderConfig& config() const noexcept { return config_; }

  // Counters for the bias analysis: how many targets were probed, and how
  // many the evader classified as honeypots and skipped.
  [[nodiscard]] std::uint64_t probed() const noexcept { return probed_; }
  [[nodiscard]] std::uint64_t evaded() const noexcept { return evaded_; }

 private:
  void run_wave(AgentContext& ctx, util::SimTime wave_start);
  [[nodiscard]] bool detects_honeypot(net::IPv4Addr addr) const noexcept;

  EvaderConfig config_;
  std::uint64_t probed_ = 0;
  std::uint64_t evaded_ = 0;
};

}  // namespace cw::agents
