// Descriptive statistics: means, medians, quantiles, fold changes, and the
// rolling average used for the Figure 1 address-structure plots ("rolling
// average of the # of scanning IPs across every consecutive 512 IPs").
#pragma once

#include <cstdint>
#include <vector>

namespace cw::stats {

double mean(const std::vector<double>& values);

// Median via midpoint of the two central order statistics. Empty input
// yields 0.
double median(std::vector<double> values);

// Linear-interpolated quantile, q in [0, 1]. Empty input yields NaN.
double quantile(std::vector<double> values, double q);

// Fold increase of `treatment` over `control` means; returns 0 when the
// control mean is zero and the treatment mean is zero, and +inf-like large
// value capped at `cap` when only the control is zero.
double fold_increase(const std::vector<double>& treatment, const std::vector<double>& control,
                     double cap = 1e6);

// Centered-as-possible rolling average with the given window (the window is
// trailing: output[i] averages input[max(0, i-window+1) .. i]).
std::vector<double> rolling_average(const std::vector<double>& values, std::size_t window);

// Counts "spikes": hours whose volume exceeds `factor` times the median of
// the series. Used to characterize the burst-scanning behavior of
// search-engine-driven attackers (Section 4.3).
std::size_t count_spikes(const std::vector<double>& hourly, double factor = 4.0);

}  // namespace cw::stats
