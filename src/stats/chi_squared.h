// The paper's significance pipeline on top of the raw chi-squared test:
// Bonferroni correction across a family of comparisons, and Cramér's V
// magnitude classification that accounts for degrees of freedom (the paper
// stresses that identical phi values can represent different effect sizes
// when df differ, Section 3.3).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "stats/contingency.h"
#include "stats/freq.h"

namespace cw::stats {

enum class EffectMagnitude { kNone, kSmall, kMedium, kLarge };

std::string_view magnitude_name(EffectMagnitude m) noexcept;

// Cohen's df-aware thresholds for Cramér's V: with df* = min(r-1, c-1), the
// small/medium/large boundaries are 0.1/sqrt(df*), 0.3/sqrt(df*),
// 0.5/sqrt(df*). This is what makes identical phi values carry different
// magnitudes across tests with different df.
EffectMagnitude classify_effect(double cramers_v, std::size_t min_dim_minus_one) noexcept;

struct SignificanceTest {
  ChiSquared chi;                      // raw test output
  double alpha = 0.05;                 // family-wise alpha before correction
  std::size_t family_size = 1;         // number of comparisons in the family
  bool significant = false;            // p < alpha / family_size
  EffectMagnitude magnitude = EffectMagnitude::kNone;
  // True when a sparse 2x2 table made the chi-squared approximation
  // unreliable and Fisher's exact p-value was used instead.
  bool used_fisher = false;
};

// Runs the full Section 3.3 recipe over a set of per-vantage frequency
// tables: take the union of each table's top-k values, build the
// contingency table, run Pearson chi-squared, apply Bonferroni, classify
// the effect.
SignificanceTest compare_top_k(const std::vector<const FrequencyTable*>& tables, std::size_t k,
                               double alpha, std::size_t family_size);

// Same recipe for a 2-category characteristic (e.g. malicious vs benign
// counts per vantage point, the "fraction malicious" comparisons).
SignificanceTest compare_binary(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& rows,
                                double alpha, std::size_t family_size);

}  // namespace cw::stats
