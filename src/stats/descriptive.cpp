#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cw::stats {

double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double median(std::vector<double> values) {
  if (values.empty()) return 0.0;
  const std::size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double upper = values[mid];
  if (values.size() % 2 == 1) return upper;
  double lower = *std::max_element(values.begin(), values.begin() + mid);
  return (lower + upper) / 2.0;
}

double quantile(std::vector<double> values, double q) {
  // An empty sample has no quantiles; without this guard values.size() - 1
  // underflows std::size_t below.
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double fold_increase(const std::vector<double>& treatment, const std::vector<double>& control,
                     double cap) {
  const double t = mean(treatment);
  const double c = mean(control);
  if (c <= 0.0) return t <= 0.0 ? 0.0 : cap;
  return std::min(t / c, cap);
}

std::vector<double> rolling_average(const std::vector<double>& values, std::size_t window) {
  std::vector<double> out(values.size(), 0.0);
  if (values.empty() || window == 0) return out;
  double sum = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    sum += values[i];
    if (i >= window) sum -= values[i - window];
    const std::size_t count = std::min(i + 1, window);
    out[i] = sum / static_cast<double>(count);
  }
  return out;
}

std::size_t count_spikes(const std::vector<double>& hourly, double factor) {
  if (hourly.empty()) return 0;
  const double med = median(hourly);
  const double threshold = med > 0.0 ? med * factor : factor;
  std::size_t spikes = 0;
  for (double v : hourly) {
    if (v > threshold) ++spikes;
  }
  return spikes;
}

}  // namespace cw::stats
