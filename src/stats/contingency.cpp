#include "stats/contingency.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stats/special_functions.h"

namespace cw::stats {

ContingencyTable::ContingencyTable(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), cells_(rows * cols, 0.0) {}

ContingencyTable ContingencyTable::from_frequency_tables(
    const std::vector<const FrequencyTable*>& tables, const std::vector<std::string>& categories) {
  ContingencyTable out(tables.size(), categories.size());
  for (std::size_t r = 0; r < tables.size(); ++r) {
    if (tables[r] == nullptr) continue;
    for (std::size_t c = 0; c < categories.size(); ++c) {
      out.set(r, c, static_cast<double>(tables[r]->count(categories[c])));
    }
  }
  return out;
}

void ContingencyTable::set(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("ContingencyTable::set");
  cells_[row * cols_ + col] = value;
}

void ContingencyTable::add(std::size_t row, std::size_t col, double value) {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("ContingencyTable::add");
  cells_[row * cols_ + col] += value;
}

double ContingencyTable::at(std::size_t row, std::size_t col) const {
  if (row >= rows_ || col >= cols_) throw std::out_of_range("ContingencyTable::at");
  return cells_[row * cols_ + col];
}

double ContingencyTable::row_total(std::size_t row) const {
  double total = 0.0;
  for (std::size_t c = 0; c < cols_; ++c) total += at(row, c);
  return total;
}

double ContingencyTable::col_total(std::size_t col) const {
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) total += at(r, col);
  return total;
}

double ContingencyTable::grand_total() const {
  double total = 0.0;
  for (double cell : cells_) total += cell;
  return total;
}

std::vector<double> ContingencyTable::row_totals() const {
  std::vector<double> totals(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) totals[r] += cells_[r * cols_ + c];
  }
  return totals;
}

std::vector<double> ContingencyTable::col_totals() const {
  std::vector<double> totals(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) totals[c] += cells_[r * cols_ + c];
  }
  return totals;
}

std::size_t ContingencyTable::drop_empty_columns() {
  std::vector<std::size_t> keep;
  for (std::size_t c = 0; c < cols_; ++c) {
    if (col_total(c) > 0.0) keep.push_back(c);
  }
  if (keep.size() == cols_) return cols_;
  std::vector<double> next(rows_ * keep.size(), 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t i = 0; i < keep.size(); ++i) next[r * keep.size() + i] = at(r, keep[i]);
  }
  cells_ = std::move(next);
  cols_ = keep.size();
  return cols_;
}

std::size_t ContingencyTable::drop_empty_rows() {
  std::vector<std::size_t> keep;
  for (std::size_t r = 0; r < rows_; ++r) {
    if (row_total(r) > 0.0) keep.push_back(r);
  }
  if (keep.size() == rows_) return rows_;
  std::vector<double> next(keep.size() * cols_, 0.0);
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (std::size_t c = 0; c < cols_; ++c) next[i * cols_ + c] = at(keep[i], c);
  }
  cells_ = std::move(next);
  rows_ = keep.size();
  return rows_;
}

std::size_t ContingencyTable::cells_with_expected_below(double threshold) const {
  const double n = grand_total();
  if (n <= 0.0) return rows_ * cols_;
  const std::vector<double> rows = row_totals();
  const std::vector<double> cols = col_totals();
  std::size_t count = 0;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      if (rows[r] * cols[c] / n < threshold) ++count;
    }
  }
  return count;
}

namespace {

ChiSquared pearson_on_reduced(const ContingencyTable& table, const std::vector<double>& row_sums,
                              const std::vector<double>& col_sums) {
  ChiSquared result;
  const double n = table.grand_total();
  if (table.rows() < 2 || table.cols() < 2 || n <= 0.0) return result;

  double statistic = 0.0;
  for (std::size_t r = 0; r < table.rows(); ++r) {
    const double rt = row_sums[r];
    for (std::size_t c = 0; c < table.cols(); ++c) {
      const double expected = rt * col_sums[c] / n;
      if (expected <= 0.0) continue;  // cannot happen after dropping empties
      const double delta = table.at(r, c) - expected;
      statistic += delta * delta / expected;
    }
  }

  result.statistic = statistic;
  result.df = static_cast<double>((table.rows() - 1) * (table.cols() - 1));
  result.p_value = chi_squared_sf(statistic, result.df);
  result.n = static_cast<std::size_t>(n + 0.5);
  const double min_dim = static_cast<double>(std::min(table.rows(), table.cols()) - 1);
  result.cramers_v = min_dim > 0.0 ? std::sqrt(statistic / (n * min_dim)) : 0.0;
  result.valid = true;
  return result;
}

}  // namespace

ChiSquared pearson_chi_squared(const ContingencyTable& input) {
  const std::vector<double> row_sums = input.row_totals();
  const std::vector<double> col_sums = input.col_totals();
  const auto positive = [](double total) { return total > 0.0; };
  if (std::all_of(row_sums.begin(), row_sums.end(), positive) &&
      std::all_of(col_sums.begin(), col_sums.end(), positive)) {
    // Already reduced (the stats::finish hot path): compute in place, no
    // table copy and no second reduction pass.
    return pearson_on_reduced(input, row_sums, col_sums);
  }
  // Empty rows/columns carry no information and would zero the expected
  // frequencies; reduce a copy for direct callers handing in a raw table.
  ContingencyTable table = input;
  table.drop_empty_columns();
  table.drop_empty_rows();
  return pearson_on_reduced(table, table.row_totals(), table.col_totals());
}

}  // namespace cw::stats
