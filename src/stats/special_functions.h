// Special functions needed by the hypothesis tests: regularized incomplete
// gamma (chi-squared tail), the standard normal CDF (Mann-Whitney normal
// approximation), and the Kolmogorov distribution tail. Implemented from
// scratch (series + continued fraction, Numerical-Recipes-style) so the
// library has no numerical dependencies.
#pragma once

namespace cw::stats {

// log |Gamma(a)| without touching libm's process-global `signgam` —
// std::lgamma writes it, which is a data race when analysis pipelines run
// on concurrent worker threads.
double lgamma_threadsafe(double a);

// Regularized lower incomplete gamma P(a, x), a > 0, x >= 0.
double gamma_p(double a, double x);

// Regularized upper incomplete gamma Q(a, x) = 1 - P(a, x).
double gamma_q(double a, double x);

// Survival function of the chi-squared distribution with df degrees of
// freedom: P(X >= x).
double chi_squared_sf(double x, double df);

// Standard normal CDF.
double normal_cdf(double z);

// Kolmogorov distribution complementary CDF:
// Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2).
double kolmogorov_sf(double lambda);

}  // namespace cw::stats
