// Two-sample Kolmogorov-Smirnov test. The paper uses it (Section 4.3,
// footnote 6) to compare distributions of hourly traffic volume toward
// leaked vs non-leaked services; spikes of traffic shift the empirical CDF
// and trip the test even when the mean barely moves.
#pragma once

#include <vector>

namespace cw::stats {

struct KsResult {
  double d_statistic = 0.0;  // sup |F1 - F2|
  double p_value = 1.0;      // asymptotic
  bool valid = false;
};

KsResult ks_two_sample(const std::vector<double>& sample1, const std::vector<double>& sample2);

}  // namespace cw::stats
