// Frequency tables over categorical values (AS numbers, usernames,
// passwords, normalized payloads) and the paper's top-3-union construction
// (Section 3.3, footnote 2): when comparing vantage points we take the top
// k values at each vantage point, union them, and compare counts on that
// union only, which bounds degrees of freedom and keeps expected cell
// frequencies away from zero.
//
// Two representations share one interface:
//
//   - sparse: the v1 unordered_map<string, u64>, fed by add()/merge().
//   - dense:  a vector<u64> indexed by dictionary code, built by
//             from_codes() — counting is a branchless gather/increment, and
//             merge() between tables sharing a dictionary is an elementwise
//             vector add. This is the SessionFrame v2 fast path.
//
// Dense tables use the *shifted-code* convention of the frame's encoded
// columns: slot s holds the count of dictionary code s-1, and slot 0
// absorbs records with no value (no payload / no credential) so the count
// kernel needs no missing-value branch. Slot 0 is excluded from total(),
// distinct(), sorted(), and top_k(), exactly as the v1 add-loop never saw
// those records. All output is produced through the dictionary's text, with
// ties broken lexicographically, so code assignment order can never leak
// into report bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/dict.h"
#include "util/postings.h"

namespace cw::stats {

class FrequencyTable {
 public:
  FrequencyTable() = default;

  // Dense construction over a whole shifted-code column. Every shifted code
  // must fit the dictionary (code < dict->size() + 1); a stale or mismatched
  // dictionary throws std::out_of_range — in all build modes — instead of
  // writing past the count vector.
  [[nodiscard]] static FrequencyTable from_codes(std::span<const std::uint32_t> shifted_codes,
                                                 std::shared_ptr<const util::Dictionary> dict);

  // Dense construction gathering only the rows in `records`. Same
  // stale-dictionary policy as the whole-column overload.
  [[nodiscard]] static FrequencyTable from_codes(std::span<const std::uint32_t> shifted_codes,
                                                 const util::PostingView& records,
                                                 std::shared_ptr<const util::Dictionary> dict);

  void add(const std::string& value, std::uint64_t count = 1);

  // Adds every (value, count) of `other` into this table. Counts are exact
  // integers, so a table assembled by merging record-chunk partials is
  // identical to one built sequentially over the same records — the merge
  // order cannot perturb sorted()/top_k() output. Dense tables sharing a
  // dictionary merge code-wise (an elementwise vector add, resized to the
  // larger table when a shared stream dictionary grew between builds);
  // mixed or dictionary-mismatched merges fall back to text.
  void merge(const FrequencyTable& other);

  [[nodiscard]] std::uint64_t count(const std::string& value) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept {
    return dense() ? dense_distinct_ : counts_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return distinct() == 0; }
  [[nodiscard]] bool dense() const noexcept { return dict_ != nullptr; }

  // Values sorted by descending count; ties broken lexicographically so the
  // result is deterministic. Returns at most k values; selects with a
  // partial sort when k is small relative to distinct().
  [[nodiscard]] std::vector<std::string> top_k(std::size_t k) const;

  // All (value, count) pairs, sorted as in top_k.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

 private:
  // Converts a dense table to the sparse representation in place.
  void flatten();
  [[nodiscard]] bool pristine() const noexcept {
    return dict_ == nullptr && counts_.empty() && total_ == 0;
  }
  void recount_dense();

  std::unordered_map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;

  // Dense representation (active iff dict_ != nullptr; counts_ stays empty).
  std::shared_ptr<const util::Dictionary> dict_;
  std::vector<std::uint64_t> shifted_counts_;  // slot 0 = missing, slot s = code s-1
  std::size_t dense_distinct_ = 0;
};

// Union of the top-k values across a group of tables, sorted
// deterministically. This is the category set the chi-squared comparisons
// run over.
std::vector<std::string> top_k_union(const std::vector<const FrequencyTable*>& tables,
                                     std::size_t k);

}  // namespace cw::stats
