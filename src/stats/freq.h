// Frequency tables over categorical values (AS numbers, usernames,
// passwords, normalized payloads) and the paper's top-3-union construction
// (Section 3.3, footnote 2): when comparing vantage points we take the top
// k values at each vantage point, union them, and compare counts on that
// union only, which bounds degrees of freedom and keeps expected cell
// frequencies away from zero.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cw::stats {

class FrequencyTable {
 public:
  void add(const std::string& value, std::uint64_t count = 1);

  // Adds every (value, count) of `other` into this table. Counts are exact
  // integers, so a table assembled by merging record-chunk partials is
  // identical to one built sequentially over the same records — the merge
  // order cannot perturb sorted()/top_k() output.
  void merge(const FrequencyTable& other);

  [[nodiscard]] std::uint64_t count(const std::string& value) const noexcept;
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }
  [[nodiscard]] bool empty() const noexcept { return counts_.empty(); }

  // Values sorted by descending count; ties broken lexicographically so the
  // result is deterministic. Returns at most k values.
  [[nodiscard]] std::vector<std::string> top_k(std::size_t k) const;

  // All (value, count) pairs, sorted as in top_k.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> sorted() const;

  [[nodiscard]] const std::unordered_map<std::string, std::uint64_t>& raw() const noexcept {
    return counts_;
  }

 private:
  std::unordered_map<std::string, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

// Union of the top-k values across a group of tables, sorted
// deterministically. This is the category set the chi-squared comparisons
// run over.
std::vector<std::string> top_k_union(const std::vector<const FrequencyTable*>& tables,
                                     std::size_t k);

}  // namespace cw::stats
