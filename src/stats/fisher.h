// Fisher's exact test for 2x2 contingency tables. Cloud vantage points are
// small (often 2-4 honeypots per region), so expected cell counts can drop
// low enough that the chi-squared approximation is unreliable; Fisher's
// exact test computes the exact hypergeometric tail instead. compare_binary
// callers can fall back to it when the chi-squared validity diagnostics
// (expected frequency < 5) trip.
#pragma once

#include <cstdint>

namespace cw::stats {

struct FisherResult {
  double p_value = 1.0;  // two-sided
  bool valid = false;
};

// Two-sided Fisher's exact test on the table [[a, b], [c, d]], using the
// standard "sum of all tables at least as extreme" definition (probability
// mass <= that of the observed table).
FisherResult fisher_exact_2x2(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              std::uint64_t d);

}  // namespace cw::stats
