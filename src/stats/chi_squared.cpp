#include "stats/chi_squared.h"

#include <algorithm>
#include <cmath>

#include "stats/fisher.h"

namespace cw::stats {

std::string_view magnitude_name(EffectMagnitude m) noexcept {
  switch (m) {
    case EffectMagnitude::kNone: return "none";
    case EffectMagnitude::kSmall: return "small";
    case EffectMagnitude::kMedium: return "medium";
    case EffectMagnitude::kLarge: return "large";
  }
  return "none";
}

EffectMagnitude classify_effect(double cramers_v, std::size_t min_dim_minus_one) noexcept {
  if (min_dim_minus_one == 0 || cramers_v <= 0.0) return EffectMagnitude::kNone;
  const double scale = std::sqrt(static_cast<double>(min_dim_minus_one));
  const double v = cramers_v * scale;  // normalize to the df*=1 scale
  if (v >= 0.5) return EffectMagnitude::kLarge;
  if (v >= 0.3) return EffectMagnitude::kMedium;
  if (v >= 0.1) return EffectMagnitude::kSmall;
  return EffectMagnitude::kNone;
}

namespace {

SignificanceTest finish(ContingencyTable& table, double alpha, std::size_t family_size) {
  SignificanceTest out;
  out.alpha = alpha;
  out.family_size = std::max<std::size_t>(family_size, 1);
  // Reduce in place, exactly once: pearson_chi_squared detects the reduced
  // table and computes on it directly, and callers that inspect the table
  // afterwards (compare_binary's sparsity check) see the same table the
  // test actually ran on.
  table.drop_empty_columns();
  table.drop_empty_rows();
  out.chi = pearson_chi_squared(table);
  if (!out.chi.valid) return out;
  const double corrected_alpha = out.alpha / static_cast<double>(out.family_size);
  out.significant = out.chi.p_value < corrected_alpha;
  const std::size_t min_dim_minus_one =
      std::min(table.rows(), table.cols()) > 0 ? std::min(table.rows(), table.cols()) - 1 : 0;
  out.magnitude = out.significant ? classify_effect(out.chi.cramers_v, min_dim_minus_one)
                                  : EffectMagnitude::kNone;
  return out;
}

}  // namespace

SignificanceTest compare_top_k(const std::vector<const FrequencyTable*>& tables, std::size_t k,
                               double alpha, std::size_t family_size) {
  const std::vector<std::string> categories = top_k_union(tables, k);
  ContingencyTable table = ContingencyTable::from_frequency_tables(tables, categories);
  return finish(table, alpha, family_size);
}

SignificanceTest compare_binary(const std::vector<std::pair<std::uint64_t, std::uint64_t>>& rows,
                                double alpha, std::size_t family_size) {
  ContingencyTable table(rows.size(), 2);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    table.set(r, 0, static_cast<double>(rows[r].first));
    table.set(r, 1, static_cast<double>(rows[r].second));
  }
  SignificanceTest result = finish(table, alpha, family_size);
  // Sparse 2x2 tables break the chi-squared approximation (expected cell
  // counts < 5); substitute Fisher's exact p-value, keeping the chi-based
  // effect size. finish() reduced `table` in place, so this sparsity check
  // runs on the same table the significance test did (a zero row/column in
  // the input can no longer skew the expected-frequency scan).
  if (result.chi.valid && rows.size() == 2 && table.cells_with_expected_below(5.0) > 0) {
    const FisherResult fisher = fisher_exact_2x2(rows[0].first, rows[0].second, rows[1].first,
                                                 rows[1].second);
    if (fisher.valid) {
      result.used_fisher = true;
      result.chi.p_value = fisher.p_value;
      result.significant =
          fisher.p_value < result.alpha / static_cast<double>(result.family_size);
      if (!result.significant) result.magnitude = EffectMagnitude::kNone;
    }
  }
  return result;
}

}  // namespace cw::stats
