#include "stats/special_functions.h"

#include <cmath>
#include <limits>

namespace cw::stats {
namespace {

constexpr int kMaxIterations = 500;
constexpr double kEpsilon = 1e-14;
constexpr double kTiny = 1e-300;

// Series representation of P(a, x); converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double term = sum;
  for (int i = 0; i < kMaxIterations; ++i) {
    ap += 1.0;
    term *= x / ap;
    sum += term;
    if (std::fabs(term) < std::fabs(sum) * kEpsilon) break;
  }
  return sum * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

// Lentz continued fraction for Q(a, x); converges quickly for x > a + 1.
double gamma_q_cf(double a, double x) {
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= kMaxIterations; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::fabs(delta - 1.0) < kEpsilon) break;
  }
  return h * std::exp(-x + a * std::log(x) - lgamma_threadsafe(a));
}

}  // namespace

double lgamma_threadsafe(double a) {
#if defined(__GLIBC__) || defined(__APPLE__)
  int sign = 0;
  return ::lgamma_r(a, &sign);
#else
  return std::lgamma(a);
#endif
}

double gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return gamma_p_series(a, x);
  return 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) {
  if (a <= 0.0 || x < 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 1.0;
  if (x < a + 1.0) return 1.0 - gamma_p_series(a, x);
  return gamma_q_cf(a, x);
}

double chi_squared_sf(double x, double df) {
  if (df <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x <= 0.0) return 1.0;
  return gamma_q(df / 2.0, x / 2.0);
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double kolmogorov_sf(double lambda) {
  if (lambda <= 0.0) return 1.0;
  // The alternating series converges extremely fast for lambda >= 0.3; for
  // smaller lambda the SF is numerically 1.
  double sum = 0.0;
  double sign = 1.0;
  for (int j = 1; j <= 100; ++j) {
    const double term = std::exp(-2.0 * j * j * lambda * lambda);
    sum += sign * term;
    if (term < 1e-16) break;
    sign = -sign;
  }
  const double sf = 2.0 * sum;
  if (sf < 0.0) return 0.0;
  if (sf > 1.0) return 1.0;
  return sf;
}

}  // namespace cw::stats
