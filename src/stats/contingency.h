// r x c contingency tables and Pearson's chi-squared statistic with
// Cramér's V effect size (Sections 3.3). Rows are vantage points (or groups
// of them); columns are categorical values (the top-3 union).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/freq.h"

namespace cw::stats {

class ContingencyTable {
 public:
  ContingencyTable(std::size_t rows, std::size_t cols);

  // Builds a table whose rows are the given frequency tables restricted to
  // `categories` (typically a top-k union).
  static ContingencyTable from_frequency_tables(const std::vector<const FrequencyTable*>& tables,
                                                const std::vector<std::string>& categories);

  void set(std::size_t row, std::size_t col, double value);
  void add(std::size_t row, std::size_t col, double value);
  [[nodiscard]] double at(std::size_t row, std::size_t col) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }

  [[nodiscard]] double row_total(std::size_t row) const;
  [[nodiscard]] double col_total(std::size_t col) const;
  [[nodiscard]] double grand_total() const;

  // All row/column totals in one pass over the cells. The per-cell loops in
  // cells_with_expected_below and pearson_chi_squared consume these instead
  // of recomputing col_total(c) per cell (which was accidentally
  // O(R*C*(R+C)) on wide top-k-union tables).
  [[nodiscard]] std::vector<double> row_totals() const;
  [[nodiscard]] std::vector<double> col_totals() const;

  // Drops columns whose total is zero (they carry no information and break
  // expected-frequency requirements). Returns the number of columns kept.
  std::size_t drop_empty_columns();

  // Drops rows whose total is zero.
  std::size_t drop_empty_rows();

  // Number of cells with expected frequency below the given threshold —
  // chi-squared validity diagnostics.
  [[nodiscard]] std::size_t cells_with_expected_below(double threshold) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> cells_;  // row-major
};

struct ChiSquared {
  double statistic = 0.0;
  double df = 0.0;
  double p_value = 1.0;
  double cramers_v = 0.0;      // sqrt(chi2 / (n * min(r-1, c-1)))
  std::size_t n = 0;           // grand total
  bool valid = false;          // false when the table is degenerate
};

// Pearson chi-squared over a contingency table. Degenerate tables (fewer
// than 2 non-empty rows/cols, or zero total) yield valid=false. A table
// with no empty rows/columns (anything stats::finish hands in) is computed
// on directly; otherwise a reduced copy is made first.
ChiSquared pearson_chi_squared(const ContingencyTable& table);

}  // namespace cw::stats
