#include "stats/freq.h"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace cw::stats {

namespace {

// Shared tie-break rule: descending count, then ascending text. Both
// representations sort with this exact comparator, which is a total order
// over distinct values — the source representation cannot change output.
bool count_text_less(std::uint64_t count_a, const std::string& text_a, std::uint64_t count_b,
                     const std::string& text_b) {
  if (count_a != count_b) return count_a > count_b;
  return text_a < text_b;
}

// Out-of-line so the gather loops stay tight; the comparison feeding it is
// always-false for a dictionary that matches its codes.
[[noreturn]] void throw_stale_dictionary(std::uint32_t shifted, std::size_t slots) {
  throw std::out_of_range("FrequencyTable::from_codes: shifted code " + std::to_string(shifted) +
                          " >= " + std::to_string(slots) +
                          " count slots (stale or mismatched dictionary)");
}

}  // namespace

FrequencyTable FrequencyTable::from_codes(std::span<const std::uint32_t> shifted_codes,
                                          std::shared_ptr<const util::Dictionary> dict) {
  FrequencyTable table;
  table.dict_ = std::move(dict);
  table.shifted_counts_.assign(static_cast<std::size_t>(table.dict_->size()) + 1, 0);
  std::uint64_t* counts = table.shifted_counts_.data();
  // The bounds check is unconditional: a stale or mismatched dictionary must
  // throw in release builds too, not scribble past the count vector the way
  // the old debug-only assert allowed. The branch never fires for a matching
  // dictionary, so the gather stays effectively branchless
  // (bench_frame_kernels: within noise of the unchecked loop).
  const std::size_t slots = table.shifted_counts_.size();
  for (const std::uint32_t shifted : shifted_codes) {
    if (shifted >= slots) throw_stale_dictionary(shifted, slots);
    ++counts[shifted];
  }
  table.recount_dense();
  return table;
}

FrequencyTable FrequencyTable::from_codes(std::span<const std::uint32_t> shifted_codes,
                                          const util::PostingView& records,
                                          std::shared_ptr<const util::Dictionary> dict) {
  FrequencyTable table;
  table.dict_ = std::move(dict);
  table.shifted_counts_.assign(static_cast<std::size_t>(table.dict_->size()) + 1, 0);
  std::uint64_t* counts = table.shifted_counts_.data();
  const std::uint32_t* codes = shifted_codes.data();
  const std::size_t slots = table.shifted_counts_.size();
  records.for_each([counts, codes, slots](std::uint32_t record) {
    const std::uint32_t shifted = codes[record];
    if (shifted >= slots) throw_stale_dictionary(shifted, slots);
    ++counts[shifted];
  });
  table.recount_dense();
  return table;
}

void FrequencyTable::recount_dense() {
  total_ = 0;
  dense_distinct_ = 0;
  for (std::size_t s = 1; s < shifted_counts_.size(); ++s) {
    total_ += shifted_counts_[s];
    dense_distinct_ += shifted_counts_[s] != 0;
  }
}

void FrequencyTable::flatten() {
  if (!dense()) return;
  counts_.reserve(dense_distinct_);
  for (std::size_t s = 1; s < shifted_counts_.size(); ++s) {
    if (shifted_counts_[s] != 0) {
      counts_.emplace(dict_->at(static_cast<std::uint32_t>(s - 1)), shifted_counts_[s]);
    }
  }
  dict_.reset();
  shifted_counts_.clear();
  shifted_counts_.shrink_to_fit();
  dense_distinct_ = 0;
}

void FrequencyTable::add(const std::string& value, std::uint64_t count) {
  flatten();
  counts_[value] += count;
  total_ += count;
}

void FrequencyTable::merge(const FrequencyTable& other) {
  if (other.dense()) {
    if (pristine()) {
      // Adopt the dense representation (SegmentedTableCache seeds its merge
      // accumulator with a default-constructed table).
      dict_ = other.dict_;
      shifted_counts_ = other.shifted_counts_;
      total_ = other.total_;
      dense_distinct_ = other.dense_distinct_;
      return;
    }
    if (dense() && dict_ == other.dict_) {
      // Code-wise merge on the shared dictionary. A stream dictionary only
      // grows, so the shorter vector is a prefix of the longer code space.
      if (shifted_counts_.size() < other.shifted_counts_.size()) {
        shifted_counts_.resize(other.shifted_counts_.size(), 0);
      }
      for (std::size_t s = 0; s < other.shifted_counts_.size(); ++s) {
        shifted_counts_[s] += other.shifted_counts_[s];
      }
      recount_dense();
      return;
    }
    // Dictionary mismatch: fall back to text.
    flatten();
    for (std::size_t s = 1; s < other.shifted_counts_.size(); ++s) {
      if (other.shifted_counts_[s] != 0) {
        counts_[other.dict_->at(static_cast<std::uint32_t>(s - 1))] += other.shifted_counts_[s];
      }
    }
    total_ += other.total_;
    return;
  }
  if (other.counts_.empty()) return;
  flatten();
  for (const auto& [value, count] : other.counts_) counts_[value] += count;
  total_ += other.total_;
}

std::uint64_t FrequencyTable::count(const std::string& value) const noexcept {
  if (dense()) {
    const auto code = dict_->find(value);
    if (!code.has_value()) return 0;
    const std::size_t slot = static_cast<std::size_t>(*code) + 1;
    // A shared stream dictionary may have grown past this table's build.
    return slot < shifted_counts_.size() ? shifted_counts_[slot] : 0;
  }
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> FrequencyTable::sorted() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  if (dense()) {
    out.reserve(dense_distinct_);
    for (std::size_t s = 1; s < shifted_counts_.size(); ++s) {
      if (shifted_counts_[s] != 0) {
        out.emplace_back(dict_->at(static_cast<std::uint32_t>(s - 1)), shifted_counts_[s]);
      }
    }
  } else {
    out.assign(counts_.begin(), counts_.end());
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return count_text_less(a.second, a.first, b.second, b.first);
  });
  return out;
}

std::vector<std::string> FrequencyTable::top_k(std::size_t k) const {
  std::vector<std::string> out;
  if (k == 0) return out;
  if (dense()) {
    // Select over (count, code) pairs; the text tie-break reads through the
    // dictionary, so first-sight code order cannot perturb the result.
    std::vector<std::uint32_t> codes;
    codes.reserve(dense_distinct_);
    for (std::size_t s = 1; s < shifted_counts_.size(); ++s) {
      if (shifted_counts_[s] != 0) codes.push_back(static_cast<std::uint32_t>(s - 1));
    }
    const std::size_t take = std::min(k, codes.size());
    const auto less = [this](std::uint32_t a, std::uint32_t b) {
      return count_text_less(shifted_counts_[a + 1], dict_->at(a), shifted_counts_[b + 1],
                             dict_->at(b));
    };
    std::partial_sort(codes.begin(), codes.begin() + static_cast<std::ptrdiff_t>(take),
                      codes.end(), less);
    out.reserve(take);
    for (std::size_t i = 0; i < take; ++i) out.push_back(dict_->at(codes[i]));
    return out;
  }
  // Sparse: partial-sort pointers into the map — O(n log k) instead of the
  // v1 full sorted() materialization, with the identical total order.
  std::vector<const std::pair<const std::string, std::uint64_t>*> entries;
  entries.reserve(counts_.size());
  for (const auto& entry : counts_) entries.push_back(&entry);
  const std::size_t take = std::min(k, entries.size());
  std::partial_sort(entries.begin(), entries.begin() + static_cast<std::ptrdiff_t>(take),
                    entries.end(), [](const auto* a, const auto* b) {
                      return count_text_less(a->second, a->first, b->second, b->first);
                    });
  out.reserve(take);
  for (std::size_t i = 0; i < take; ++i) out.push_back(entries[i]->first);
  return out;
}

std::vector<std::string> top_k_union(const std::vector<const FrequencyTable*>& tables,
                                     std::size_t k) {
  std::set<std::string> seen;
  for (const FrequencyTable* table : tables) {
    if (table == nullptr) continue;
    for (std::string& value : table->top_k(k)) seen.insert(std::move(value));
  }
  return {seen.begin(), seen.end()};
}

}  // namespace cw::stats
