#include "stats/freq.h"

#include <algorithm>
#include <set>

namespace cw::stats {

void FrequencyTable::add(const std::string& value, std::uint64_t count) {
  counts_[value] += count;
  total_ += count;
}

void FrequencyTable::merge(const FrequencyTable& other) {
  for (const auto& [value, count] : other.counts_) counts_[value] += count;
  total_ += other.total_;
}

std::uint64_t FrequencyTable::count(const std::string& value) const noexcept {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<std::pair<std::string, std::uint64_t>> FrequencyTable::sorted() const {
  std::vector<std::pair<std::string, std::uint64_t>> out(counts_.begin(), counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

std::vector<std::string> FrequencyTable::top_k(std::size_t k) const {
  auto all = sorted();
  if (all.size() > k) all.resize(k);
  std::vector<std::string> out;
  out.reserve(all.size());
  for (auto& [value, count] : all) out.push_back(std::move(value));
  return out;
}

std::vector<std::string> top_k_union(const std::vector<const FrequencyTable*>& tables,
                                     std::size_t k) {
  std::set<std::string> seen;
  for (const FrequencyTable* table : tables) {
    if (table == nullptr) continue;
    for (const std::string& value : table->top_k(k)) seen.insert(value);
  }
  return {seen.begin(), seen.end()};
}

}  // namespace cw::stats
