#include "stats/ks.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace cw::stats {

KsResult ks_two_sample(const std::vector<double>& sample1, const std::vector<double>& sample2) {
  KsResult result;
  const std::size_t n1 = sample1.size();
  const std::size_t n2 = sample2.size();
  if (n1 == 0 || n2 == 0) return result;

  std::vector<double> s1 = sample1;
  std::vector<double> s2 = sample2;
  std::sort(s1.begin(), s1.end());
  std::sort(s2.begin(), s2.end());

  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < n1 && j < n2) {
    const double x = std::min(s1[i], s2[j]);
    while (i < n1 && s1[i] <= x) ++i;
    while (j < n2 && s2[j] <= x) ++j;
    const double f1 = static_cast<double>(i) / static_cast<double>(n1);
    const double f2 = static_cast<double>(j) / static_cast<double>(n2);
    d = std::max(d, std::fabs(f1 - f2));
  }

  result.d_statistic = d;
  const double ne = static_cast<double>(n1) * static_cast<double>(n2) /
                    (static_cast<double>(n1) + static_cast<double>(n2));
  const double sqrt_ne = std::sqrt(ne);
  // Stephens' finite-sample adjustment of the asymptotic distribution.
  const double lambda = (sqrt_ne + 0.12 + 0.11 / sqrt_ne) * d;
  result.p_value = kolmogorov_sf(lambda);
  result.valid = true;
  return result;
}

}  // namespace cw::stats
