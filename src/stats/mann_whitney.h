// One-sided Mann-Whitney U test with tie correction. The paper uses it
// (Section 4.3, footnote 5) to test whether hourly traffic volumes toward
// leaked services are stochastically greater than toward the control group.
#pragma once

#include <vector>

namespace cw::stats {

struct MannWhitneyResult {
  double u_statistic = 0.0;  // U for the first sample
  double z = 0.0;            // normal approximation z-score
  double p_value = 1.0;      // one-sided: P(sample1 > sample2)
  bool valid = false;
};

// Tests H1: values in `greater` tend to exceed values in `lesser`
// (one-sided). Uses the normal approximation with tie correction, which is
// accurate for the sample sizes the leak experiment produces (168 hourly
// buckets per week).
MannWhitneyResult mann_whitney_greater(const std::vector<double>& greater,
                                       const std::vector<double>& lesser);

}  // namespace cw::stats
