#include "stats/fisher.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace cw::stats {
namespace {

// log(n!) via lgamma; exact enough for the table sizes honeypot comparisons
// produce.
double log_factorial(std::uint64_t n) {
  return lgamma_threadsafe(static_cast<double>(n) + 1.0);
}

// Log-probability of a specific 2x2 table under the hypergeometric null
// with fixed margins.
double log_hypergeometric(std::uint64_t a, std::uint64_t b, std::uint64_t c, std::uint64_t d) {
  const std::uint64_t n = a + b + c + d;
  return log_factorial(a + b) + log_factorial(c + d) + log_factorial(a + c) +
         log_factorial(b + d) - log_factorial(n) - log_factorial(a) - log_factorial(b) -
         log_factorial(c) - log_factorial(d);
}

}  // namespace

FisherResult fisher_exact_2x2(std::uint64_t a, std::uint64_t b, std::uint64_t c,
                              std::uint64_t d) {
  FisherResult result;
  const std::uint64_t row1 = a + b;
  const std::uint64_t col1 = a + c;
  const std::uint64_t n = a + b + c + d;
  if (n == 0) return result;

  const double observed = log_hypergeometric(a, b, c, d);
  // Enumerate every table with the same margins: a' ranges over
  // [max(0, row1 + col1 - n), min(row1, col1)].
  const std::uint64_t lo = row1 + col1 > n ? row1 + col1 - n : 0;
  const std::uint64_t hi = std::min(row1, col1);

  double p = 0.0;
  for (std::uint64_t ap = lo; ap <= hi; ++ap) {
    const std::uint64_t bp = row1 - ap;
    const std::uint64_t cp = col1 - ap;
    const std::uint64_t dp = n - row1 - cp;
    const double lp = log_hypergeometric(ap, bp, cp, dp);
    // Two-sided: include every table whose probability does not exceed the
    // observed one (within a relative tolerance for ties).
    if (lp <= observed + 1e-9) p += std::exp(lp);
  }
  result.p_value = std::min(p, 1.0);
  result.valid = true;
  return result;
}

}  // namespace cw::stats
