#include "stats/mann_whitney.h"

#include <algorithm>
#include <cmath>

#include "stats/special_functions.h"

namespace cw::stats {

MannWhitneyResult mann_whitney_greater(const std::vector<double>& greater,
                                       const std::vector<double>& lesser) {
  MannWhitneyResult result;
  const std::size_t n1 = greater.size();
  const std::size_t n2 = lesser.size();
  if (n1 == 0 || n2 == 0) return result;

  // Pool, rank with midranks for ties.
  struct Tagged {
    double value;
    int group;  // 0 = greater sample, 1 = lesser sample
  };
  std::vector<Tagged> pooled;
  pooled.reserve(n1 + n2);
  for (double v : greater) pooled.push_back({v, 0});
  for (double v : lesser) pooled.push_back({v, 1});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& a, const Tagged& b) { return a.value < b.value; });

  const std::size_t n = pooled.size();
  std::vector<double> ranks(n);
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && pooled[j + 1].value == pooled[i].value) ++j;
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[k] = midrank;
    const double t = static_cast<double>(j - i + 1);
    tie_correction += t * t * t - t;
    i = j + 1;
  }

  double rank_sum_1 = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    if (pooled[k].group == 0) rank_sum_1 += ranks[k];
  }

  const double dn1 = static_cast<double>(n1);
  const double dn2 = static_cast<double>(n2);
  const double u1 = rank_sum_1 - dn1 * (dn1 + 1.0) / 2.0;
  result.u_statistic = u1;

  const double mean_u = dn1 * dn2 / 2.0;
  const double dn = dn1 + dn2;
  const double variance =
      dn1 * dn2 / 12.0 * ((dn + 1.0) - tie_correction / (dn * (dn - 1.0)));
  if (variance <= 0.0) {
    // All values identical: no evidence of stochastic dominance.
    result.p_value = 1.0;
    result.valid = true;
    return result;
  }

  // Continuity correction toward the null.
  const double z = (u1 - mean_u - 0.5) / std::sqrt(variance);
  result.z = z;
  result.p_value = 1.0 - normal_cdf(z);
  result.valid = true;
  return result;
}

}  // namespace cw::stats
