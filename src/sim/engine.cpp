#include "sim/engine.h"

#include <algorithm>
#include <utility>

namespace cw::sim {

void Engine::schedule_at(util::SimTime t, Callback cb) {
  if (t < now_) t = now_;
  heap_.push_back(Scheduled{t, next_sequence_++, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
}

void Engine::schedule_after(util::SimDuration delay, Callback cb) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

Engine::Scheduled Engine::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Scheduled event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

std::uint64_t Engine::run_until(util::SimTime end) {
  std::uint64_t ran = 0;
  while (!heap_.empty() && heap_.front().time <= end) {
    Scheduled event = pop_next();
    now_ = event.time;
    event.callback(*this);
    ++ran;
    ++processed_;
  }
  if (now_ < end) now_ = end;
  return ran;
}

std::uint64_t Engine::run_all() {
  std::uint64_t ran = 0;
  while (!heap_.empty()) {
    Scheduled event = pop_next();
    now_ = event.time;
    event.callback(*this);
    ++ran;
    ++processed_;
  }
  return ran;
}

}  // namespace cw::sim
