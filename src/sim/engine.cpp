#include "sim/engine.h"

#include <utility>

namespace cw::sim {

void Engine::schedule_at(util::SimTime t, Callback cb) {
  if (t < now_) t = now_;
  queue_.push(Scheduled{t, next_sequence_++, std::move(cb)});
}

void Engine::schedule_after(util::SimDuration delay, Callback cb) {
  schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(cb));
}

std::uint64_t Engine::run_until(util::SimTime end) {
  std::uint64_t ran = 0;
  while (!queue_.empty() && queue_.top().time <= end) {
    // Move the callback out before popping so re-entrant scheduling from
    // inside the callback can't touch a dangling reference.
    Scheduled event = std::move(const_cast<Scheduled&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    event.callback(*this);
    ++ran;
    ++processed_;
  }
  if (now_ < end) now_ = end;
  return ran;
}

std::uint64_t Engine::run_all() {
  std::uint64_t ran = 0;
  while (!queue_.empty()) {
    Scheduled event = std::move(const_cast<Scheduled&>(queue_.top()));
    queue_.pop();
    now_ = event.time;
    event.callback(*this);
    ++ran;
    ++processed_;
  }
  return ran;
}

}  // namespace cw::sim
