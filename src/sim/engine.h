// Deterministic discrete-event simulation engine. Actors (scanners, search
// engine crawlers, honeypot maintenance tasks) schedule callbacks; events at
// the same timestamp run in schedule order, so a run is fully reproducible
// for a given experiment seed.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "util/sim_time.h"

namespace cw::sim {

class Engine {
 public:
  using Callback = std::function<void(Engine&)>;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Schedules a callback at an absolute simulated time. Events scheduled in
  // the past run immediately at the current time (still in FIFO order).
  void schedule_at(util::SimTime t, Callback cb);

  // Schedules relative to the current simulated time.
  void schedule_after(util::SimDuration delay, Callback cb);

  // Pre-allocates heap capacity for a known event volume.
  void reserve(std::size_t events) { heap_.reserve(events); }

  [[nodiscard]] util::SimTime now() const noexcept { return now_; }

  // Runs events with timestamp <= end, then sets now() to end. Returns the
  // number of events processed by this call.
  std::uint64_t run_until(util::SimTime end);

  // Runs until the queue is empty.
  std::uint64_t run_all();

  [[nodiscard]] std::uint64_t events_processed() const noexcept { return processed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

 private:
  struct Scheduled {
    util::SimTime time;
    std::uint64_t sequence;
    Callback callback;
  };
  struct Later {
    bool operator()(const Scheduled& a, const Scheduled& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.sequence > b.sequence;
    }
  };

  // Pops the earliest event off the heap and returns it by value.
  Scheduled pop_next();

  // Explicit binary heap (std::push_heap/std::pop_heap over a vector) rather
  // than std::priority_queue: top() of a priority_queue is const, so moving
  // the callback out required a const_cast — undefined behavior that also
  // broke re-entrant scheduling. pop_heap hands us the element at back(),
  // which we may legally move from, and the vector supports reserve().
  std::vector<Scheduled> heap_;
  util::SimTime now_ = 0;
  std::uint64_t next_sequence_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace cw::sim
