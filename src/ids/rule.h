// A Suricata-compatible subset of the rule language, sufficient for the
// paper's methodology (Section 3.2): content matches with nocase, HTTP
// buffer selectors (http_uri / http_method / http_header / http_client_body),
// destination port constraints, and the eight classtypes the authors kept
// after false-positive filtering.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ports.h"

namespace cw::ids {

enum class ClassType : std::uint8_t {
  kTrojanActivity = 0,
  kWebApplicationAttack,
  kProtocolCommandDecode,
  kAttemptedUser,
  kAttemptedAdmin,
  kAttemptedRecon,
  kBadUnknown,
  kMiscActivity,
};

inline constexpr std::size_t kClassTypeCount = 8;

std::string_view class_type_name(ClassType c) noexcept;
std::optional<ClassType> class_type_from_name(std::string_view name) noexcept;

// Which slice of the payload a content match applies to.
enum class MatchBuffer : std::uint8_t {
  kRaw = 0,         // whole payload
  kHttpUri,
  kHttpMethod,
  kHttpHeader,
  kHttpClientBody,
};

struct ContentMatch {
  std::string needle;        // decoded: |xx xx| hex spans already binary
  bool nocase = false;
  bool negated = false;      // content:!"..."
  MatchBuffer buffer = MatchBuffer::kRaw;
};

struct Rule {
  std::uint32_t sid = 0;
  std::uint32_t rev = 1;
  std::string msg;
  ClassType class_type = ClassType::kMiscActivity;
  net::Transport transport = net::Transport::kTcp;
  std::vector<net::Port> dst_ports;  // empty = any
  std::vector<ContentMatch> contents;

  [[nodiscard]] bool applies_to_port(net::Port port) const noexcept;
};

// Parses one rule line. Returns nullopt (with a diagnostic in `error` when
// provided) for malformed rules or unsupported constructs; the caller can
// skip those, matching how operators curate real rule files.
std::optional<Rule> parse_rule(std::string_view line, std::string* error = nullptr);

}  // namespace cw::ids
