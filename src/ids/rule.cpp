#include "ids/rule.h"

#include <algorithm>
#include <charconv>

#include "util/strings.h"

namespace cw::ids {

std::string_view class_type_name(ClassType c) noexcept {
  switch (c) {
    case ClassType::kTrojanActivity: return "trojan-activity";
    case ClassType::kWebApplicationAttack: return "web-application-attack";
    case ClassType::kProtocolCommandDecode: return "protocol-command-decode";
    case ClassType::kAttemptedUser: return "attempted-user";
    case ClassType::kAttemptedAdmin: return "attempted-admin";
    case ClassType::kAttemptedRecon: return "attempted-recon";
    case ClassType::kBadUnknown: return "bad-unknown";
    case ClassType::kMiscActivity: return "misc-activity";
  }
  return "misc-activity";
}

std::optional<ClassType> class_type_from_name(std::string_view name) noexcept {
  for (std::size_t i = 0; i < kClassTypeCount; ++i) {
    const ClassType c = static_cast<ClassType>(i);
    if (name == class_type_name(c)) return c;
  }
  return std::nullopt;
}

bool Rule::applies_to_port(net::Port port) const noexcept {
  if (dst_ports.empty()) return true;
  return std::find(dst_ports.begin(), dst_ports.end(), port) != dst_ports.end();
}

namespace {

void set_error(std::string* error, std::string_view message) {
  if (error != nullptr) *error = std::string(message);
}

// Decodes Suricata content syntax: literal text with |xx xx| hex spans.
std::optional<std::string> decode_content(std::string_view raw) {
  std::string out;
  bool in_hex = false;
  std::string hex_accumulator;
  for (char c : raw) {
    if (c == '|') {
      if (in_hex) {
        // Flush accumulated hex bytes.
        const auto digits = cw::util::split_trimmed(hex_accumulator, ' ');
        for (std::string_view d : digits) {
          if (d.size() != 2) return std::nullopt;
          unsigned byte = 0;
          auto [ptr, ec] = std::from_chars(d.data(), d.data() + 2, byte, 16);
          if (ec != std::errc() || ptr != d.data() + 2) return std::nullopt;
          out += static_cast<char>(byte);
        }
        hex_accumulator.clear();
      }
      in_hex = !in_hex;
      continue;
    }
    if (in_hex) {
      hex_accumulator += c;
    } else {
      out += c;
    }
  }
  if (in_hex) return std::nullopt;
  return out;
}

// Parses a port spec: "any", a number, or a bracket list "[80,8080]".
std::optional<std::vector<net::Port>> parse_ports(std::string_view spec) {
  std::vector<net::Port> out;
  spec = cw::util::trim(spec);
  if (spec == "any" || spec == "$HTTP_PORTS" || spec.empty()) return out;
  std::string_view inner = spec;
  if (spec.front() == '[' && spec.back() == ']') inner = spec.substr(1, spec.size() - 2);
  for (std::string_view part : cw::util::split_trimmed(inner, ',')) {
    unsigned port = 0;
    auto [ptr, ec] = std::from_chars(part.data(), part.data() + part.size(), port);
    if (ec != std::errc() || ptr != part.data() + part.size() || port > 65535) {
      return std::nullopt;
    }
    out.push_back(static_cast<net::Port>(port));
  }
  return out;
}

}  // namespace

std::optional<Rule> parse_rule(std::string_view line, std::string* error) {
  line = util::trim(line);
  if (line.empty() || line.front() == '#') {
    set_error(error, "comment or blank");
    return std::nullopt;
  }

  const std::size_t paren = line.find('(');
  if (paren == std::string_view::npos || line.back() != ')') {
    set_error(error, "missing option block");
    return std::nullopt;
  }
  const std::string_view head = util::trim(line.substr(0, paren));
  const std::string_view options = line.substr(paren + 1, line.size() - paren - 2);

  // Header: action proto src sport -> dst dport
  const auto head_parts = util::split_trimmed(head, ' ');
  if (head_parts.size() != 7 || head_parts[4] != "->") {
    set_error(error, "malformed header");
    return std::nullopt;
  }
  if (head_parts[0] != "alert") {
    set_error(error, "unsupported action");
    return std::nullopt;
  }

  Rule rule;
  if (head_parts[1] == "tcp" || head_parts[1] == "http") {
    rule.transport = net::Transport::kTcp;
  } else if (head_parts[1] == "udp") {
    rule.transport = net::Transport::kUdp;
  } else {
    set_error(error, "unsupported protocol");
    return std::nullopt;
  }
  auto ports = parse_ports(head_parts[6]);
  if (!ports) {
    set_error(error, "bad port spec");
    return std::nullopt;
  }
  rule.dst_ports = std::move(*ports);

  // Options: semicolon-separated key[:value] pairs. Values may contain
  // quoted strings with escaped characters.
  std::size_t cursor = 0;
  ContentMatch* last_content = nullptr;
  while (cursor < options.size()) {
    // Find the terminating ';' outside quotes.
    bool in_quotes = false;
    std::size_t end = cursor;
    while (end < options.size()) {
      const char c = options[end];
      if (c == '"' && (end == 0 || options[end - 1] != '\\')) in_quotes = !in_quotes;
      if (c == ';' && !in_quotes) break;
      ++end;
    }
    std::string_view option = util::trim(options.substr(cursor, end - cursor));
    cursor = end + 1;
    if (option.empty()) continue;

    const std::size_t colon = option.find(':');
    const std::string_view key = colon == std::string_view::npos
                                     ? option
                                     : util::trim(option.substr(0, colon));
    std::string_view value =
        colon == std::string_view::npos ? std::string_view{} : util::trim(option.substr(colon + 1));

    auto unquote = [](std::string_view v) -> std::string_view {
      if (v.size() >= 2 && v.front() == '"' && v.back() == '"') return v.substr(1, v.size() - 2);
      return v;
    };

    if (key == "msg") {
      rule.msg = std::string(unquote(value));
    } else if (key == "content") {
      ContentMatch match;
      std::string_view body = value;
      if (!body.empty() && body.front() == '!') {
        match.negated = true;
        body = util::trim(body.substr(1));
      }
      auto decoded = decode_content(unquote(body));
      if (!decoded) {
        set_error(error, "bad content encoding");
        return std::nullopt;
      }
      match.needle = std::move(*decoded);
      rule.contents.push_back(std::move(match));
      last_content = &rule.contents.back();
    } else if (key == "nocase") {
      if (last_content == nullptr) {
        set_error(error, "nocase without content");
        return std::nullopt;
      }
      last_content->nocase = true;
    } else if (key == "http_uri" || key == "http.uri") {
      if (last_content == nullptr) {
        set_error(error, "http_uri without content");
        return std::nullopt;
      }
      last_content->buffer = MatchBuffer::kHttpUri;
    } else if (key == "http_method" || key == "http.method") {
      if (last_content == nullptr) {
        set_error(error, "http_method without content");
        return std::nullopt;
      }
      last_content->buffer = MatchBuffer::kHttpMethod;
    } else if (key == "http_header" || key == "http.header") {
      if (last_content == nullptr) {
        set_error(error, "http_header without content");
        return std::nullopt;
      }
      last_content->buffer = MatchBuffer::kHttpHeader;
    } else if (key == "http_client_body" || key == "http.request_body") {
      if (last_content == nullptr) {
        set_error(error, "http_client_body without content");
        return std::nullopt;
      }
      last_content->buffer = MatchBuffer::kHttpClientBody;
    } else if (key == "classtype") {
      auto c = class_type_from_name(value);
      if (!c) {
        set_error(error, "unknown classtype");
        return std::nullopt;
      }
      rule.class_type = *c;
    } else if (key == "sid") {
      unsigned sid = 0;
      auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), sid);
      if (ec != std::errc() || ptr != value.data() + value.size()) {
        set_error(error, "bad sid");
        return std::nullopt;
      }
      rule.sid = sid;
    } else if (key == "rev") {
      unsigned rev = 0;
      auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), rev);
      if (ec == std::errc() && ptr == value.data() + value.size()) rule.rev = rev;
    } else if (key == "flow" || key == "reference" || key == "metadata" || key == "depth" ||
               key == "offset" || key == "distance" || key == "within" || key == "threshold" ||
               key == "fast_pattern" || key == "target") {
      // Accepted and ignored: these narrow matches in ways that do not
      // change the verdicts for first-payload honeypot data.
    } else {
      set_error(error, "unsupported option: " + std::string(key));
      return std::nullopt;
    }
  }

  if (rule.sid == 0) {
    set_error(error, "missing sid");
    return std::nullopt;
  }
  if (rule.contents.empty()) {
    set_error(error, "rule has no content match");
    return std::nullopt;
  }
  return rule;
}

}  // namespace cw::ids
