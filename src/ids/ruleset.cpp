#include "ids/ruleset.h"

#include <cstdlib>

namespace cw::ids {

std::string_view curated_rules_text() {
  // sids in the 9,000,000 range mark these as locally curated (Suricata
  // reserves low ranges for distributed sets).
  static constexpr std::string_view kRules = R"RULES(
# --- Remote code execution over HTTP ---------------------------------------
alert tcp any any -> any any (msg:"CW EXPLOIT Log4Shell JNDI lookup attempt"; content:"${jndi:"; nocase; classtype:web-application-attack; sid:9000001; rev:2;)
alert tcp any any -> any any (msg:"CW EXPLOIT PHPUnit eval-stdin RCE"; content:"/vendor/phpunit/phpunit/src/Util/PHP/eval-stdin.php"; http_uri; classtype:web-application-attack; sid:9000002; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT ThinkPHP invokefunction RCE"; content:"invokefunction"; http_uri; content:"call_user_func_array"; http_uri; classtype:web-application-attack; sid:9000003; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT GPON router diag_Form command injection"; content:"/GponForm/diag_Form"; http_uri; classtype:web-application-attack; sid:9000004; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT Hadoop YARN unauthenticated application submission"; content:"/ws/v1/cluster/apps/new-application"; http_uri; classtype:attempted-admin; sid:9000005; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT NETGEAR setup.cgi RCE"; content:"/setup.cgi?next_file=netgear.cfg"; http_uri; classtype:web-application-attack; sid:9000006; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT Directory traversal in URI"; content:"/../../"; http_uri; classtype:web-application-attack; sid:9000007; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT TR-069 CWMP SetParameterValues injection"; content:"NewNTPServer1"; classtype:web-application-attack; sid:9000008; rev:1;)
alert tcp any any -> any any (msg:"CW EXPLOIT Apache path normalization CVE-2021-41773"; content:"/cgi-bin/.%2e/"; http_uri; classtype:web-application-attack; sid:9000018; rev:1;)

# --- Malware delivery / trojan activity ------------------------------------
alert tcp any any -> any any (msg:"CW TROJAN IoT botnet wget downloader one-liner"; content:"cd /tmp"; content:"wget http"; classtype:trojan-activity; sid:9000009; rev:1;)
alert tcp any any -> any any (msg:"CW TROJAN busybox loader invocation"; content:"/bin/busybox"; nocase; classtype:trojan-activity; sid:9000010; rev:1;)
alert tcp any any -> any any (msg:"CW TROJAN Mozi.m download request"; content:"Mozi.m"; classtype:trojan-activity; sid:9000011; rev:1;)

# --- Authentication bypass / brute force -----------------------------------
alert tcp any any -> any any (msg:"CW POLICY HTTP POST login brute force"; content:"POST"; http_method; content:"/api/login"; http_uri; classtype:attempted-user; sid:9000012; rev:1;)
alert tcp any any -> any any (msg:"CW POLICY router luci login attempt"; content:"POST"; http_method; content:"/cgi-bin/luci"; http_uri; classtype:attempted-user; sid:9000013; rev:1;)
alert tcp any any -> any any (msg:"CW POLICY phpMyAdmin login probe"; content:"POST"; http_method; content:"/phpmyadmin/index.php"; http_uri; nocase; classtype:attempted-user; sid:9000014; rev:1;)

# --- State alteration over non-HTTP protocols ------------------------------
alert tcp any any -> any any (msg:"CW REDIS CONFIG SET persistence hijack"; content:"CONFIG"; nocase; content:"SET"; nocase; content:"dir"; classtype:attempted-admin; sid:9000015; rev:1;)
alert tcp any any -> any any (msg:"CW ADB remote shell execution"; content:"CNXN"; content:"shell:"; classtype:attempted-admin; sid:9000016; rev:1;)
alert tcp any any -> any [5555] (msg:"CW ADB sideload attempt"; content:"sideload:"; classtype:attempted-admin; sid:9000017; rev:1;)
alert tcp any any -> any any (msg:"CW SIP REGISTER brute force"; content:"REGISTER sip:"; content:"Authorization:"; classtype:attempted-user; sid:9000019; rev:1;)
alert udp any any -> any any (msg:"CW SIP REGISTER brute force (UDP)"; content:"REGISTER sip:"; content:"Authorization:"; classtype:attempted-user; sid:9000020; rev:1;)
)RULES";
  return kRules;
}

RuleEngine curated_engine() {
  RuleEngine engine;
  std::vector<std::string> skipped;
  engine.load(curated_rules_text(), &skipped);
  if (!skipped.empty()) {
    // The shipped rules are part of the library's contract; failing loudly
    // here turns a silent detection gap into an immediate test failure.
    std::abort();
  }
  return engine;
}

}  // namespace cw::ids
