#include "ids/engine.h"

#include "proto/http.h"
#include "util/strings.h"

namespace cw::ids {
namespace {

bool contains(std::string_view haystack, const std::string& needle, bool nocase) {
  if (needle.empty()) return true;
  if (nocase) return cw::util::contains_ci(haystack, needle);
  return haystack.find(needle) != std::string_view::npos;
}

// Extracts the buffer a content match applies to. For non-HTTP payloads the
// HTTP buffers are empty, so rules with HTTP selectors cannot fire — same
// as Suricata's protocol-aware buffers.
struct HttpBuffers {
  bool parsed = false;
  std::string method;
  std::string uri;
  std::string headers;  // flattened "Name: value\r\n" block
  std::string body;
};

HttpBuffers extract_http(std::string_view payload) {
  HttpBuffers buffers;
  auto request = cw::proto::parse_http(payload);
  if (!request) return buffers;
  buffers.parsed = true;
  buffers.method = request->method;
  buffers.uri = request->uri;
  for (const auto& [name, value] : request->headers) {
    buffers.headers += name + ": " + value + "\r\n";
  }
  buffers.body = request->body;
  return buffers;
}

}  // namespace

void RuleEngine::add(Rule rule) { rules_.push_back(std::move(rule)); }

std::size_t RuleEngine::load(std::string_view rules_text, std::vector<std::string>* skipped) {
  std::size_t loaded = 0;
  for (std::string_view line : util::split(rules_text, '\n')) {
    const std::string_view trimmed = util::trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    std::string error;
    auto rule = parse_rule(trimmed, &error);
    if (rule) {
      add(std::move(*rule));
      ++loaded;
    } else if (skipped != nullptr) {
      skipped->push_back(std::string(trimmed) + "  # " + error);
    }
  }
  return loaded;
}

std::vector<Alert> RuleEngine::evaluate(std::string_view payload, net::Port port,
                                        net::Transport transport) const {
  std::vector<Alert> alerts;
  HttpBuffers http;
  bool http_extracted = false;

  for (const Rule& rule : rules_) {
    if (rule.transport != transport || !rule.applies_to_port(port)) continue;

    bool all_match = true;
    for (const ContentMatch& match : rule.contents) {
      std::string_view buffer;
      if (match.buffer == MatchBuffer::kRaw) {
        buffer = payload;
      } else {
        if (!http_extracted) {
          http = extract_http(payload);
          http_extracted = true;
        }
        if (!http.parsed) {
          all_match = false;
          break;
        }
        switch (match.buffer) {
          case MatchBuffer::kHttpUri: buffer = http.uri; break;
          case MatchBuffer::kHttpMethod: buffer = http.method; break;
          case MatchBuffer::kHttpHeader: buffer = http.headers; break;
          case MatchBuffer::kHttpClientBody: buffer = http.body; break;
          case MatchBuffer::kRaw: break;  // unreachable
        }
      }
      const bool found = contains(buffer, match.needle, match.nocase);
      if (found == match.negated) {
        all_match = false;
        break;
      }
    }
    if (all_match) alerts.push_back(Alert{rule.sid, rule.class_type, rule.msg});
  }
  return alerts;
}

bool RuleEngine::matches(std::string_view payload, net::Port port,
                         net::Transport transport) const {
  return !evaluate(payload, port, transport).empty();
}

}  // namespace cw::ids
