// The rule-matching engine: evaluates every loaded rule against a captured
// payload, honoring HTTP buffer selectors. This is the instrument Section
// 3.2 uses to label non-authentication-protocol payloads as malicious.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ids/rule.h"
#include "net/ports.h"

namespace cw::ids {

struct Alert {
  std::uint32_t sid = 0;
  ClassType class_type = ClassType::kMiscActivity;
  std::string_view msg;  // borrowed from the engine's rule storage
};

class RuleEngine {
 public:
  RuleEngine() = default;

  // Adds a parsed rule.
  void add(Rule rule);

  // Parses a newline-separated rule file body; returns the number of rules
  // loaded. Unparseable lines are collected into `skipped` if provided.
  std::size_t load(std::string_view rules_text, std::vector<std::string>* skipped = nullptr);

  // Evaluates the payload (destined to `port`) against every rule.
  [[nodiscard]] std::vector<Alert> evaluate(std::string_view payload, net::Port port,
                                            net::Transport transport = net::Transport::kTcp) const;

  // True if at least one rule fires.
  [[nodiscard]] bool matches(std::string_view payload, net::Port port,
                             net::Transport transport = net::Transport::kTcp) const;

  [[nodiscard]] std::size_t rule_count() const noexcept { return rules_.size(); }
  [[nodiscard]] const std::vector<Rule>& rules() const noexcept { return rules_; }

 private:
  std::vector<Rule> rules_;
};

}  // namespace cw::ids
