// The curated rule set. The paper filtered Suricata's 32K rules down to
// those that (a) avoid blocklist-IP/port heuristics and (b) verify as
// detecting authentication bypass or service-state alteration, across eight
// classtypes. This file ships the equivalent curated set for the exploit
// and intrusion payloads that circulate in our simulated population —
// Log4Shell, IoT botnet downloaders, router RCE chains, login brute-force,
// and state-altering protocol commands.
#pragma once

#include <string_view>

#include "ids/engine.h"

namespace cw::ids {

// The rule file body (Suricata syntax, parseable by parse_rule).
std::string_view curated_rules_text();

// Builds an engine pre-loaded with the curated set. Aborts the process on
// internal inconsistency (the shipped rules must always parse).
RuleEngine curated_engine();

}  // namespace cw::ids
