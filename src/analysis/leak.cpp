#include "analysis/leak.h"

#include <cmath>
#include <map>
#include <set>

#include "agents/campaign.h"
#include "agents/miner.h"
#include "agents/population.h"
#include "capture/collector.h"
#include "ids/ruleset.h"
#include "analysis/malicious.h"
#include "searchengine/engine.h"
#include "sim/engine.h"
#include "stats/descriptive.h"
#include "stats/ks.h"
#include "stats/mann_whitney.h"
#include "topology/universe.h"

namespace cw::analysis {
namespace {

constexpr net::Port kServices[3] = {22, 23, 80};

struct Groups {
  std::vector<net::IPv4Addr> control;
  std::vector<net::IPv4Addr> previously_leaked;
  // leaked[engine][service]: engine 0 = Censys, 1 = Shodan.
  std::vector<net::IPv4Addr> leaked[2][3];

  [[nodiscard]] const std::vector<net::IPv4Addr>& of(LeakCondition condition, int service,
                                                     int engine_for_leaked) const {
    switch (condition) {
      case LeakCondition::kControl: return control;
      case LeakCondition::kPreviouslyLeaked: return previously_leaked;
      case LeakCondition::kCensysLeaked: return leaked[0][service];
      case LeakCondition::kShodanLeaked: return leaked[1][service];
    }
    (void)engine_for_leaked;
    return control;
  }
};

int service_index(net::Port port) {
  for (int i = 0; i < 3; ++i) {
    if (kServices[i] == port) return i;
  }
  return -1;
}

}  // namespace

std::string_view leak_condition_name(LeakCondition c) noexcept {
  switch (c) {
    case LeakCondition::kControl: return "control";
    case LeakCondition::kCensysLeaked: return "Censys leaked";
    case LeakCondition::kShodanLeaked: return "Shodan leaked";
    case LeakCondition::kPreviouslyLeaked: return "previously leaked";
  }
  return "?";
}

const LeakCell* LeakExperimentResult::find(net::Port port, LeakCondition condition) const {
  for (const LeakCell& cell : cells) {
    if (cell.port == port && cell.condition == condition) return &cell;
  }
  return nullptr;
}

LeakExperimentResult run_leak_experiment(const LeakExperimentConfig& config) {
  util::Rng rng(config.seed);

  // --- Deployment: one Stanford vantage point holding all groups. --------
  // Collection uses GreyNoise semantics so credential attempts are captured
  // (the real deployment inferred logins from Honeytrap payloads; recording
  // the credentials directly yields the same per-hour counts).
  topology::Deployment deployment;
  topology::VantagePoint vp;
  vp.provider = topology::Provider::kStanford;
  vp.type = topology::NetworkType::kEducation;
  vp.collection = topology::CollectionMethod::kGreyNoise;
  vp.region = net::make_region("US", "CA");
  vp.name = "Stanford/Leak";
  vp.open_ports = {22, 23, 80};

  Groups groups;
  const net::Prefix pool = topology::provider_pool(topology::Provider::kStanford);
  std::uint32_t offset = 96 * 256;  // a quiet corner of the Stanford pool
  auto take = [&](int count) {
    std::vector<net::IPv4Addr> out;
    for (int i = 0; i < count; ++i) out.push_back(pool.at(offset++));
    return out;
  };
  groups.control = take(config.control_ips);
  groups.previously_leaked = take(config.previously_leaked_ips);
  for (int engine = 0; engine < 2; ++engine) {
    for (int service = 0; service < 3; ++service) {
      groups.leaked[engine][service] = take(config.leaked_ips_per_group);
    }
  }
  for (const auto& addr : groups.control) vp.addresses.push_back(addr);
  for (const auto& addr : groups.previously_leaked) vp.addresses.push_back(addr);
  for (int engine = 0; engine < 2; ++engine) {
    for (int service = 0; service < 3; ++service) {
      for (const auto& addr : groups.leaked[engine][service]) vp.addresses.push_back(addr);
    }
  }
  deployment.add(std::move(vp));
  const topology::TargetUniverse universe(deployment);

  // --- Engines with the access-control matrix. ----------------------------
  search::ServiceSearchEngine censys("Censys", net::kAsnCensys,
                                     agents::Population::kCensysActorId);
  search::ServiceSearchEngine shodan("Shodan", net::kAsnShodan,
                                     agents::Population::kShodanActorId);
  censys.set_crawl_ports({22, 23, 80});
  shodan.set_crawl_ports({22, 23, 80});

  for (const auto& addr : groups.control) {
    censys.blocklist(addr);
    shodan.blocklist(addr);
  }
  for (const auto& addr : groups.previously_leaked) {
    censys.blocklist(addr);
    shodan.blocklist(addr);
    // The old tenants' HTTP scanning-notice pages were indexed for years.
    censys.seed_history(addr, 80, net::Protocol::kHttp, -2 * 365 * util::kDay);
    shodan.seed_history(addr, 80, net::Protocol::kHttp, -2 * 365 * util::kDay);
  }
  for (int service = 0; service < 3; ++service) {
    for (const auto& addr : groups.leaked[0][service]) {
      censys.blocklist_except(addr, kServices[service]);
      shodan.blocklist(addr);
    }
    for (const auto& addr : groups.leaked[1][service]) {
      shodan.blocklist_except(addr, kServices[service]);
      censys.blocklist(addr);
    }
  }

  // --- Simulation. ---------------------------------------------------------
  sim::Engine engine;
  capture::Collector collector(universe);
  agents::AgentContext ctx;
  ctx.engine = &engine;
  ctx.universe = &universe;
  ctx.collector = &collector;
  ctx.censys = &censys;
  ctx.shodan = &shodan;
  ctx.window_end = config.duration;

  // Crawls every 12 hours, starting early so miners have data.
  for (util::SimTime t = 1 * util::kHour; t < config.duration; t += 12 * util::kHour) {
    engine.schedule_at(t, [&universe, &collector, &censys, &shodan, &rng](sim::Engine& e) {
      util::Rng crawl_rng = rng.stream(static_cast<std::uint64_t>(e.now()));
      censys.crawl(e.now(), universe, collector, crawl_rng);
      shodan.crawl(e.now(), universe, collector, crawl_rng);
    });
  }

  // Baseline population: untargeted campaigns that hit every address alike.
  std::vector<std::unique_ptr<agents::Actor>> actors;
  capture::ActorId next_id = agents::Population::kFirstPopulationActorId;
  auto scaled = [&](int n) {
    return std::max(1, static_cast<int>(std::lround(n * config.population_scale)));
  };
  auto add_campaign = [&](agents::CampaignConfig c) {
    const capture::ActorId id = next_id++;
    actors.push_back(std::make_unique<agents::ScanCampaign>(id, rng.stream(id), std::move(c)));
  };
  auto add_miner = [&](agents::MinerConfig c) {
    const capture::ActorId id = next_id++;
    actors.push_back(
        std::make_unique<agents::SearchEngineMiner>(id, rng.stream(id), std::move(c)));
  };

  const int base_per_service = scaled(12);
  for (int service = 0; service < 3; ++service) {
    for (int i = 0; i < base_per_service; ++i) {
      agents::CampaignConfig c;
      c.label = "leak-baseline";
      c.asn = 64512 + static_cast<net::Asn>(rng.next_below(600));
      c.sources = static_cast<int>(rng.uniform_int(1, 4));
      c.ports = {kServices[service]};
      if (kServices[service] == 80) {
        c.payload = rng.bernoulli(0.4) ? agents::PayloadKind::kExploit
                                       : agents::PayloadKind::kBenignProbe;
        c.exploit = proto::ExploitKind::kLog4Shell;
        c.malicious = c.payload == agents::PayloadKind::kExploit;
      } else {
        c.payload = agents::PayloadKind::kBruteforce;
        c.dictionary = kServices[service] == 22 ? proto::CredentialDictionary::kGenericSsh
                                                : proto::CredentialDictionary::kGenericTelnet;
        c.malicious = true;
        c.min_attempts = 1;
        c.max_attempts = 4;
      }
      c.waves = static_cast<int>(rng.uniform_int(2, 4));
      c.filter.edu_coverage = rng.uniform(0.6, 0.95);
      add_campaign(std::move(c));
    }
  }

  // Miners: the engine-preference asymmetry of Table 3 (SSH->Shodan,
  // HTTP->Censys, Telnet->both-but-weak) plus history miners that resurrect
  // previously indexed addresses.
  struct MinerSpec {
    net::Port port;
    net::Protocol protocol;
    agents::EnginePreference engines;
    int count;
    double attack_fraction;
  };
  const MinerSpec specs[] = {
      {22, net::Protocol::kSsh, agents::EnginePreference::kShodan, 5, 0.95},
      {22, net::Protocol::kSsh, agents::EnginePreference::kCensys, 2, 0.8},
      {80, net::Protocol::kHttp, agents::EnginePreference::kCensys, 5, 0.95},
      {80, net::Protocol::kHttp, agents::EnginePreference::kShodan, 2, 0.8},
      {23, net::Protocol::kTelnet, agents::EnginePreference::kCensys, 2, 0.4},
      {23, net::Protocol::kTelnet, agents::EnginePreference::kShodan, 2, 0.4},
  };
  for (const MinerSpec& spec : specs) {
    const int count = scaled(spec.count);
    for (int i = 0; i < count; ++i) {
      agents::MinerConfig c;
      c.label = "leak-miner";
      c.asn = 64512 + static_cast<net::Asn>(rng.next_below(600));
      c.sources = static_cast<int>(rng.uniform_int(1, 3));
      c.port = spec.port;
      c.protocol = spec.protocol;
      c.engines = spec.engines;
      c.attack_fraction = spec.attack_fraction;
      c.query_interval = 8 * util::kHour;
      c.payload = spec.port == 80 ? agents::PayloadKind::kExploit
                                  : agents::PayloadKind::kBruteforce;
      if (spec.port == 80) c.exploit = proto::ExploitKind::kThinkPhpRce;
      c.dictionary = spec.port == 23 ? proto::CredentialDictionary::kGenericTelnet
                                     : proto::CredentialDictionary::kGenericSsh;
      // Some miners mine stale data: they attack everything the engines
      // *ever* indexed on HTTP/80, on their own port.
      c.mine_history = rng.bernoulli(0.5);
      c.history_port = 80;
      add_miner(std::move(c));
    }
  }

  for (const auto& actor : actors) actor->start(ctx);
  engine.run_until(config.duration);

  // --- Measurement. ----------------------------------------------------------
  const capture::EventStore& store = collector.store();
  const ids::RuleEngine rules = ids::curated_engine();
  const MaliciousClassifier classifier(rules);

  const std::size_t hours = static_cast<std::size_t>(config.duration / util::kHour);
  struct Series {
    std::vector<double> all;
    std::vector<double> malicious;
    std::set<std::string> passwords;
    std::size_t ip_count = 0;
  };
  // Keyed by (service index, condition).
  std::map<std::pair<int, LeakCondition>, Series> series;

  auto condition_of = [&](net::IPv4Addr addr, int service) -> std::optional<LeakCondition> {
    for (const auto& a : groups.control) {
      if (a == addr) return LeakCondition::kControl;
    }
    for (const auto& a : groups.previously_leaked) {
      if (a == addr) return LeakCondition::kPreviouslyLeaked;
    }
    for (const auto& a : groups.leaked[0][service]) {
      if (a == addr) return LeakCondition::kCensysLeaked;
    }
    for (const auto& a : groups.leaked[1][service]) {
      if (a == addr) return LeakCondition::kShodanLeaked;
    }
    return std::nullopt;  // leaked for a different service: not this cell
  };

  for (int service = 0; service < 3; ++service) {
    for (const LeakCondition condition :
         {LeakCondition::kControl, LeakCondition::kCensysLeaked, LeakCondition::kShodanLeaked,
          LeakCondition::kPreviouslyLeaked}) {
      Series& s = series[{service, condition}];
      s.all.assign(hours, 0.0);
      s.malicious.assign(hours, 0.0);
      s.ip_count = groups.of(condition, service, 0).size();
    }
  }

  for (const capture::SessionRecord& record : store.records()) {
    // Exclude the search engines' own probes from the measurement.
    if (record.actor == agents::Population::kCensysActorId ||
        record.actor == agents::Population::kShodanActorId) {
      continue;
    }
    const int service = service_index(record.port);
    if (service < 0) continue;
    const auto condition = condition_of(record.dst_addr(), service);
    if (!condition) continue;
    Series& s = series[{service, *condition}];
    const std::size_t hour = static_cast<std::size_t>(record.time / util::kHour);
    if (hour >= hours) continue;
    s.all[hour] += 1.0;
    if (classifier.classify(record, store) == MeasuredIntent::kMalicious) {
      s.malicious[hour] += 1.0;
      if (record.credential_id != capture::kNoCredential) {
        s.passwords.insert(store.credential(record.credential_id).password);
      }
    }
  }

  // Normalize to per-IP-hour rates so group sizes do not bias folds.
  auto normalized = [](const Series& s, const std::vector<double>& raw) {
    std::vector<double> out = raw;
    const double n = s.ip_count > 0 ? static_cast<double>(s.ip_count) : 1.0;
    for (double& v : out) v /= n;
    return out;
  };

  LeakExperimentResult result;
  result.total_records = store.size();
  for (int service = 0; service < 3; ++service) {
    const Series& control = series[{service, LeakCondition::kControl}];
    const std::vector<double> control_all = normalized(control, control.all);
    const std::vector<double> control_mal = normalized(control, control.malicious);
    result.control_hourly_mean[service] = stats::mean(control_all);

    for (const LeakCondition condition : {LeakCondition::kCensysLeaked,
                                          LeakCondition::kShodanLeaked,
                                          LeakCondition::kPreviouslyLeaked}) {
      const Series& s = series.at({service, condition});
      const std::vector<double> all = normalized(s, s.all);
      const std::vector<double> malicious = normalized(s, s.malicious);

      LeakCell cell;
      cell.port = kServices[service];
      cell.condition = condition;
      cell.fold_all = stats::fold_increase(all, control_all);
      cell.fold_malicious = stats::fold_increase(malicious, control_mal);
      cell.mwu_all = stats::mann_whitney_greater(all, control_all).p_value < config.alpha;
      cell.mwu_malicious =
          stats::mann_whitney_greater(malicious, control_mal).p_value < config.alpha;
      cell.ks_all = stats::ks_two_sample(all, control_all).p_value < config.alpha;
      cell.spikes_per_ip = static_cast<double>(stats::count_spikes(all));
      cell.unique_passwords_per_ip =
          s.ip_count > 0 ? static_cast<double>(s.passwords.size()) /
                               static_cast<double>(s.ip_count)
                         : 0.0;
      result.cells.push_back(cell);
    }
    // Control reference row (folds are 1 by construction).
    LeakCell control_cell;
    control_cell.port = kServices[service];
    control_cell.condition = LeakCondition::kControl;
    control_cell.fold_all = 1.0;
    control_cell.fold_malicious = 1.0;
    control_cell.spikes_per_ip = static_cast<double>(stats::count_spikes(control_all));
    control_cell.unique_passwords_per_ip =
        control.ip_count > 0
            ? static_cast<double>(control.passwords.size()) / static_cast<double>(control.ip_count)
            : 0.0;
    result.cells.push_back(control_cell);
  }
  return result;
}

}  // namespace cw::analysis
