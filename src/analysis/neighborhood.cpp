#include "analysis/neighborhood.h"

namespace cw::analysis {

std::vector<Characteristic> characteristics_for_scope(TrafficScope scope) {
  switch (scope) {
    case TrafficScope::kSsh22:
    case TrafficScope::kTelnet23:
      return {Characteristic::kTopAs, Characteristic::kFracMalicious,
              Characteristic::kTopUsername, Characteristic::kTopPassword};
    case TrafficScope::kHttp80:
    case TrafficScope::kHttpAllPorts:
      return {Characteristic::kTopAs, Characteristic::kFracMalicious,
              Characteristic::kTopPayload};
    case TrafficScope::kAnyAll:
      return {Characteristic::kTopAs, Characteristic::kFracMalicious};
  }
  return {};
}

namespace {

struct Candidate {
  topology::VantageId vantage;
  std::vector<TrafficSlice> neighbors;
};

// First pass shared by both variants: find the testable neighborhoods so
// the Bonferroni family size equals the number of comparisons actually
// performed. `slice_fn(vantage, neighbor)` supplies the neighbor slices.
template <typename SliceFn>
std::vector<Candidate> collect_candidates(const topology::Deployment& deployment,
                                          const NeighborhoodOptions& options,
                                          const SliceFn& slice_fn) {
  std::vector<Candidate> candidates;
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    if (vp.type != topology::NetworkType::kCloud ||
        vp.collection != topology::CollectionMethod::kGreyNoise || vp.addresses.size() < 2) {
      continue;
    }
    Candidate candidate;
    candidate.vantage = vp.id;
    std::size_t total_records = 0;
    for (std::uint16_t n = 0; n < vp.addresses.size(); ++n) {
      TrafficSlice slice = slice_fn(vp.id, n);
      total_records += slice.records.size();
      candidate.neighbors.push_back(std::move(slice));
    }
    if (total_records < options.min_records) continue;
    candidates.push_back(std::move(candidate));
  }
  return candidates;
}

NeighborhoodSummary summarize_candidates(const std::vector<Candidate>& candidates,
                                         Characteristic characteristic,
                                         const MaliciousClassifier& classifier,
                                         const NeighborhoodOptions& options);

}  // namespace

NeighborhoodSummary analyze_neighborhoods(const capture::EventStore& store,
                                          const topology::Deployment& deployment,
                                          TrafficScope scope, Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const NeighborhoodOptions& options) {
  const std::vector<Candidate> candidates = collect_candidates(
      deployment, options, [&](topology::VantageId vantage, std::uint16_t neighbor) {
        return slice_neighbor(store, vantage, neighbor, scope);
      });
  return summarize_candidates(candidates, characteristic, classifier, options);
}

NeighborhoodSummary analyze_neighborhoods(const capture::SessionFrame& frame, TrafficScope scope,
                                          Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const NeighborhoodOptions& options) {
  const std::vector<Candidate> candidates = collect_candidates(
      frame.deployment(), options, [&](topology::VantageId vantage, std::uint16_t neighbor) {
        return slice_neighbor(frame, vantage, neighbor, scope);
      });
  return summarize_candidates(candidates, characteristic, classifier, options);
}

NeighborhoodSummary analyze_neighborhoods(const CharacteristicTableCache& cache,
                                          TrafficScope scope, Characteristic characteristic,
                                          const NeighborhoodOptions& options) {
  // Same candidate walk as collect_candidates, but sizing slices through
  // the cache (which memoizes them) instead of materializing them here.
  struct CachedCandidate {
    std::vector<CharacteristicTableCache::SliceKey> neighbors;
  };
  std::vector<CachedCandidate> candidates;
  for (const topology::VantagePoint& vp : cache.frame().deployment().vantage_points()) {
    if (vp.type != topology::NetworkType::kCloud ||
        vp.collection != topology::CollectionMethod::kGreyNoise || vp.addresses.size() < 2) {
      continue;
    }
    CachedCandidate candidate;
    std::size_t total_records = 0;
    for (std::uint16_t n = 0; n < vp.addresses.size(); ++n) {
      total_records += cache.record_count(vp.id, scope, n);
      candidate.neighbors.push_back({vp.id, n});
    }
    if (total_records < options.min_records) continue;
    candidates.push_back(std::move(candidate));
  }

  NeighborhoodSummary summary;
  summary.characteristic = characteristic;
  summary.neighborhoods_tested = candidates.size();
  if (candidates.empty()) return summary;

  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = options.use_bonferroni ? candidates.size() : 1;

  double phi_sum = 0.0;
  std::size_t magnitude_votes[4] = {0, 0, 0, 0};
  for (const CachedCandidate& candidate : candidates) {
    const stats::SignificanceTest test =
        compare_characteristic(cache, candidate.neighbors, scope, characteristic, compare);
    if (!test.chi.valid || !test.significant) continue;
    ++summary.neighborhoods_different;
    phi_sum += test.chi.cramers_v;
    ++magnitude_votes[static_cast<std::size_t>(test.magnitude)];
  }

  summary.pct_different = 100.0 * static_cast<double>(summary.neighborhoods_different) /
                          static_cast<double>(summary.neighborhoods_tested);
  if (summary.neighborhoods_different > 0) {
    summary.avg_phi = phi_sum / static_cast<double>(summary.neighborhoods_different);
    std::size_t best = 0;
    for (std::size_t m = 1; m < 4; ++m) {
      if (magnitude_votes[m] >= magnitude_votes[best]) best = m;
    }
    summary.typical_magnitude = static_cast<stats::EffectMagnitude>(best);
  }
  return summary;
}

namespace {

NeighborhoodSummary summarize_candidates(const std::vector<Candidate>& candidates,
                                         Characteristic characteristic,
                                         const MaliciousClassifier& classifier,
                                         const NeighborhoodOptions& options) {
  NeighborhoodSummary summary;
  summary.characteristic = characteristic;
  summary.neighborhoods_tested = candidates.size();
  if (candidates.empty()) return summary;

  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = options.use_bonferroni ? candidates.size() : 1;

  double phi_sum = 0.0;
  std::size_t magnitude_votes[4] = {0, 0, 0, 0};
  for (const Candidate& candidate : candidates) {
    const stats::SignificanceTest test =
        compare_characteristic(candidate.neighbors, characteristic, &classifier, compare);
    if (!test.chi.valid || !test.significant) continue;
    ++summary.neighborhoods_different;
    phi_sum += test.chi.cramers_v;
    ++magnitude_votes[static_cast<std::size_t>(test.magnitude)];
  }

  summary.pct_different = 100.0 * static_cast<double>(summary.neighborhoods_different) /
                          static_cast<double>(summary.neighborhoods_tested);
  if (summary.neighborhoods_different > 0) {
    summary.avg_phi = phi_sum / static_cast<double>(summary.neighborhoods_different);
    std::size_t best = 0;
    for (std::size_t m = 1; m < 4; ++m) {
      if (magnitude_votes[m] >= magnitude_votes[best]) best = m;
    }
    summary.typical_magnitude = static_cast<stats::EffectMagnitude>(best);
  }
  return summary;
}

}  // namespace
}  // namespace cw::analysis
