#include "analysis/network.h"

#include <algorithm>

#include "runner/thread_pool.h"

namespace cw::analysis {

NetworkComparison compare_vantage_pairs(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
    TrafficScope scope, Characteristic characteristic, const MaliciousClassifier& classifier,
    const NetworkOptions& options) {
  NetworkComparison result;
  result.scope = scope;
  result.characteristic = characteristic;

  // A characteristic must be measurable at *both* endpoints.
  for (const auto& [a, b] : pairs) {
    if (!measurable(characteristic, deployment.at(a).collection, scope) ||
        !measurable(characteristic, deployment.at(b).collection, scope)) {
      result.measurable = false;
      return result;
    }
  }

  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = std::max<std::size_t>(pairs.size(), 1) * options.family_scale;

  double phi_sum = 0.0;
  for (const auto& [a, b] : pairs) {
    TrafficSlice slice_a = slice_vantage(store, a, scope);
    TrafficSlice slice_b = slice_vantage(store, b, scope);
    if (slice_a.records.size() < options.min_records ||
        slice_b.records.size() < options.min_records) {
      continue;
    }
    const stats::SignificanceTest test =
        compare_characteristic({slice_a, slice_b}, characteristic, &classifier, compare);
    if (!test.chi.valid) continue;
    ++result.pairs_tested;
    if (!test.significant) continue;
    ++result.pairs_different;
    phi_sum += test.chi.cramers_v;
    result.strongest = std::max(result.strongest, test.magnitude);
  }
  if (result.pairs_different > 0) {
    result.avg_phi = phi_sum / static_cast<double>(result.pairs_different);
  }
  return result;
}

NetworkComparison compare_vantage_pairs(
    const capture::SessionFrame& frame,
    const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
    TrafficScope scope, Characteristic characteristic, const MaliciousClassifier& classifier,
    const NetworkOptions& options, runner::ThreadPool* pool) {
  NetworkComparison result;
  result.scope = scope;
  result.characteristic = characteristic;

  // A characteristic must be measurable at *both* endpoints.
  for (const auto& [a, b] : pairs) {
    if (!measurable(characteristic, frame.collection_of(a), scope) ||
        !measurable(characteristic, frame.collection_of(b), scope)) {
      result.measurable = false;
      return result;
    }
  }

  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = std::max<std::size_t>(pairs.size(), 1) * options.family_scale;

  // Each pair is an independent shard writing its own slot; the reduction
  // below walks the slots in pair order, so phi_sum accumulates in the same
  // float order (and the result is bit-identical) at any worker count.
  struct PairOutcome {
    bool counted = false;
    bool different = false;
    double phi = 0.0;
    stats::EffectMagnitude magnitude = stats::EffectMagnitude::kNone;
  };
  std::vector<PairOutcome> outcomes(pairs.size());
  const auto evaluate_pair = [&](std::size_t p) {
    const auto& [a, b] = pairs[p];
    TrafficSlice slice_a = slice_vantage(frame, a, scope);
    TrafficSlice slice_b = slice_vantage(frame, b, scope);
    if (slice_a.records.size() < options.min_records ||
        slice_b.records.size() < options.min_records) {
      return;
    }
    const stats::SignificanceTest test =
        compare_characteristic({slice_a, slice_b}, characteristic, &classifier, compare);
    if (!test.chi.valid) return;
    PairOutcome& outcome = outcomes[p];
    outcome.counted = true;
    if (!test.significant) return;
    outcome.different = true;
    outcome.phi = test.chi.cramers_v;
    outcome.magnitude = test.magnitude;
  };
  if (pool != nullptr && pairs.size() > 1) {
    pool->parallel_for(pairs.size(), evaluate_pair);
  } else {
    for (std::size_t p = 0; p < pairs.size(); ++p) evaluate_pair(p);
  }

  double phi_sum = 0.0;
  for (const PairOutcome& outcome : outcomes) {
    if (!outcome.counted) continue;
    ++result.pairs_tested;
    if (!outcome.different) continue;
    ++result.pairs_different;
    phi_sum += outcome.phi;
    result.strongest = std::max(result.strongest, outcome.magnitude);
  }
  if (result.pairs_different > 0) {
    result.avg_phi = phi_sum / static_cast<double>(result.pairs_different);
  }
  return result;
}

NetworkComparison compare_vantage_pairs(
    const CharacteristicTableCache& cache,
    const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
    TrafficScope scope, Characteristic characteristic, const NetworkOptions& options,
    runner::ThreadPool* pool) {
  NetworkComparison result;
  result.scope = scope;
  result.characteristic = characteristic;

  const capture::SessionFrame& frame = cache.frame();
  // A characteristic must be measurable at *both* endpoints.
  for (const auto& [a, b] : pairs) {
    if (!measurable(characteristic, frame.collection_of(a), scope) ||
        !measurable(characteristic, frame.collection_of(b), scope)) {
      result.measurable = false;
      return result;
    }
  }

  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = std::max<std::size_t>(pairs.size(), 1) * options.family_scale;

  // Same shard-per-pair / reduce-in-pair-order scheme as the frame variant;
  // here concurrent shards that share a side block on the cache's one
  // builder instead of each slicing and counting the side themselves.
  struct PairOutcome {
    bool counted = false;
    bool different = false;
    double phi = 0.0;
    stats::EffectMagnitude magnitude = stats::EffectMagnitude::kNone;
  };
  std::vector<PairOutcome> outcomes(pairs.size());
  const auto evaluate_pair = [&](std::size_t p) {
    const auto& [a, b] = pairs[p];
    if (cache.record_count(a, scope) < options.min_records ||
        cache.record_count(b, scope) < options.min_records) {
      return;
    }
    const stats::SignificanceTest test =
        compare_characteristic(cache, {{a}, {b}}, scope, characteristic, compare, pool);
    if (!test.chi.valid) return;
    PairOutcome& outcome = outcomes[p];
    outcome.counted = true;
    if (!test.significant) return;
    outcome.different = true;
    outcome.phi = test.chi.cramers_v;
    outcome.magnitude = test.magnitude;
  };
  if (pool != nullptr && pairs.size() > 1) {
    pool->parallel_for(pairs.size(), evaluate_pair);
  } else {
    for (std::size_t p = 0; p < pairs.size(); ++p) evaluate_pair(p);
  }

  double phi_sum = 0.0;
  for (const PairOutcome& outcome : outcomes) {
    if (!outcome.counted) continue;
    ++result.pairs_tested;
    if (!outcome.different) continue;
    ++result.pairs_different;
    phi_sum += outcome.phi;
    result.strongest = std::max(result.strongest, outcome.magnitude);
  }
  if (result.pairs_different > 0) {
    result.avg_phi = phi_sum / static_cast<double>(result.pairs_different);
  }
  return result;
}

std::vector<std::pair<topology::VantageId, topology::VantageId>> cloud_cloud_pairs(
    const topology::Deployment& deployment) {
  std::vector<std::pair<topology::VantageId, topology::VantageId>> pairs;
  for (const topology::Deployment::CoLocation& city : deployment.colocated_clouds()) {
    for (std::size_t i = 0; i < city.vantage_ids.size(); ++i) {
      for (std::size_t j = i + 1; j < city.vantage_ids.size(); ++j) {
        if (deployment.at(city.vantage_ids[i]).provider ==
            deployment.at(city.vantage_ids[j]).provider) {
          continue;  // only cross-provider pairs isolate the network effect
        }
        pairs.emplace_back(city.vantage_ids[i], city.vantage_ids[j]);
      }
    }
  }
  return pairs;
}

namespace {

// Honeytrap vantage points grouped by role.
topology::VantageId find_by_name(const topology::Deployment& deployment, std::string_view name) {
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    if (vp.name == name) return vp.id;
  }
  return static_cast<topology::VantageId>(-1);
}

void add_pair_if_present(const topology::Deployment& deployment,
                         std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
                         std::string_view a, std::string_view b) {
  const topology::VantageId ia = find_by_name(deployment, a);
  const topology::VantageId ib = find_by_name(deployment, b);
  if (ia == static_cast<topology::VantageId>(-1) || ib == static_cast<topology::VantageId>(-1)) {
    return;
  }
  pairs.emplace_back(ia, ib);
}

}  // namespace

std::vector<std::pair<topology::VantageId, topology::VantageId>> cloud_edu_pairs(
    const topology::Deployment& deployment) {
  std::vector<std::pair<topology::VantageId, topology::VantageId>> pairs;
  // Geography-matched Honeytrap deployments only (Section 5.2 methodology):
  // clouds near Stanford against Stanford, the cloud near Merit against
  // Merit, and the two cross pairs inside the same country.
  add_pair_if_present(deployment, pairs, "AWS/US-West-HT", "Stanford/US-West");
  add_pair_if_present(deployment, pairs, "Google/US-West-HT", "Stanford/US-West");
  add_pair_if_present(deployment, pairs, "Google/US-East-HT", "Merit/US-East");
  add_pair_if_present(deployment, pairs, "AWS/US-West-HT", "Merit/US-East");
  return pairs;
}

std::vector<std::pair<topology::VantageId, topology::VantageId>> edu_edu_pairs(
    const topology::Deployment& deployment) {
  std::vector<std::pair<topology::VantageId, topology::VantageId>> pairs;
  add_pair_if_present(deployment, pairs, "Stanford/US-West", "Merit/US-East");
  return pairs;
}

std::vector<std::pair<topology::VantageId, topology::VantageId>> telescope_edu_pairs(
    const topology::Deployment& deployment) {
  std::vector<std::pair<topology::VantageId, topology::VantageId>> pairs;
  add_pair_if_present(deployment, pairs, "Orion", "Stanford/US-West");
  add_pair_if_present(deployment, pairs, "Orion", "Merit/US-East");
  return pairs;
}

std::vector<std::pair<topology::VantageId, topology::VantageId>> telescope_cloud_pairs(
    const topology::Deployment& deployment) {
  std::vector<std::pair<topology::VantageId, topology::VantageId>> pairs;
  add_pair_if_present(deployment, pairs, "Orion", "AWS/US-West-HT");
  add_pair_if_present(deployment, pairs, "Orion", "Google/US-West-HT");
  add_pair_if_present(deployment, pairs, "Orion", "Google/US-East-HT");
  return pairs;
}

}  // namespace cw::analysis
