// Section 4.1 / Table 2: do neighboring services (the addresses of one
// vantage point, same region and network) receive significantly different
// traffic? For every neighborhood we compare the per-address distributions
// of a characteristic with the chi-squared recipe and report the share of
// neighborhoods with significant differences plus the mean effect size.
#pragma once

#include <vector>

#include "analysis/comparison.h"

namespace cw::analysis {

struct NeighborhoodSummary {
  Characteristic characteristic = Characteristic::kTopAs;
  std::size_t neighborhoods_tested = 0;   // n in the paper's table
  std::size_t neighborhoods_different = 0;
  double pct_different = 0.0;
  double avg_phi = 0.0;                   // mean Cramér's V over significant tests
  stats::EffectMagnitude typical_magnitude = stats::EffectMagnitude::kNone;
};

struct NeighborhoodOptions {
  std::size_t top_k = 3;
  double alpha = 0.05;
  // Minimum records a neighborhood needs (summed over neighbors) to be
  // testable; tiny samples make chi-squared meaningless.
  std::size_t min_records = 20;
  // If true, compare the median-of-group expectation instead of raw counts
  // (the Section 4.4 filtering; exposed for the ablation bench).
  bool use_bonferroni = true;
};

// Runs the analysis over every GreyNoise cloud vantage point with >= 2
// addresses, for one scope and characteristic.
NeighborhoodSummary analyze_neighborhoods(const capture::EventStore& store,
                                          const topology::Deployment& deployment,
                                          TrafficScope scope, Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const NeighborhoodOptions& options = {});

// Frame variant: neighbor slices come from the frame's posting lists and
// the malicious fraction reads the precomputed verdict column.
NeighborhoodSummary analyze_neighborhoods(const capture::SessionFrame& frame, TrafficScope scope,
                                          Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const NeighborhoodOptions& options = {});

// Cache variant: Table 2 runs this once per characteristic over the same
// scope, and each run re-slices the same neighborhoods; the cache memoizes
// the per-neighbor slices (and their tables) across those runs. Candidate
// selection and group order match the slice variants exactly — every
// neighbor of a qualifying vantage is a group, empty ones included.
NeighborhoodSummary analyze_neighborhoods(const CharacteristicTableCache& cache,
                                          TrafficScope scope, Characteristic characteristic,
                                          const NeighborhoodOptions& options = {});

// The characteristics the paper reports for a scope (credentials for
// SSH/Telnet, payloads for HTTP).
std::vector<Characteristic> characteristics_for_scope(TrafficScope scope);

}  // namespace cw::analysis
