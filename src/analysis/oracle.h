// The reputation oracle models the GreyNoise API labels used by Section 6:
// an actor is labeled benign after a vetting process, malicious when seen
// actively exploiting, and unknown otherwise (78% of 2022 scan IPs were
// unknown to the real service). The oracle starts from ground-truth actor
// intent and degrades it with a configurable unknown fraction, drawn
// deterministically per actor.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "capture/event.h"

namespace cw::analysis {

enum class Reputation : std::uint8_t { kBenign = 0, kMalicious, kUnknown };

class ReputationOracle {
 public:
  // `truth` maps actor id to ground-truth maliciousness (from the
  // population); `unknown_fraction` is the probability an actor is simply
  // not in the oracle's database.
  ReputationOracle(std::unordered_map<capture::ActorId, bool> truth, double unknown_fraction,
                   std::uint64_t seed = 0x677265796e6f69ULL);

  [[nodiscard]] Reputation label(capture::ActorId actor) const;

 private:
  std::unordered_map<capture::ActorId, Reputation> labels_;
};

}  // namespace cw::analysis
