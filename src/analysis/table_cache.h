// CharacteristicTableCache: per-experiment memoization of the frequency
// tables (and (malicious, benign) counts) the Section 3.3 comparisons are
// built from, keyed by (vantage, neighbor, scope, characteristic).
//
// Two layers of reuse:
//
//  1. Across comparisons. Table 10's eight compare_vantage_pairs calls name
//     Orion as a side in 5 pairs per scope, and each Honeytrap vantage in
//     2-3; Tables 4/5/7 repeat vantage-level sides the same way, and Table
//     2 re-slices the same neighborhoods once per characteristic. Routing
//     compare_characteristic through the cache builds each side's table
//     exactly once per (vantage, scope, characteristic) and shares it with
//     every comparison that names that side — which also helps --jobs 1.
//
//  2. Within one build. Big tables (the kAnyAll telescope side walks ~every
//     record) shard over fixed-size record chunks via
//     runner::ThreadPool::parallel_for; the chunk partials are merged in
//     ascending chunk order. Counts are exact integers, so the merged table
//     — and therefore sorted()/top_k() and every downstream report byte —
//     is identical at any worker count.
//
// Thread safety: entries are created under a mutex and built under a
// per-entry std::once_flag, so concurrent pair shards that share a side
// block on the single builder instead of duplicating work. The builder may
// itself fan out through the pool (ThreadPool::parallel_for is nest-safe);
// waiters hold no pool resources, so this cannot deadlock.
//
// Lifetime: the cache borrows the SessionFrame (and the classifier behind
// its verdict column) and must not outlive it — ExperimentResult owns both
// and tears them down together (see ExperimentResult::table_cache()).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/characteristics.h"
#include "capture/frame.h"
#include "stats/freq.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::analysis {

// Record-chunk size for sharded table builds. Fixed (not derived from the
// worker count) so the partial boundaries are reproducible; the merged
// result would be identical either way, but fixed chunks keep the build
// schedule itself worker-count independent.
inline constexpr std::size_t kTableBuildChunk = 1u << 16;

// Builds the characteristic's frequency table over records[0, size). With a
// pool and enough records the build shards into kTableBuildChunk-sized
// partials merged in chunk order; the result is identical to the sequential
// build. kFracMalicious has no frequency table; asking for it throws.
stats::FrequencyTable build_characteristic_table(const capture::SessionFrame& frame,
                                                 const std::vector<std::uint32_t>& records,
                                                 Characteristic characteristic,
                                                 runner::ThreadPool* pool = nullptr,
                                                 std::size_t chunk = kTableBuildChunk);

class CharacteristicTableCache {
 public:
  // Sentinel neighbor meaning "the whole vantage point".
  static constexpr std::uint16_t kWholeVantage = 0xFFFF;

  // A cached side of a comparison: one vantage point, or one neighbor
  // (address) of it.
  struct SliceKey {
    topology::VantageId vantage = 0;
    std::uint16_t neighbor = kWholeVantage;
  };

  CharacteristicTableCache(const capture::SessionFrame& frame,
                           const MaliciousClassifier& classifier)
      : frame_(&frame), classifier_(&classifier) {}

  CharacteristicTableCache(const CharacteristicTableCache&) = delete;
  CharacteristicTableCache& operator=(const CharacteristicTableCache&) = delete;

  [[nodiscard]] const capture::SessionFrame& frame() const noexcept { return *frame_; }

  // Number of records in the (vantage, neighbor, scope) slice — the
  // min_records gate — without building any table. Port-named scopes and
  // Any/All resolve to frame posting lists without copying.
  [[nodiscard]] std::size_t record_count(topology::VantageId vantage, TrafficScope scope,
                                         std::uint16_t neighbor = kWholeVantage) const;

  // The slice's frequency table for a top-k characteristic, built on first
  // use (sharded through `pool` when one is supplied) and shared by every
  // later caller. The reference stays valid for the cache's lifetime.
  [[nodiscard]] const stats::FrequencyTable& table(topology::VantageId vantage, TrafficScope scope,
                                                   Characteristic characteristic,
                                                   runner::ThreadPool* pool = nullptr,
                                                   std::uint16_t neighbor = kWholeVantage) const;

  // (malicious, benign) counts for the slice (the kFracMalicious side),
  // read from the frame's verdict column when present.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> malicious(
      topology::VantageId vantage, TrafficScope scope,
      std::uint16_t neighbor = kWholeVantage) const;

  // Number of materialized frequency tables (diagnostics / tests).
  [[nodiscard]] std::size_t tables_built() const;

 private:
  struct SliceEntry {
    std::once_flag once;
    // Points at a frame posting list, or at `owned` when the scope needs a
    // filtered copy (HTTP/AllPorts, per-neighbor slices).
    const std::vector<std::uint32_t>* records = nullptr;
    std::vector<std::uint32_t> owned;
  };
  struct TableEntry {
    std::once_flag once;
    stats::FrequencyTable table;
  };
  struct BinaryEntry {
    std::once_flag once;
    std::pair<std::uint64_t, std::uint64_t> counts{0, 0};
  };

  [[nodiscard]] const std::vector<std::uint32_t>& records_for(topology::VantageId vantage,
                                                              std::uint16_t neighbor,
                                                              TrafficScope scope) const;

  template <typename Entry>
  Entry& entry(std::unordered_map<std::uint64_t, std::unique_ptr<Entry>>& map,
               std::uint64_t key) const;

  static std::uint64_t pack(topology::VantageId vantage, std::uint16_t neighbor,
                            TrafficScope scope, Characteristic characteristic) {
    return (static_cast<std::uint64_t>(vantage) << 32) |
           (static_cast<std::uint64_t>(neighbor) << 16) |
           (static_cast<std::uint64_t>(scope) << 8) | static_cast<std::uint64_t>(characteristic);
  }

  const capture::SessionFrame* frame_;
  const MaliciousClassifier* classifier_;
  mutable std::mutex mutex_;  // guards the maps; entries build under their own once_flag
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<SliceEntry>> slices_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<TableEntry>> tables_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<BinaryEntry>> binaries_;
};

}  // namespace cw::analysis
