// CharacteristicTableCache: per-experiment memoization of the frequency
// tables (and (malicious, benign) counts) the Section 3.3 comparisons are
// built from, keyed by (vantage, neighbor, scope, characteristic).
//
// Two layers of reuse:
//
//  1. Across comparisons. Table 10's eight compare_vantage_pairs calls name
//     Orion as a side in 5 pairs per scope, and each Honeytrap vantage in
//     2-3; Tables 4/5/7 repeat vantage-level sides the same way, and Table
//     2 re-slices the same neighborhoods once per characteristic. Routing
//     compare_characteristic through the cache builds each side's table
//     exactly once per (vantage, scope, characteristic) and shares it with
//     every comparison that names that side — which also helps --jobs 1.
//
//  2. Within one build. Big tables (the kAnyAll telescope side walks ~every
//     record) shard over fixed-size record chunks via
//     runner::ThreadPool::parallel_for; the chunk partials are merged in
//     ascending chunk order. Counts are exact integers, so the merged table
//     — and therefore sorted()/top_k() and every downstream report byte —
//     is identical at any worker count.
//
// Thread safety: entries are created under a mutex and built under a
// per-entry std::once_flag, so concurrent pair shards that share a side
// block on the single builder instead of duplicating work. The builder may
// itself fan out through the pool (ThreadPool::parallel_for is nest-safe);
// waiters hold no pool resources, so this cannot deadlock.
//
// Lifetime: the cache borrows the SessionFrame (and the classifier behind
// its verdict column) and must not outlive it — ExperimentResult owns both
// and tears them down together (see ExperimentResult::table_cache()).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/characteristics.h"
#include "analysis/overlap.h"  // SegmentPager
#include "capture/frame.h"
#include "stats/freq.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::analysis {

// Record-chunk size for sharded table builds. Fixed (not derived from the
// worker count) so the partial boundaries are reproducible; the merged
// result would be identical either way, but fixed chunks keep the build
// schedule itself worker-count independent.
inline constexpr std::size_t kTableBuildChunk = 1u << 16;

// Builds the characteristic's frequency table over the record set (a plain
// ascending vector or a packed frame posting list, via util::PostingView).
// Frames carrying encoded characteristic columns (SessionFrame v2) count
// through stats::FrequencyTable::from_codes — one branchless pass, no
// string ever touched — and the result is bit-identical to the v1 text
// scan because all table output renders through dictionary text. Frames
// without codes fall back to the v1 path: with a pool and enough records
// the build shards into kTableBuildChunk-sized partials merged in chunk
// order, identical to the sequential build. kFracMalicious has no
// frequency table; asking for it throws.
stats::FrequencyTable build_characteristic_table(const capture::SessionFrame& frame,
                                                 const util::PostingView& records,
                                                 Characteristic characteristic,
                                                 runner::ThreadPool* pool = nullptr,
                                                 std::size_t chunk = kTableBuildChunk);

class CharacteristicTableCache {
 public:
  // Sentinel neighbor meaning "the whole vantage point".
  static constexpr std::uint16_t kWholeVantage = 0xFFFF;

  // A cached side of a comparison: one vantage point, or one neighbor
  // (address) of it.
  struct SliceKey {
    topology::VantageId vantage = 0;
    std::uint16_t neighbor = kWholeVantage;
  };

  CharacteristicTableCache(const capture::SessionFrame& frame,
                           const MaliciousClassifier& classifier)
      : frame_(&frame), classifier_(&classifier) {}
  virtual ~CharacteristicTableCache() = default;

  CharacteristicTableCache(const CharacteristicTableCache&) = delete;
  CharacteristicTableCache& operator=(const CharacteristicTableCache&) = delete;

  // The query surface below is virtual so the stream layer's segment-merging
  // cache (SegmentedTableCache) substitutes for a whole-corpus cache in
  // every comparison driver — compare_characteristic, compare_vantage_pairs,
  // analyze_neighborhoods, geo_similarity — without those drivers knowing
  // about segments.

  // A frame carrying the deployment/vantage metadata (collection method,
  // network type) the comparison drivers consult. For the whole-corpus cache
  // this is the corpus frame; a segmented cache returns its first segment's
  // frame — the metadata columns are deployment-derived and identical across
  // segments.
  [[nodiscard]] virtual const capture::SessionFrame& frame() const noexcept { return *frame_; }

  // Number of records in the (vantage, neighbor, scope) slice — the
  // min_records gate — without building any table. Port-named scopes and
  // Any/All resolve to frame posting lists without copying.
  [[nodiscard]] virtual std::size_t record_count(topology::VantageId vantage, TrafficScope scope,
                                                 std::uint16_t neighbor = kWholeVantage) const;

  // The slice's frequency table for a top-k characteristic, built on first
  // use (sharded through `pool` when one is supplied) and shared by every
  // later caller. The reference stays valid for the cache's lifetime.
  [[nodiscard]] virtual const stats::FrequencyTable& table(
      topology::VantageId vantage, TrafficScope scope, Characteristic characteristic,
      runner::ThreadPool* pool = nullptr, std::uint16_t neighbor = kWholeVantage) const;

  // (malicious, benign) counts for the slice (the kFracMalicious side),
  // read from the frame's verdict column when present.
  [[nodiscard]] virtual std::pair<std::uint64_t, std::uint64_t> malicious(
      topology::VantageId vantage, TrafficScope scope,
      std::uint16_t neighbor = kWholeVantage) const;

  // Number of materialized frequency tables (diagnostics / tests).
  [[nodiscard]] virtual std::size_t tables_built() const;

 protected:
  // For segment-merging subclasses that override the whole query surface and
  // never touch the base maps: no corpus frame exists at construction.
  explicit CharacteristicTableCache(const MaliciousClassifier& classifier)
      : frame_(nullptr), classifier_(&classifier) {}

  [[nodiscard]] const MaliciousClassifier& classifier() const noexcept { return *classifier_; }

  static std::uint64_t pack(topology::VantageId vantage, std::uint16_t neighbor,
                            TrafficScope scope, Characteristic characteristic) {
    return (static_cast<std::uint64_t>(vantage) << 32) |
           (static_cast<std::uint64_t>(neighbor) << 16) |
           (static_cast<std::uint64_t>(scope) << 8) | static_cast<std::uint64_t>(characteristic);
  }

 private:
  struct SliceEntry {
    std::once_flag once;
    // Views a frame posting list, or `owned` when the scope needs a
    // filtered copy (HTTP/AllPorts, per-neighbor slices).
    util::PostingView records;
    std::vector<std::uint32_t> owned;
  };
  struct TableEntry {
    std::once_flag once;
    stats::FrequencyTable table;
  };
  struct BinaryEntry {
    std::once_flag once;
    std::pair<std::uint64_t, std::uint64_t> counts{0, 0};
  };

  [[nodiscard]] util::PostingView records_for(topology::VantageId vantage,
                                              std::uint16_t neighbor, TrafficScope scope) const;

  template <typename Entry>
  Entry& entry(std::unordered_map<std::uint64_t, std::unique_ptr<Entry>>& map,
               std::uint64_t key) const;

  const capture::SessionFrame* frame_;
  const MaliciousClassifier* classifier_;
  mutable std::mutex mutex_;  // guards the maps; entries build under their own once_flag
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<SliceEntry>> slices_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<TableEntry>> tables_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<BinaryEntry>> binaries_;
};

// SegmentedTableCache: the incremental-statistics extension of the cache for
// stream ingest. The corpus is a list of immutable segments (one sealed per
// epoch, each carrying its own SessionFrame); this cache holds one
// whole-corpus-shaped CharacteristicTableCache per segment and answers every
// query by combining per-segment results in segment order:
//
//   - table(): FrequencyTable::merge of the per-segment partials. Counts are
//     exact integers and the characteristic keys are interned *text* (never
//     store-local ids), so the merged table is bit-identical to one built
//     cold over the concatenated corpus — the live-vs-batch byte-identity
//     invariant rests on this.
//   - malicious() / record_count(): per-segment sums.
//
// Advancing an epoch (add_segment) keeps every per-segment partial and drops
// only the merged memos, so a refresh costs the new segment's builds plus a
// merge over distinct values — time proportional to the new data, not the
// corpus (bench_stream_ingest measures this).
//
// Thread safety: queries follow the base-class discipline (entries created
// under a mutex, built under per-entry once_flags) and per-segment caches
// are themselves concurrent-safe. add_segment must not race with queries:
// the stream driver advances epochs between report renders.
class SegmentedTableCache final : public CharacteristicTableCache {
 public:
  explicit SegmentedTableCache(const MaliciousClassifier& classifier);
  ~SegmentedTableCache() override;

  // Appends one sealed segment's frame (borrowed; must outlive the cache —
  // stream::EpochSnapshot keeps segments alive) and invalidates the merged
  // memos. References previously returned by table() are invalidated too;
  // callers must not hold them across epochs.
  void add_segment(const capture::SessionFrame& segment_frame);

  [[nodiscard]] std::size_t segment_count() const noexcept { return segments_.size(); }

  // Out-of-core hook: when segment frames may be spilled (stream::Segment),
  // the pager is invoked with (segment index, true/false) around every
  // per-segment query so the caller can map the frame in and release it
  // again. Must be set before queries run and must be safe to call
  // concurrently with itself (concurrent merged builds of different keys
  // touch the same segments — the stream layer's pager refcounts). Merged
  // memos are served without paging; per-segment queries always page, even
  // when the partial behind them is already cached.
  void set_segment_pager(SegmentPager pager) { pager_ = std::move(pager); }

  [[nodiscard]] const capture::SessionFrame& frame() const noexcept override;
  [[nodiscard]] std::size_t record_count(topology::VantageId vantage, TrafficScope scope,
                                         std::uint16_t neighbor = kWholeVantage) const override;
  [[nodiscard]] const stats::FrequencyTable& table(
      topology::VantageId vantage, TrafficScope scope, Characteristic characteristic,
      runner::ThreadPool* pool = nullptr,
      std::uint16_t neighbor = kWholeVantage) const override;
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> malicious(
      topology::VantageId vantage, TrafficScope scope,
      std::uint16_t neighbor = kWholeVantage) const override;
  // Materialized merged tables plus the per-segment partials behind them.
  [[nodiscard]] std::size_t tables_built() const override;
  // Only the per-segment partials (to observe partial reuse across epochs).
  [[nodiscard]] std::size_t segment_tables_built() const;

 private:
  struct MergedTable {
    std::once_flag once;
    stats::FrequencyTable table;
  };
  struct MergedCounts {
    std::once_flag once;
    std::pair<std::uint64_t, std::uint64_t> counts{0, 0};
  };

  template <typename Entry>
  Entry& merged_entry(std::unordered_map<std::uint64_t, std::unique_ptr<Entry>>& map,
                      std::uint64_t key) const;

  // RAII acquire/release of one segment through pager_ (no-op when unset).
  class PageGuard;

  std::vector<std::unique_ptr<CharacteristicTableCache>> segments_;
  SegmentPager pager_;
  mutable std::mutex merged_mutex_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<MergedTable>> merged_tables_;
  mutable std::unordered_map<std::uint64_t, std::unique_ptr<MergedCounts>> merged_counts_;
};

}  // namespace cw::analysis
