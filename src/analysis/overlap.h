// Tables 8 and 9: do the scanners (and attackers) seen at honeypots also
// appear in the telescope? Computes per-port source-IP set overlaps across
// network types.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "analysis/malicious.h"
#include "capture/frame.h"
#include "capture/store.h"
#include "net/ports.h"
#include "topology/deployment.h"

namespace cw::analysis {

// Table 8 row: overlap fractions for every scanner IP seen on `port`.
struct OverlapRow {
  net::Port port = 0;
  std::size_t cloud_ips = 0;
  std::size_t edu_ips = 0;
  std::size_t telescope_ips = 0;
  // |Tel ∩ Cloud| / |Cloud| etc.; nullopt when the denominator is empty.
  std::optional<double> tel_cloud_over_cloud;
  std::optional<double> tel_edu_over_edu;
  std::optional<double> cloud_edu_over_cloud;
};

// `exclude_actors` drops infrastructure scanners (the search-engine
// crawlers) from the sets: at real scale their handful of source IPs is
// negligible, but in a scaled-down population they would dominate every
// denominator.
std::vector<OverlapRow> scanner_overlap(const capture::EventStore& store,
                                        const topology::Deployment& deployment,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors = {});

// Frame variant: walks only the per-port posting lists and resolves network
// types through the frame's precomputed vantage table.
std::vector<OverlapRow> scanner_overlap(const capture::SessionFrame& frame,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors = {});

// Paging hook for segmented corpora whose frames may live out of core:
// invoked with (segment index, true) before a segment's frame is scanned and
// (segment index, false) after, so the caller can map a spilled segment in
// and release it again (see stream::Segment). An empty function means every
// frame is resident.
using SegmentPager = std::function<void(std::size_t, bool)>;

// Segmented variant: one sealed frame per epoch, scanned in segment order.
// Overlaps are set intersections over per-port source-IP sets, and set union
// commutes with the segment split — the rows are bit-identical to the
// single-frame scan of the concatenated corpus.
std::vector<OverlapRow> scanner_overlap(const std::vector<const capture::SessionFrame*>& frames,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors = {},
                                        const SegmentPager& pager = {});

// Table 9 row: same numerator/denominator construction but restricted to
// *attacker* IPs — sources whose cloud/EDU traffic was measured malicious.
// Cells are nullopt where the collection method cannot measure intent
// (e.g. credentials on Honeytrap EDU honeypots).
struct MaliciousOverlapRow {
  net::Port port = 0;
  std::size_t malicious_cloud_ips = 0;
  std::size_t malicious_edu_ips = 0;
  std::optional<double> tel_over_malicious_cloud;
  std::optional<double> tel_over_malicious_edu;
};

std::vector<MaliciousOverlapRow> attacker_overlap(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const MaliciousClassifier& classifier, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors = {});

// Frame variant: reads the precomputed verdict column instead of classifying
// per record. The frame must have been built with a verdict function
// (has_verdicts()); throws std::logic_error otherwise.
std::vector<MaliciousOverlapRow> attacker_overlap(
    const capture::SessionFrame& frame, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors = {});

// Segmented variant of the frame scan, with the same paging hook and the
// same exactness argument as the segmented scanner_overlap. Every segment
// frame must carry a verdict column.
std::vector<MaliciousOverlapRow> attacker_overlap(
    const std::vector<const capture::SessionFrame*>& frames, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors = {}, const SegmentPager& pager = {});

}  // namespace cw::analysis
