#include "analysis/overlap.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace cw::analysis {
namespace {

using IpSet = std::unordered_set<std::uint32_t>;

double intersection_fraction(const IpSet& numerator_side, const IpSet& denominator) {
  if (denominator.empty()) return 0.0;
  std::size_t shared = 0;
  // Iterate over the smaller set.
  const IpSet& small = denominator.size() <= numerator_side.size() ? denominator : numerator_side;
  const IpSet& large = denominator.size() <= numerator_side.size() ? numerator_side : denominator;
  for (std::uint32_t ip : small) {
    if (large.contains(ip)) ++shared;
  }
  // `shared` is |A ∩ B| either way.
  return static_cast<double>(shared) / static_cast<double>(denominator.size());
}

}  // namespace

std::vector<OverlapRow> scanner_overlap(const capture::EventStore& store,
                                        const topology::Deployment& deployment,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  // One pass: per (port, network type) source sets.
  std::unordered_map<net::Port, IpSet> cloud;
  std::unordered_map<net::Port, IpSet> edu;
  std::unordered_map<net::Port, IpSet> telescope;
  std::unordered_set<net::Port> wanted(ports.begin(), ports.end());

  for (const capture::SessionRecord& record : store.records()) {
    if (!wanted.contains(record.port)) continue;
    if (excluded.contains(record.actor)) continue;
    switch (deployment.at(record.vantage).type) {
      case topology::NetworkType::kCloud: cloud[record.port].insert(record.src); break;
      case topology::NetworkType::kEducation: edu[record.port].insert(record.src); break;
      case topology::NetworkType::kTelescope: telescope[record.port].insert(record.src); break;
    }
  }

  std::vector<OverlapRow> rows;
  for (net::Port port : ports) {
    OverlapRow row;
    row.port = port;
    const IpSet& c = cloud[port];
    const IpSet& e = edu[port];
    const IpSet& t = telescope[port];
    row.cloud_ips = c.size();
    row.edu_ips = e.size();
    row.telescope_ips = t.size();
    if (!c.empty()) {
      row.tel_cloud_over_cloud = intersection_fraction(t, c);
      row.cloud_edu_over_cloud = intersection_fraction(e, c);
    }
    if (!e.empty()) row.tel_edu_over_edu = intersection_fraction(t, e);
    rows.push_back(row);
  }
  return rows;
}

std::vector<MaliciousOverlapRow> attacker_overlap(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const MaliciousClassifier& classifier, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  std::unordered_map<net::Port, IpSet> malicious_cloud;
  std::unordered_map<net::Port, IpSet> malicious_edu;
  std::unordered_map<net::Port, IpSet> telescope;
  // Whether any cloud/EDU vantage could measure intent on this port at all;
  // if not, the table cell is an "x".
  std::unordered_map<net::Port, bool> cloud_measurable;
  std::unordered_map<net::Port, bool> edu_measurable;
  std::unordered_set<net::Port> wanted(ports.begin(), ports.end());

  for (const capture::SessionRecord& record : store.records()) {
    if (!wanted.contains(record.port)) continue;
    if (excluded.contains(record.actor)) continue;
    const topology::NetworkType type = deployment.at(record.vantage).type;
    if (type == topology::NetworkType::kTelescope) {
      telescope[record.port].insert(record.src);
      continue;
    }
    const MeasuredIntent intent = classifier.classify(record, store);
    const bool observable = intent != MeasuredIntent::kUnobservable;
    if (type == topology::NetworkType::kCloud) {
      cloud_measurable[record.port] = cloud_measurable[record.port] || observable;
      if (intent == MeasuredIntent::kMalicious) malicious_cloud[record.port].insert(record.src);
    } else {
      edu_measurable[record.port] = edu_measurable[record.port] || observable;
      if (intent == MeasuredIntent::kMalicious) malicious_edu[record.port].insert(record.src);
    }
  }

  std::vector<MaliciousOverlapRow> rows;
  for (net::Port port : ports) {
    MaliciousOverlapRow row;
    row.port = port;
    const IpSet& mc = malicious_cloud[port];
    const IpSet& me = malicious_edu[port];
    const IpSet& t = telescope[port];
    row.malicious_cloud_ips = mc.size();
    row.malicious_edu_ips = me.size();
    if (cloud_measurable[port] && !mc.empty()) {
      row.tel_over_malicious_cloud = intersection_fraction(t, mc);
    }
    if (edu_measurable[port] && !me.empty()) {
      row.tel_over_malicious_edu = intersection_fraction(t, me);
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace cw::analysis
