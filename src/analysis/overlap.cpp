#include "analysis/overlap.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace cw::analysis {
namespace {

using IpSet = std::unordered_set<std::uint32_t>;
using PortSets = std::unordered_map<net::Port, IpSet>;

double intersection_fraction(const IpSet& numerator_side, const IpSet& denominator) {
  if (denominator.empty()) return 0.0;
  std::size_t shared = 0;
  // Iterate over the smaller set.
  const IpSet& small = denominator.size() <= numerator_side.size() ? denominator : numerator_side;
  const IpSet& large = denominator.size() <= numerator_side.size() ? numerator_side : denominator;
  for (std::uint32_t ip : small) {
    if (large.contains(ip)) ++shared;
  }
  // `shared` is |A ∩ B| either way.
  return static_cast<double>(shared) / static_cast<double>(denominator.size());
}

// Const lookup into the aggregation maps: absent ports yield the empty set
// instead of silently inserting one (operator[] would).
const IpSet& port_set(const PortSets& sets, net::Port port) {
  static const IpSet kEmpty;
  const auto it = sets.find(port);
  return it != sets.end() ? it->second : kEmpty;
}

bool port_flag(const std::unordered_map<net::Port, bool>& flags, net::Port port) {
  const auto it = flags.find(port);
  return it != flags.end() && it->second;
}

std::vector<OverlapRow> scanner_rows(const std::vector<net::Port>& ports, const PortSets& cloud,
                                     const PortSets& edu, const PortSets& telescope) {
  std::vector<OverlapRow> rows;
  for (net::Port port : ports) {
    OverlapRow row;
    row.port = port;
    const IpSet& c = port_set(cloud, port);
    const IpSet& e = port_set(edu, port);
    const IpSet& t = port_set(telescope, port);
    row.cloud_ips = c.size();
    row.edu_ips = e.size();
    row.telescope_ips = t.size();
    if (!c.empty()) {
      row.tel_cloud_over_cloud = intersection_fraction(t, c);
      row.cloud_edu_over_cloud = intersection_fraction(e, c);
    }
    if (!e.empty()) row.tel_edu_over_edu = intersection_fraction(t, e);
    rows.push_back(row);
  }
  return rows;
}

std::vector<MaliciousOverlapRow> attacker_rows(
    const std::vector<net::Port>& ports, const PortSets& malicious_cloud,
    const PortSets& malicious_edu, const PortSets& telescope,
    const std::unordered_map<net::Port, bool>& cloud_measurable,
    const std::unordered_map<net::Port, bool>& edu_measurable) {
  std::vector<MaliciousOverlapRow> rows;
  for (net::Port port : ports) {
    MaliciousOverlapRow row;
    row.port = port;
    const IpSet& mc = port_set(malicious_cloud, port);
    const IpSet& me = port_set(malicious_edu, port);
    const IpSet& t = port_set(telescope, port);
    row.malicious_cloud_ips = mc.size();
    row.malicious_edu_ips = me.size();
    if (port_flag(cloud_measurable, port) && !mc.empty()) {
      row.tel_over_malicious_cloud = intersection_fraction(t, mc);
    }
    if (port_flag(edu_measurable, port) && !me.empty()) {
      row.tel_over_malicious_edu = intersection_fraction(t, me);
    }
    rows.push_back(row);
  }
  return rows;
}

}  // namespace

std::vector<OverlapRow> scanner_overlap(const capture::EventStore& store,
                                        const topology::Deployment& deployment,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  // One pass: per (port, network type) source sets.
  PortSets cloud;
  PortSets edu;
  PortSets telescope;
  std::unordered_set<net::Port> wanted(ports.begin(), ports.end());

  for (const capture::SessionRecord& record : store.records()) {
    if (!wanted.contains(record.port)) continue;
    if (excluded.contains(record.actor)) continue;
    switch (deployment.at(record.vantage).type) {
      case topology::NetworkType::kCloud: cloud[record.port].insert(record.src); break;
      case topology::NetworkType::kEducation: edu[record.port].insert(record.src); break;
      case topology::NetworkType::kTelescope: telescope[record.port].insert(record.src); break;
    }
  }
  return scanner_rows(ports, cloud, edu, telescope);
}

namespace {

// Shared accumulation pass of the frame-backed scanner overlap: one frame's
// per-port posting lists folded into the (port, network type) source sets.
// The segmented variant calls this once per segment; union into shared sets
// is exactly the single-frame scan of the concatenated corpus.
void accumulate_scanner(const capture::SessionFrame& frame, const std::vector<net::Port>& ports,
                        const std::unordered_set<capture::ActorId>& excluded, PortSets& cloud,
                        PortSets& edu, PortSets& telescope) {
  for (net::Port port : ports) {
    frame.for_port(port).for_each([&](std::uint32_t index) {
      if (excluded.contains(frame.actor(index))) return;
      const std::uint32_t src = frame.src(index);
      switch (frame.network_type(index)) {
        case topology::NetworkType::kCloud: cloud[port].insert(src); break;
        case topology::NetworkType::kEducation: edu[port].insert(src); break;
        case topology::NetworkType::kTelescope: telescope[port].insert(src); break;
      }
    });
  }
}

}  // namespace

std::vector<OverlapRow> scanner_overlap(const capture::SessionFrame& frame,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  PortSets cloud;
  PortSets edu;
  PortSets telescope;
  accumulate_scanner(frame, ports, excluded, cloud, edu, telescope);
  return scanner_rows(ports, cloud, edu, telescope);
}

std::vector<OverlapRow> scanner_overlap(const std::vector<const capture::SessionFrame*>& frames,
                                        const std::vector<net::Port>& ports,
                                        const std::vector<capture::ActorId>& exclude_actors,
                                        const SegmentPager& pager) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  PortSets cloud;
  PortSets edu;
  PortSets telescope;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (pager) pager(i, true);
    accumulate_scanner(*frames[i], ports, excluded, cloud, edu, telescope);
    if (pager) pager(i, false);
  }
  return scanner_rows(ports, cloud, edu, telescope);
}

std::vector<MaliciousOverlapRow> attacker_overlap(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const MaliciousClassifier& classifier, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  PortSets malicious_cloud;
  PortSets malicious_edu;
  PortSets telescope;
  // Whether any cloud/EDU vantage could measure intent on this port at all;
  // if not, the table cell is an "x".
  std::unordered_map<net::Port, bool> cloud_measurable;
  std::unordered_map<net::Port, bool> edu_measurable;
  std::unordered_set<net::Port> wanted(ports.begin(), ports.end());

  for (const capture::SessionRecord& record : store.records()) {
    if (!wanted.contains(record.port)) continue;
    if (excluded.contains(record.actor)) continue;
    const topology::NetworkType type = deployment.at(record.vantage).type;
    if (type == topology::NetworkType::kTelescope) {
      telescope[record.port].insert(record.src);
      continue;
    }
    const MeasuredIntent intent = classifier.classify(record, store);
    const bool observable = intent != MeasuredIntent::kUnobservable;
    if (type == topology::NetworkType::kCloud) {
      cloud_measurable[record.port] = cloud_measurable[record.port] || observable;
      if (intent == MeasuredIntent::kMalicious) malicious_cloud[record.port].insert(record.src);
    } else {
      edu_measurable[record.port] = edu_measurable[record.port] || observable;
      if (intent == MeasuredIntent::kMalicious) malicious_edu[record.port].insert(record.src);
    }
  }
  return attacker_rows(ports, malicious_cloud, malicious_edu, telescope, cloud_measurable,
                       edu_measurable);
}

namespace {

void accumulate_attacker(const capture::SessionFrame& frame, const std::vector<net::Port>& ports,
                         const std::unordered_set<capture::ActorId>& excluded,
                         PortSets& malicious_cloud, PortSets& malicious_edu, PortSets& telescope,
                         std::unordered_map<net::Port, bool>& cloud_measurable,
                         std::unordered_map<net::Port, bool>& edu_measurable) {
  if (!frame.has_verdicts()) {
    throw std::logic_error("attacker_overlap: frame built without a verdict column");
  }
  for (net::Port port : ports) {
    frame.for_port(port).for_each([&](std::uint32_t index) {
      if (excluded.contains(frame.actor(index))) return;
      const std::uint32_t src = frame.src(index);
      const topology::NetworkType type = frame.network_type(index);
      if (type == topology::NetworkType::kTelescope) {
        telescope[port].insert(src);
        return;
      }
      const capture::SessionFrame::Verdict verdict = frame.verdict(index);
      const bool observable = verdict != capture::SessionFrame::Verdict::kUnobservable;
      const bool malicious = verdict == capture::SessionFrame::Verdict::kMalicious;
      if (type == topology::NetworkType::kCloud) {
        cloud_measurable[port] = cloud_measurable[port] || observable;
        if (malicious) malicious_cloud[port].insert(src);
      } else {
        edu_measurable[port] = edu_measurable[port] || observable;
        if (malicious) malicious_edu[port].insert(src);
      }
    });
  }
}

}  // namespace

std::vector<MaliciousOverlapRow> attacker_overlap(
    const capture::SessionFrame& frame, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  PortSets malicious_cloud;
  PortSets malicious_edu;
  PortSets telescope;
  std::unordered_map<net::Port, bool> cloud_measurable;
  std::unordered_map<net::Port, bool> edu_measurable;
  accumulate_attacker(frame, ports, excluded, malicious_cloud, malicious_edu, telescope,
                      cloud_measurable, edu_measurable);
  return attacker_rows(ports, malicious_cloud, malicious_edu, telescope, cloud_measurable,
                       edu_measurable);
}

std::vector<MaliciousOverlapRow> attacker_overlap(
    const std::vector<const capture::SessionFrame*>& frames, const std::vector<net::Port>& ports,
    const std::vector<capture::ActorId>& exclude_actors, const SegmentPager& pager) {
  const std::unordered_set<capture::ActorId> excluded(exclude_actors.begin(),
                                                      exclude_actors.end());
  PortSets malicious_cloud;
  PortSets malicious_edu;
  PortSets telescope;
  std::unordered_map<net::Port, bool> cloud_measurable;
  std::unordered_map<net::Port, bool> edu_measurable;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (pager) pager(i, true);
    accumulate_attacker(*frames[i], ports, excluded, malicious_cloud, malicious_edu, telescope,
                        cloud_measurable, edu_measurable);
    if (pager) pager(i, false);
  }
  return attacker_rows(ports, malicious_cloud, malicious_edu, telescope, cloud_measurable,
                       edu_measurable);
}

}  // namespace cw::analysis
