// Section 4.2 / Figure 1: address-structure preferences inside the
// telescope. Produces per-address unique-scanner series (with the paper's
// 512-address rolling average) and summary avoidance/preference ratios for
// the structural classes (any-255 octet, .255 ending, first-of-/16).
#pragma once

#include <vector>

#include "capture/collector.h"
#include "capture/frame.h"
#include "capture/store.h"
#include "net/ports.h"
#include "stats/descriptive.h"
#include "topology/deployment.h"

namespace cw::analysis {

// Unique scanning sources per telescope address on one port, indexed by the
// address's position in the telescope vantage point (contiguous order).
std::vector<double> telescope_address_counts(const capture::EventStore& store,
                                             const topology::Deployment& deployment,
                                             net::Port port);

// Frame variant: reads the per-(vantage, port) posting list instead of
// filtering the telescope's whole record set by port.
std::vector<double> telescope_address_counts(const capture::SessionFrame& frame, net::Port port);

struct StructureStats {
  double mean_any_255 = 0.0;   // addresses with a 255 octet anywhere
  double mean_last_255 = 0.0;  // addresses ending in .255
  double mean_first_16 = 0.0;  // first address of a /16
  double mean_plain = 0.0;     // everything else

  // Ratios the paper quotes: how much less likely a structural class is to
  // be scanned than a plain address (>1 means avoidance).
  [[nodiscard]] double avoidance_any_255() const {
    return mean_any_255 > 0.0 ? mean_plain / mean_any_255 : 0.0;
  }
  [[nodiscard]] double avoidance_last_255() const {
    return mean_last_255 > 0.0 ? mean_plain / mean_last_255 : 0.0;
  }
  [[nodiscard]] double preference_first_16() const {
    return mean_plain > 0.0 ? mean_first_16 / mean_plain : 0.0;
  }
};

StructureStats structure_stats(const std::vector<double>& counts,
                               const topology::VantagePoint& telescope);

// Streaming per-address counter for full-scale telescope runs: installed as
// the collector's telescope sink so events are tallied without being
// stored. Counts connection attempts per (tracked port, address offset);
// since a sweeping scanner touches an address once per wave, the counts
// track unique-scanner curves closely.
class TelescopeCounter {
 public:
  TelescopeCounter(const topology::VantagePoint& telescope, std::vector<net::Port> ports);

  // Collector sink signature; returns true when the event was consumed.
  bool consume(const capture::ScanEvent& event, const topology::Target& target);

  [[nodiscard]] const std::vector<double>& counts(net::Port port) const;
  [[nodiscard]] std::size_t addresses() const noexcept { return size_; }

 private:
  net::IPv4Addr base_;
  std::size_t size_;
  std::vector<net::Port> ports_;
  std::vector<std::vector<double>> counts_;  // parallel to ports_
};

}  // namespace cw::analysis
