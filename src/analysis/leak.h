// The Section 4.3 leak experiment, end to end: deploys honeypots across
// three IP groups in a controlled (Stanford) network —
//
//   control            (8 IPs)  — no services in years; engines blocked
//   previously leaked  (7 IPs)  — HTTP/80 indexed by both engines years
//                                 ago; engines blocked now
//   leaked            (18 IPs)  — fresh IPs; each group of 3 lets exactly
//                                 one engine discover exactly one of
//                                 SSH/22, Telnet/23, HTTP/80
//
// then runs a scanning population with search-engine miners against them
// and measures, per (service, leak condition): fold increase in traffic per
// hour over the control group (all and malicious traffic), a one-sided
// Mann-Whitney U significance (the bold markers of Table 3), a Kolmogorov-
// Smirnov distribution difference (the "*" markers — spike patterns), and
// the unique-credential inflation. Censys/Shodan's own probes are excluded
// from the measurements, as in the paper.
#pragma once

#include <string>
#include <vector>

#include "capture/store.h"
#include "net/ports.h"
#include "util/sim_time.h"

namespace cw::analysis {

enum class LeakCondition : std::uint8_t {
  kControl = 0,
  kCensysLeaked,
  kShodanLeaked,
  kPreviouslyLeaked,
};

std::string_view leak_condition_name(LeakCondition c) noexcept;

struct LeakCell {
  net::Port port = 0;
  LeakCondition condition = LeakCondition::kControl;
  double fold_all = 0.0;        // fold increase in traffic/hour vs control
  double fold_malicious = 0.0;
  bool mwu_all = false;         // stochastically greater (bold)
  bool mwu_malicious = false;
  bool ks_all = false;          // distribution differs (the "*")
  double spikes_per_ip = 0.0;
  double unique_passwords_per_ip = 0.0;  // SSH/Telnet only
};

struct LeakExperimentConfig {
  std::uint64_t seed = 0x6c65616b32303231ULL;
  util::SimTime duration = util::kWeek;
  double alpha = 0.05;
  int control_ips = 8;
  int previously_leaked_ips = 7;
  int leaked_ips_per_group = 3;  // x {Censys,Shodan} x {22,23,80} = 18
  double population_scale = 1.0;
};

struct LeakExperimentResult {
  std::vector<LeakCell> cells;              // rows of Table 3 (+ control rows)
  std::uint64_t total_records = 0;
  double control_hourly_mean[3] = {0, 0, 0};  // per service 22/23/80

  [[nodiscard]] const LeakCell* find(net::Port port, LeakCondition condition) const;
};

LeakExperimentResult run_leak_experiment(const LeakExperimentConfig& config);

}  // namespace cw::analysis
