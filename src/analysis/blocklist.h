// Blocklist efficacy — the future-work item Section 8 poses: "We leave to
// future work comparing the efficacy of blocklists that source information
// from different regions." A blocklist is built from the measured-malicious
// source IPs observed at one group of vantage points and evaluated against
// another group: what fraction of the target group's attacker IPs (and
// malicious traffic volume) would the shared list have covered?
#pragma once

#include <string>
#include <vector>

#include "analysis/malicious.h"
#include "capture/frame.h"
#include "topology/deployment.h"

namespace cw::analysis {

struct BlocklistEvaluation {
  std::string source_group;
  std::string target_group;
  std::size_t blocklist_size = 0;        // unique malicious IPs at the source
  std::size_t target_attacker_ips = 0;   // unique malicious IPs at the target
  std::size_t covered_ips = 0;           // target attacker IPs on the list
  std::uint64_t target_malicious_events = 0;
  std::uint64_t blocked_events = 0;      // malicious events from listed IPs

  [[nodiscard]] double ip_coverage() const {
    return target_attacker_ips == 0
               ? 0.0
               : static_cast<double>(covered_ips) / static_cast<double>(target_attacker_ips);
  }
  [[nodiscard]] double event_coverage() const {
    return target_malicious_events == 0
               ? 0.0
               : static_cast<double>(blocked_events) /
                     static_cast<double>(target_malicious_events);
  }
};

// Builds the list from `source` vantage points and evaluates it against
// `target` vantage points (which may overlap; self-evaluation yields 100%).
BlocklistEvaluation evaluate_blocklist(const capture::EventStore& store,
                                       const MaliciousClassifier& classifier,
                                       const std::vector<topology::VantageId>& source,
                                       const std::vector<topology::VantageId>& target,
                                       std::string source_label, std::string target_label);

// Frame variant: reads the precomputed verdict column. The frame must have
// been built with a verdict function; throws std::logic_error otherwise.
BlocklistEvaluation evaluate_blocklist(const capture::SessionFrame& frame,
                                       const std::vector<topology::VantageId>& source,
                                       const std::vector<topology::VantageId>& target,
                                       std::string source_label, std::string target_label);

// The regional matrix the paper's recommendation asks about: GreyNoise
// cloud vantage points grouped by continent (US / EU / AP), every source
// group evaluated against every target group.
std::vector<BlocklistEvaluation> regional_blocklist_matrix(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const MaliciousClassifier& classifier);

std::vector<BlocklistEvaluation> regional_blocklist_matrix(const capture::SessionFrame& frame);

}  // namespace cw::analysis
