// Section 5.2: network-type discrimination. Compares traffic across
// networks while holding geography fixed — cloud-to-cloud via co-located
// GreyNoise regions (Table 6/7), cloud-to-education and education-to-
// education via the matched Honeytrap deployments, and telescope-to-
// everything for Table 10.
#pragma once

#include <vector>

#include "analysis/comparison.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::analysis {

struct NetworkOptions {
  std::size_t top_k = 3;
  double alpha = 0.05;
  std::size_t min_records = 10;
  // The paper applies Bonferroni "across all vantage points", i.e. over
  // the whole study's comparison family, which shrinks alpha by orders of
  // magnitude. The per-call pair count is multiplied by this factor to
  // approximate that study-wide family.
  std::size_t family_scale = 50;
};

struct NetworkComparison {
  TrafficScope scope = TrafficScope::kSsh22;
  Characteristic characteristic = Characteristic::kTopAs;
  bool measurable = true;        // false renders as "x" (collection limits)
  std::size_t pairs_tested = 0;  // n
  std::size_t pairs_different = 0;
  double avg_phi = 0.0;          // mean Cramér's V over significant pairs
  stats::EffectMagnitude strongest = stats::EffectMagnitude::kNone;
};

// Generic pairwise driver used by all the comparisons below.
NetworkComparison compare_vantage_pairs(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
    TrafficScope scope, Characteristic characteristic, const MaliciousClassifier& classifier,
    const NetworkOptions& options = {});

// Frame variant. When `pool` is non-null each pair's slicing and test run
// as an independent shard (nest-safe inside a pipeline task); results land
// in per-pair slots and are reduced in pair order, so the phi accumulation
// and the report bytes are identical at any worker count.
NetworkComparison compare_vantage_pairs(
    const capture::SessionFrame& frame,
    const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
    TrafficScope scope, Characteristic characteristic, const MaliciousClassifier& classifier,
    const NetworkOptions& options = {}, runner::ThreadPool* pool = nullptr);

// Cache variant: sides are fetched from (and memoized in) the shared
// CharacteristicTableCache, so a vantage appearing in several pairs — or in
// a different characteristic's pass over the same pair list — builds its
// table once. Same per-pair sharding and pair-order reduction as the frame
// variant; output is byte-identical to it.
NetworkComparison compare_vantage_pairs(
    const CharacteristicTableCache& cache,
    const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs,
    TrafficScope scope, Characteristic characteristic, const NetworkOptions& options = {},
    runner::ThreadPool* pool = nullptr);

// The pair lists for each comparison family.
std::vector<std::pair<topology::VantageId, topology::VantageId>> cloud_cloud_pairs(
    const topology::Deployment& deployment);
std::vector<std::pair<topology::VantageId, topology::VantageId>> cloud_edu_pairs(
    const topology::Deployment& deployment);
std::vector<std::pair<topology::VantageId, topology::VantageId>> edu_edu_pairs(
    const topology::Deployment& deployment);
std::vector<std::pair<topology::VantageId, topology::VantageId>> telescope_edu_pairs(
    const topology::Deployment& deployment);
std::vector<std::pair<topology::VantageId, topology::VantageId>> telescope_cloud_pairs(
    const topology::Deployment& deployment);

}  // namespace cw::analysis
