// Scanning-campaign inference. The telescope literature the paper builds on
// (Torabi et al., Durumeric et al.) groups individual scanning sources into
// coordinated campaigns; our ground truth actually contains such campaigns
// (multi-source actors), so the inference can be validated exactly. A
// campaign is detected as a set of sources that (a) deliver byte-identical
// normalized payloads (or credentials from the same attempt stream) and
// (b) are active within overlapping time windows.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "capture/frame.h"
#include "capture/store.h"
#include "util/sim_time.h"

namespace cw::analysis {

struct InferredCampaign {
  std::string signature;               // normalized payload (or credential) key
  std::vector<std::uint32_t> sources;  // unique source addresses, sorted
  std::uint64_t events = 0;
  util::SimTime first_seen = 0;
  util::SimTime last_seen = 0;
  net::Port dominant_port = 0;
};

struct CampaignInferenceOptions {
  // Minimum sources for a signature to count as a coordinated campaign
  // (singleton sources are just individual scanners).
  std::size_t min_sources = 3;
  // Maximum quiet gap between consecutive events before the signature is
  // split into separate campaigns.
  util::SimDuration max_gap = 2 * util::kDay;
};

// Clusters the store's payload-bearing records into campaigns. Records with
// neither payload nor credential (telescope data) are ignored — inference
// on telescopes requires payloads, one of the paper's core points.
std::vector<InferredCampaign> infer_campaigns(const capture::EventStore& store,
                                              const CampaignInferenceOptions& options = {});

// Frame variant: normalizes each *distinct* payload once (signature
// memoized by interner id) instead of re-normalizing per record.
std::vector<InferredCampaign> infer_campaigns(const capture::SessionFrame& frame,
                                              const CampaignInferenceOptions& options = {});

// Validation against ground truth: fraction of inferred campaigns whose
// sources all belong to a single true actor ("pure" clusters), and the
// fraction of multi-source true actors recovered by some inferred campaign.
struct CampaignValidation {
  std::size_t inferred = 0;
  std::size_t pure = 0;             // all sources from one actor
  std::size_t true_campaigns = 0;   // actors with >= min_sources active sources
  std::size_t recovered = 0;        // true campaigns matched by a pure cluster

  [[nodiscard]] double purity() const {
    return inferred == 0 ? 0.0 : static_cast<double>(pure) / static_cast<double>(inferred);
  }
  [[nodiscard]] double recall() const {
    return true_campaigns == 0
               ? 0.0
               : static_cast<double>(recovered) / static_cast<double>(true_campaigns);
  }
};

CampaignValidation validate_campaigns(const capture::EventStore& store,
                                      const std::vector<InferredCampaign>& campaigns,
                                      const CampaignInferenceOptions& options = {});

CampaignValidation validate_campaigns(const capture::SessionFrame& frame,
                                      const std::vector<InferredCampaign>& campaigns,
                                      const CampaignInferenceOptions& options = {});

}  // namespace cw::analysis
