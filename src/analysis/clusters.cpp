#include "analysis/clusters.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <map>
#include <unordered_map>
#include <utility>

#include "capture/event.h"

namespace cw::analysis {
namespace {

constexpr std::size_t kTimingBuckets = 16;
constexpr std::size_t kNoEntity = std::numeric_limits<std::size_t>::max();

// Raw per-source accumulation: everything the fingerprint needs, mergeable
// across segments in any contiguous order (sets union, times concatenate).
struct Accumulator {
  std::uint64_t records = 0;
  std::vector<net::Port> ports;
  std::vector<std::uint32_t> users;
  std::vector<std::uint32_t> passwords;
  std::vector<std::uint32_t> payloads;
  std::vector<util::SimTime> times;
  // (actor, count): a source pool belongs to one actor, but tolerate
  // collisions with a deterministic majority vote.
  std::map<capture::ActorId, std::uint64_t> actors;
};

struct Fingerprint {
  std::uint32_t src = 0;
  std::uint64_t records = 0;
  capture::ActorId truth = 0;
  std::vector<net::Port> ports;
  std::vector<std::uint32_t> users;
  std::vector<std::uint32_t> passwords;
  std::vector<std::uint32_t> payloads;
  double timing[kTimingBuckets] = {};
  bool has_timing = false;
};

void scan_frame(const capture::SessionFrame& frame, const ClusterOptions& options,
                std::unordered_map<std::uint32_t, Accumulator>& sources) {
  const bool use_verdicts = options.malicious_only && frame.has_verdicts();
  const bool coded = frame.has_codes();
  const auto users = coded ? frame.codes(capture::CodedColumn::kUsername)
                           : std::span<const std::uint32_t>{};
  const auto passwords = coded ? frame.codes(capture::CodedColumn::kPassword)
                               : std::span<const std::uint32_t>{};
  const auto payloads = coded ? frame.codes(capture::CodedColumn::kPayload)
                              : std::span<const std::uint32_t>{};
  const auto n = static_cast<std::uint32_t>(frame.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (use_verdicts && frame.verdict(i) != capture::SessionFrame::Verdict::kMalicious) {
      continue;
    }
    const capture::ActorId actor = frame.actor(i);
    bool excluded = false;
    for (const capture::ActorId skip : options.exclude_actors) excluded |= actor == skip;
    if (excluded) continue;
    Accumulator& acc = sources[frame.src(i)];
    ++acc.records;
    acc.ports.push_back(frame.port(i));
    if (coded) {
      if (users[i] != 0) acc.users.push_back(users[i]);
      if (passwords[i] != 0) acc.passwords.push_back(passwords[i]);
      if (payloads[i] != 0) acc.payloads.push_back(payloads[i]);
    } else {
      // Un-encoded frame (bare unit-test builds): raw store ids are still
      // consistent within one run, which is all Jaccard needs.
      if (frame.credential_id(i) != capture::kNoCredential) {
        acc.users.push_back(frame.credential_id(i));
        acc.passwords.push_back(frame.credential_id(i));
      }
      if (frame.payload_id(i) != capture::kNoPayload) {
        acc.payloads.push_back(frame.payload_id(i));
      }
    }
    acc.times.push_back(frame.time(i));
    ++acc.actors[actor];
  }
}

void sort_unique(std::vector<std::uint32_t>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

void sort_unique(std::vector<net::Port>& values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
}

Fingerprint finalize(std::uint32_t src, Accumulator&& acc) {
  Fingerprint fp;
  fp.src = src;
  fp.records = acc.records;
  fp.ports = std::move(acc.ports);
  fp.users = std::move(acc.users);
  fp.passwords = std::move(acc.passwords);
  fp.payloads = std::move(acc.payloads);
  sort_unique(fp.ports);
  sort_unique(fp.users);
  sort_unique(fp.passwords);
  sort_unique(fp.payloads);
  // Majority actor; ties break toward the smaller id (std::map order).
  std::uint64_t best = 0;
  for (const auto& [actor, count] : acc.actors) {
    if (count > best) {
      best = count;
      fp.truth = actor;
    }
  }
  // Log-bucketed inter-event gaps. Record times arrive in store order, not
  // time order (actors emit bursts with forward timestamps), so sort first —
  // which also makes the histogram independent of segment slicing.
  std::sort(acc.times.begin(), acc.times.end());
  for (std::size_t k = 1; k < acc.times.size(); ++k) {
    const auto gap = static_cast<std::uint64_t>(acc.times[k] - acc.times[k - 1]);
    const std::uint64_t seconds = gap / static_cast<std::uint64_t>(util::kSecond);
    const auto bucket = std::min<std::size_t>(kTimingBuckets - 1,
                                              std::bit_width(seconds + 1) - 1);
    fp.timing[bucket] += 1.0;
    fp.has_timing = true;
  }
  return fp;
}

template <typename T>
double jaccard(const std::vector<T>& a, const std::vector<T>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::size_t common = 0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++common;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return static_cast<double>(common) / static_cast<double>(a.size() + b.size() - common);
}

double timing_cosine(const Fingerprint& a, const Fingerprint& b) {
  if (!a.has_timing && !b.has_timing) return 1.0;
  if (!a.has_timing || !b.has_timing) return 0.0;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (std::size_t k = 0; k < kTimingBuckets; ++k) {
    dot += a.timing[k] * b.timing[k];
    na += a.timing[k] * a.timing[k];
    nb += b.timing[k] * b.timing[k];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / std::sqrt(na * nb);
}

double distance(const Fingerprint& a, const Fingerprint& b, const ClusterOptions& options) {
  double wsum = options.port_weight + options.username_weight + options.password_weight +
                options.payload_weight + options.timing_weight;
  if (wsum <= 0.0) return 1.0;
  const double sim = (options.port_weight * jaccard(a.ports, b.ports) +
                      options.username_weight * jaccard(a.users, b.users) +
                      options.password_weight * jaccard(a.passwords, b.passwords) +
                      options.payload_weight * jaccard(a.payloads, b.payloads) +
                      options.timing_weight * timing_cosine(a, b)) /
                     wsum;
  return 1.0 - sim;
}

struct DisjointSet {
  std::vector<std::size_t> parent;
  explicit DisjointSet(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller root wins: keeps representatives deterministic.
    if (b < a) std::swap(a, b);
    parent[b] = a;
  }
};

// Average-linkage agglomerative clustering via the nearest-neighbor chain
// (O(n^2) with Lance-Williams updates). Ties break toward the smaller
// active index, so the dendrogram — and therefore the threshold cut — is a
// pure function of the distance matrix. Average linkage is reducible, hence
// monotone: the merges at distance <= threshold are downward-closed in the
// dendrogram and a union over exactly those edges is the stop-at-threshold
// partition.
std::vector<std::uint32_t> agglomerate(const std::vector<Fingerprint>& entities,
                                       const ClusterOptions& options) {
  const std::size_t n = entities.size();
  std::vector<std::uint32_t> assignment(n, 0);
  if (n == 0) return assignment;

  std::vector<double> dist(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double d = distance(entities[i], entities[j], options);
      dist[i * n + j] = d;
      dist[j * n + i] = d;
    }
  }

  std::vector<double> weight(n, 1.0);
  std::vector<char> active(n, 1);
  DisjointSet clusters(n);
  std::vector<std::size_t> chain;
  std::size_t remaining = n;
  while (remaining > 1) {
    if (chain.empty()) {
      for (std::size_t i = 0; i < n; ++i) {
        if (active[i]) {
          chain.push_back(i);
          break;
        }
      }
    }
    for (;;) {
      const std::size_t a = chain.back();
      std::size_t best = kNoEntity;
      double best_distance = std::numeric_limits<double>::infinity();
      for (std::size_t b = 0; b < n; ++b) {
        if (!active[b] || b == a) continue;
        const double d = dist[a * n + b];
        if (d < best_distance) {
          best_distance = d;
          best = b;
        }
      }
      if (chain.size() >= 2 && best == chain[chain.size() - 2]) {
        const std::size_t i = std::min(a, best);
        const std::size_t j = std::max(a, best);
        if (best_distance <= options.merge_threshold) clusters.unite(i, j);
        for (std::size_t k = 0; k < n; ++k) {
          if (!active[k] || k == i || k == j) continue;
          const double merged = (weight[i] * dist[k * n + i] + weight[j] * dist[k * n + j]) /
                                (weight[i] + weight[j]);
          dist[k * n + i] = merged;
          dist[i * n + k] = merged;
        }
        weight[i] += weight[j];
        active[j] = 0;
        --remaining;
        chain.pop_back();
        chain.pop_back();
        break;
      }
      chain.push_back(best);
    }
  }

  // Canonical ids: first appearance in entity (ascending-src) order.
  std::unordered_map<std::size_t, std::uint32_t> id_of_root;
  std::uint32_t next_id = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t root = clusters.find(i);
    const auto [it, inserted] = id_of_root.try_emplace(root, next_id);
    if (inserted) ++next_id;
    assignment[i] = it->second;
  }
  return assignment;
}

double adjusted_rand_index(const std::vector<std::uint32_t>& assignment,
                           const std::vector<capture::ActorId>& truth) {
  const std::size_t n = assignment.size();
  if (n == 0) return 1.0;
  std::map<std::pair<std::uint32_t, capture::ActorId>, std::uint64_t> contingency;
  std::map<std::uint32_t, std::uint64_t> row_sums;
  std::map<capture::ActorId, std::uint64_t> col_sums;
  for (std::size_t i = 0; i < n; ++i) {
    ++contingency[{assignment[i], truth[i]}];
    ++row_sums[assignment[i]];
    ++col_sums[truth[i]];
  }
  const auto choose2 = [](std::uint64_t x) {
    return 0.5 * static_cast<double>(x) * static_cast<double>(x - 1);
  };
  double index = 0.0;
  for (const auto& [key, count] : contingency) index += choose2(count);
  double rows = 0.0;
  for (const auto& [key, count] : row_sums) rows += choose2(count);
  double cols = 0.0;
  for (const auto& [key, count] : col_sums) cols += choose2(count);
  const double total = choose2(n);
  if (total == 0.0) return 1.0;
  const double expected = rows * cols / total;
  const double maximum = 0.5 * (rows + cols);
  if (maximum == expected) return 1.0;  // both partitions degenerate and equal
  return (index - expected) / (maximum - expected);
}

ClusterResult build_result(std::unordered_map<std::uint32_t, Accumulator>&& sources,
                           const ClusterOptions& options) {
  ClusterResult result;
  std::vector<std::uint32_t> keys;
  keys.reserve(sources.size());
  for (const auto& [src, acc] : sources) {
    if (acc.records >= options.min_records) keys.push_back(src);
  }
  std::sort(keys.begin(), keys.end());
  if (options.max_entities > 0 && keys.size() > options.max_entities) {
    std::stable_sort(keys.begin(), keys.end(), [&sources](std::uint32_t a, std::uint32_t b) {
      const std::uint64_t ra = sources.at(a).records;
      const std::uint64_t rb = sources.at(b).records;
      return ra != rb ? ra > rb : a < b;
    });
    keys.resize(options.max_entities);
    std::sort(keys.begin(), keys.end());
  }

  std::vector<Fingerprint> entities;
  entities.reserve(keys.size());
  for (const std::uint32_t src : keys) {
    entities.push_back(finalize(src, std::move(sources.at(src))));
  }

  result.assignment = agglomerate(entities, options);
  result.sources.reserve(entities.size());
  result.truth.reserve(entities.size());
  for (const Fingerprint& fp : entities) {
    result.sources.push_back(fp.src);
    result.truth.push_back(fp.truth);
  }

  ClusterScores& scores = result.scores;
  scores.entities = entities.size();
  std::uint32_t max_cluster = 0;
  for (const std::uint32_t c : result.assignment) max_cluster = std::max(max_cluster, c + 1);
  scores.clusters = max_cluster;
  {
    std::vector<capture::ActorId> actors = result.truth;
    std::sort(actors.begin(), actors.end());
    actors.erase(std::unique(actors.begin(), actors.end()), actors.end());
    scores.truth_actors = actors.size();
  }
  if (!entities.empty()) {
    // Purity: every cluster votes its majority ground-truth actor.
    std::map<std::pair<std::uint32_t, capture::ActorId>, std::uint64_t> contingency;
    for (std::size_t i = 0; i < entities.size(); ++i) {
      ++contingency[{result.assignment[i], result.truth[i]}];
    }
    std::map<std::uint32_t, std::uint64_t> majority;
    for (const auto& [key, count] : contingency) {
      auto& best = majority[key.first];
      best = std::max(best, count);
    }
    std::uint64_t agreeing = 0;
    for (const auto& [cluster, count] : majority) agreeing += count;
    scores.purity = static_cast<double>(agreeing) / static_cast<double>(entities.size());
    scores.ari = adjusted_rand_index(result.assignment, result.truth);
  }
  {
    std::string bytes;
    bytes.reserve(entities.size() * 8);
    for (std::size_t i = 0; i < entities.size(); ++i) {
      const std::uint32_t values[2] = {result.sources[i], result.assignment[i]};
      bytes.append(reinterpret_cast<const char*>(values), sizeof(values));
    }
    scores.assignment_fnv = util::fnv1a64(bytes);
  }
  return result;
}

}  // namespace

ClusterResult cluster_attackers(const capture::SessionFrame& frame,
                                const ClusterOptions& options) {
  std::unordered_map<std::uint32_t, Accumulator> sources;
  scan_frame(frame, options, sources);
  return build_result(std::move(sources), options);
}

ClusterResult cluster_attackers(const std::vector<const capture::SessionFrame*>& segments,
                                const ClusterOptions& options, const SegmentPager& pager) {
  std::unordered_map<std::uint32_t, Accumulator> sources;
  for (std::size_t s = 0; s < segments.size(); ++s) {
    if (pager) pager(s, true);
    scan_frame(*segments[s], options, sources);
    if (pager) pager(s, false);
  }
  return build_result(std::move(sources), options);
}

}  // namespace cw::analysis
