#include "analysis/structure.h"

#include <algorithm>
#include <stdexcept>

namespace cw::analysis {

std::vector<double> telescope_address_counts(const capture::EventStore& store,
                                             const topology::Deployment& deployment,
                                             net::Port port) {
  // Locate the telescope vantage point (there is at most one per scenario).
  const topology::VantagePoint* telescope = nullptr;
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    if (vp.type == topology::NetworkType::kTelescope) {
      telescope = &vp;
      break;
    }
  }
  if (telescope == nullptr || telescope->addresses.empty()) return {};

  // Unique (dst, src) pairs per destination, via sort-and-dedup to keep the
  // memory proportional to the record subset.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;  // (neighbor, src)
  for (std::uint32_t index : store.for_vantage(telescope->id)) {
    const capture::SessionRecord& record = store.records()[index];
    if (record.port != port) continue;
    hits.emplace_back(record.neighbor, record.src);
  }
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());

  std::vector<double> counts(telescope->addresses.size(), 0.0);
  for (const auto& [neighbor, src] : hits) {
    if (neighbor < counts.size()) counts[neighbor] += 1.0;
  }
  return counts;
}

std::vector<double> telescope_address_counts(const capture::SessionFrame& frame, net::Port port) {
  const topology::VantagePoint* telescope = nullptr;
  for (const topology::VantagePoint& vp : frame.deployment().vantage_points()) {
    if (vp.type == topology::NetworkType::kTelescope) {
      telescope = &vp;
      break;
    }
  }
  if (telescope == nullptr || telescope->addresses.empty()) return {};

  std::vector<std::pair<std::uint32_t, std::uint32_t>> hits;  // (neighbor, src)
  const util::PostingView indices = frame.for_vantage_port(telescope->id, port);
  hits.reserve(indices.size());
  indices.for_each([&](std::uint32_t index) {
    hits.emplace_back(frame.neighbor(index), frame.src(index));
  });
  std::sort(hits.begin(), hits.end());
  hits.erase(std::unique(hits.begin(), hits.end()), hits.end());

  std::vector<double> counts(telescope->addresses.size(), 0.0);
  for (const auto& [neighbor, src] : hits) {
    if (neighbor < counts.size()) counts[neighbor] += 1.0;
  }
  return counts;
}

StructureStats structure_stats(const std::vector<double>& counts,
                               const topology::VantagePoint& telescope) {
  StructureStats stats;
  double sum_any = 0.0, sum_last = 0.0, sum_first = 0.0, sum_plain = 0.0;
  std::size_t n_any = 0, n_last = 0, n_first = 0, n_plain = 0;
  const std::size_t limit = std::min(counts.size(), telescope.addresses.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const net::IPv4Addr addr = telescope.addresses[i];
    if (addr.ends_in_255()) {
      sum_last += counts[i];
      ++n_last;
    } else if (addr.has_255_octet()) {
      sum_any += counts[i];
      ++n_any;
    } else if (addr.is_first_of_slash16()) {
      sum_first += counts[i];
      ++n_first;
    } else {
      sum_plain += counts[i];
      ++n_plain;
    }
  }
  if (n_any > 0) stats.mean_any_255 = sum_any / static_cast<double>(n_any);
  if (n_last > 0) stats.mean_last_255 = sum_last / static_cast<double>(n_last);
  if (n_first > 0) stats.mean_first_16 = sum_first / static_cast<double>(n_first);
  if (n_plain > 0) stats.mean_plain = sum_plain / static_cast<double>(n_plain);
  return stats;
}

TelescopeCounter::TelescopeCounter(const topology::VantagePoint& telescope,
                                   std::vector<net::Port> ports)
    : base_(telescope.addresses.empty() ? net::IPv4Addr() : telescope.addresses.front()),
      size_(telescope.addresses.size()),
      ports_(std::move(ports)) {
  counts_.assign(ports_.size(), std::vector<double>(size_, 0.0));
}

bool TelescopeCounter::consume(const capture::ScanEvent& event, const topology::Target& target) {
  (void)target;
  const std::uint32_t offset = event.dst.value() - base_.value();
  if (offset >= size_) return true;  // consumed but out of tracked range
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == event.dst_port) {
      counts_[i][offset] += 1.0;
      break;
    }
  }
  return true;
}

const std::vector<double>& TelescopeCounter::counts(net::Port port) const {
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    if (ports_[i] == port) return counts_[i];
  }
  throw std::out_of_range("TelescopeCounter: untracked port");
}

}  // namespace cw::analysis
