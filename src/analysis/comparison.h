// Shared comparison driver: applies the Section 3.3 recipe (top-3 union,
// chi-squared, Bonferroni, Cramér's V) to a group of traffic slices for one
// characteristic. Neighborhood, geography, and network-type analyses all
// funnel through here so their statistics are computed identically.
#pragma once

#include <string_view>
#include <vector>

#include "analysis/characteristics.h"
#include "analysis/table_cache.h"
#include "stats/chi_squared.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::analysis {

// Comparison parameters; k=3 is the paper's default (footnote 2).
struct CompareOptions {
  std::size_t top_k = 3;
  double alpha = 0.05;
  std::size_t family_size = 1;  // Bonferroni divisor
};

// Runs the recipe over the groups. For kFracMalicious, `classifier` must be
// non-null; it is ignored otherwise.
stats::SignificanceTest compare_characteristic(const std::vector<TrafficSlice>& groups,
                                               Characteristic characteristic,
                                               const MaliciousClassifier* classifier,
                                               const CompareOptions& options);

// Cache-backed variant: each group's table (or (malicious, benign) counts)
// comes from the shared CharacteristicTableCache, so a side that appears in
// many comparisons — Orion in five of Table 10's pairs per scope — is
// materialized once and reused. Statistically identical to the slice form:
// the cached tables hold the same counts the slices would produce, and the
// groups enter compare_top_k / compare_binary in the same order.
stats::SignificanceTest compare_characteristic(
    const CharacteristicTableCache& cache,
    const std::vector<CharacteristicTableCache::SliceKey>& groups, TrafficScope scope,
    Characteristic characteristic, const CompareOptions& options,
    runner::ThreadPool* pool = nullptr);

// Whether the characteristic is measurable on slices collected with the
// given method within the given scope (Honeytrap extracts no credentials,
// so SSH/Telnet intent is invisible there; the telescope retains neither
// payloads nor credentials). Unmeasurable cells render as "x" in the paper.
bool measurable(Characteristic characteristic, topology::CollectionMethod method,
                TrafficScope scope) noexcept;

}  // namespace cw::analysis
