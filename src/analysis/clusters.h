// analysis::clusters — behavioral attacker clustering scored against the
// simulator's ground truth (DESIGN.md §8c), after Shamsi et al.'s
// medium-interaction-honeypot clustering (PAPERS.md).
//
// Entities are source IPs. Each gets a fingerprint from the encoded
// SessionFrame columns: the set of destination ports, the sets of
// username/password/payload dictionary codes, and a log-bucketed
// inter-event-gap histogram. Pairwise distance is one minus a weighted mix
// of per-facet Jaccard similarities plus the cosine of the timing
// histograms; average-linkage agglomerative clustering (nearest-neighbor
// chain, deterministic tie-breaks) merges up to a threshold.
//
// Because the simulator knows which actor emitted every record, the
// partition is scored against ground truth: purity and the Adjusted Rand
// Index. The whole pipeline is single-threaded and order-independent over
// the frame, so cluster assignments are byte-identical at any --jobs — and
// the segmented overload folds spill-mode per-segment frames into the same
// fingerprints the cumulative frame produces.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/overlap.h"  // SegmentPager
#include "capture/frame.h"

namespace cw::analysis {

struct ClusterOptions {
  std::size_t min_records = 4;     // sources below this are too thin to fingerprint
  std::size_t max_entities = 2048; // cap: top sources by (records desc, src asc)
  bool malicious_only = true;      // restrict to verdict-malicious records
  // Agglomerative stop distance. Within-operator source pairs sit below
  // ~0.05 (same port, wordlist, client banner, cadence); distinct operators
  // sharing a port sit above ~0.20 — 0.12 is the middle of the stable
  // plateau where the ground-truth families separate exactly.
  double merge_threshold = 0.12;
  // Facet weights (normalized internally over their sum).
  double port_weight = 0.30;
  double username_weight = 0.15;
  double password_weight = 0.15;
  double payload_weight = 0.20;
  double timing_weight = 0.20;
  // Actors excluded from the entity set (typically the crawler ids).
  std::vector<capture::ActorId> exclude_actors;
};

struct ClusterScores {
  std::size_t entities = 0;
  std::size_t clusters = 0;
  std::size_t truth_actors = 0;
  double purity = 0.0;
  double ari = 0.0;
  // FNV-1a digest over (source, cluster id) pairs in canonical order: two
  // runs produced identical assignments iff the digests match, so a sweep
  // report line proves assignment byte-identity without printing thousands
  // of rows.
  std::uint64_t assignment_fnv = 0;
};

struct ClusterResult {
  std::vector<std::uint32_t> sources;     // entity keys, ascending
  std::vector<std::uint32_t> assignment;  // cluster id per entity (first-appearance order)
  std::vector<capture::ActorId> truth;    // ground-truth actor per entity
  ClusterScores scores;
};

ClusterResult cluster_attackers(const capture::SessionFrame& frame,
                                const ClusterOptions& options = {});

// Out-of-core variant: accumulates fingerprints segment by segment (the
// spill runner's frames, paged in around each scan), then clusters the
// merged set — identical output to the cumulative-frame overload over the
// same records.
ClusterResult cluster_attackers(const std::vector<const capture::SessionFrame*>& segments,
                                const ClusterOptions& options = {},
                                const SegmentPager& pager = {});

}  // namespace cw::analysis
