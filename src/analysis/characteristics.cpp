#include "analysis/characteristics.h"

#include <optional>
#include <unordered_set>

#include "proto/http.h"

namespace cw::analysis {

std::string_view scope_name(TrafficScope scope) noexcept {
  switch (scope) {
    case TrafficScope::kSsh22: return "SSH/22";
    case TrafficScope::kTelnet23: return "Telnet/23";
    case TrafficScope::kHttp80: return "HTTP/80";
    case TrafficScope::kHttpAllPorts: return "HTTP/All Ports";
    case TrafficScope::kAnyAll: return "Any/All";
  }
  return "?";
}

std::string_view characteristic_name(Characteristic c) noexcept {
  switch (c) {
    case Characteristic::kTopAs: return "Top 3 AS";
    case Characteristic::kFracMalicious: return "Fraction Malicious";
    case Characteristic::kTopUsername: return "Top 3 Username";
    case Characteristic::kTopPassword: return "Top 3 Password";
    case Characteristic::kTopPayload: return "Top 3 Payloads";
  }
  return "?";
}

bool in_scope(const capture::SessionRecord& record, TrafficScope scope,
              const capture::EventStore& store) {
  switch (scope) {
    case TrafficScope::kSsh22: return record.port == 22;
    case TrafficScope::kTelnet23: return record.port == 23;
    case TrafficScope::kHttp80: return record.port == 80;
    case TrafficScope::kHttpAllPorts: {
      if (record.payload_id == capture::kNoPayload) return false;
      return proto::Fingerprinter::identify(store.payload(record.payload_id)) ==
             net::Protocol::kHttp;
    }
    case TrafficScope::kAnyAll: return true;
  }
  return false;
}

bool in_scope(const capture::SessionFrame& frame, std::uint32_t index, TrafficScope scope) {
  switch (scope) {
    case TrafficScope::kSsh22: return frame.port(index) == 22;
    case TrafficScope::kTelnet23: return frame.port(index) == 23;
    case TrafficScope::kHttp80: return frame.port(index) == 80;
    case TrafficScope::kHttpAllPorts: {
      if (!frame.has_payload(index)) return false;
      if (frame.has_protocols()) return frame.protocol(index) == net::Protocol::kHttp;
      return proto::Fingerprinter::identify(frame.store().payload(frame.payload_id(index))) ==
             net::Protocol::kHttp;
    }
    case TrafficScope::kAnyAll: return true;
  }
  return false;
}

TrafficSlice slice_vantage(const capture::EventStore& store, topology::VantageId vantage,
                           TrafficScope scope) {
  TrafficSlice slice;
  slice.store = &store;
  for (std::uint32_t index : store.for_vantage(vantage)) {
    if (in_scope(store.records()[index], scope, store)) slice.records.push_back(index);
  }
  return slice;
}

// Port-named scopes resolve to one per-(vantage, port) posting list; the
// list holds ascending record indices, exactly what the store-side filter
// loop would produce.
std::optional<net::Port> scope_port(TrafficScope scope) noexcept {
  switch (scope) {
    case TrafficScope::kSsh22: return net::Port{22};
    case TrafficScope::kTelnet23: return net::Port{23};
    case TrafficScope::kHttp80: return net::Port{80};
    default: return std::nullopt;
  }
}

TrafficSlice slice_vantage(const capture::SessionFrame& frame, topology::VantageId vantage,
                           TrafficScope scope) {
  TrafficSlice slice;
  slice.store = frame.store_ptr();  // null for a mapped (spilled) frame
  slice.frame = &frame;
  if (const auto port = scope_port(scope)) {
    slice.records = frame.for_vantage_port(vantage, *port).to_vector();
    return slice;
  }
  if (scope == TrafficScope::kAnyAll) {
    const std::span<const std::uint32_t> all = frame.for_vantage(vantage);
    slice.records.assign(all.begin(), all.end());
    return slice;
  }
  for (std::uint32_t index : frame.for_vantage(vantage)) {
    if (in_scope(frame, index, scope)) slice.records.push_back(index);
  }
  return slice;
}

TrafficSlice slice_neighbor(const capture::EventStore& store, topology::VantageId vantage,
                            std::uint16_t neighbor, TrafficScope scope) {
  TrafficSlice slice;
  slice.store = &store;
  for (std::uint32_t index : store.for_vantage(vantage)) {
    const capture::SessionRecord& record = store.records()[index];
    if (record.neighbor != neighbor) continue;
    if (in_scope(record, scope, store)) slice.records.push_back(index);
  }
  return slice;
}

TrafficSlice slice_neighbor(const capture::SessionFrame& frame, topology::VantageId vantage,
                            std::uint16_t neighbor, TrafficScope scope) {
  TrafficSlice slice;
  slice.store = frame.store_ptr();  // null for a mapped (spilled) frame
  slice.frame = &frame;
  const auto port = scope_port(scope);
  const util::PostingView candidates =
      port ? util::PostingView(frame.for_vantage_port(vantage, *port))
           : util::PostingView(frame.for_vantage(vantage));
  candidates.for_each([&](std::uint32_t index) {
    if (frame.neighbor(index) != neighbor) return;
    if (port || in_scope(frame, index, scope)) slice.records.push_back(index);
  });
  return slice;
}

stats::FrequencyTable as_table(const capture::EventStore& store,
                               const std::vector<std::uint32_t>& records, std::size_t begin,
                               std::size_t end) {
  stats::FrequencyTable table;
  for (std::size_t i = begin; i < end; ++i) {
    table.add("AS" + std::to_string(store.records()[records[i]].src_as));
  }
  return table;
}

stats::FrequencyTable username_table(const capture::EventStore& store,
                                     const std::vector<std::uint32_t>& records, std::size_t begin,
                                     std::size_t end) {
  stats::FrequencyTable table;
  for (std::size_t i = begin; i < end; ++i) {
    const capture::SessionRecord& record = store.records()[records[i]];
    if (record.credential_id == capture::kNoCredential) continue;
    table.add(store.credential(record.credential_id).username);
  }
  return table;
}

stats::FrequencyTable password_table(const capture::EventStore& store,
                                     const std::vector<std::uint32_t>& records, std::size_t begin,
                                     std::size_t end) {
  stats::FrequencyTable table;
  for (std::size_t i = begin; i < end; ++i) {
    const capture::SessionRecord& record = store.records()[records[i]];
    if (record.credential_id == capture::kNoCredential) continue;
    table.add(store.credential(record.credential_id).password);
  }
  return table;
}

stats::FrequencyTable payload_table(const capture::EventStore& store,
                                    const std::vector<std::uint32_t>& records, std::size_t begin,
                                    std::size_t end) {
  stats::FrequencyTable table;
  for (std::size_t i = begin; i < end; ++i) {
    const capture::SessionRecord& record = store.records()[records[i]];
    if (record.payload_id == capture::kNoPayload) continue;
    table.add(proto::normalize_http_payload(store.payload(record.payload_id)));
  }
  return table;
}

stats::FrequencyTable as_table(const TrafficSlice& slice) {
  return as_table(*slice.store, slice.records, 0, slice.records.size());
}

stats::FrequencyTable username_table(const TrafficSlice& slice) {
  return username_table(*slice.store, slice.records, 0, slice.records.size());
}

stats::FrequencyTable password_table(const TrafficSlice& slice) {
  return password_table(*slice.store, slice.records, 0, slice.records.size());
}

stats::FrequencyTable payload_table(const TrafficSlice& slice) {
  return payload_table(*slice.store, slice.records, 0, slice.records.size());
}

std::pair<std::uint64_t, std::uint64_t> malicious_counts(const TrafficSlice& slice,
                                                         const MaliciousClassifier& classifier) {
  if (slice.frame != nullptr && slice.frame->has_verdicts()) {
    return slice.frame->count_verdicts(slice.records);
  }
  return classifier.count(*slice.store, slice.records);
}

std::size_t unique_sources(const TrafficSlice& slice) {
  std::unordered_set<std::uint32_t> sources;
  for (std::uint32_t index : slice.records) {
    sources.insert(slice.store->records()[index].src);
  }
  return sources.size();
}

std::size_t unique_ases(const TrafficSlice& slice) {
  std::unordered_set<std::uint32_t> ases;
  for (std::uint32_t index : slice.records) {
    ases.insert(slice.store->records()[index].src_as);
  }
  return ases.size();
}

}  // namespace cw::analysis
