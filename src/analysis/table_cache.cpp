#include "analysis/table_cache.h"

#include <stdexcept>

#include "runner/thread_pool.h"

namespace cw::analysis {

namespace {

stats::FrequencyTable build_range(const capture::EventStore& store,
                                  const std::vector<std::uint32_t>& records,
                                  Characteristic characteristic, std::size_t begin,
                                  std::size_t end) {
  switch (characteristic) {
    case Characteristic::kTopAs: return as_table(store, records, begin, end);
    case Characteristic::kTopUsername: return username_table(store, records, begin, end);
    case Characteristic::kTopPassword: return password_table(store, records, begin, end);
    case Characteristic::kTopPayload: return payload_table(store, records, begin, end);
    case Characteristic::kFracMalicious: break;
  }
  throw std::invalid_argument("build_characteristic_table: kFracMalicious has no table");
}

}  // namespace

stats::FrequencyTable build_characteristic_table(const capture::SessionFrame& frame,
                                                 const std::vector<std::uint32_t>& records,
                                                 Characteristic characteristic,
                                                 runner::ThreadPool* pool, std::size_t chunk) {
  const capture::EventStore& store = frame.store();
  const std::size_t n = records.size();
  if (pool == nullptr || chunk == 0 || n <= chunk) {
    return build_range(store, records, characteristic, 0, n);
  }
  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::vector<stats::FrequencyTable> partials(chunks);
  pool->parallel_for(chunks, [&](std::size_t i) {
    partials[i] = build_range(store, records, characteristic, i * chunk,
                              std::min(n, (i + 1) * chunk));
  });
  stats::FrequencyTable out = std::move(partials.front());
  for (std::size_t i = 1; i < chunks; ++i) out.merge(partials[i]);
  return out;
}

template <typename Entry>
Entry& CharacteristicTableCache::entry(
    std::unordered_map<std::uint64_t, std::unique_ptr<Entry>>& map, std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Entry>& slot = map[key];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

const std::vector<std::uint32_t>& CharacteristicTableCache::records_for(
    topology::VantageId vantage, std::uint16_t neighbor, TrafficScope scope) const {
  // Whole-vantage slices for port-named scopes and Any/All are exactly a
  // frame posting list; reference it instead of copying (the kAnyAll
  // telescope list is ~every record).
  if (neighbor == kWholeVantage) {
    if (const auto port = scope_port(scope)) return frame_->for_vantage_port(vantage, *port);
    if (scope == TrafficScope::kAnyAll) return frame_->for_vantage(vantage);
  }
  SliceEntry& slice =
      entry(slices_, pack(vantage, neighbor, scope, Characteristic::kTopAs));
  std::call_once(slice.once, [&] {
    if (neighbor == kWholeVantage) {
      // HTTP/AllPorts: filter the vantage posting list by the protocol
      // column, the same test slice_vantage applies.
      for (std::uint32_t index : frame_->for_vantage(vantage)) {
        if (in_scope(*frame_, index, scope)) slice.owned.push_back(index);
      }
    } else {
      slice.owned = slice_neighbor(*frame_, vantage, neighbor, scope).records;
    }
    slice.records = &slice.owned;
  });
  return *slice.records;
}

std::size_t CharacteristicTableCache::record_count(topology::VantageId vantage, TrafficScope scope,
                                                   std::uint16_t neighbor) const {
  return records_for(vantage, neighbor, scope).size();
}

const stats::FrequencyTable& CharacteristicTableCache::table(topology::VantageId vantage,
                                                             TrafficScope scope,
                                                             Characteristic characteristic,
                                                             runner::ThreadPool* pool,
                                                             std::uint16_t neighbor) const {
  TableEntry& cached = entry(tables_, pack(vantage, neighbor, scope, characteristic));
  std::call_once(cached.once, [&] {
    cached.table = build_characteristic_table(*frame_, records_for(vantage, neighbor, scope),
                                              characteristic, pool);
  });
  return cached.table;
}

std::pair<std::uint64_t, std::uint64_t> CharacteristicTableCache::malicious(
    topology::VantageId vantage, TrafficScope scope, std::uint16_t neighbor) const {
  BinaryEntry& cached =
      entry(binaries_, pack(vantage, neighbor, scope, Characteristic::kFracMalicious));
  std::call_once(cached.once, [&] {
    // Same read path as malicious_counts on a frame-backed slice: the
    // verdict column when present, per-record classification otherwise.
    cached.counts = classifier_->count(*frame_, records_for(vantage, neighbor, scope));
  });
  return cached.counts;
}

std::size_t CharacteristicTableCache::tables_built() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

}  // namespace cw::analysis
