#include "analysis/table_cache.h"

#include <cassert>
#include <stdexcept>

#include "runner/thread_pool.h"

namespace cw::analysis {

namespace {

stats::FrequencyTable build_range(const capture::EventStore& store,
                                  const std::vector<std::uint32_t>& records,
                                  Characteristic characteristic, std::size_t begin,
                                  std::size_t end) {
  switch (characteristic) {
    case Characteristic::kTopAs: return as_table(store, records, begin, end);
    case Characteristic::kTopUsername: return username_table(store, records, begin, end);
    case Characteristic::kTopPassword: return password_table(store, records, begin, end);
    case Characteristic::kTopPayload: return payload_table(store, records, begin, end);
    case Characteristic::kFracMalicious: break;
  }
  throw std::invalid_argument("build_characteristic_table: kFracMalicious has no table");
}

capture::CodedColumn coded_column_for(Characteristic characteristic) {
  switch (characteristic) {
    case Characteristic::kTopAs: return capture::CodedColumn::kAs;
    case Characteristic::kTopUsername: return capture::CodedColumn::kUsername;
    case Characteristic::kTopPassword: return capture::CodedColumn::kPassword;
    case Characteristic::kTopPayload: return capture::CodedColumn::kPayload;
    case Characteristic::kFracMalicious: break;
  }
  throw std::invalid_argument("build_characteristic_table: kFracMalicious has no table");
}

}  // namespace

stats::FrequencyTable build_characteristic_table(const capture::SessionFrame& frame,
                                                 const util::PostingView& records,
                                                 Characteristic characteristic,
                                                 runner::ThreadPool* pool, std::size_t chunk) {
  if (frame.has_codes()) {
    // Encoded kernel: one gather/increment pass over the code column. Fast
    // enough that sharding would only buy scheduling overhead; the chunked
    // v1 path below is the no-codes fallback.
    const capture::CodedColumn column = coded_column_for(characteristic);
    return stats::FrequencyTable::from_codes(frame.codes(column), records, frame.dict(column));
  }
  const capture::EventStore& store = frame.store();
  // The v1 builders index records randomly, so a packed view materializes.
  std::vector<std::uint32_t> materialized;
  const std::vector<std::uint32_t>* vec = records.as_vector();
  if (vec == nullptr) {
    materialized = records.to_vector();
    vec = &materialized;
  }
  const std::size_t n = vec->size();
  if (pool == nullptr || chunk == 0 || n <= chunk) {
    return build_range(store, *vec, characteristic, 0, n);
  }
  const std::size_t chunks = (n + chunk - 1) / chunk;
  std::vector<stats::FrequencyTable> partials(chunks);
  pool->parallel_for(chunks, [&](std::size_t i) {
    partials[i] = build_range(store, *vec, characteristic, i * chunk,
                              std::min(n, (i + 1) * chunk));
  });
  stats::FrequencyTable out = std::move(partials.front());
  for (std::size_t i = 1; i < chunks; ++i) out.merge(partials[i]);
  return out;
}

template <typename Entry>
Entry& CharacteristicTableCache::entry(
    std::unordered_map<std::uint64_t, std::unique_ptr<Entry>>& map, std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::unique_ptr<Entry>& slot = map[key];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

util::PostingView CharacteristicTableCache::records_for(topology::VantageId vantage,
                                                        std::uint16_t neighbor,
                                                        TrafficScope scope) const {
  // Whole-vantage slices for port-named scopes and Any/All are exactly a
  // frame posting list; view it instead of copying (the kAnyAll telescope
  // list is ~every record).
  if (neighbor == kWholeVantage) {
    if (const auto port = scope_port(scope)) {
      return util::PostingView(frame_->for_vantage_port(vantage, *port));
    }
    if (scope == TrafficScope::kAnyAll) return util::PostingView(frame_->for_vantage(vantage));
  }
  SliceEntry& slice =
      entry(slices_, pack(vantage, neighbor, scope, Characteristic::kTopAs));
  std::call_once(slice.once, [&] {
    if (neighbor == kWholeVantage) {
      // HTTP/AllPorts: filter the vantage posting list by the protocol
      // column, the same test slice_vantage applies.
      for (std::uint32_t index : frame_->for_vantage(vantage)) {
        if (in_scope(*frame_, index, scope)) slice.owned.push_back(index);
      }
    } else {
      slice.owned = slice_neighbor(*frame_, vantage, neighbor, scope).records;
    }
    slice.records = util::PostingView(slice.owned);
  });
  return slice.records;
}

std::size_t CharacteristicTableCache::record_count(topology::VantageId vantage, TrafficScope scope,
                                                   std::uint16_t neighbor) const {
  return records_for(vantage, neighbor, scope).size();
}

const stats::FrequencyTable& CharacteristicTableCache::table(topology::VantageId vantage,
                                                             TrafficScope scope,
                                                             Characteristic characteristic,
                                                             runner::ThreadPool* pool,
                                                             std::uint16_t neighbor) const {
  TableEntry& cached = entry(tables_, pack(vantage, neighbor, scope, characteristic));
  std::call_once(cached.once, [&] {
    cached.table = build_characteristic_table(*frame_, records_for(vantage, neighbor, scope),
                                              characteristic, pool);
  });
  return cached.table;
}

std::pair<std::uint64_t, std::uint64_t> CharacteristicTableCache::malicious(
    topology::VantageId vantage, TrafficScope scope, std::uint16_t neighbor) const {
  BinaryEntry& cached =
      entry(binaries_, pack(vantage, neighbor, scope, Characteristic::kFracMalicious));
  std::call_once(cached.once, [&] {
    // Same read path as malicious_counts on a frame-backed slice: the
    // verdict column when present, per-record classification otherwise.
    cached.counts = classifier_->count(*frame_, records_for(vantage, neighbor, scope));
  });
  return cached.counts;
}

std::size_t CharacteristicTableCache::tables_built() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return tables_.size();
}

// --- SegmentedTableCache ----------------------------------------------------

SegmentedTableCache::SegmentedTableCache(const MaliciousClassifier& classifier)
    : CharacteristicTableCache(classifier) {}

SegmentedTableCache::~SegmentedTableCache() = default;

class SegmentedTableCache::PageGuard {
 public:
  PageGuard(const SegmentPager& pager, std::size_t segment) : pager_(pager), segment_(segment) {
    if (pager_) pager_(segment_, true);
  }
  ~PageGuard() {
    if (pager_) pager_(segment_, false);
  }
  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;

 private:
  const SegmentPager& pager_;
  std::size_t segment_;
};

void SegmentedTableCache::add_segment(const capture::SessionFrame& segment_frame) {
  segments_.push_back(
      std::make_unique<CharacteristicTableCache>(segment_frame, classifier()));
  // Merged memos describe the previous epoch's corpus; drop them. The
  // per-segment partials inside segments_ survive, which is the whole point:
  // the next table() call rebuilds only the new segment's partial.
  const std::lock_guard<std::mutex> lock(merged_mutex_);
  merged_tables_.clear();
  merged_counts_.clear();
}

const capture::SessionFrame& SegmentedTableCache::frame() const noexcept {
  assert(!segments_.empty() && "SegmentedTableCache::frame() before the first segment");
  return segments_.front()->frame();
}

template <typename Entry>
Entry& SegmentedTableCache::merged_entry(
    std::unordered_map<std::uint64_t, std::unique_ptr<Entry>>& map, std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(merged_mutex_);
  std::unique_ptr<Entry>& slot = map[key];
  if (slot == nullptr) slot = std::make_unique<Entry>();
  return *slot;
}

std::size_t SegmentedTableCache::record_count(topology::VantageId vantage, TrafficScope scope,
                                              std::uint16_t neighbor) const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const PageGuard guard(pager_, i);
    total += segments_[i]->record_count(vantage, scope, neighbor);
  }
  return total;
}

const stats::FrequencyTable& SegmentedTableCache::table(topology::VantageId vantage,
                                                        TrafficScope scope,
                                                        Characteristic characteristic,
                                                        runner::ThreadPool* pool,
                                                        std::uint16_t neighbor) const {
  MergedTable& cached = merged_entry(merged_tables_, pack(vantage, neighbor, scope, characteristic));
  std::call_once(cached.once, [&] {
    // Per-segment partials in ascending segment (= epoch, = record) order.
    // Counts are exact, so the merge order cannot perturb the result — it is
    // fixed anyway so the build schedule itself is reproducible.
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const PageGuard guard(pager_, i);
      cached.table.merge(segments_[i]->table(vantage, scope, characteristic, pool, neighbor));
    }
  });
  return cached.table;
}

std::pair<std::uint64_t, std::uint64_t> SegmentedTableCache::malicious(
    topology::VantageId vantage, TrafficScope scope, std::uint16_t neighbor) const {
  MergedCounts& cached =
      merged_entry(merged_counts_, pack(vantage, neighbor, scope, Characteristic::kFracMalicious));
  std::call_once(cached.once, [&] {
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      const PageGuard guard(pager_, i);
      const auto [malicious_count, benign_count] =
          segments_[i]->malicious(vantage, scope, neighbor);
      cached.counts.first += malicious_count;
      cached.counts.second += benign_count;
    }
  });
  return cached.counts;
}

std::size_t SegmentedTableCache::tables_built() const {
  std::size_t total = segment_tables_built();
  const std::lock_guard<std::mutex> lock(merged_mutex_);
  return total + merged_tables_.size();
}

std::size_t SegmentedTableCache::segment_tables_built() const {
  std::size_t total = 0;
  for (const auto& segment : segments_) total += segment->tables_built();
  return total;
}

}  // namespace cw::analysis
