#include "analysis/blocklist.h"

#include <map>
#include <stdexcept>
#include <unordered_set>

namespace cw::analysis {

BlocklistEvaluation evaluate_blocklist(const capture::EventStore& store,
                                       const MaliciousClassifier& classifier,
                                       const std::vector<topology::VantageId>& source,
                                       const std::vector<topology::VantageId>& target,
                                       std::string source_label, std::string target_label) {
  BlocklistEvaluation evaluation;
  evaluation.source_group = std::move(source_label);
  evaluation.target_group = std::move(target_label);

  std::unordered_set<std::uint32_t> blocklist;
  for (const topology::VantageId id : source) {
    for (const std::uint32_t index : store.for_vantage(id)) {
      const capture::SessionRecord& record = store.records()[index];
      if (classifier.classify(record, store) == MeasuredIntent::kMalicious) {
        blocklist.insert(record.src);
      }
    }
  }
  evaluation.blocklist_size = blocklist.size();

  std::unordered_set<std::uint32_t> target_attackers;
  for (const topology::VantageId id : target) {
    for (const std::uint32_t index : store.for_vantage(id)) {
      const capture::SessionRecord& record = store.records()[index];
      if (classifier.classify(record, store) != MeasuredIntent::kMalicious) continue;
      target_attackers.insert(record.src);
      ++evaluation.target_malicious_events;
      if (blocklist.contains(record.src)) ++evaluation.blocked_events;
    }
  }
  evaluation.target_attacker_ips = target_attackers.size();
  for (const std::uint32_t ip : target_attackers) {
    if (blocklist.contains(ip)) ++evaluation.covered_ips;
  }
  return evaluation;
}

BlocklistEvaluation evaluate_blocklist(const capture::SessionFrame& frame,
                                       const std::vector<topology::VantageId>& source,
                                       const std::vector<topology::VantageId>& target,
                                       std::string source_label, std::string target_label) {
  if (!frame.has_verdicts()) {
    throw std::logic_error("evaluate_blocklist: frame built without a verdict column");
  }
  BlocklistEvaluation evaluation;
  evaluation.source_group = std::move(source_label);
  evaluation.target_group = std::move(target_label);

  std::unordered_set<std::uint32_t> blocklist;
  for (const topology::VantageId id : source) {
    for (const std::uint32_t index : frame.for_vantage(id)) {
      if (frame.verdict(index) == capture::SessionFrame::Verdict::kMalicious) {
        blocklist.insert(frame.src(index));
      }
    }
  }
  evaluation.blocklist_size = blocklist.size();

  std::unordered_set<std::uint32_t> target_attackers;
  for (const topology::VantageId id : target) {
    for (const std::uint32_t index : frame.for_vantage(id)) {
      if (frame.verdict(index) != capture::SessionFrame::Verdict::kMalicious) continue;
      target_attackers.insert(frame.src(index));
      ++evaluation.target_malicious_events;
      if (blocklist.contains(frame.src(index))) ++evaluation.blocked_events;
    }
  }
  evaluation.target_attacker_ips = target_attackers.size();
  for (const std::uint32_t ip : target_attackers) {
    if (blocklist.contains(ip)) ++evaluation.covered_ips;
  }
  return evaluation;
}

namespace {

// Continental grouping shared by both matrix variants.
std::map<std::string, std::vector<topology::VantageId>> regional_groups(
    const topology::Deployment& deployment) {
  std::map<std::string, std::vector<topology::VantageId>> groups;
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    if (vp.collection != topology::CollectionMethod::kGreyNoise) continue;
    switch (vp.region.continent) {
      case net::Continent::kNorthAmerica: groups["US"].push_back(vp.id); break;
      case net::Continent::kEurope: groups["EU"].push_back(vp.id); break;
      case net::Continent::kAsiaPacific: groups["AP"].push_back(vp.id); break;
      default: break;  // BR/BH/ZA singletons are too small to form a group
    }
  }
  return groups;
}

}  // namespace

std::vector<BlocklistEvaluation> regional_blocklist_matrix(
    const capture::EventStore& store, const topology::Deployment& deployment,
    const MaliciousClassifier& classifier) {
  const auto groups = regional_groups(deployment);
  std::vector<BlocklistEvaluation> matrix;
  for (const auto& [source_label, source_ids] : groups) {
    for (const auto& [target_label, target_ids] : groups) {
      matrix.push_back(evaluate_blocklist(store, classifier, source_ids, target_ids,
                                          source_label, target_label));
    }
  }
  return matrix;
}

std::vector<BlocklistEvaluation> regional_blocklist_matrix(const capture::SessionFrame& frame) {
  const auto groups = regional_groups(frame.deployment());
  std::vector<BlocklistEvaluation> matrix;
  for (const auto& [source_label, source_ids] : groups) {
    for (const auto& [target_label, target_ids] : groups) {
      matrix.push_back(
          evaluate_blocklist(frame, source_ids, target_ids, source_label, target_label));
    }
  }
  return matrix;
}

}  // namespace cw::analysis
