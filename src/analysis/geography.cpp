#include "analysis/geography.h"

#include <algorithm>
#include <map>

namespace cw::analysis {
namespace {

// Shared pair enumeration: all distinct pairs of GreyNoise cloud vantage
// points within the same provider that clear the minimum-sample bar.
struct VantageSlices {
  std::vector<const topology::VantagePoint*> points;
  std::vector<TrafficSlice> slices;
};

// `slice_fn(vantage_id)` supplies the scoped slice — store scan or frame
// posting list, depending on the caller.
template <typename SliceFn>
VantageSlices collect(const topology::Deployment& deployment, const GeoOptions& options,
                      std::optional<topology::Provider> provider_filter,
                      const SliceFn& slice_fn) {
  VantageSlices out;
  for (const topology::VantagePoint& vp : deployment.vantage_points()) {
    if (vp.type != topology::NetworkType::kCloud ||
        vp.collection != topology::CollectionMethod::kGreyNoise) {
      continue;
    }
    if (provider_filter && vp.provider != *provider_filter) continue;
    TrafficSlice slice = slice_fn(vp.id);
    if (slice.records.size() < options.min_records) continue;
    out.points.push_back(&vp);
    out.slices.push_back(std::move(slice));
  }
  return out;
}

// The statistics below are written against `points` plus a pair-test
// functor `test_fn(i, j, compare)` so the slice-based and cache-based entry
// points share them verbatim — the functor is the only thing that differs.
template <typename TestFn>
GeoSimilarity geo_similarity_impl(const std::vector<const topology::VantagePoint*>& points,
                                  Characteristic characteristic, const GeoOptions& options,
                                  const TestFn& test_fn) {
  GeoSimilarity result;
  result.characteristic = characteristic;

  // Pairs are always within one provider network so that network effects
  // never masquerade as geographic ones.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t i = 0; i < points.size(); ++i) {
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (points[i]->provider != points[j]->provider) continue;
      pairs.emplace_back(i, j);
    }
  }

  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = pairs.size() == 0 ? 1 : pairs.size();

  for (const auto& [i, j] : pairs) {
    const auto group = classify_pair(*points[i], *points[j]);
    if (!group) continue;
    const auto g = static_cast<std::size_t>(*group);
    const stats::SignificanceTest test = test_fn(i, j, compare);
    if (!test.chi.valid) continue;
    ++result.tested[g];
    if (!test.significant) ++result.similar[g];
  }
  return result;
}

template <typename TestFn>
MostDifferentRegion most_different_region_impl(
    const std::vector<const topology::VantagePoint*>& points, const GeoOptions& options,
    const TestFn& test_fn) {
  MostDifferentRegion result;
  if (points.size() < 2) return result;

  const std::size_t n = points.size();
  const std::size_t pair_count = n * (n - 1) / 2;
  CompareOptions compare;
  compare.top_k = options.top_k;
  compare.alpha = options.alpha;
  compare.family_size = pair_count;

  struct RegionScore {
    std::size_t significant = 0;
    double phi_sum = 0.0;
    stats::EffectMagnitude strongest = stats::EffectMagnitude::kNone;
  };
  std::map<std::string, RegionScore> scores;

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const stats::SignificanceTest test = test_fn(i, j, compare);
      if (!test.chi.valid || !test.significant) continue;
      for (const std::size_t k : {i, j}) {
        RegionScore& score = scores[points[k]->region.code()];
        ++score.significant;
        score.phi_sum += test.chi.cramers_v;
        score.strongest = std::max(score.strongest, test.magnitude);
      }
    }
  }
  if (scores.empty()) return result;

  const auto best = std::max_element(
      scores.begin(), scores.end(), [](const auto& a, const auto& b) {
        if (a.second.significant != b.second.significant) {
          return a.second.significant < b.second.significant;
        }
        return a.second.phi_sum < b.second.phi_sum;
      });
  result.any_significant = true;
  result.region_code = best->first;
  result.significant_pairs = best->second.significant;
  result.avg_phi = best->second.phi_sum / static_cast<double>(best->second.significant);
  result.magnitude = best->second.strongest;
  return result;
}

// Pair-test functor over materialized slices (the store and frame entry
// points). The returned lambda borrows `all`; callers keep it alive.
auto slice_test(const VantageSlices& all, Characteristic characteristic,
                const MaliciousClassifier& classifier) {
  return [&all, characteristic, &classifier](std::size_t i, std::size_t j,
                                             const CompareOptions& compare) {
    return compare_characteristic({all.slices[i], all.slices[j]}, characteristic, &classifier,
                                  compare);
  };
}

// Cache counterpart of collect(): same vantage filter and order, but the
// min-sample gate reads cache.record_count (no slices materialized here).
std::vector<const topology::VantagePoint*> collect_points(
    const CharacteristicTableCache& cache, TrafficScope scope, const GeoOptions& options,
    std::optional<topology::Provider> provider_filter) {
  std::vector<const topology::VantagePoint*> points;
  for (const topology::VantagePoint& vp : cache.frame().deployment().vantage_points()) {
    if (vp.type != topology::NetworkType::kCloud ||
        vp.collection != topology::CollectionMethod::kGreyNoise) {
      continue;
    }
    if (provider_filter && vp.provider != *provider_filter) continue;
    if (cache.record_count(vp.id, scope) < options.min_records) continue;
    points.push_back(&vp);
  }
  return points;
}

auto cache_test(const CharacteristicTableCache& cache,
                const std::vector<const topology::VantagePoint*>& points, TrafficScope scope,
                Characteristic characteristic) {
  return [&cache, &points, scope, characteristic](std::size_t i, std::size_t j,
                                                  const CompareOptions& compare) {
    return compare_characteristic(cache, {{points[i]->id}, {points[j]->id}}, scope,
                                  characteristic, compare);
  };
}

}  // namespace

std::string_view pair_group_name(PairGroup g) noexcept {
  switch (g) {
    case PairGroup::kUs: return "US";
    case PairGroup::kEu: return "EU";
    case PairGroup::kApac: return "APAC";
    case PairGroup::kIntercontinental: return "Intercontinental";
  }
  return "?";
}

std::optional<PairGroup> classify_pair(const topology::VantagePoint& a,
                                       const topology::VantagePoint& b) noexcept {
  const net::Continent ca = a.region.continent;
  const net::Continent cb = b.region.continent;
  if (ca != cb) return PairGroup::kIntercontinental;
  switch (ca) {
    case net::Continent::kNorthAmerica: return PairGroup::kUs;
    case net::Continent::kEurope: return PairGroup::kEu;
    case net::Continent::kAsiaPacific: return PairGroup::kApac;
    default: return PairGroup::kIntercontinental;
  }
}

GeoSimilarity geo_similarity(const capture::EventStore& store,
                             const topology::Deployment& deployment, TrafficScope scope,
                             Characteristic characteristic,
                             const MaliciousClassifier& classifier,
                             const GeoOptions& options) {
  const VantageSlices all =
      collect(deployment, options, std::nullopt,
              [&](topology::VantageId id) { return slice_vantage(store, id, scope); });
  return geo_similarity_impl(all.points, characteristic, options,
                             slice_test(all, characteristic, classifier));
}

GeoSimilarity geo_similarity(const capture::SessionFrame& frame, TrafficScope scope,
                             Characteristic characteristic,
                             const MaliciousClassifier& classifier, const GeoOptions& options) {
  const VantageSlices all =
      collect(frame.deployment(), options, std::nullopt,
              [&](topology::VantageId id) { return slice_vantage(frame, id, scope); });
  return geo_similarity_impl(all.points, characteristic, options,
                             slice_test(all, characteristic, classifier));
}

GeoSimilarity geo_similarity(const CharacteristicTableCache& cache, TrafficScope scope,
                             Characteristic characteristic, const GeoOptions& options) {
  const std::vector<const topology::VantagePoint*> points =
      collect_points(cache, scope, options, std::nullopt);
  return geo_similarity_impl(points, characteristic, options,
                             cache_test(cache, points, scope, characteristic));
}

MostDifferentRegion most_different_region(const capture::EventStore& store,
                                          const topology::Deployment& deployment,
                                          topology::Provider provider, TrafficScope scope,
                                          Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const GeoOptions& options) {
  const VantageSlices all =
      collect(deployment, options, provider,
              [&](topology::VantageId id) { return slice_vantage(store, id, scope); });
  return most_different_region_impl(all.points, options,
                                    slice_test(all, characteristic, classifier));
}

MostDifferentRegion most_different_region(const capture::SessionFrame& frame,
                                          topology::Provider provider, TrafficScope scope,
                                          Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const GeoOptions& options) {
  const VantageSlices all =
      collect(frame.deployment(), options, provider,
              [&](topology::VantageId id) { return slice_vantage(frame, id, scope); });
  return most_different_region_impl(all.points, options,
                                    slice_test(all, characteristic, classifier));
}

MostDifferentRegion most_different_region(const CharacteristicTableCache& cache,
                                          topology::Provider provider, TrafficScope scope,
                                          Characteristic characteristic,
                                          const GeoOptions& options) {
  const std::vector<const topology::VantagePoint*> points =
      collect_points(cache, scope, options, provider);
  return most_different_region_impl(points, options,
                                    cache_test(cache, points, scope, characteristic));
}

}  // namespace cw::analysis
