#include "analysis/oracle.h"

#include "util/rng.h"

namespace cw::analysis {

ReputationOracle::ReputationOracle(std::unordered_map<capture::ActorId, bool> truth,
                                   double unknown_fraction, std::uint64_t seed) {
  for (const auto& [actor, malicious] : truth) {
    // Stable per-actor coin so the oracle is consistent across queries and
    // runs with the same seed.
    std::uint64_t state = seed ^ (static_cast<std::uint64_t>(actor) * 0x9e3779b97f4a7c15ULL);
    const double coin = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
    if (coin < unknown_fraction) {
      labels_.emplace(actor, Reputation::kUnknown);
    } else {
      labels_.emplace(actor, malicious ? Reputation::kMalicious : Reputation::kBenign);
    }
  }
}

Reputation ReputationOracle::label(capture::ActorId actor) const {
  auto it = labels_.find(actor);
  return it == labels_.end() ? Reputation::kUnknown : it->second;
}

}  // namespace cw::analysis
