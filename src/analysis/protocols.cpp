#include "analysis/protocols.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace cw::analysis {
namespace {

// Per (port, source): the fingerprint of the first payload the source
// sent, and the actor behind it (for the reputation lookup).
struct ScannerInfo {
  net::Protocol protocol = net::Protocol::kUnknown;
  capture::ActorId actor = 0;
};
using ScannerMap = std::map<std::pair<net::Port, std::uint32_t>, ScannerInfo>;

std::vector<ProtocolBreakdownRow> breakdown_rows(const ScannerMap& scanners,
                                                 const ProtocolOptions& options);

}  // namespace

std::vector<ProtocolBreakdownRow> protocol_breakdown(const capture::EventStore& store,
                                                     const topology::Deployment& deployment,
                                                     const ProtocolOptions& options) {
  std::unordered_set<net::Port> wanted(options.ports.begin(), options.ports.end());
  ScannerMap scanners;
  for (const capture::SessionRecord& record : store.records()) {
    if (!wanted.contains(record.port)) continue;
    if (record.payload_id == capture::kNoPayload) continue;
    // Honeytrap only: the assigned-handshake honeypots cannot capture
    // unexpected protocols, so including them would dilute the shares.
    if (deployment.at(record.vantage).collection != topology::CollectionMethod::kHoneytrap) {
      continue;
    }
    const auto key = std::make_pair(record.port, record.src);
    if (scanners.contains(key)) continue;  // first payload wins
    ScannerInfo info;
    info.protocol = proto::Fingerprinter::identify(store.payload(record.payload_id));
    info.actor = record.actor;
    scanners.emplace(key, info);
  }
  return breakdown_rows(scanners, options);
}

std::vector<ProtocolBreakdownRow> protocol_breakdown(const capture::SessionFrame& frame,
                                                     const ProtocolOptions& options) {
  ScannerMap scanners;
  for (net::Port port : options.ports) {
    frame.for_port(port).for_each([&](std::uint32_t index) {
      if (!frame.has_payload(index)) return;
      if (frame.collection_of(frame.vantage(index)) != topology::CollectionMethod::kHoneytrap) {
        return;
      }
      const auto key = std::make_pair(port, frame.src(index));
      if (scanners.contains(key)) return;  // first payload wins (ascending lists)
      ScannerInfo info;
      info.protocol = frame.has_protocols()
                          ? frame.protocol(index)
                          : proto::Fingerprinter::identify(
                                frame.store().payload(frame.payload_id(index)));
      info.actor = frame.actor(index);
      scanners.emplace(key, info);
    });
  }
  return breakdown_rows(scanners, options);
}

namespace {

std::vector<ProtocolBreakdownRow> breakdown_rows(const ScannerMap& scanners,
                                                 const ProtocolOptions& options) {
  std::vector<ProtocolBreakdownRow> rows;
  for (net::Port port : options.ports) {
    ProtocolBreakdownRow row;
    row.port = port;
    const net::Protocol assigned = net::iana_assignment(port);

    std::size_t expected_benign = 0;
    std::size_t expected_malicious = 0;
    std::size_t unexpected_benign = 0;
    std::size_t unexpected_malicious = 0;
    std::unordered_map<net::Protocol, std::size_t> unexpected_counts;

    for (const auto& [key, info] : scanners) {
      if (key.first != port) continue;
      ++row.scanners_total;
      const bool expected = info.protocol == assigned;
      if (expected) {
        ++row.scanners_expected;
      } else {
        ++unexpected_counts[info.protocol];
      }
      if (options.oracle != nullptr) {
        switch (options.oracle->label(info.actor)) {
          case Reputation::kBenign: (expected ? expected_benign : unexpected_benign)++; break;
          case Reputation::kMalicious:
            (expected ? expected_malicious : unexpected_malicious)++;
            break;
          case Reputation::kUnknown: break;
        }
      }
    }
    if (row.scanners_total == 0) {
      rows.push_back(row);
      continue;
    }

    const double total = static_cast<double>(row.scanners_total);
    const double unexpected_total = total - static_cast<double>(row.scanners_expected);
    row.pct_expected = 100.0 * static_cast<double>(row.scanners_expected) / total;
    row.pct_unexpected = 100.0 - row.pct_expected;
    if (row.scanners_expected > 0) {
      row.expected_benign_pct =
          100.0 * static_cast<double>(expected_benign) / static_cast<double>(row.scanners_expected);
      row.expected_malicious_pct = 100.0 * static_cast<double>(expected_malicious) /
                                   static_cast<double>(row.scanners_expected);
    }
    if (unexpected_total > 0) {
      row.unexpected_benign_pct = 100.0 * static_cast<double>(unexpected_benign) / unexpected_total;
      row.unexpected_malicious_pct =
          100.0 * static_cast<double>(unexpected_malicious) / unexpected_total;
    }
    for (const auto& [protocol, count] : unexpected_counts) {
      ProtocolShare share;
      share.protocol = protocol;
      share.scanners = count;
      share.pct_of_port = 100.0 * static_cast<double>(count) / total;
      row.unexpected_shares.push_back(share);
    }
    std::sort(row.unexpected_shares.begin(), row.unexpected_shares.end(),
              [](const ProtocolShare& a, const ProtocolShare& b) {
                if (a.scanners != b.scanners) return a.scanners > b.scanners;
                return static_cast<int>(a.protocol) < static_cast<int>(b.protocol);
              });
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace
}  // namespace cw::analysis
