// Section 6 / Tables 11 and 17: what protocols do scanners actually speak
// on HTTP-assigned ports? Uses the LZR fingerprinter on first payloads
// captured by the Honeytrap networks (GreyNoise honeypots only collect
// assigned handshakes, so they are excluded — exactly the paper's
// methodology), and the reputation oracle for the benign/malicious
// breakdown.
#pragma once

#include <vector>

#include "analysis/oracle.h"
#include "capture/frame.h"
#include "capture/store.h"
#include "net/ports.h"
#include "proto/fingerprint.h"
#include "topology/deployment.h"

namespace cw::analysis {

struct ProtocolShare {
  net::Protocol protocol = net::Protocol::kUnknown;
  std::size_t scanners = 0;
  double pct_of_port = 0.0;
};

struct ProtocolBreakdownRow {
  net::Port port = 0;
  std::size_t scanners_total = 0;      // unique sources that sent a payload
  std::size_t scanners_expected = 0;   // spoke the IANA-assigned protocol
  double pct_expected = 0.0;
  double pct_unexpected = 0.0;
  // Reputation breakdown (percent of the row's scanners; the remainder is
  // unknown to the oracle).
  double expected_benign_pct = 0.0;
  double expected_malicious_pct = 0.0;
  double unexpected_benign_pct = 0.0;
  double unexpected_malicious_pct = 0.0;
  std::vector<ProtocolShare> unexpected_shares;  // sorted by share, desc
};

struct ProtocolOptions {
  std::vector<net::Port> ports = {80, 8080};
  // When null, the benign/malicious columns are left at zero (the 2022
  // repetition, Table 17, lacked GreyNoise API data).
  const ReputationOracle* oracle = nullptr;
};

std::vector<ProtocolBreakdownRow> protocol_breakdown(const capture::EventStore& store,
                                                     const topology::Deployment& deployment,
                                                     const ProtocolOptions& options);

// Frame variant: walks the per-port posting lists and reads the protocol
// column (fingerprinted once per distinct payload at frame build).
std::vector<ProtocolBreakdownRow> protocol_breakdown(const capture::SessionFrame& frame,
                                                     const ProtocolOptions& options);

}  // namespace cw::analysis
