// Section 3.2's maliciousness measurement: a captured session is malicious
// when it (1) attempts to log in / bypass authentication, or (2) alters the
// state of the service — the latter detected by the curated Suricata-subset
// rule set. The classifier sees only what the collection method retained:
// telescope records (no payload, no credentials) can never be classified,
// which is precisely the measurement blind spot the paper discusses.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "capture/frame.h"
#include "capture/store.h"
#include "ids/engine.h"

namespace cw::analysis {

enum class MeasuredIntent : std::uint8_t {
  kBenign = 0,     // payload observed, nothing fired
  kMalicious,      // credential attempt or IDS alert
  kUnobservable,   // no payload/credential retained (telescope, SYN-only)
};

class MaliciousClassifier {
 public:
  // The engine is borrowed and must outlive the classifier.
  explicit MaliciousClassifier(const ids::RuleEngine& engine) : engine_(&engine) {}

  // Classifies one record against the store it came from. Verdicts for
  // (payload, port, transport) triples are memoized — campaign payloads
  // repeat millions of times. The memo key includes the store's uid: payload
  // ids are store-local, and one classifier serves many stores in stream
  // mode (every sealed segment plus the merged snapshot replica), so a key
  // without the store identity would alias unrelated payloads. Safe to call
  // from concurrent analysis threads; the memo table is guarded by a
  // reader/writer lock.
  MeasuredIntent classify(const capture::SessionRecord& record,
                          const capture::EventStore& store) const;

  // Convenience: (malicious, benign) counts over a set of record indices
  // (a plain ascending vector or a packed frame posting list, via
  // util::PostingView); unobservable records are excluded from both.
  std::pair<std::uint64_t, std::uint64_t> count(const capture::EventStore& store,
                                                const util::PostingView& indices) const;

  // Frame variant: reads the precomputed verdict column when present and
  // falls back to per-record classification otherwise.
  std::pair<std::uint64_t, std::uint64_t> count(const capture::SessionFrame& frame,
                                                const util::PostingView& indices) const;

 private:
  // Key: (store uid, payload id, port, transport bit).
  struct VerdictKey {
    std::uint64_t store_uid;
    std::uint64_t payload_port;
    bool operator==(const VerdictKey& other) const noexcept {
      return store_uid == other.store_uid && payload_port == other.payload_port;
    }
  };
  struct VerdictKeyHash {
    std::size_t operator()(const VerdictKey& key) const noexcept {
      // splitmix-style mix of the two words.
      std::uint64_t h = key.store_uid * 0x9e3779b97f4a7c15ULL ^ key.payload_port;
      h ^= h >> 30;
      h *= 0xbf58476d1ce4e5b9ULL;
      h ^= h >> 27;
      return static_cast<std::size_t>(h);
    }
  };

  const ids::RuleEngine* engine_;
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<VerdictKey, bool, VerdictKeyHash> verdict_cache_;
};

}  // namespace cw::analysis
