// Section 3.2's maliciousness measurement: a captured session is malicious
// when it (1) attempts to log in / bypass authentication, or (2) alters the
// state of the service — the latter detected by the curated Suricata-subset
// rule set. The classifier sees only what the collection method retained:
// telescope records (no payload, no credentials) can never be classified,
// which is precisely the measurement blind spot the paper discusses.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "capture/frame.h"
#include "capture/store.h"
#include "ids/engine.h"

namespace cw::analysis {

enum class MeasuredIntent : std::uint8_t {
  kBenign = 0,     // payload observed, nothing fired
  kMalicious,      // credential attempt or IDS alert
  kUnobservable,   // no payload/credential retained (telescope, SYN-only)
};

class MaliciousClassifier {
 public:
  // The engine is borrowed and must outlive the classifier.
  explicit MaliciousClassifier(const ids::RuleEngine& engine) : engine_(&engine) {}

  // Classifies one record against the store it came from. Verdicts for
  // (payload, port) pairs are memoized — campaign payloads repeat millions
  // of times. Safe to call from concurrent analysis threads; the memo table
  // is guarded by a reader/writer lock.
  MeasuredIntent classify(const capture::SessionRecord& record,
                          const capture::EventStore& store) const;

  // Convenience: (malicious, benign) counts over a set of record indices;
  // unobservable records are excluded from both.
  std::pair<std::uint64_t, std::uint64_t> count(const capture::EventStore& store,
                                                const std::vector<std::uint32_t>& indices) const;

  // Frame variant: reads the precomputed verdict column when present and
  // falls back to per-record classification otherwise.
  std::pair<std::uint64_t, std::uint64_t> count(const capture::SessionFrame& frame,
                                                const std::vector<std::uint32_t>& indices) const;

 private:
  const ids::RuleEngine* engine_;
  // Key packs payload id and port.
  mutable std::shared_mutex cache_mutex_;
  mutable std::unordered_map<std::uint64_t, bool> verdict_cache_;
};

}  // namespace cw::analysis
