#include "analysis/campaigns.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "proto/http.h"

namespace cw::analysis {
namespace {

// The clustering key for a record: the normalized payload when present
// (campaign tooling reuses byte-identical requests), otherwise the
// credential stream is too individually variable, so credential-bearing
// records key on the banner payload they ride with.
std::string signature_of(const capture::SessionRecord& record,
                         const capture::EventStore& store) {
  if (record.payload_id != capture::kNoPayload) {
    return proto::normalize_http_payload(store.payload(record.payload_id));
  }
  return {};
}

// Signature -> time-ordered (time, src, port) observations.
struct Observation {
  util::SimTime time;
  std::uint32_t src;
  net::Port port;
};
using SignatureMap = std::unordered_map<std::string, std::vector<Observation>>;

std::vector<InferredCampaign> segment_campaigns(SignatureMap& by_signature,
                                                const CampaignInferenceOptions& options);

}  // namespace

std::vector<InferredCampaign> infer_campaigns(const capture::EventStore& store,
                                              const CampaignInferenceOptions& options) {
  SignatureMap by_signature;
  for (const capture::SessionRecord& record : store.records()) {
    const std::string signature = signature_of(record, store);
    if (signature.empty()) continue;
    by_signature[signature].push_back({record.time, record.src, record.port});
  }
  return segment_campaigns(by_signature, options);
}

std::vector<InferredCampaign> infer_campaigns(const capture::SessionFrame& frame,
                                              const CampaignInferenceOptions& options) {
  // Memoize the normalized signature per distinct payload (interner ids are
  // dense). The records are still walked in store order so the signature
  // map sees the identical key sequence as the store path — unordered_map
  // iteration order, and hence the pre-sort campaign order, match exactly.
  const capture::EventStore& store = frame.store();
  std::vector<std::string> signature_cache(store.distinct_payloads());
  std::vector<bool> cached(store.distinct_payloads(), false);
  SignatureMap by_signature;
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!frame.has_payload(i)) continue;
    const std::uint32_t payload_id = frame.payload_id(i);
    if (!cached[payload_id]) {
      signature_cache[payload_id] = proto::normalize_http_payload(store.payload(payload_id));
      cached[payload_id] = true;
    }
    const std::string& signature = signature_cache[payload_id];
    if (signature.empty()) continue;
    by_signature[signature].push_back({frame.time(i), frame.src(i), frame.port(i)});
  }
  return segment_campaigns(by_signature, options);
}

namespace {

std::vector<InferredCampaign> segment_campaigns(SignatureMap& by_signature,
                                                const CampaignInferenceOptions& options) {
  std::vector<InferredCampaign> campaigns;
  for (auto& [signature, observations] : by_signature) {
    std::sort(observations.begin(), observations.end(),
              [](const Observation& a, const Observation& b) { return a.time < b.time; });

    // Split on quiet gaps, then keep segments with enough distinct sources.
    std::size_t segment_start = 0;
    for (std::size_t i = 1; i <= observations.size(); ++i) {
      const bool gap = i == observations.size() ||
                       observations[i].time - observations[i - 1].time > options.max_gap;
      if (!gap) continue;

      std::set<std::uint32_t> sources;
      std::map<net::Port, std::uint64_t> per_port;
      for (std::size_t j = segment_start; j < i; ++j) {
        sources.insert(observations[j].src);
        ++per_port[observations[j].port];
      }
      if (sources.size() >= options.min_sources) {
        InferredCampaign campaign;
        campaign.signature = signature;
        campaign.sources.assign(sources.begin(), sources.end());
        campaign.events = i - segment_start;
        campaign.first_seen = observations[segment_start].time;
        campaign.last_seen = observations[i - 1].time;
        campaign.dominant_port =
            std::max_element(per_port.begin(), per_port.end(), [](const auto& a, const auto& b) {
              return a.second < b.second;
            })->first;
        campaigns.push_back(std::move(campaign));
      }
      segment_start = i;
    }
  }

  std::sort(campaigns.begin(), campaigns.end(),
            [](const InferredCampaign& a, const InferredCampaign& b) {
              if (a.events != b.events) return a.events > b.events;
              return a.signature < b.signature;
            });
  return campaigns;
}

}  // namespace

CampaignValidation validate_campaigns(const capture::EventStore& store,
                                      const std::vector<InferredCampaign>& campaigns,
                                      const CampaignInferenceOptions& options) {
  CampaignValidation validation;
  validation.inferred = campaigns.size();

  // Ground truth: source address -> actor, and actor -> active source count.
  std::unordered_map<std::uint32_t, capture::ActorId> actor_of;
  std::unordered_map<capture::ActorId, std::set<std::uint32_t>> sources_of;
  for (const capture::SessionRecord& record : store.records()) {
    actor_of[record.src] = record.actor;
    sources_of[record.actor].insert(record.src);
  }
  std::set<capture::ActorId> true_campaigns;
  for (const auto& [actor, sources] : sources_of) {
    if (sources.size() >= options.min_sources) true_campaigns.insert(actor);
  }
  validation.true_campaigns = true_campaigns.size();

  std::set<capture::ActorId> recovered;
  for (const InferredCampaign& campaign : campaigns) {
    std::set<capture::ActorId> actors;
    for (const std::uint32_t src : campaign.sources) {
      auto it = actor_of.find(src);
      if (it != actor_of.end()) actors.insert(it->second);
    }
    if (actors.size() == 1) {
      ++validation.pure;
      if (true_campaigns.contains(*actors.begin())) recovered.insert(*actors.begin());
    }
  }
  validation.recovered = recovered.size();
  return validation;
}

CampaignValidation validate_campaigns(const capture::SessionFrame& frame,
                                      const std::vector<InferredCampaign>& campaigns,
                                      const CampaignInferenceOptions& options) {
  CampaignValidation validation;
  validation.inferred = campaigns.size();

  // Ground truth from the src/actor columns; last write wins, matching the
  // store path's record-order scan.
  std::unordered_map<std::uint32_t, capture::ActorId> actor_of;
  std::unordered_map<capture::ActorId, std::set<std::uint32_t>> sources_of;
  const std::uint32_t n = static_cast<std::uint32_t>(frame.size());
  for (std::uint32_t i = 0; i < n; ++i) {
    actor_of[frame.src(i)] = frame.actor(i);
    sources_of[frame.actor(i)].insert(frame.src(i));
  }
  std::set<capture::ActorId> true_campaigns;
  for (const auto& [actor, sources] : sources_of) {
    if (sources.size() >= options.min_sources) true_campaigns.insert(actor);
  }
  validation.true_campaigns = true_campaigns.size();

  std::set<capture::ActorId> recovered;
  for (const InferredCampaign& campaign : campaigns) {
    std::set<capture::ActorId> actors;
    for (const std::uint32_t src : campaign.sources) {
      auto it = actor_of.find(src);
      if (it != actor_of.end()) actors.insert(it->second);
    }
    if (actors.size() == 1) {
      ++validation.pure;
      if (true_campaigns.contains(*actors.begin())) recovered.insert(*actors.begin());
    }
  }
  validation.recovered = recovered.size();
  return validation;
}

}  // namespace cw::analysis
