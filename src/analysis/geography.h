// Section 5.1: geographic discrimination. Compares GreyNoise cloud vantage
// points pairwise within a provider network, grouping pairs by continent
// (US / EU / Asia-Pacific, following how AWS and Google group datacenters)
// or as intercontinental. Produces Table 5 (share of similar pairs per
// group) and Table 4 (the most-different region per provider).
#pragma once

#include <array>
#include <optional>
#include <string>

#include "analysis/comparison.h"

namespace cw::analysis {

enum class PairGroup : std::uint8_t { kUs = 0, kEu, kApac, kIntercontinental };
inline constexpr std::size_t kPairGroupCount = 4;

std::string_view pair_group_name(PairGroup g) noexcept;

// Classifies a pair of regions; regions outside the three continental
// blocks (e.g. South America, Africa) only ever form intercontinental
// pairs, matching the paper's treatment.
std::optional<PairGroup> classify_pair(const topology::VantagePoint& a,
                                       const topology::VantagePoint& b) noexcept;

struct GeoOptions {
  std::size_t top_k = 3;
  double alpha = 0.05;
  std::size_t min_records = 10;  // per vantage point, within scope
};

// Table 5: per pair-group counts of (tested, similar) pairs.
struct GeoSimilarity {
  Characteristic characteristic = Characteristic::kTopAs;
  std::array<std::size_t, kPairGroupCount> tested{};
  std::array<std::size_t, kPairGroupCount> similar{};

  [[nodiscard]] double pct_similar(PairGroup g) const {
    const auto i = static_cast<std::size_t>(g);
    return tested[i] == 0 ? 100.0
                          : 100.0 * static_cast<double>(similar[i]) /
                                static_cast<double>(tested[i]);
  }
};

GeoSimilarity geo_similarity(const capture::EventStore& store,
                             const topology::Deployment& deployment, TrafficScope scope,
                             Characteristic characteristic,
                             const MaliciousClassifier& classifier, const GeoOptions& options = {});

// Frame variant: slices come from the frame's per-(vantage, port) posting
// lists instead of per-vantage scans.
GeoSimilarity geo_similarity(const capture::SessionFrame& frame, TrafficScope scope,
                             Characteristic characteristic,
                             const MaliciousClassifier& classifier, const GeoOptions& options = {});

// Cache variant: each vantage's table is built once in the shared cache and
// reused across all C(n,2) pairs (and by any other analysis naming the same
// (vantage, scope, characteristic) side).
GeoSimilarity geo_similarity(const CharacteristicTableCache& cache, TrafficScope scope,
                             Characteristic characteristic, const GeoOptions& options = {});

// Table 4: the region with the most significant pairwise deviations inside
// one provider's network.
struct MostDifferentRegion {
  bool any_significant = false;
  std::string region_code;       // e.g. "AP-JP"
  double avg_phi = 0.0;          // mean phi over its significant pairs
  stats::EffectMagnitude magnitude = stats::EffectMagnitude::kNone;
  std::size_t significant_pairs = 0;
};

MostDifferentRegion most_different_region(const capture::EventStore& store,
                                          const topology::Deployment& deployment,
                                          topology::Provider provider, TrafficScope scope,
                                          Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const GeoOptions& options = {});

MostDifferentRegion most_different_region(const capture::SessionFrame& frame,
                                          topology::Provider provider, TrafficScope scope,
                                          Characteristic characteristic,
                                          const MaliciousClassifier& classifier,
                                          const GeoOptions& options = {});

MostDifferentRegion most_different_region(const CharacteristicTableCache& cache,
                                          topology::Provider provider, TrafficScope scope,
                                          Characteristic characteristic,
                                          const GeoOptions& options = {});

}  // namespace cw::analysis
