// Traffic-characteristic extraction (Section 3.3): the "who" (scanning
// ASes), "what" (top usernames, passwords, payloads) and "why" (fraction of
// malicious traffic) of a slice of captured traffic. Slices select records
// by vantage point, neighbor index, and protocol scope.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "analysis/malicious.h"
#include "capture/frame.h"
#include "capture/store.h"
#include "net/asn.h"
#include "proto/fingerprint.h"
#include "stats/freq.h"
#include "topology/deployment.h"

namespace cw::analysis {

// The protocol scopes the paper reports on. HTTP/AllPorts selects payloads
// that fingerprint as HTTP regardless of destination port (footnote 3);
// the port-named scopes select by destination port.
enum class TrafficScope : std::uint8_t {
  kSsh22 = 0,
  kTelnet23,
  kHttp80,
  kHttpAllPorts,
  kAnyAll,
};

std::string_view scope_name(TrafficScope scope) noexcept;

// The traffic characteristics the paper compares (Section 3.3). Lives here
// rather than comparison.h so the table cache can key on it without pulling
// in the comparison driver.
enum class Characteristic : std::uint8_t {
  kTopAs = 0,
  kFracMalicious,
  kTopUsername,
  kTopPassword,
  kTopPayload,
};

std::string_view characteristic_name(Characteristic c) noexcept;

// True if the record falls inside the scope. HTTP/AllPorts needs payload
// access, hence the store parameter.
bool in_scope(const capture::SessionRecord& record, TrafficScope scope,
              const capture::EventStore& store);

// Frame variant: HTTP/AllPorts reads the precomputed protocol column
// instead of re-fingerprinting the payload.
bool in_scope(const capture::SessionFrame& frame, std::uint32_t index, TrafficScope scope);

// The destination port a port-named scope selects on, or nullopt for the
// scopes that need payload inspection (HTTP/AllPorts) or select everything
// (Any/All). Port-named scopes resolve to frame posting lists directly.
std::optional<net::Port> scope_port(TrafficScope scope) noexcept;

// A selected subset of a store's records. `frame` is set when the slice was
// built from a SessionFrame; frame-aware consumers (malicious_counts) use
// its precomputed columns, everything else reads through `store`.
struct TrafficSlice {
  const capture::EventStore* store = nullptr;
  const capture::SessionFrame* frame = nullptr;
  std::vector<std::uint32_t> records;

  [[nodiscard]] bool empty() const noexcept { return records.empty(); }
};

// All records captured by one vantage point within a scope.
TrafficSlice slice_vantage(const capture::EventStore& store, topology::VantageId vantage,
                           TrafficScope scope);

// Frame variant: port-named scopes select the per-(vantage, port) posting
// list directly; no per-record scan at all.
TrafficSlice slice_vantage(const capture::SessionFrame& frame, topology::VantageId vantage,
                           TrafficScope scope);

// Records captured by one neighbor (address) of a vantage point.
TrafficSlice slice_neighbor(const capture::EventStore& store, topology::VantageId vantage,
                            std::uint16_t neighbor, TrafficScope scope);
TrafficSlice slice_neighbor(const capture::SessionFrame& frame, topology::VantageId vantage,
                            std::uint16_t neighbor, TrafficScope scope);

// Characteristic extraction. AS tables are keyed by ASN rendered as text so
// they compose with the generic frequency machinery.
stats::FrequencyTable as_table(const TrafficSlice& slice);
stats::FrequencyTable username_table(const TrafficSlice& slice);
stats::FrequencyTable password_table(const TrafficSlice& slice);

// Payload table with ephemeral HTTP fields stripped (Section 3.3). Records
// without payloads are skipped.
stats::FrequencyTable payload_table(const TrafficSlice& slice);

// Range variants over records[begin, end): the chunk primitives the
// characteristic-table cache shards a single big build with (partials over
// contiguous chunks, merged in chunk order). The slice forms above are the
// begin=0, end=size() case.
stats::FrequencyTable as_table(const capture::EventStore& store,
                               const std::vector<std::uint32_t>& records, std::size_t begin,
                               std::size_t end);
stats::FrequencyTable username_table(const capture::EventStore& store,
                                     const std::vector<std::uint32_t>& records, std::size_t begin,
                                     std::size_t end);
stats::FrequencyTable password_table(const capture::EventStore& store,
                                     const std::vector<std::uint32_t>& records, std::size_t begin,
                                     std::size_t end);
stats::FrequencyTable payload_table(const capture::EventStore& store,
                                    const std::vector<std::uint32_t>& records, std::size_t begin,
                                    std::size_t end);

// (malicious, benign) record counts per the Section 3.2 classifier.
std::pair<std::uint64_t, std::uint64_t> malicious_counts(const TrafficSlice& slice,
                                                         const MaliciousClassifier& classifier);

// Unique source addresses / ASes in a slice (Table 1 columns).
std::size_t unique_sources(const TrafficSlice& slice);
std::size_t unique_ases(const TrafficSlice& slice);

}  // namespace cw::analysis
