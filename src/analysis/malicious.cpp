#include "analysis/malicious.h"

namespace cw::analysis {

MeasuredIntent MaliciousClassifier::classify(const capture::SessionRecord& record,
                                             const capture::EventStore& store) const {
  // Rule (1): an attempted login is an authentication bypass attempt.
  if (record.credential_id != capture::kNoCredential) return MeasuredIntent::kMalicious;

  if (record.payload_id == capture::kNoPayload) return MeasuredIntent::kUnobservable;

  const VerdictKey key{store.uid(),
                       (static_cast<std::uint64_t>(record.payload_id) << 17) |
                           (static_cast<std::uint64_t>(record.port) << 1) |
                           (record.transport == net::Transport::kUdp ? 1u : 0u)};
  {
    std::shared_lock<std::shared_mutex> lock(cache_mutex_);
    auto it = verdict_cache_.find(key);
    if (it != verdict_cache_.end()) {
      return it->second ? MeasuredIntent::kMalicious : MeasuredIntent::kBenign;
    }
  }
  // Match outside the lock: the rule engine is immutable and the verdict for
  // a key is deterministic, so a racing duplicate insert is harmless.
  const bool fired =
      engine_->matches(store.payload(record.payload_id), record.port, record.transport);
  {
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    verdict_cache_.emplace(key, fired);
  }
  return fired ? MeasuredIntent::kMalicious : MeasuredIntent::kBenign;
}

std::pair<std::uint64_t, std::uint64_t> MaliciousClassifier::count(
    const capture::EventStore& store, const util::PostingView& indices) const {
  std::uint64_t malicious = 0;
  std::uint64_t benign = 0;
  indices.for_each([&](std::uint32_t index) {
    switch (classify(store.records()[index], store)) {
      case MeasuredIntent::kMalicious: ++malicious; break;
      case MeasuredIntent::kBenign: ++benign; break;
      case MeasuredIntent::kUnobservable: break;
    }
  });
  return {malicious, benign};
}

std::pair<std::uint64_t, std::uint64_t> MaliciousClassifier::count(
    const capture::SessionFrame& frame, const util::PostingView& indices) const {
  if (frame.has_verdicts()) return frame.count_verdicts(indices);
  return count(frame.store(), indices);
}

}  // namespace cw::analysis
