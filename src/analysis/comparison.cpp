#include "analysis/comparison.h"

namespace cw::analysis {

stats::SignificanceTest compare_characteristic(const std::vector<TrafficSlice>& groups,
                                               Characteristic characteristic,
                                               const MaliciousClassifier* classifier,
                                               const CompareOptions& options) {
  if (characteristic == Characteristic::kFracMalicious) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
    rows.reserve(groups.size());
    for (const TrafficSlice& slice : groups) {
      rows.push_back(malicious_counts(slice, *classifier));
    }
    return stats::compare_binary(rows, options.alpha, options.family_size);
  }

  std::vector<stats::FrequencyTable> tables;
  tables.reserve(groups.size());
  for (const TrafficSlice& slice : groups) {
    switch (characteristic) {
      case Characteristic::kTopAs: tables.push_back(as_table(slice)); break;
      case Characteristic::kTopUsername: tables.push_back(username_table(slice)); break;
      case Characteristic::kTopPassword: tables.push_back(password_table(slice)); break;
      case Characteristic::kTopPayload: tables.push_back(payload_table(slice)); break;
      case Characteristic::kFracMalicious: break;  // handled above
    }
  }
  std::vector<const stats::FrequencyTable*> pointers;
  pointers.reserve(tables.size());
  for (const stats::FrequencyTable& table : tables) pointers.push_back(&table);
  return stats::compare_top_k(pointers, options.top_k, options.alpha, options.family_size);
}

stats::SignificanceTest compare_characteristic(
    const CharacteristicTableCache& cache,
    const std::vector<CharacteristicTableCache::SliceKey>& groups, TrafficScope scope,
    Characteristic characteristic, const CompareOptions& options, runner::ThreadPool* pool) {
  if (characteristic == Characteristic::kFracMalicious) {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> rows;
    rows.reserve(groups.size());
    for (const CharacteristicTableCache::SliceKey& key : groups) {
      rows.push_back(cache.malicious(key.vantage, scope, key.neighbor));
    }
    return stats::compare_binary(rows, options.alpha, options.family_size);
  }

  std::vector<const stats::FrequencyTable*> pointers;
  pointers.reserve(groups.size());
  for (const CharacteristicTableCache::SliceKey& key : groups) {
    pointers.push_back(&cache.table(key.vantage, scope, characteristic, pool, key.neighbor));
  }
  return stats::compare_top_k(pointers, options.top_k, options.alpha, options.family_size);
}

bool measurable(Characteristic characteristic, topology::CollectionMethod method,
                TrafficScope scope) noexcept {
  switch (method) {
    case topology::CollectionMethod::kGreyNoise:
      return true;
    case topology::CollectionMethod::kHoneytrap:
      // First-payload capture only: no credential extraction, and hence no
      // way to judge the intent of authentication-based protocols.
      if (characteristic == Characteristic::kTopUsername ||
          characteristic == Characteristic::kTopPassword) {
        return false;
      }
      if (characteristic == Characteristic::kFracMalicious &&
          (scope == TrafficScope::kSsh22 || scope == TrafficScope::kTelnet23)) {
        return false;
      }
      return true;
    case topology::CollectionMethod::kTelescope:
      // First packet only: source attribution works, nothing else does.
      return characteristic == Characteristic::kTopAs;
  }
  return false;
}

}  // namespace cw::analysis
