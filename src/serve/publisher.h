// ReportPublisher: the hand-off point between the sealing/rendering side and
// the serving side. The live driver publishes one immutable PublishedEpoch
// per sealed epoch — the rendered table bytes, the headline-claim findings,
// and the epoch's pinned EpochSnapshot — and readers resolve any epoch, past
// or latest, to a shared_ptr they can hold for as long as a response takes.
//
// The persistence story mirrors EpochSnapshot itself: publishing epoch k+1
// appends one entry and swaps one pointer; nothing already published is
// touched, so a reader that resolved epoch k mid-publish still sees exactly
// epoch k's bytes. That is what makes request handling lock-free against
// seal_epoch: the only shared state a request takes a lock for is the
// (brief) history lookup, never anything the ingest side mutates.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "runner/sweep.h"
#include "stream/live_report.h"
#include "stream/snapshot.h"
#include "util/sim_time.h"

namespace cw::stream {

// One sealed epoch's published artifacts. Immutable after publish; shared by
// every reader of that epoch.
struct PublishedEpoch {
  std::uint64_t epoch = 0;  // 1-based
  util::SimTime now = 0;
  std::uint64_t records_total = 0;
  std::uint64_t records_new = 0;
  double scale = 0.0;  // experiment scale, for the full_report-format header
  // Pinned corpus view: shares the sealed segments, never invalidated by
  // later seals. Held here so the segments (and thus the bytes derived from
  // them) outlive the ingest side's progress for as long as anyone can still
  // request this epoch.
  EpochSnapshot snapshot;
  std::vector<std::string> table_names;  // pipeline names, slot order
  std::vector<std::string> table_slugs;  // table_slug(name), same order
  // Rendered markdown per table, shared so a cached response and the epoch
  // hold the same bytes.
  std::vector<std::shared_ptr<const std::string>> tables;
  bool has_findings = false;
  runner::CellFindings findings{};

  // Builds the published form of one rendered EpochReport (moves nothing out
  // of `report`; the snapshot copy is the cheap shared-segment one).
  [[nodiscard]] static PublishedEpoch from_report(const EpochReport& report, double scale);

  // The exact stdout byte stream examples/full_report would print for this
  // corpus: header, record count, then every table in slot order. The serve
  // check tier diffs this against a real full_report run.
  [[nodiscard]] std::string render_full_report() const;

  [[nodiscard]] int table_index(std::string_view slug) const;  // -1 = unknown
};

class ReportPublisher {
 public:
  // Publishes one epoch. Thread-safe against readers and against itself;
  // racing publishers may land out of order (latest_epoch only advances).
  void publish(PublishedEpoch epoch);

  // Latest published epoch number; 0 before the first publish. A relaxed
  // counter read — the poll path for "has a new epoch landed?".
  [[nodiscard]] std::uint64_t latest_epoch() const noexcept {
    return latest_.load(std::memory_order_acquire);
  }

  // Resolves an epoch (1-based) to its published artifacts; nullptr when the
  // epoch has not been published. latest() is epoch(latest_epoch()).
  [[nodiscard]] std::shared_ptr<const PublishedEpoch> epoch(std::uint64_t k) const;
  [[nodiscard]] std::shared_ptr<const PublishedEpoch> latest() const;

  [[nodiscard]] std::size_t published_count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const PublishedEpoch>> history_;  // arrival order
  std::atomic<std::uint64_t> latest_{0};
};

}  // namespace cw::stream
