#include "serve/http.h"

#include <algorithm>
#include <cctype>

namespace cw::stream {

namespace {

std::string lowercased(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string_view trimmed(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) text.remove_prefix(1);
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

bool HttpRequest::keep_alive() const {
  const auto it = headers.find("connection");
  if (it != headers.end()) {
    const std::string value = lowercased(it->second);
    if (value.find("close") != std::string::npos) return false;
    if (value.find("keep-alive") != std::string::npos) return true;
  }
  return version != "HTTP/1.0";
}

ParseResult parse_http_request(std::string_view buffer, HttpRequest& out,
                               std::size_t& head_bytes) {
  // A head ends at the first blank line; accept both CRLF and bare LF.
  const std::size_t end = buffer.find("\n\r\n") != std::string_view::npos
                              ? buffer.find("\n\r\n") + 3
                              : buffer.find("\n\n") != std::string_view::npos
                                    ? buffer.find("\n\n") + 2
                                    : std::string_view::npos;
  if (end == std::string_view::npos) return ParseResult::kIncomplete;
  head_bytes = end;
  out = HttpRequest{};

  std::string_view head = buffer.substr(0, end);
  // Request line.
  const std::size_t line_end = head.find('\n');
  std::string_view line = trimmed(head.substr(0, line_end));
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = sp1 == std::string_view::npos ? std::string_view::npos
                                                        : line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos) return ParseResult::kBad;
  out.method = std::string(line.substr(0, sp1));
  out.target = std::string(line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(trimmed(line.substr(sp2 + 1)));
  if (out.method.empty() || out.target.empty() || out.version.rfind("HTTP/", 0) != 0) {
    return ParseResult::kBad;
  }
  const std::size_t question = out.target.find('?');
  out.path = out.target.substr(0, question);
  out.query = question == std::string::npos ? std::string() : out.target.substr(question + 1);

  // Header lines.
  std::size_t cursor = line_end + 1;
  while (cursor < head.size()) {
    const std::size_t next = head.find('\n', cursor);
    std::string_view raw = head.substr(cursor, next - cursor);
    cursor = next == std::string_view::npos ? head.size() : next + 1;
    raw = trimmed(raw);
    if (raw.empty()) break;
    const std::size_t colon = raw.find(':');
    if (colon == std::string_view::npos) return ParseResult::kBad;
    out.headers[lowercased(trimmed(raw.substr(0, colon)))] =
        std::string(trimmed(raw.substr(colon + 1)));
  }
  return ParseResult::kOk;
}

std::string_view http_status_text(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Internal Server Error";
  }
}

std::string http_response(int status, std::string_view content_type, std::string_view body,
                          bool keep_alive,
                          const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string out;
  out.reserve(body.size() + 256);
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += http_status_text(status);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  for (const auto& [name, value] : extra_headers) {
    out += "\r\n";
    out += name;
    out += ": ";
    out += value;
  }
  out += "\r\n\r\n";
  out += body;
  return out;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string table_slug(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  bool pending_dash = false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) != 0) {
      if (pending_dash && !out.empty()) out += '-';
      pending_dash = false;
      out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    } else {
      pending_dash = true;
    }
  }
  return out;
}

std::vector<std::string_view> split_path(std::string_view path) {
  std::vector<std::string_view> out;
  std::size_t cursor = 0;
  while (cursor < path.size()) {
    if (path[cursor] == '/') {
      ++cursor;
      continue;
    }
    const std::size_t next = path.find('/', cursor);
    out.push_back(path.substr(cursor, next - cursor));
    cursor = next == std::string_view::npos ? path.size() : next;
  }
  return out;
}

}  // namespace cw::stream
