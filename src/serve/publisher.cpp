#include "serve/publisher.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "serve/http.h"

namespace cw::stream {

PublishedEpoch PublishedEpoch::from_report(const EpochReport& report, double scale) {
  PublishedEpoch out;
  out.epoch = report.epoch;
  out.now = report.now;
  out.records_total = report.records_total;
  out.records_new = report.records_new;
  out.scale = scale;
  out.snapshot = report.snapshot;
  out.table_names = report.names;
  out.table_slugs.reserve(report.names.size());
  for (const std::string& name : report.names) out.table_slugs.push_back(table_slug(name));
  out.tables.reserve(report.outputs.size());
  for (const std::string& output : report.outputs) {
    out.tables.push_back(std::make_shared<const std::string>(output));
  }
  out.has_findings = report.findings_extracted;
  out.findings = report.findings;
  return out;
}

std::string PublishedEpoch::render_full_report() const {
  // Byte-compatible with examples/full_report (and live_report --final-only)
  // over the same corpus.
  char header[160];
  std::snprintf(header, sizeof(header),
                "== Cloud Watching full report (scale %.2f) ==\n\ncaptured %" PRIu64
                " session records\n\n",
                scale, records_total);
  std::string out(header);
  for (std::size_t i = 0; i < tables.size(); ++i) {
    out += "--- ";
    out += table_names[i];
    out += " ---\n";
    out += *tables[i];
    out += '\n';
  }
  return out;
}

int PublishedEpoch::table_index(std::string_view slug) const {
  for (std::size_t i = 0; i < table_slugs.size(); ++i) {
    if (table_slugs[i] == slug) return static_cast<int>(i);
  }
  return -1;
}

void ReportPublisher::publish(PublishedEpoch epoch) {
  auto shared = std::make_shared<const PublishedEpoch>(std::move(epoch));
  const std::lock_guard<std::mutex> lock(mutex_);
  history_.push_back(std::move(shared));
  // Release so a reader that polls latest_epoch() and then resolves the
  // epoch observes the fully published entry. Racing publishers may land out
  // of order; latest_ only ever advances.
  if (history_.back()->epoch > latest_.load(std::memory_order_relaxed)) {
    latest_.store(history_.back()->epoch, std::memory_order_release);
  }
}

std::shared_ptr<const PublishedEpoch> ReportPublisher::epoch(std::uint64_t k) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
    if ((*it)->epoch == k) return *it;
  }
  return nullptr;
}

std::shared_ptr<const PublishedEpoch> ReportPublisher::latest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return history_.empty() ? nullptr : history_.back();
}

std::size_t ReportPublisher::published_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return history_.size();
}

}  // namespace cw::stream
