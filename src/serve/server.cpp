#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "runner/thread_pool.h"

namespace cw::stream {

namespace {

constexpr std::string_view kJson = "application/json; charset=utf-8";
constexpr std::string_view kMarkdown = "text/markdown; charset=utf-8";
constexpr std::string_view kText = "text/plain; charset=utf-8";

std::string json_error(std::string_view message) {
  return "{\"error\":\"" + json_escape(message) + "\"}\n";
}

std::string epoch_meta_json(const PublishedEpoch& epoch) {
  std::string out = "{";
  out += "\"epoch\":" + std::to_string(epoch.epoch);
  out += ",\"sim_now\":\"" + json_escape(util::format_sim_time(epoch.now)) + "\"";
  out += ",\"records_total\":" + std::to_string(epoch.records_total);
  out += ",\"records_new\":" + std::to_string(epoch.records_new);
  out += ",\"segments\":" + std::to_string(epoch.snapshot.segments().size());
  out += ",\"has_findings\":";
  out += epoch.has_findings ? "true" : "false";
  out += ",\"tables\":[";
  for (std::size_t i = 0; i < epoch.table_names.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"index\":" + std::to_string(i);
    out += ",\"slug\":\"" + json_escape(epoch.table_slugs[i]) + "\"";
    out += ",\"name\":\"" + json_escape(epoch.table_names[i]) + "\"";
    out += ",\"bytes\":" + std::to_string(epoch.tables[i]->size());
    out += '}';
  }
  out += "]}\n";
  return out;
}

std::string findings_json(const PublishedEpoch& epoch) {
  std::string out = "{\"epoch\":" + std::to_string(epoch.epoch) + ",\"findings\":[";
  for (std::size_t i = 0; i < epoch.findings.size(); ++i) {
    const runner::FindingOutcome& outcome = epoch.findings[i];
    if (i != 0) out += ',';
    out += "{\"name\":\"" + json_escape(runner::finding_name(outcome.finding)) + "\"";
    out += ",\"claim\":\"" + json_escape(runner::finding_claim(outcome.finding)) + "\"";
    out += ",\"holds\":";
    out += outcome.holds ? "true" : "false";
    char effect[32];
    std::snprintf(effect, sizeof(effect), "%.4f", outcome.effect);
    out += ",\"effect\":";
    out += effect;
    out += ",\"detail\":\"" + json_escape(outcome.detail) + "\"}";
  }
  out += "]}\n";
  return out;
}

// Parses a decimal epoch token; returns 0 on malformed input (epoch numbers
// are 1-based, so 0 doubles as "invalid").
std::uint64_t parse_epoch_token(std::string_view token) {
  if (token.empty() || token.size() > 18) return 0;
  std::uint64_t value = 0;
  for (const char c : token) {
    if (c < '0' || c > '9') return 0;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return value;
}

}  // namespace

ReportServer::ReportServer(const ReportPublisher& publisher, ReportServerConfig config)
    : publisher_(publisher), config_(std::move(config)) {}

ReportServer::~ReportServer() { stop(); }

bool ReportServer::start(std::string* error) {
  auto fail = [&](const char* what) {
    if (error != nullptr) *error = std::string(what) + ": " + std::strerror(errno);
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  };
  if (started_) {
    if (error != nullptr) *error = "server already started";
    return false;
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return fail("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    errno = EINVAL;
    return fail("inet_pton");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    return fail("bind");
  }
  if (::listen(listen_fd_, 128) != 0) return fail("listen");
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) != 0) {
    return fail("getsockname");
  }
  port_ = ntohs(bound.sin_port);

  started_ = true;
  running_.store(true, std::memory_order_release);
  pool_ = std::make_unique<runner::ThreadPool>(config_.workers);
  acceptor_ = std::thread([this] { accept_loop(); });
  return true;
}

void ReportServer::stop() {
  if (!started_) return;
  running_.store(false, std::memory_order_release);
  if (listen_fd_ >= 0) {
    // shutdown() on the listening socket makes the blocked accept() return;
    // the fd itself is closed only after the acceptor has joined, so the
    // acceptor never races a reused descriptor number.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    // Unblock every handler parked in recv(); the handler owns the close.
    const std::lock_guard<std::mutex> lock(fds_mutex_);
    for (const int fd : open_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (pool_) {
    pool_->wait_idle();
    pool_.reset();
  }
}

ReportServer::Stats ReportServer::stats() const {
  Stats out;
  out.accepted = accepted_.load(std::memory_order_relaxed);
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.requests = requests_.load(std::memory_order_relaxed);
  out.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  out.open_connections = open_connections_.load(std::memory_order_relaxed);
  return out;
}

void ReportServer::accept_loop() {
  // Prebuilt overload response: the acceptor must shed load without doing
  // per-connection work.
  const std::string overload =
      http_response(503, kJson, json_error("server at connection capacity; retry shortly"),
                    /*keep_alive=*/false,
                    {{"Retry-After", std::to_string(config_.retry_after_seconds)}});
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // EBADF/EINVAL: stop() closed the listener.
      break;
    }
    if (!running_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // Admission control: the cap covers connections queued for the pool plus
    // those being served, so a flood cannot grow the handler queue without
    // bound — excess readers get an immediate, honest 503.
    if (open_connections_.load(std::memory_order_relaxed) >= config_.max_connections) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      (void)!send_all(fd, overload);
      ::close(fd);
      continue;
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_connections_.fetch_add(1, std::memory_order_relaxed);
    {
      const std::lock_guard<std::mutex> lock(fds_mutex_);
      open_fds_.insert(fd);
    }
    pool_->submit([this, fd] { serve_connection(fd); });
  }
}

void ReportServer::serve_connection(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  timeval timeout{};
  timeout.tv_sec = config_.idle_timeout_seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  std::string buffer;
  char chunk[8192];
  bool alive = true;
  while (alive && running_.load(std::memory_order_acquire)) {
    // Drain every complete request already buffered (pipelining) before
    // touching the socket again.
    HttpRequest request;
    std::size_t head_bytes = 0;
    const ParseResult parsed = parse_http_request(buffer, request, head_bytes);
    if (parsed == ParseResult::kOk) {
      buffer.erase(0, head_bytes);
      requests_.fetch_add(1, std::memory_order_relaxed);
      std::string response;
      bool keep = request.keep_alive();
      if (request.method != "GET") {
        response = http_response(405, kJson, json_error("only GET is supported"), keep);
      } else {
        response = handle(request);
        if (!keep) {
          // handle() composes keep-alive responses; flip the header.
          const std::size_t pos = response.find("Connection: keep-alive");
          if (pos != std::string::npos) {
            response.replace(pos, std::strlen("Connection: keep-alive"), "Connection: close");
          }
        }
      }
      if (!send_all(fd, response)) break;
      alive = keep;
      continue;
    }
    if (parsed == ParseResult::kBad || buffer.size() > config_.max_request_bytes) {
      const int status = parsed == ParseResult::kBad ? 400 : 431;
      (void)!send_all(fd, http_response(status, kJson, json_error("malformed request"),
                                        /*keep_alive=*/false));
      break;
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got > 0) {
      buffer.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    break;  // peer closed, idle timeout (EAGAIN), or hard error
  }
  // Deregister before closing: once the fd is closed its number can be
  // reused by a fresh accept, and stop() must never shutdown() the newcomer.
  {
    const std::lock_guard<std::mutex> lock(fds_mutex_);
    open_fds_.erase(fd);
  }
  ::close(fd);
  open_connections_.fetch_sub(1, std::memory_order_relaxed);
}

bool ReportServer::send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t sent = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(sent));
  }
  return true;
}

std::shared_ptr<const std::string> ReportServer::cached_response(const std::string& key) {
  const std::shared_lock<std::shared_mutex> lock(cache_mutex_);
  const auto it = response_cache_.find(key);
  return it == response_cache_.end() ? nullptr : it->second;
}

void ReportServer::store_response(const std::string& key,
                                  std::shared_ptr<const std::string> response) {
  const std::lock_guard<std::shared_mutex> lock(cache_mutex_);
  response_cache_.emplace(key, std::move(response));
}

std::string ReportServer::handle(const HttpRequest& request) {
  const std::vector<std::string_view> segments = split_path(request.path);

  if (segments.empty()) {
    std::string body =
        "# cloudwatch report server\n\n"
        "Serves each sealed epoch's paper tables and headline findings.\n\n"
        "- `/epochs` — published epochs\n"
        "- `/epoch/<k|latest>` — epoch metadata + table list\n"
        "- `/epoch/<k>/report` — the full report (markdown, full_report bytes)\n"
        "- `/epoch/<k>/table/<slug>` — one table (`?format=json` to wrap)\n"
        "- `/epoch/<k>/findings` — the seven headline-claim verdicts\n";
    body += "\nlatest epoch: " + std::to_string(publisher_.latest_epoch()) + "\n";
    return http_response(200, kMarkdown, body, true);
  }

  if (segments[0] == "healthz" && segments.size() == 1) {
    return http_response(200, kText, "ok\n", true);
  }

  if (segments[0] == "stats" && segments.size() == 1) {
    const Stats s = stats();
    std::string body = "{";
    body += "\"accepted\":" + std::to_string(s.accepted);
    body += ",\"rejected\":" + std::to_string(s.rejected);
    body += ",\"requests\":" + std::to_string(s.requests);
    body += ",\"cache_hits\":" + std::to_string(s.cache_hits);
    body += ",\"open_connections\":" + std::to_string(s.open_connections);
    body += ",\"latest_epoch\":" + std::to_string(publisher_.latest_epoch());
    body += "}\n";
    return http_response(200, kJson, body, true);
  }

  if (segments[0] == "epochs" && segments.size() == 1) {
    // Keyed by the latest epoch: the list only changes when a new epoch
    // publishes, and older keys stay valid for readers mid-flight.
    const std::uint64_t latest = publisher_.latest_epoch();
    const std::string key = "epochs@" + std::to_string(latest);
    if (auto hit = cached_response(key)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return *hit;
    }
    std::string body = "{\"latest\":" + std::to_string(latest) + ",\"epochs\":[";
    bool first = true;
    for (std::uint64_t k = 1; k <= latest; ++k) {
      const auto epoch = publisher_.epoch(k);
      if (!epoch) continue;
      if (!first) body += ',';
      first = false;
      body += "{\"epoch\":" + std::to_string(epoch->epoch);
      body += ",\"records_total\":" + std::to_string(epoch->records_total);
      body += ",\"records_new\":" + std::to_string(epoch->records_new);
      body += ",\"tables\":" + std::to_string(epoch->tables.size());
      body += '}';
    }
    body += "]}\n";
    auto response = std::make_shared<const std::string>(http_response(200, kJson, body, true));
    store_response(key, response);
    return *response;
  }

  if (segments[0] == "epoch" && segments.size() >= 2) return handle_epoch_route(request, segments);

  return http_response(404, kJson, json_error("no such route: " + request.path), true);
}

std::string ReportServer::handle_epoch_route(const HttpRequest& request,
                                             const std::vector<std::string_view>& segments) {
  // Resolve the epoch token first: every cache key is under the *resolved*
  // number, so "latest" responses are the same shared bytes as their
  // numbered twin and can never serve a stale alias.
  std::uint64_t k = 0;
  if (segments[1] == "latest") {
    k = publisher_.latest_epoch();
    if (k == 0) return http_response(404, kJson, json_error("no epoch published yet"), true);
  } else {
    k = parse_epoch_token(segments[1]);
    if (k == 0) {
      return http_response(400, kJson, json_error("epoch must be a positive integer or 'latest'"),
                           true);
    }
  }

  std::string key = "epoch@" + std::to_string(k) + request.path.substr(
                        request.path.find(segments[1]) + segments[1].size());
  const bool want_json = request.query.find("format=json") != std::string::npos;
  if (want_json) key += "?json";
  if (auto hit = cached_response(key)) {
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    return *hit;
  }

  const std::shared_ptr<const PublishedEpoch> epoch = publisher_.epoch(k);
  if (!epoch) {
    return http_response(404, kJson,
                         json_error("epoch " + std::to_string(k) + " not published"), true);
  }

  std::shared_ptr<const std::string> response;
  if (segments.size() == 2) {
    response = std::make_shared<const std::string>(
        http_response(200, kJson, epoch_meta_json(*epoch), true));
  } else if (segments[2] == "report" && segments.size() == 3) {
    response = std::make_shared<const std::string>(
        http_response(200, kMarkdown, epoch->render_full_report(), true));
  } else if (segments[2] == "findings" && segments.size() == 3) {
    if (!epoch->has_findings) {
      return http_response(404, kJson,
                           json_error("epoch " + std::to_string(k) + " has no findings"), true);
    }
    response =
        std::make_shared<const std::string>(http_response(200, kJson, findings_json(*epoch), true));
  } else if (segments[2] == "table" && segments.size() == 4) {
    const int index = epoch->table_index(segments[3]);
    if (index < 0) {
      return http_response(
          404, kJson,
          json_error("no table '" + std::string(segments[3]) + "' in epoch " + std::to_string(k)),
          true);
    }
    const auto i = static_cast<std::size_t>(index);
    if (want_json) {
      std::string body = "{\"epoch\":" + std::to_string(k);
      body += ",\"slug\":\"" + json_escape(epoch->table_slugs[i]) + "\"";
      body += ",\"name\":\"" + json_escape(epoch->table_names[i]) + "\"";
      body += ",\"markdown\":\"" + json_escape(*epoch->tables[i]) + "\"}\n";
      response = std::make_shared<const std::string>(http_response(200, kJson, body, true));
    } else {
      response = std::make_shared<const std::string>(
          http_response(200, kMarkdown, *epoch->tables[i], true));
    }
  } else {
    return http_response(404, kJson, json_error("no such route: " + request.path), true);
  }

  store_response(key, response);
  return *response;
}

}  // namespace cw::stream
