// stream::ReportServer — the read side of the live measurement service,
// exposed over HTTP/1.1 to many concurrent readers while ingest keeps
// sealing epochs.
//
// Architecture (DESIGN.md §7):
//   - Blocking TCP sockets + the existing nest-safe runner::ThreadPool — no
//     event loop, no new dependencies. One acceptor thread takes
//     connections; each admitted connection becomes a pool task that serves
//     any number of keep-alive requests until the client closes or idles
//     out.
//   - Reads are lock-free against seal_epoch: a request resolves its epoch
//     to an immutable PublishedEpoch (whose pinned EpochSnapshot shares the
//     sealed segments), so nothing a handler touches is ever mutated by the
//     ingest side. The only locks on the request path are the publisher's
//     history lookup and the response cache — both brief and never held by
//     a sealer.
//   - Per-(epoch, table) response cache: complete rendered response bytes
//     (headers + body) behind shared_ptr, keyed by the *resolved* epoch so
//     "latest" cannot alias and a new epoch invalidates nothing
//     retroactively — the cache only ever grows by the new epoch's entries.
//   - Admission control: when admitted connections reach
//     max_connections, further accepts are answered 503 + Retry-After and
//     closed immediately, bounding both the pool queue and handler memory.
//     (Producer-side backpressure is IngestShards::set_pending_limit.)
//
// Routes (GET):
//   /healthz                      liveness probe
//   /stats                        server counters (JSON)
//   /epochs                       published epochs + latest (JSON)
//   /epoch/<k|latest>             one epoch's metadata + table list (JSON)
//   /epoch/<k>/report             the exact full_report byte stream (markdown)
//   /epoch/<k>/table/<slug>       one table (markdown; ?format=json to wrap)
//   /epoch/<k>/findings           the seven headline-claim verdicts (JSON)
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>

#include "serve/http.h"
#include "serve/publisher.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::stream {

struct ReportServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; see ReportServer::port()
  // Handler pool size (0 = hardware concurrency). Each live keep-alive
  // connection occupies one pool task while it waits for its next request,
  // so size this at least as large as the expected concurrent reader count.
  unsigned workers = 4;
  // Admission cap: connections admitted (queued + being served). Accepts
  // beyond it are answered 503 and closed by the acceptor thread.
  std::size_t max_connections = 128;
  unsigned retry_after_seconds = 1;  // the 503 Retry-After hint
  // A keep-alive connection idle longer than this is closed, bounding how
  // long a silent client can hold a pool worker.
  int idle_timeout_seconds = 5;
  std::size_t max_request_bytes = 16 * 1024;
};

class ReportServer {
 public:
  // The publisher is borrowed and must outlive the server. Its contents may
  // keep growing while the server runs — that is the point.
  explicit ReportServer(const ReportPublisher& publisher, ReportServerConfig config = {});
  ~ReportServer();
  ReportServer(const ReportServer&) = delete;
  ReportServer& operator=(const ReportServer&) = delete;

  // Binds, listens, and starts the acceptor + handler pool. Returns false
  // (with *error set) on socket failure. Call at most once.
  bool start(std::string* error = nullptr);

  // Stops accepting, unblocks every in-flight handler, and joins them all.
  // Idempotent; the destructor calls it.
  void stop();

  // The bound port (resolves port 0 to the kernel-assigned ephemeral port).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  struct Stats {
    std::uint64_t accepted = 0;       // connections admitted
    std::uint64_t rejected = 0;       // connections answered 503 at accept
    std::uint64_t requests = 0;       // requests handled
    std::uint64_t cache_hits = 0;     // responses served from the cache
    std::size_t open_connections = 0;
  };
  [[nodiscard]] Stats stats() const;

  // Routes one parsed request to its response bytes — the whole handler
  // minus the socket I/O, exposed so tests (and the bench) can drive the
  // routing and cache without a network round trip.
  [[nodiscard]] std::string handle(const HttpRequest& request);

 private:
  void accept_loop();
  void serve_connection(int fd);
  bool send_all(int fd, std::string_view bytes);

  // Cache lookup/fill for responses derived from one published epoch.
  std::shared_ptr<const std::string> cached_response(const std::string& key);
  void store_response(const std::string& key, std::shared_ptr<const std::string> response);

  std::string handle_epoch_route(const HttpRequest& request,
                                 const std::vector<std::string_view>& segments);

  const ReportPublisher& publisher_;
  ReportServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::unique_ptr<runner::ThreadPool> pool_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  bool started_ = false;

  std::atomic<std::size_t> open_connections_{0};
  std::mutex fds_mutex_;
  std::unordered_set<int> open_fds_;

  mutable std::shared_mutex cache_mutex_;
  std::unordered_map<std::string, std::shared_ptr<const std::string>> response_cache_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
};

}  // namespace cw::stream
