// Minimal HTTP/1.1 plumbing for stream::ReportServer: an incremental
// request-head parser and response composers, all pure string functions so
// the protocol layer tests without sockets. Only what the report endpoint
// needs — GET/HEAD, keep-alive, Content-Length bodies on responses, no
// request bodies, no chunked encoding, no TLS.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cw::stream {

// One parsed request head. Header names are lowercased (HTTP headers are
// case-insensitive); the target is split at '?' into path and query.
struct HttpRequest {
  std::string method;
  std::string target;
  std::string path;
  std::string query;
  std::string version;  // "HTTP/1.1"
  std::map<std::string, std::string> headers;

  // Connection semantics: HTTP/1.1 defaults to keep-alive unless the client
  // sent "Connection: close"; HTTP/1.0 defaults to close.
  [[nodiscard]] bool keep_alive() const;
};

enum class ParseResult {
  kIncomplete,  // no blank line yet — read more bytes
  kOk,          // request parsed; head_bytes consumed
  kBad,         // malformed request line or header
};

// Parses one request head from the front of `buffer` (everything up to and
// including the first CRLFCRLF). On kOk, `head_bytes` is the number of bytes
// consumed, so pipelined requests parse by erasing the head and calling
// again. Tolerates bare-LF line endings.
ParseResult parse_http_request(std::string_view buffer, HttpRequest& out,
                               std::size_t& head_bytes);

// The reason phrase for the handful of statuses the server emits.
std::string_view http_status_text(int status);

// Composes a full response (status line + headers + body). Content-Length
// is always set; `extra_headers` append verbatim after the standard set.
std::string http_response(int status, std::string_view content_type, std::string_view body,
                          bool keep_alive,
                          const std::vector<std::pair<std::string, std::string>>&
                              extra_headers = {});

// JSON string-body escaping (quotes, backslashes, control characters).
std::string json_escape(std::string_view text);

// URL-safe identifier for a table name: lowercase, runs of non-alphanumerics
// collapsed to single '-', trimmed ("Table 1: vantage points" ->
// "table-1-vantage-points").
std::string table_slug(std::string_view name);

// Splits a path ("/epoch/3/table/x") into segments ({"epoch","3","table","x"}).
std::vector<std::string_view> split_path(std::string_view path);

}  // namespace cw::stream
