// The moving-target defense loop (DESIGN.md §8b): a pool of ephemeral cloud
// services, each resident at one monitored cloud address with a TTL. When a
// TTL expires the service rotates to a fresh cloud address; an evaluation
// epoch feeds the observed attack count into the TtlPolicy, which shrinks
// the TTL under pressure and relaxes it when quiet.
//
// The defense is attacker-observable state only: record_attack() answers
// "did that attack land on a live service?" without ever touching the
// capture path, so enabling a defense changes what adaptive attackers do
// next round — not what the collector records about the traffic they send.
//
// Determinism: placement and rotation draw from one dedicated Rng stream,
// and every rotation/epoch event rides the shared sim::Engine heap, so runs
// are byte-identical at any worker count.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "adversary/policy.h"
#include "agents/actor.h"
#include "net/ipv4.h"
#include "sim/engine.h"
#include "topology/universe.h"
#include "util/rng.h"

namespace cw::adversary {

struct MovingTargetConfig {
  int services = 12;    // ephemeral services placed on distinct cloud addresses
  bool rotate = true;   // false = static placement (a defender that never moves)
  util::SimDuration evaluation_epoch = util::kDay;  // TtlPolicy cadence
  TtlPolicyConfig ttl;
};

class MovingTargetDefense {
 public:
  MovingTargetDefense(const topology::TargetUniverse& universe, MovingTargetConfig config,
                      util::Rng rng);

  // Schedules rotation and evaluation-epoch events; call once before the
  // window runs (DefenseAgent::start does).
  void start(sim::Engine& engine, util::SimTime window_end);

  // An attack landed on `addr`: true when an ephemeral service is currently
  // resident there — the attacker's success signal and the defender's
  // pressure signal, in one observation.
  bool record_attack(net::IPv4Addr addr);

  [[nodiscard]] std::size_t services() const noexcept { return residence_.size(); }
  [[nodiscard]] bool rotates() const noexcept { return config_.rotate; }
  [[nodiscard]] std::uint64_t rotations() const noexcept { return rotations_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] util::SimDuration current_ttl() const noexcept { return ttl_.ttl(); }
  [[nodiscard]] const TtlPolicy& ttl_policy() const noexcept { return ttl_; }

 private:
  void schedule_rotation(sim::Engine& engine, std::size_t service, util::SimTime at,
                         util::SimTime window_end);
  [[nodiscard]] net::IPv4Addr pick_free_address();

  const topology::TargetUniverse* universe_;
  MovingTargetConfig config_;
  util::Rng rng_;
  TtlPolicy ttl_;
  std::vector<net::IPv4Addr> residence_;               // service -> current address
  std::unordered_map<std::uint32_t, std::size_t> by_address_;
  std::uint64_t rotations_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

// Engine anchor for the defense: adopted into the population like any actor
// so start_all() schedules the rotation loop, but it emits no traffic (the
// defense is infrastructure, not a scanner). Shares ownership of the pool
// with the adaptive attackers that probe it.
class DefenseAgent : public agents::Actor {
 public:
  DefenseAgent(capture::ActorId id, std::shared_ptr<MovingTargetDefense> defense);

  void start(agents::AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "mtd-defense"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return false; }

  [[nodiscard]] const MovingTargetDefense& defense() const noexcept { return *defense_; }

 private:
  std::shared_ptr<MovingTargetDefense> defense_;
};

}  // namespace cw::adversary
