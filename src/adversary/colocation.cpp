#include "adversary/colocation.h"

#include <algorithm>
#include <utility>

#include "util/rng.h"

namespace cw::adversary {
namespace {

std::string lock_probe() { return "GET /lock HTTP/1.1\r\nHost: coloc\r\n\r\n"; }
std::string check_probe() { return "GET /check HTTP/1.1\r\nHost: coloc\r\n\r\n"; }

}  // namespace

CoLocationProber::CoLocationProber(capture::ActorId id, util::Rng rng,
                                   CoLocationProberConfig config, std::uint64_t world_seed)
    : Actor(id, config.asn, config.sources, rng),
      config_(std::move(config)),
      world_seed_(world_seed) {}

bool CoLocationProber::shares_server(std::string_view city_code, topology::VantageId a,
                                     topology::VantageId b) const noexcept {
  // Symmetric deterministic coin: the synthetic world either co-locates the
  // pair or it does not, identically for every prober and every run.
  const topology::VantageId lo = std::min(a, b);
  const topology::VantageId hi = std::max(a, b);
  std::uint64_t state = world_seed_ ^ util::fnv1a64(city_code) ^
                        (static_cast<std::uint64_t>(lo) * 0x9e3779b97f4a7c15ULL) ^
                        (static_cast<std::uint64_t>(hi) * 0xc2b2ae3d27d4eb4fULL);
  const double coin = static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
  return coin < config_.share_rate;
}

void CoLocationProber::start(agents::AgentContext& ctx) {
  const auto cities = ctx.universe->deployment().colocated_clouds();
  util::SimTime t = config_.first_pass;
  for (int pass = 0; pass < config_.passes; ++pass) {
    for (const auto& city : cities) {
      for (std::size_t i = 0; i < city.vantage_ids.size(); ++i) {
        for (std::size_t j = i + 1; j < city.vantage_ids.size(); ++j) {
          const topology::VantageId victim = city.vantage_ids[i];
          const topology::VantageId attacker = city.vantage_ids[j];
          if (t >= ctx.window_end) return;
          ctx.engine->schedule_at(t, [this, &ctx, city, victim, attacker](sim::Engine& e) {
            probe_pair(ctx, e.now(), city, victim, attacker);
          });
          t += config_.pair_spacing;
        }
      }
    }
    t = config_.first_pass + (pass + 1) * config_.pass_spacing;
  }
}

void CoLocationProber::probe_pair(agents::AgentContext& ctx, util::SimTime t,
                                  const topology::Deployment::CoLocation& city,
                                  topology::VantageId victim, topology::VantageId attacker) {
  const auto& deployment = ctx.universe->deployment();
  const auto& victim_addrs = deployment.at(victim).addresses;
  const auto& attacker_addrs = deployment.at(attacker).addresses;
  if (victim_addrs.empty() || attacker_addrs.empty()) return;
  ++pairs_probed_;

  // The lock/check pair: induce contention from the attacker-side instance,
  // measure it from the victim side.
  emit(ctx, t, attacker_addrs.front(), config_.probe_port, lock_probe(), std::nullopt,
       net::Protocol::kHttp, /*malicious=*/true);
  emit(ctx, t + util::kSecond, victim_addrs.front(), config_.probe_port, check_probe(),
       std::nullopt, net::Protocol::kHttp, /*malicious=*/true);

  if (!shares_server(city.city_code, victim, attacker) ||
      !rng_.bernoulli(config_.detect_rate)) {
    return;
  }
  ++pairs_shared_;

  // Binary-search victim localization: one check probe per halving step over
  // the victim vantage's address list, homing in on the co-resident victim.
  std::size_t lo = 0;
  std::size_t hi = victim_addrs.size();
  std::uint64_t state = world_seed_ ^ (static_cast<std::uint64_t>(victim) << 32) ^ attacker;
  const std::size_t resident =
      static_cast<std::size_t>(util::splitmix64(state) % victim_addrs.size());
  util::SimTime step_time = t + 2 * util::kSecond;
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    emit(ctx, step_time, victim_addrs[mid], config_.probe_port, check_probe(), std::nullopt,
         net::Protocol::kHttp, /*malicious=*/true);
    ++localization_probes_;
    if (resident >= mid) {
      lo = mid;
    } else {
      hi = mid;
    }
    step_time += util::kSecond;
  }
}

}  // namespace cw::adversary
