// The co-location prober family (DESIGN.md §8d), after the Shadow Hunting
// artifacts (SNIPPETS.md §2): an attacker renting instances across cloud
// providers and probing whether they share physical servers with victims.
//
// Simplified to this simulator's observable surface: for every city hosting
// two or more cloud providers (Deployment::colocated_clouds — the paper's
// Table 6 control set), the prober sweeps each cross-provider vantage pair
// with a lock/check probe pair (the memory-bus-contention endpoints of the
// artifact, modeled as HTTP requests). Whether a pair truly shares a server
// is synthetic world state — a deterministic coin on (world seed, city,
// pair) that every prober agrees on. On a detected sharing, the prober runs
// the artifact's binary-search victim localization, emitting one check
// probe per halving step against the victim vantage.
//
// The probe traffic lands in the capture path like any scan, which is what
// the Table 6 extension in the sweep report aggregates; detection counters
// stay attacker-side.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "agents/actor.h"
#include "net/asn.h"
#include "net/ports.h"
#include "topology/deployment.h"

namespace cw::adversary {

struct CoLocationProberConfig {
  std::string label = "colocation";
  net::Asn asn = 64901;
  int sources = 3;
  net::Port probe_port = 80;  // the lock/check endpoints ride plain HTTP
  double share_rate = 0.5;    // ground-truth server-sharing rate per pair
  double detect_rate = 0.9;   // probe sensitivity given true sharing
  int passes = 2;             // full sweeps over the pair set
  util::SimDuration first_pass = util::kHour;
  util::SimDuration pass_spacing = 2 * util::kDay;
  util::SimDuration pair_spacing = 10 * util::kMinute;
};

class CoLocationProber : public agents::Actor {
 public:
  // `world_seed` keys the synthetic server-sharing ground truth; probers of
  // one experiment share it so they probe a consistent world.
  CoLocationProber(capture::ActorId id, util::Rng rng, CoLocationProberConfig config,
                   std::uint64_t world_seed);

  void start(agents::AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "colocation-prober"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return true; }

  [[nodiscard]] std::uint64_t pairs_probed() const noexcept { return pairs_probed_; }
  [[nodiscard]] std::uint64_t pairs_shared() const noexcept { return pairs_shared_; }
  [[nodiscard]] std::uint64_t localization_probes() const noexcept {
    return localization_probes_;
  }

 private:
  void probe_pair(agents::AgentContext& ctx, util::SimTime t,
                  const topology::Deployment::CoLocation& city, topology::VantageId victim,
                  topology::VantageId attacker);
  [[nodiscard]] bool shares_server(std::string_view city_code, topology::VantageId a,
                                   topology::VantageId b) const noexcept;

  CoLocationProberConfig config_;
  std::uint64_t world_seed_;
  std::uint64_t pairs_probed_ = 0;
  std::uint64_t pairs_shared_ = 0;
  std::uint64_t localization_probes_ = 0;
};

}  // namespace cw::adversary
