// Attacker/defender policy state machines for the adversarial scenarios
// (DESIGN.md §8). Both are pure state — no engine, no RNG: the agents feed
// observations in event order and read the tuned knob back, so the policies
// are unit-testable in isolation and trivially deterministic.
//
// Modeled on the thimblerig moving-target simulation (see SNIPPETS.md §1):
// the attacker tunes its per-target attack probability from observed
// success, and the defender tunes ephemeral-service TTLs against a
// tolerable-attack threshold.
#pragma once

#include <cstdint>

#include "util/sim_time.h"

namespace cw::adversary {

// Attacker side. One "round" is one scheduled pass over the target space;
// observe() feeds each attack's outcome, end_round() tunes the probability
// used for the next pass.
struct AdaptivePolicyConfig {
  double initial_probability = 0.3;  // per-target attack probability at round 0
  double min_probability = 0.02;     // floor: the attacker never fully stops
  double raise = 1.5;                // multiplier after a round with any success
  double decay = 0.5;                // multiplier once `patience` is exhausted
  int patience = 2;                  // barren rounds tolerated before decaying
  // false = a constant-probability attacker (thimblerig's DumbAttacker);
  // end_round() still counts rounds but never moves the probability.
  bool adaptive = true;
};

class AdaptivePolicy {
 public:
  AdaptivePolicy() noexcept : AdaptivePolicy(AdaptivePolicyConfig{}) {}
  explicit AdaptivePolicy(const AdaptivePolicyConfig& config) noexcept;

  void observe(bool success) noexcept;
  // Ends the current round; returns the probability for the next one,
  // clamped to [min_probability, 1].
  double end_round() noexcept;

  [[nodiscard]] double probability() const noexcept { return probability_; }
  [[nodiscard]] double initial_probability() const noexcept {
    return config_.initial_probability;
  }
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t successes() const noexcept { return successes_; }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }
  [[nodiscard]] int barren_streak() const noexcept { return barren_streak_; }

 private:
  AdaptivePolicyConfig config_{};
  double probability_ = 0.0;
  std::uint64_t attempts_ = 0;
  std::uint64_t successes_ = 0;
  std::uint64_t round_successes_ = 0;
  std::uint64_t rounds_ = 0;
  int barren_streak_ = 0;
};

// Defender side: ephemeral-service TTL tuning. record_attack() counts every
// attack that lands on a live service; end_epoch() compares the epoch's
// count against the tolerable threshold and shrinks or grows the TTL used
// for subsequent rotations.
struct TtlPolicyConfig {
  util::SimDuration initial_ttl = 12 * util::kHour;
  util::SimDuration min_ttl = util::kHour;      // rotation-cost floor
  util::SimDuration max_ttl = 4 * util::kDay;   // idle-defender ceiling
  double shrink = 0.5;                   // applied when an epoch exceeds the threshold
  double grow = 1.25;                    // applied when an epoch sees no attacks
  std::uint64_t tolerable_attacks = 15;  // mean tolerable attack rate per epoch
};

class TtlPolicy {
 public:
  TtlPolicy() noexcept : TtlPolicy(TtlPolicyConfig{}) {}
  explicit TtlPolicy(const TtlPolicyConfig& config) noexcept;

  void record_attack() noexcept;
  // Ends the current evaluation epoch; returns the TTL for subsequent
  // rotations, clamped to [min_ttl, max_ttl].
  util::SimDuration end_epoch() noexcept;

  [[nodiscard]] util::SimDuration ttl() const noexcept { return ttl_; }
  [[nodiscard]] std::uint64_t attacks() const noexcept { return attacks_; }
  [[nodiscard]] std::uint64_t epochs() const noexcept { return epochs_; }

 private:
  TtlPolicyConfig config_{};
  util::SimDuration ttl_ = 0;
  std::uint64_t attacks_ = 0;
  std::uint64_t epoch_attacks_ = 0;
  std::uint64_t epochs_ = 0;
};

}  // namespace cw::adversary
