#include "adversary/moving_target.h"

#include <algorithm>
#include <utility>

namespace cw::adversary {

MovingTargetDefense::MovingTargetDefense(const topology::TargetUniverse& universe,
                                         MovingTargetConfig config, util::Rng rng)
    : universe_(&universe), config_(config), rng_(rng), ttl_(config.ttl) {
  const auto& cloud = universe.of_type(topology::NetworkType::kCloud);
  // Cap the pool at half the cloud space so pick_free_address() always finds
  // a vacant slot quickly (and a rotation has somewhere to go).
  const std::size_t cap = std::max<std::size_t>(1, cloud.size() / 2);
  const std::size_t count =
      std::min<std::size_t>(cap, static_cast<std::size_t>(std::max(0, config_.services)));
  residence_.reserve(count);
  for (std::size_t s = 0; s < count; ++s) {
    const net::IPv4Addr addr = pick_free_address();
    by_address_.emplace(addr.value(), s);
    residence_.push_back(addr);
  }
}

net::IPv4Addr MovingTargetDefense::pick_free_address() {
  const auto& cloud = universe_->of_type(topology::NetworkType::kCloud);
  const auto& targets = universe_->targets();
  for (;;) {
    const std::size_t idx = static_cast<std::size_t>(rng_.next_below(cloud.size()));
    const net::IPv4Addr addr = targets[cloud[idx]].address;
    if (by_address_.find(addr.value()) == by_address_.end()) return addr;
  }
}

void MovingTargetDefense::start(sim::Engine& engine, util::SimTime window_end) {
  if (config_.rotate) {
    for (std::size_t s = 0; s < residence_.size(); ++s) {
      // Stagger the first expirations so the whole pool does not rotate in
      // one burst at t = ttl.
      const auto first = static_cast<util::SimTime>(
          rng_.uniform_int(ttl_.ttl() / 2, std::max<util::SimDuration>(1, ttl_.ttl())));
      schedule_rotation(engine, s, first, window_end);
    }
  }
  for (util::SimTime t = config_.evaluation_epoch; t < window_end;
       t += config_.evaluation_epoch) {
    engine.schedule_at(t, [this](sim::Engine&) { ttl_.end_epoch(); });
  }
}

void MovingTargetDefense::schedule_rotation(sim::Engine& engine, std::size_t service,
                                            util::SimTime at, util::SimTime window_end) {
  if (at >= window_end) return;
  engine.schedule_at(at, [this, service, window_end](sim::Engine& e) {
    by_address_.erase(residence_[service].value());
    const net::IPv4Addr fresh = pick_free_address();
    by_address_.emplace(fresh.value(), service);
    residence_[service] = fresh;
    ++rotations_;
    schedule_rotation(e, service, e.now() + ttl_.ttl(), window_end);
  });
}

bool MovingTargetDefense::record_attack(net::IPv4Addr addr) {
  if (by_address_.find(addr.value()) == by_address_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  ttl_.record_attack();
  return true;
}

DefenseAgent::DefenseAgent(capture::ActorId id, std::shared_ptr<MovingTargetDefense> defense)
    : Actor(id, /*asn=*/0, /*source_count=*/1, util::Rng(id)), defense_(std::move(defense)) {}

void DefenseAgent::start(agents::AgentContext& ctx) {
  defense_->start(*ctx.engine, ctx.window_end);
}

}  // namespace cw::adversary
