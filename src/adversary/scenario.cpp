#include "adversary/scenario.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "adversary/adaptive.h"
#include "adversary/colocation.h"
#include "agents/campaign.h"
#include "agents/population.h"

namespace cw::adversary {
namespace {

void install_attackers(agents::Population& population, const ScenarioConfig& config,
                       const topology::TargetUniverse& universe, util::Rng& rng,
                       capture::ActorId& next) {
  std::shared_ptr<MovingTargetDefense> defense;
  if (config.kind != ScenarioKind::kFixedAttackers) {
    MovingTargetConfig mtd = config.defense;
    mtd.rotate = config.kind == ScenarioKind::kMovingTarget;
    defense = std::make_shared<MovingTargetDefense>(universe, mtd, rng.stream("mtd"));
    population.adopt(std::make_unique<DefenseAgent>(next++, defense));
  }
  for (int i = 0; i < config.attackers; ++i) {
    AdaptiveAttackerConfig attacker;
    char label[32];
    std::snprintf(label, sizeof(label), "adaptive-%d", i);
    attacker.label = label;
    attacker.asn = 64821 + static_cast<net::Asn>(i);
    attacker.policy = config.policy;
    attacker.policy.adaptive = config.kind != ScenarioKind::kFixedAttackers;
    const capture::ActorId id = next++;
    population.adopt(
        std::make_unique<AdaptiveAttacker>(id, rng.stream(id), attacker, defense));
  }
}

void install_probers(agents::Population& population, const ScenarioConfig& config,
                     util::Rng& rng, std::uint64_t seed, capture::ActorId& next) {
  for (int i = 0; i < config.probers; ++i) {
    CoLocationProberConfig prober;
    char label[32];
    std::snprintf(label, sizeof(label), "colocation-%d", i);
    prober.label = label;
    prober.asn = 64901 + static_cast<net::Asn>(i);
    prober.share_rate = config.share_rate;
    // Stagger the probers' sweeps so their lock/check traffic interleaves.
    prober.first_pass = util::kHour + i * 20 * util::kMinute;
    const capture::ActorId id = next++;
    population.adopt(std::make_unique<CoLocationProber>(id, rng.stream(id), prober, seed));
  }
}

// Distinct-fingerprint scan families for the clustering evaluation: every
// family pins its own (port, dictionary, favorite credential, cadence), so
// sources of one family share a behavioral fingerprint that separates
// cleanly from every other family's — the regime where a correct
// implementation of analysis::clusters must score purity/ARI >= 0.9.
void install_families(agents::Population& population, const ScenarioConfig& config,
                      util::Rng& rng, capture::ActorId& next) {
  // Credentials only survive capture on the cowrie ports (22/2222/23/2323),
  // so every family lives on one of those; families sharing a port are told
  // apart by disjoint dictionary slices (their distinct wordlists) and, for
  // SSH, a per-operator client banner.
  struct FamilyShape {
    net::Port port;
    proto::CredentialDictionary dictionary;
    net::Protocol protocol;
    int slice_offset;
    int slice_count;
    const char* ssh_software;  // nullptr = stock banner / telnet
    util::SimDuration wave_duration;
    int min_attempts;
    int max_attempts;
  };
  static constexpr util::SimDuration kH = util::kHour;
  const FamilyShape shapes[] = {
      {22, proto::CredentialDictionary::kGenericSsh, net::Protocol::kSsh, 0, 10, "libssh2_1.4.3",
       24 * kH, 4, 8},
      {2222, proto::CredentialDictionary::kGenericSsh, net::Protocol::kSsh, 10, 10,
       "Go_ssh_0.2", 12 * kH, 2, 4},
      {23, proto::CredentialDictionary::kGenericTelnet, net::Protocol::kTelnet, 0, 7, nullptr,
       24 * kH, 6, 10},
      {2323, proto::CredentialDictionary::kMirai, net::Protocol::kTelnet, 0, 9, nullptr, 8 * kH,
       3, 6},
      {22, proto::CredentialDictionary::kMirai, net::Protocol::kSsh, 9, 9, "paramiko_2.7.1",
       6 * kH, 2, 5},
      {23, proto::CredentialDictionary::kMirai, net::Protocol::kTelnet, 18, 9, nullptr,
       12 * kH, 1, 3},
      {2323, proto::CredentialDictionary::kGenericTelnet, net::Protocol::kTelnet, 7, 8, nullptr,
       24 * kH, 5, 9},
      {2222, proto::CredentialDictionary::kHuaweiRegional, net::Protocol::kSsh, 0, 8,
       "OpenSSH_5.3", 4 * kH, 2, 4},
  };
  constexpr int kShapeCount = static_cast<int>(sizeof(shapes) / sizeof(shapes[0]));
  for (int f = 0; f < config.families; ++f) {
    const FamilyShape& shape = shapes[f % kShapeCount];
    agents::CampaignConfig family;
    char label[32];
    std::snprintf(label, sizeof(label), "family-%d", f);
    family.label = label;
    family.asn = 64851 + static_cast<net::Asn>(f);
    family.sources = config.family_sources;
    family.ports = {shape.port};
    family.protocol = shape.protocol;
    family.payload = agents::PayloadKind::kBruteforce;
    family.dictionary = shape.dictionary;
    family.dict_slice_offset = shape.slice_offset;
    family.dict_slice_count = shape.slice_count;
    if (shape.ssh_software != nullptr) family.ssh_software = shape.ssh_software;
    // Pin the favorite credential hard: the family's sources share a
    // dominant (username, password) from their own slice.
    family.dict_offset = shape.slice_offset;
    family.favorite_weight = 0.9;
    family.malicious = true;
    family.waves = static_cast<int>(util::kWeek / shape.wave_duration);
    family.wave_duration = shape.wave_duration;
    family.stable_subset = true;
    family.min_attempts = shape.min_attempts;
    family.max_attempts = shape.max_attempts;
    family.filter.cloud_coverage = 1.0;
    family.filter.edu_coverage = 0.5;
    const capture::ActorId id = next++;
    population.adopt(std::make_unique<agents::ScanCampaign>(id, rng.stream(id), family));
  }
}

}  // namespace

std::string_view scenario_kind_name(ScenarioKind kind) noexcept {
  switch (kind) {
    case ScenarioKind::kNone: return "none";
    case ScenarioKind::kFixedAttackers: return "fixed-attackers";
    case ScenarioKind::kAdaptiveAttackers: return "adaptive-attackers";
    case ScenarioKind::kMovingTarget: return "moving-target";
    case ScenarioKind::kColocation: return "colocation";
    case ScenarioKind::kClusterFamilies: return "cluster-families";
  }
  return "unknown";
}

void install(agents::Population& population, const ScenarioConfig& config,
             const topology::TargetUniverse& universe, std::uint64_t seed) {
  if (config.kind == ScenarioKind::kNone) return;
  util::Rng rng = util::Rng(seed).stream("adversary");
  capture::ActorId next = population.next_actor_id();
  switch (config.kind) {
    case ScenarioKind::kNone: break;
    case ScenarioKind::kFixedAttackers:
    case ScenarioKind::kAdaptiveAttackers:
    case ScenarioKind::kMovingTarget:
      install_attackers(population, config, universe, rng, next);
      break;
    case ScenarioKind::kColocation:
      install_probers(population, config, rng, seed, next);
      break;
    case ScenarioKind::kClusterFamilies:
      install_families(population, config, rng, next);
      break;
  }
}

}  // namespace cw::adversary
