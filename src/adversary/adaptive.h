// The adaptive attacker (DESIGN.md §8a): an SSH brute-force operation that
// learns where the defender's ephemeral services live and tunes its explore
// probability from observed success via AdaptivePolicy.
//
// Each round (one scheduled pass per `round` interval):
//   1. exploit — re-attack every address where an attack previously landed
//      on a live service; a rotation since last round turns the address
//      stale and it is forgotten,
//   2. explore — attack each not-yet-known cloud target with the policy's
//      current probability, learning addresses that hit,
//   3. adapt — feed the round's outcomes to the policy, which raises the
//      probability while attacking pays and decays it through barren rounds.
//
// Without a defense object every attack "succeeds" (a static world, nothing
// ever moves), which is the fixed-policy baseline the sweep compares
// against when the policy is also frozen (AdaptivePolicyConfig::adaptive =
// false).
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "adversary/moving_target.h"
#include "adversary/policy.h"
#include "agents/actor.h"
#include "net/asn.h"
#include "net/ports.h"
#include "proto/credentials.h"

namespace cw::adversary {

struct AdaptiveAttackerConfig {
  std::string label = "adaptive";
  net::Asn asn = 64821;
  int sources = 4;
  net::Port port = 22;
  proto::CredentialDictionary dictionary = proto::CredentialDictionary::kGenericSsh;
  int min_attempts = 2;  // credential attempts per attacked target
  int max_attempts = 6;
  double explore_coverage = 1.0;  // fraction of cloud targets eligible to explore
  util::SimDuration round = util::kDay;
  AdaptivePolicyConfig policy;
};

class AdaptiveAttacker : public agents::Actor {
 public:
  AdaptiveAttacker(capture::ActorId id, util::Rng rng, AdaptiveAttackerConfig config,
                   std::shared_ptr<MovingTargetDefense> defense);

  void start(agents::AgentContext& ctx) override;
  [[nodiscard]] std::string_view kind() const noexcept override { return "adaptive-attacker"; }
  [[nodiscard]] bool is_malicious() const noexcept override { return true; }

  [[nodiscard]] const AdaptivePolicy& policy() const noexcept { return policy_; }
  [[nodiscard]] std::size_t known_services() const noexcept { return known_.size(); }

 private:
  void run_round(agents::AgentContext& ctx, util::SimTime t);
  // Emits the brute-force burst against one target and reports whether it
  // landed on a live service.
  bool attack(agents::AgentContext& ctx, util::SimTime t, net::IPv4Addr dst);

  AdaptiveAttackerConfig config_;
  AdaptivePolicy policy_;
  std::shared_ptr<MovingTargetDefense> defense_;  // may be null (static world)
  std::vector<net::IPv4Addr> known_;              // learned service locations
};

}  // namespace cw::adversary
