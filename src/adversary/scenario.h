// Scenario configuration for the adversarial extensions (DESIGN.md §8).
// core::ExperimentConfig embeds a ScenarioConfig; install() is called by
// LiveExperiment after the standard population is built and before the
// reputation oracle is constructed, so adversary actors join ground truth
// and start_all() like any population member.
//
// The default (ScenarioKind::kNone) installs nothing and draws no
// randomness: baseline corpora stay bit-for-bit identical to pre-adversary
// builds (the golden-hash CI tiers depend on this).
#pragma once

#include <cstdint>
#include <string_view>

#include "adversary/moving_target.h"
#include "adversary/policy.h"

namespace cw::agents {
class Population;
}  // namespace cw::agents

namespace cw::adversary {

// Which adversarial extension the experiment runs.
enum class ScenarioKind : std::uint8_t {
  kNone = 0,
  kFixedAttackers,     // constant-probability attackers, static services
  kAdaptiveAttackers,  // adaptive probability against static services
  kMovingTarget,       // adaptive probability against rotating services
  kColocation,         // Shadow-Hunting co-location probe family
  kClusterFamilies,    // distinct-fingerprint families for analysis::clusters
};

std::string_view scenario_kind_name(ScenarioKind kind) noexcept;

struct ScenarioConfig {
  ScenarioKind kind = ScenarioKind::kNone;
  // When set (clustering evaluation), the standard population is skipped
  // entirely: the corpus holds crawler traffic plus the scenario's actors,
  // so ground-truth family labels are the only attack structure present.
  bool replace_population = false;

  // kFixedAttackers / kAdaptiveAttackers / kMovingTarget
  int attackers = 6;
  AdaptivePolicyConfig policy;
  MovingTargetConfig defense;  // `rotate` is forced by the kind

  // kColocation
  int probers = 3;
  double share_rate = 0.5;

  // kClusterFamilies
  int families = 8;
  int family_sources = 12;
};

// Appends the scenario's actors to the population, numbering them after the
// existing members. Pure function of (population, config, universe, seed).
void install(agents::Population& population, const ScenarioConfig& config,
             const topology::TargetUniverse& universe, std::uint64_t seed);

}  // namespace cw::adversary
