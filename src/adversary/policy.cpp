#include "adversary/policy.h"

#include <algorithm>

namespace cw::adversary {
namespace {

double clamp_probability(double p, double lo) noexcept {
  return std::min(1.0, std::max(lo, p));
}

}  // namespace

AdaptivePolicy::AdaptivePolicy(const AdaptivePolicyConfig& config) noexcept : config_(config) {
  config_.min_probability = std::min(1.0, std::max(0.0, config_.min_probability));
  probability_ = clamp_probability(config_.initial_probability, config_.min_probability);
}

void AdaptivePolicy::observe(bool success) noexcept {
  ++attempts_;
  if (success) {
    ++successes_;
    ++round_successes_;
  }
}

double AdaptivePolicy::end_round() noexcept {
  ++rounds_;
  const bool barren = round_successes_ == 0;
  round_successes_ = 0;
  if (!config_.adaptive) return probability_;
  if (!barren) {
    barren_streak_ = 0;
    probability_ = clamp_probability(probability_ * config_.raise, config_.min_probability);
    return probability_;
  }
  if (++barren_streak_ >= config_.patience) {
    // Keep decaying every round past the patience window: a long
    // zero-success streak converges to the floor instead of oscillating.
    probability_ = clamp_probability(probability_ * config_.decay, config_.min_probability);
  }
  return probability_;
}

TtlPolicy::TtlPolicy(const TtlPolicyConfig& config) noexcept : config_(config) {
  config_.min_ttl = std::max<util::SimDuration>(1, config_.min_ttl);
  config_.max_ttl = std::max(config_.min_ttl, config_.max_ttl);
  ttl_ = std::clamp(config_.initial_ttl, config_.min_ttl, config_.max_ttl);
}

void TtlPolicy::record_attack() noexcept {
  ++attacks_;
  ++epoch_attacks_;
}

util::SimDuration TtlPolicy::end_epoch() noexcept {
  ++epochs_;
  const std::uint64_t seen = epoch_attacks_;
  epoch_attacks_ = 0;
  if (seen > config_.tolerable_attacks) {
    ttl_ = std::max(config_.min_ttl,
                    static_cast<util::SimDuration>(static_cast<double>(ttl_) * config_.shrink));
  } else if (seen == 0) {
    ttl_ = std::min(config_.max_ttl,
                    static_cast<util::SimDuration>(static_cast<double>(ttl_) * config_.grow));
  }
  return ttl_;
}

}  // namespace cw::adversary
