#include "adversary/adaptive.h"

#include <algorithm>
#include <utility>

#include "proto/payloads.h"

namespace cw::adversary {

AdaptiveAttacker::AdaptiveAttacker(capture::ActorId id, util::Rng rng,
                                   AdaptiveAttackerConfig config,
                                   std::shared_ptr<MovingTargetDefense> defense)
    : Actor(id, config.asn, config.sources, rng),
      config_(std::move(config)),
      policy_(config_.policy),
      defense_(std::move(defense)) {}

void AdaptiveAttacker::start(agents::AgentContext& ctx) {
  // Per-actor start offset so a fleet of attackers interleaves instead of
  // firing in one synchronized burst.
  const auto offset = static_cast<util::SimTime>(rng_.uniform_int(0, util::kHour));
  for (util::SimTime t = offset; t < ctx.window_end; t += config_.round) {
    ctx.engine->schedule_at(t, [this, &ctx](sim::Engine& e) { run_round(ctx, e.now()); });
  }
}

void AdaptiveAttacker::run_round(agents::AgentContext& ctx, util::SimTime t) {
  // Exploit phase: revisit every learned service location. A defender
  // rotation since last round makes the attack miss, and the address is
  // forgotten — exactly the staleness signal the policy adapts to.
  std::vector<net::IPv4Addr> still_live;
  still_live.reserve(known_.size());
  for (const net::IPv4Addr addr : known_) {
    const bool success = attack(ctx, t, addr);
    policy_.observe(success);
    if (success) still_live.push_back(addr);
  }
  known_ = std::move(still_live);

  // Explore phase: probe the rest of the cloud space with the tuned
  // probability, learning fresh service locations.
  const auto& cloud = ctx.universe->of_type(topology::NetworkType::kCloud);
  const auto& targets = ctx.universe->targets();
  for (const std::size_t idx : cloud) {
    const net::IPv4Addr addr = targets[idx].address;
    if (std::find_if(known_.begin(), known_.end(), [addr](net::IPv4Addr k) {
          return k.value() == addr.value();
        }) != known_.end()) {
      continue;
    }
    if (!covers(addr, config_.explore_coverage)) continue;
    if (!rng_.bernoulli(policy_.probability())) continue;
    const bool success = attack(ctx, t, addr);
    policy_.observe(success);
    if (success) known_.push_back(addr);
  }
  policy_.end_round();
}

bool AdaptiveAttacker::attack(agents::AgentContext& ctx, util::SimTime t, net::IPv4Addr dst) {
  // Success is attacker-side knowledge (did the brute-force reach a live
  // service?); the emitted records are identical either way.
  const bool success = defense_ == nullptr || defense_->record_attack(dst);
  const net::Protocol protocol =
      config_.port == 23 ? net::Protocol::kTelnet : net::Protocol::kSsh;
  emit(ctx, t, dst, config_.port, proto::probe_payload(protocol), std::nullopt, protocol,
       /*malicious=*/true);
  const int attempts = static_cast<int>(
      rng_.uniform_int(config_.min_attempts, std::max(config_.max_attempts, config_.min_attempts)));
  for (int i = 0; i < attempts; ++i) {
    const std::string payload = protocol == net::Protocol::kTelnet
                                    ? proto::telnet_negotiation()
                                    : proto::ssh_client_banner();
    emit(ctx, t + (i + 1) * 3 * util::kSecond, dst, config_.port, payload,
         proto::sample_credential(config_.dictionary, rng_), protocol, /*malicious=*/true);
  }
  return success;
}

}  // namespace cw::adversary
