#include "core/tables.h"

#include <map>
#include <set>
#include <unordered_set>

#include "agents/population.h"
#include "analysis/characteristics.h"
#include "analysis/geography.h"
#include "analysis/neighborhood.h"
#include "analysis/network.h"
#include "analysis/overlap.h"
#include "analysis/protocols.h"
#include "analysis/structure.h"
#include "stats/descriptive.h"
#include "util/strings.h"
#include "util/table.h"

namespace cw::core {
namespace {

using util::format_double;

std::string pct(double value, int precision = 0) {
  return format_double(value, precision) + "%";
}

std::string phi(double value) { return format_double(value, 2); }

std::string magnitude_suffix(stats::EffectMagnitude m) {
  return " (" + std::string(stats::magnitude_name(m)) + ")";
}

}  // namespace

std::string render_table1(const ExperimentResult& result) {
  util::TextTable table({"Network", "Type", "Collection", "# Vantage IPs", "# Unique Scan IPs",
                         "# Unique Scan ASes"});

  // GreyNoise providers aggregate across their regions; Honeytrap and
  // telescope vantage points report individually — mirroring Table 1's rows.
  struct RowKey {
    std::string name;
    std::vector<topology::VantageId> vantages;
    topology::NetworkType type;
    topology::CollectionMethod collection;
  };
  std::vector<RowKey> rows;
  std::map<std::string, std::size_t> greynoise_rows;
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    if (vp.collection == topology::CollectionMethod::kGreyNoise) {
      const std::string key = std::string(topology::provider_name(vp.provider));
      auto it = greynoise_rows.find(key);
      if (it == greynoise_rows.end()) {
        greynoise_rows.emplace(key, rows.size());
        rows.push_back(RowKey{key, {vp.id}, vp.type, vp.collection});
      } else {
        rows[it->second].vantages.push_back(vp.id);
      }
    } else {
      rows.push_back(RowKey{vp.name, {vp.id}, vp.type, vp.collection});
    }
  }

  const capture::SessionFrame& frame = result.frame();
  for (const RowKey& row : rows) {
    std::unordered_set<std::uint32_t> ips;
    std::unordered_set<std::uint32_t> ases;
    std::size_t addresses = 0;
    for (topology::VantageId id : row.vantages) {
      addresses += result.deployment().at(id).addresses.size();
      for (std::uint32_t index : frame.for_vantage(id)) {
        ips.insert(frame.src(index));
        ases.insert(frame.src_as(index));
      }
    }
    table.add_row({row.name, std::string(topology::network_type_name(row.type)),
                   std::string(topology::collection_method_name(row.collection)),
                   std::to_string(addresses), std::to_string(ips.size()),
                   std::to_string(ases.size())});
  }
  return table.render();
}

namespace {

// Row order shared by table2_tasks and render_table2_from.
constexpr analysis::TrafficScope kTable2Scopes[] = {
    analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
    analysis::TrafficScope::kHttp80, analysis::TrafficScope::kHttpAllPorts};

}  // namespace

std::vector<std::function<analysis::NeighborhoodSummary()>> table2_tasks(
    const ExperimentResult& result) {
  std::vector<std::function<analysis::NeighborhoodSummary()>> tasks;
  for (const auto scope : kTable2Scopes) {
    for (const auto characteristic : analysis::characteristics_for_scope(scope)) {
      tasks.push_back([&result, scope, characteristic] {
        // Cache-backed: the per-neighbor slices are shared across this
        // scope's characteristic rows instead of being rebuilt per row.
        return analysis::analyze_neighborhoods(result.table_cache(), scope, characteristic);
      });
    }
  }
  return tasks;
}

std::string render_table2_from(const std::vector<analysis::NeighborhoodSummary>& summaries) {
  util::TextTable table({"Scope", "Traffic Characteristic", "% Neighborhoods different", "n",
                         "Avg phi", "Magnitude"});
  std::size_t next = 0;
  for (const auto scope : kTable2Scopes) {
    for (const auto characteristic : analysis::characteristics_for_scope(scope)) {
      const analysis::NeighborhoodSummary& summary = summaries.at(next++);
      table.add_row({std::string(analysis::scope_name(scope)),
                     std::string(analysis::characteristic_name(characteristic)),
                     pct(summary.pct_different), std::to_string(summary.neighborhoods_tested),
                     summary.neighborhoods_different > 0 ? phi(summary.avg_phi) : "-",
                     summary.neighborhoods_different > 0
                         ? std::string(stats::magnitude_name(summary.typical_magnitude))
                         : "-"});
    }
    table.add_separator();
  }
  return table.render();
}

std::string render_table2(const ExperimentResult& result) {
  std::vector<analysis::NeighborhoodSummary> summaries;
  for (const auto& task : table2_tasks(result)) summaries.push_back(task());
  return render_table2_from(summaries);
}

std::string render_table3(const analysis::LeakExperimentResult& leak) {
  util::TextTable table({"Service", "Traffic", "Censys Leaked", "Shodan Leaked",
                         "Previously Leaked"});
  auto cell = [&](net::Port port, analysis::LeakCondition condition, bool malicious) {
    const analysis::LeakCell* c = leak.find(port, condition);
    if (c == nullptr) return std::string("-");
    const double fold = malicious ? c->fold_malicious : c->fold_all;
    const bool significant = malicious ? c->mwu_malicious : c->mwu_all;
    std::string out = format_double(fold, 1);
    if (significant) out = "**" + out + "**";  // bold: stochastically greater
    if (!malicious && c->ks_all) out += "*";   // spike-driven distribution shift
    return out;
  };
  for (net::Port port : {net::Port{80}, net::Port{22}, net::Port{23}}) {
    const std::string service = std::string(net::protocol_name(net::iana_assignment(port))) +
                                "/" + std::to_string(port);
    table.add_row({service, "All",
                   cell(port, analysis::LeakCondition::kCensysLeaked, false),
                   cell(port, analysis::LeakCondition::kShodanLeaked, false),
                   cell(port, analysis::LeakCondition::kPreviouslyLeaked, false)});
    table.add_row({"", "Malicious",
                   cell(port, analysis::LeakCondition::kCensysLeaked, true),
                   cell(port, analysis::LeakCondition::kShodanLeaked, true),
                   cell(port, analysis::LeakCondition::kPreviouslyLeaked, true)});
  }
  std::string out = table.render();
  out += "Fold increase in traffic per hour vs. the control group.\n";
  out += "** = one-sided Mann-Whitney U significant; * = KS distribution shift (spikes).\n";
  return out;
}

namespace {

struct Table4Row {
  analysis::Characteristic characteristic;
  analysis::TrafficScope scope;
};

}  // namespace

std::string render_table4(const ExperimentResult& result) {
  util::TextTable table({"Traffic", "Protocol", "AWS: region (phi)", "Google: region (phi)",
                         "Linode: region (phi)"});
  const Table4Row rows[] = {
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kHttp80},
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kHttpAllPorts},
      {analysis::Characteristic::kTopUsername, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kTopUsername, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kTopPassword, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kTopPayload, analysis::TrafficScope::kHttp80},
      {analysis::Characteristic::kTopPayload, analysis::TrafficScope::kHttpAllPorts},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kAnyAll},
  };
  const topology::Provider providers[] = {topology::Provider::kAws, topology::Provider::kGoogle,
                                          topology::Provider::kLinode};
  for (const Table4Row& row : rows) {
    std::vector<std::string> cells = {
        std::string(analysis::characteristic_name(row.characteristic)),
        std::string(analysis::scope_name(row.scope))};
    for (const topology::Provider provider : providers) {
      const analysis::MostDifferentRegion most = analysis::most_different_region(
          result.table_cache(), provider, row.scope, row.characteristic);
      if (!most.any_significant) {
        cells.push_back("-");
      } else {
        cells.push_back(most.region_code + " (" + phi(most.avg_phi) + ")" +
                        magnitude_suffix(most.magnitude));
      }
    }
    table.add_row(std::move(cells));
  }
  return table.render();
}

std::string render_table5(const ExperimentResult& result) {
  util::TextTable table({"Scope", "Traffic Characteristic", "US", "EU", "APAC",
                         "Intercontinental"});
  const analysis::TrafficScope scopes[] = {
      analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
      analysis::TrafficScope::kHttp80, analysis::TrafficScope::kHttpAllPorts};
  for (const auto scope : scopes) {
    for (const auto characteristic : analysis::characteristics_for_scope(scope)) {
      const analysis::GeoSimilarity similarity =
          analysis::geo_similarity(result.table_cache(), scope, characteristic);
      std::vector<std::string> cells = {
          std::string(analysis::scope_name(scope)),
          std::string(analysis::characteristic_name(characteristic))};
      for (std::size_t g = 0; g < analysis::kPairGroupCount; ++g) {
        const auto group = static_cast<analysis::PairGroup>(g);
        cells.push_back(pct(similarity.pct_similar(group)) + " (n=" +
                        std::to_string(similarity.tested[g]) + ")");
      }
      table.add_row(std::move(cells));
    }
    table.add_separator();
  }
  return table.render();
}

std::string render_table6(const ExperimentResult& result) {
  util::TextTable table({"City/State", "Providers"});
  for (const topology::Deployment::CoLocation& city :
       result.deployment().colocated_clouds()) {
    std::set<std::string> providers;
    for (topology::VantageId id : city.vantage_ids) {
      providers.insert(std::string(topology::provider_name(result.deployment().at(id).provider)));
    }
    std::vector<std::string> names(providers.begin(), providers.end());
    table.add_row({city.city_code, util::join(names, ", ")});
  }
  return table.render();
}

namespace {

std::string network_cell(const analysis::NetworkComparison& comparison) {
  if (!comparison.measurable) return "x";
  std::string out = std::to_string(comparison.pairs_different) + "/" +
                    std::to_string(comparison.pairs_tested);
  if (comparison.pairs_different > 0) {
    out += " phi=" + phi(comparison.avg_phi) +
           " (" + std::string(stats::magnitude_name(comparison.strongest)) + ")";
  }
  return out;
}

}  // namespace

std::string render_table7(const ExperimentResult& result) {
  util::TextTable table({"Traffic", "Protocol", "Cloud-Cloud", "Cloud-EDU", "EDU-EDU"});
  const auto cc = analysis::cloud_cloud_pairs(result.deployment());
  const auto ce = analysis::cloud_edu_pairs(result.deployment());
  const auto ee = analysis::edu_edu_pairs(result.deployment());

  struct RowSpec {
    analysis::Characteristic characteristic;
    analysis::TrafficScope scope;
  };
  const RowSpec rows[] = {
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kHttp80},
      {analysis::Characteristic::kTopAs, analysis::TrafficScope::kHttpAllPorts},
      {analysis::Characteristic::kTopUsername, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kTopUsername, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kTopPassword, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kTopPassword, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kTopPayload, analysis::TrafficScope::kHttp80},
      {analysis::Characteristic::kTopPayload, analysis::TrafficScope::kHttpAllPorts},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kSsh22},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kTelnet23},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kHttp80},
      {analysis::Characteristic::kFracMalicious, analysis::TrafficScope::kHttpAllPorts},
  };
  for (const RowSpec& row : rows) {
    auto run = [&](const std::vector<std::pair<topology::VantageId, topology::VantageId>>& pairs) {
      // Cache-backed: the cloud-EDU and EDU-EDU families reuse the Stanford
      // and Merit tables across rows that repeat a (scope, characteristic).
      return analysis::compare_vantage_pairs(result.table_cache(), pairs, row.scope,
                                             row.characteristic);
    };
    table.add_row({std::string(analysis::characteristic_name(row.characteristic)),
                   std::string(analysis::scope_name(row.scope)), network_cell(run(cc)),
                   network_cell(run(ce)), network_cell(run(ee))});
  }
  std::string out = table.render();
  out += "Cells: (# significantly different pairs)/(pairs tested); x = not measurable.\n";
  return out;
}

std::string render_table8(const ExperimentResult& result) {
  util::TextTable table({"Port", "|Tel & Cloud|/|Cloud|", "|Tel & EDU|/|EDU|",
                         "|Cloud & EDU|/|Cloud|"});
  const auto rows = analysis::scanner_overlap(
      result.frame(), net::popular_ports(),
      {agents::Population::kCensysActorId, agents::Population::kShodanActorId});
  auto cell = [](const std::optional<double>& value) {
    return value ? pct(*value * 100.0) : std::string("-");
  };
  for (const analysis::OverlapRow& row : rows) {
    table.add_row({std::to_string(row.port), cell(row.tel_cloud_over_cloud),
                   cell(row.tel_edu_over_edu), cell(row.cloud_edu_over_cloud)});
  }
  return table.render();
}

std::string render_table9(const ExperimentResult& result) {
  util::TextTable table(
      {"Port", "|Tel & Mal.Cloud|/|Mal.Cloud|", "|Tel & Mal.EDU|/|Mal.EDU|"});
  const std::vector<net::Port> ports = {23, 2323, 80, 8080, 2222, 22};
  const auto rows = analysis::attacker_overlap(
      result.frame(), ports,
      {agents::Population::kCensysActorId, agents::Population::kShodanActorId});
  auto cell = [](const std::optional<double>& value) {
    return value ? pct(*value * 100.0, 1) : std::string("x");
  };
  for (const analysis::MaliciousOverlapRow& row : rows) {
    table.add_row({std::to_string(row.port), cell(row.tel_over_malicious_cloud),
                   cell(row.tel_over_malicious_edu)});
  }
  return table.render();
}

namespace {

// Row order shared by table10_tasks and render_table10_from.
constexpr analysis::TrafficScope kTable10Scopes[] = {
    analysis::TrafficScope::kSsh22, analysis::TrafficScope::kTelnet23,
    analysis::TrafficScope::kHttp80, analysis::TrafficScope::kAnyAll};

}  // namespace

std::vector<std::function<analysis::NetworkComparison(runner::ThreadPool*)>> table10_tasks(
    const ExperimentResult& result) {
  std::vector<std::function<analysis::NetworkComparison(runner::ThreadPool*)>> tasks;
  for (const auto scope : kTable10Scopes) {
    for (const bool edu : {true, false}) {
      tasks.push_back([&result, scope, edu](runner::ThreadPool* pool) {
        const auto pairs = edu ? analysis::telescope_edu_pairs(result.deployment())
                               : analysis::telescope_cloud_pairs(result.deployment());
        // Cache-backed: Orion's table per scope is built once and shared by
        // all five of its pairs (and both task closures for the scope); the
        // big Any/All build shards through the pool when one is supplied.
        return analysis::compare_vantage_pairs(result.table_cache(), pairs, scope,
                                               analysis::Characteristic::kTopAs,
                                               analysis::NetworkOptions{}, pool);
      });
    }
  }
  return tasks;
}

std::string render_table10_from(const std::vector<analysis::NetworkComparison>& comparisons) {
  util::TextTable table({"Traffic", "Protocol", "Telescope-EDU", "Telescope-Cloud"});
  std::size_t next = 0;
  for (const auto scope : kTable10Scopes) {
    const analysis::NetworkComparison& te = comparisons.at(next++);
    const analysis::NetworkComparison& tc = comparisons.at(next++);
    table.add_row({"Top 3 AS", std::string(analysis::scope_name(scope)), network_cell(te),
                   network_cell(tc)});
  }
  return table.render();
}

std::string render_table10(const ExperimentResult& result) {
  std::vector<analysis::NetworkComparison> comparisons;
  for (const auto& task : table10_tasks(result)) comparisons.push_back(task(nullptr));
  return render_table10_from(comparisons);
}

namespace {

std::string render_protocols(const ExperimentResult& result, bool with_oracle) {
  analysis::ProtocolOptions options;
  if (with_oracle) options.oracle = &result.oracle();
  const auto rows = analysis::protocol_breakdown(result.frame(), options);

  std::vector<std::string> header = {"Protocol/Port", "Breakdown"};
  if (with_oracle) {
    header.push_back("% Benign");
    header.push_back("% Malicious");
  }
  util::TextTable table(header);
  for (const analysis::ProtocolBreakdownRow& row : rows) {
    {
      std::vector<std::string> cells = {"HTTP/" + std::to_string(row.port),
                                        pct(row.pct_expected)};
      if (with_oracle) {
        cells.push_back(pct(row.expected_benign_pct));
        cells.push_back(pct(row.expected_malicious_pct));
      }
      table.add_row(std::move(cells));
    }
    {
      std::vector<std::string> cells = {"~HTTP/" + std::to_string(row.port),
                                        pct(row.pct_unexpected)};
      if (with_oracle) {
        cells.push_back(pct(row.unexpected_benign_pct));
        cells.push_back(pct(row.unexpected_malicious_pct));
      }
      table.add_row(std::move(cells));
    }
  }
  std::string out = table.render();
  out += "Unexpected-protocol shares per port:\n";
  for (const analysis::ProtocolBreakdownRow& row : rows) {
    out += "  port " + std::to_string(row.port) + ": ";
    std::vector<std::string> parts;
    for (const analysis::ProtocolShare& share : row.unexpected_shares) {
      parts.push_back(std::string(net::protocol_name(share.protocol)) + "=" +
                      format_double(share.pct_of_port, 1) + "%");
    }
    out += util::join(parts, ", ") + "\n";
  }
  return out;
}

}  // namespace

std::string render_table11(const ExperimentResult& result) {
  return render_protocols(result, /*with_oracle=*/true);
}

std::string render_table17(const ExperimentResult& result) {
  return render_protocols(result, /*with_oracle=*/false);
}

std::string render_sec32(const ExperimentResult& result) {
  const capture::SessionFrame& frame = result.frame();
  std::uint64_t telnet_total = 0, telnet_auth = 0;
  std::uint64_t ssh_total = 0, ssh_auth = 0;
  std::uint64_t http_total = 0, http_exploit = 0;
  std::set<std::uint32_t> http_payload_ids;
  std::set<std::uint32_t> http_malicious_ids;

  for (std::uint32_t i = 0; i < frame.size(); ++i) {
    if (!frame.has_payload(i) && !frame.has_credential(i)) continue;
    if (frame.port(i) == 23) {
      ++telnet_total;
      if (frame.has_credential(i)) ++telnet_auth;
    } else if (frame.port(i) == 22) {
      ++ssh_total;
      if (frame.has_credential(i)) ++ssh_auth;
    } else if (frame.port(i) == 80 && frame.has_payload(i)) {
      ++http_total;
      const bool malicious = frame.verdict(i) == capture::SessionFrame::Verdict::kMalicious;
      if (malicious) ++http_exploit;
      http_payload_ids.insert(frame.payload_id(i));
      if (malicious) http_malicious_ids.insert(frame.payload_id(i));
    }
  }

  auto ratio = [](std::uint64_t num, std::uint64_t den) {
    return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
  };
  std::string out;
  out += "Traffic not attempting auth bypass on Telnet/23: " +
         format_double(ratio(telnet_total - telnet_auth, telnet_total), 0) + "% (paper: 34%)\n";
  out += "Traffic not attempting auth bypass on SSH/22:    " +
         format_double(ratio(ssh_total - ssh_auth, ssh_total), 0) + "% (paper: 24%)\n";
  out += "HTTP/80 payloads without exploits:               " +
         format_double(ratio(http_total - http_exploit, http_total), 0) + "% (paper: 75%)\n";
  out += "Distinct HTTP payloads labeled malicious:        " +
         format_double(ratio(http_malicious_ids.size(), http_payload_ids.size()), 0) +
         "% (paper: 6%)\n";
  return out;
}

std::string render_figure1(const ExperimentResult& result, net::Port port,
                           std::size_t rolling_window, std::size_t buckets) {
  const std::vector<double> counts = analysis::telescope_address_counts(result.frame(), port);
  if (counts.empty()) return "no telescope data\n";
  const std::vector<double> rolled = stats::rolling_average(counts, rolling_window);

  const topology::VantagePoint* telescope = nullptr;
  for (const topology::VantagePoint& vp : result.deployment().vantage_points()) {
    if (vp.type == topology::NetworkType::kTelescope) telescope = &vp;
  }
  const analysis::StructureStats stats = analysis::structure_stats(counts, *telescope);

  std::string out = "Figure 1, port " + std::to_string(port) + " — rolling avg (" +
                    std::to_string(rolling_window) + " IPs) of scanners per address:\n";
  const std::size_t step = std::max<std::size_t>(rolled.size() / buckets, 1);
  for (std::size_t i = 0; i < rolled.size(); i += step) {
    out += "  offset " + std::to_string(i) + ": " + format_double(rolled[i], 2) + "\n";
  }
  out += "structure: plain=" + format_double(stats.mean_plain, 2) +
         " any255=" + format_double(stats.mean_any_255, 2) +
         " last255=" + format_double(stats.mean_last_255, 2) +
         " first/16=" + format_double(stats.mean_first_16, 2) + "\n";
  out += "avoidance(any255)=" + format_double(stats.avoidance_any_255(), 1) +
         "x  avoidance(.255)=" + format_double(stats.avoidance_last_255(), 1) +
         "x  preference(first/16)=" + format_double(stats.preference_first_16(), 1) + "x\n";
  // Latching botnets (Figure 1d) concentrate on a handful of addresses;
  // surface the raw peak so it is visible regardless of downsampling.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] > counts[argmax]) argmax = i;
  }
  out += "peak: offset " + std::to_string(argmax) + " with " +
         format_double(counts[argmax], 0) + " scanners (plain mean " +
         format_double(stats.mean_plain, 2) + ")\n";
  return out;
}

}  // namespace cw::core
