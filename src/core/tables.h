// Table renderers: regenerate each of the paper's tables (and the Figure 1
// summaries) from a completed experiment, as plain text. One function per
// table keeps the bench binaries trivial and the outputs directly
// comparable with the paper.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "analysis/leak.h"
#include "analysis/neighborhood.h"
#include "analysis/network.h"
#include "core/experiment.h"

namespace cw::core {

// Table 1: vantage points with unique scan IP/AS counts.
std::string render_table1(const ExperimentResult& result);

// Table 2 (and Table 12 when run on a 2020 scenario): neighborhood
// differences per scope and characteristic.
std::string render_table2(const ExperimentResult& result);

// Table 2's computation grid as independent closures — one
// analyze_neighborhoods call per (scope, characteristic) row, in row order —
// so the pipeline runner can shard the table's critical path. Feed the
// results, in the same order, to render_table2_from.
std::vector<std::function<analysis::NeighborhoodSummary()>> table2_tasks(
    const ExperimentResult& result);
std::string render_table2_from(const std::vector<analysis::NeighborhoodSummary>& summaries);

// Table 3: the leak experiment (independent of the main experiment).
std::string render_table3(const analysis::LeakExperimentResult& leak);

// Table 4 (and 16): most-different geographic region per provider.
std::string render_table4(const ExperimentResult& result);

// Table 5 (and 13): % similar pairs of regions per continental group.
std::string render_table5(const ExperimentResult& result);

// Table 6: co-located multi-cloud cities.
std::string render_table6(const ExperimentResult& result);

// Table 7 (and 14): cloud-cloud / cloud-EDU / EDU-EDU comparisons.
std::string render_table7(const ExperimentResult& result);

// Table 8: scanner overlap with the telescope.
std::string render_table8(const ExperimentResult& result);

// Table 9: attacker overlap with the telescope.
std::string render_table9(const ExperimentResult& result);

// Table 10 (and 15): telescope-vs-EDU/cloud top-AS differences.
std::string render_table10(const ExperimentResult& result);

// Table 10's comparison grid as independent closures — scope-major,
// telescope-EDU before telescope-cloud within each scope. This is the
// longest-running single table, so sharding these eight
// compare_vantage_pairs calls shortens the whole report's critical path.
// Each closure also shards *within* the comparison when handed a pool
// (per-pair, deterministic); pass nullptr to run its pairs sequentially.
std::vector<std::function<analysis::NetworkComparison(runner::ThreadPool*)>> table10_tasks(
    const ExperimentResult& result);
std::string render_table10_from(const std::vector<analysis::NetworkComparison>& comparisons);

// Table 11: scanner-targeted protocols with reputation breakdown.
std::string render_table11(const ExperimentResult& result);

// Table 17: protocol breakdown without reputation data (2022 form).
std::string render_table17(const ExperimentResult& result);

// Section 3.2's headline numbers: fraction of traffic that does not attempt
// authentication on 22/23, fraction of HTTP/80 payloads without exploits,
// and the share of distinct HTTP payloads Suricata labels malicious.
std::string render_sec32(const ExperimentResult& result);

// Figure 1 (one panel): the rolling-average unique-scanner series over
// telescope addresses for a port, downsampled to `buckets` columns, plus
// the structural avoidance/preference ratios.
std::string render_figure1(const ExperimentResult& result, net::Port port,
                           std::size_t rolling_window = 512, std::size_t buckets = 24);

}  // namespace cw::core
