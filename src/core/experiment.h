// The experiment orchestrator: wires topology, search engines, the actor
// population, the event engine, and capture into one reproducible run — the
// paper's one-week observation window — and hands the captured traffic plus
// ground truth to the analyses. This is the primary entry point of the
// public API:
//
//   cw::core::ExperimentConfig config;
//   config.scale = 0.5;
//   auto result = cw::core::Experiment(config).run();
//   // result->store(), result->deployment(), result->classifier(), ...
#pragma once

#include <memory>
#include <mutex>

#include "agents/population.h"
#include "analysis/malicious.h"
#include "analysis/oracle.h"
#include "analysis/table_cache.h"
#include "capture/collector.h"
#include "capture/frame.h"
#include "ids/engine.h"
#include "searchengine/engine.h"
#include "sim/engine.h"
#include "topology/deployment.h"
#include "topology/universe.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::core {

struct ExperimentConfig {
  std::uint64_t seed = 0x636c6f7564776174ULL;
  topology::ScenarioYear year = topology::ScenarioYear::k2021;
  // Scales actor counts; telescope size scales via deployment config below.
  double scale = 1.0;
  int telescope_slash24s = 64;
  util::SimTime duration = util::kWeek;
  // Search-engine crawl cadence; 0 disables crawling entirely.
  util::SimDuration crawl_interval = 24 * util::kHour;
  // Fraction of actors whose reputation the oracle does not know.
  double oracle_unknown_fraction = 0.10;
  // Optional streaming sink for telescope traffic (Figure 1 full-scale runs).
  capture::Collector::TelescopeSink telescope_sink;
  // Optional transparent firewall in front of the vantage points
  // (Section 7 ablations; see capture::SignatureFirewall).
  capture::Collector::FirewallHook firewall;
};

// The completed run. Movable-only; owns every substrate so analyses can
// borrow freely.
class ExperimentResult {
 public:
  [[nodiscard]] const topology::Deployment& deployment() const noexcept { return deployment_; }
  [[nodiscard]] const topology::TargetUniverse& universe() const noexcept { return *universe_; }
  [[nodiscard]] const capture::EventStore& store() const noexcept {
    return collector_->store();
  }
  [[nodiscard]] const capture::Collector& collector() const noexcept { return *collector_; }
  [[nodiscard]] const analysis::MaliciousClassifier& classifier() const noexcept {
    return *classifier_;
  }
  [[nodiscard]] const analysis::ReputationOracle& oracle() const noexcept { return *oracle_; }
  [[nodiscard]] const search::ServiceSearchEngine& censys() const noexcept { return *censys_; }
  [[nodiscard]] const search::ServiceSearchEngine& shodan() const noexcept { return *shodan_; }
  [[nodiscard]] const agents::Population& population() const noexcept { return *population_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }

  // The shared columnar projection of the store, built lazily on first use
  // (thread-safe) and reused by every table renderer. The verdict column
  // wraps this result's classifier, so frame-backed pipelines agree with
  // per-record classification bit for bit. Pass a pool to shard the first
  // build; later calls ignore it and return the cached frame.
  [[nodiscard]] const capture::SessionFrame& frame(runner::ThreadPool* pool = nullptr) const;

  // The shared characteristic-table cache over this result's frame, built
  // lazily like frame() (a pool passed here shards the frame build if it is
  // the first frame() caller; cached tables shard through the pool their
  // first *reader* supplies). Every table renderer that names the same
  // (vantage, scope, characteristic) side shares one materialization.
  [[nodiscard]] const analysis::CharacteristicTableCache& table_cache(
      runner::ThreadPool* pool = nullptr) const;

 private:
  friend class Experiment;
  topology::Deployment deployment_;
  std::unique_ptr<topology::TargetUniverse> universe_;
  std::unique_ptr<capture::Collector> collector_;
  std::unique_ptr<search::ServiceSearchEngine> censys_;
  std::unique_ptr<search::ServiceSearchEngine> shodan_;
  std::unique_ptr<agents::Population> population_;
  std::unique_ptr<ids::RuleEngine> rules_;
  std::unique_ptr<analysis::MaliciousClassifier> classifier_;
  std::unique_ptr<analysis::ReputationOracle> oracle_;
  std::uint64_t events_processed_ = 0;
  // Lazy frame cache. The once_flag lives behind a pointer so the result
  // stays movable.
  mutable std::unique_ptr<std::once_flag> frame_once_ = std::make_unique<std::once_flag>();
  mutable std::unique_ptr<capture::SessionFrame> frame_;
  mutable std::unique_ptr<std::once_flag> cache_once_ = std::make_unique<std::once_flag>();
  mutable std::unique_ptr<analysis::CharacteristicTableCache> table_cache_;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config) : config_(std::move(config)) {}

  // Builds everything and runs the full observation window.
  [[nodiscard]] std::unique_ptr<ExperimentResult> run() const;

  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

 private:
  ExperimentConfig config_;
};

}  // namespace cw::core
