// The experiment orchestrator: wires topology, search engines, the actor
// population, the event engine, and capture into one reproducible run — the
// paper's one-week observation window — and hands the captured traffic plus
// ground truth to the analyses. This is the primary entry point of the
// public API:
//
//   cw::core::ExperimentConfig config;
//   config.scale = 0.5;
//   auto result = cw::core::Experiment(config).run();
//   // result->store(), result->deployment(), result->classifier(), ...
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "adversary/scenario.h"
#include "agents/population.h"
#include "analysis/malicious.h"
#include "analysis/oracle.h"
#include "analysis/table_cache.h"
#include "capture/collector.h"
#include "capture/frame.h"
#include "ids/engine.h"
#include "searchengine/engine.h"
#include "sim/engine.h"
#include "topology/deployment.h"
#include "topology/universe.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::core {

struct ExperimentConfig {
  std::uint64_t seed = 0x636c6f7564776174ULL;
  topology::ScenarioYear year = topology::ScenarioYear::k2021;
  // Scales actor counts; telescope size scales via deployment config below.
  double scale = 1.0;
  int telescope_slash24s = 64;
  util::SimTime duration = util::kWeek;
  // Search-engine crawl cadence; 0 disables crawling entirely.
  util::SimDuration crawl_interval = 24 * util::kHour;
  // Fraction of actors whose reputation the oracle does not know.
  double oracle_unknown_fraction = 0.10;
  // Optional streaming sink for telescope traffic (Figure 1 full-scale runs).
  capture::Collector::TelescopeSink telescope_sink;
  // Optional transparent firewall in front of the vantage points
  // (Section 7 ablations; see capture::SignatureFirewall).
  capture::Collector::FirewallHook firewall;
  // Optional adversarial scenario grafted onto (or replacing) the calibrated
  // population: adaptive attackers, a moving-target defense, co-location
  // probers, or ground-truth cluster families. kNone leaves the run
  // untouched — zero extra actors, zero extra RNG draws.
  adversary::ScenarioConfig adversary;
};

// The completed run. Movable-only; owns every substrate so analyses can
// borrow freely.
class ExperimentResult {
 public:
  // The configuration the run was built from (seed included). Lets corpus
  // consumers that only see the result — fleet cells, table renderers,
  // benches — report provenance without threading the config separately.
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }
  [[nodiscard]] const topology::Deployment& deployment() const noexcept { return deployment_; }
  [[nodiscard]] const topology::TargetUniverse& universe() const noexcept { return *universe_; }
  // The record source every analysis reads. Normally the collector's store;
  // in stream mode, the externally bound merged-snapshot replica (see
  // rebind_store below).
  [[nodiscard]] const capture::EventStore& store() const noexcept {
    return external_store_ != nullptr ? *external_store_ : collector_->store();
  }
  [[nodiscard]] const capture::Collector& collector() const noexcept { return *collector_; }
  [[nodiscard]] const analysis::MaliciousClassifier& classifier() const noexcept {
    return *classifier_;
  }
  [[nodiscard]] const analysis::ReputationOracle& oracle() const noexcept { return *oracle_; }
  [[nodiscard]] const search::ServiceSearchEngine& censys() const noexcept { return *censys_; }
  [[nodiscard]] const search::ServiceSearchEngine& shodan() const noexcept { return *shodan_; }
  [[nodiscard]] const agents::Population& population() const noexcept { return *population_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept { return events_processed_; }

  // The shared columnar projection of the store, built lazily on first use
  // (thread-safe) and reused by every table renderer. The verdict column
  // wraps this result's classifier, so frame-backed pipelines agree with
  // per-record classification bit for bit. Pass a pool to shard the first
  // build; later calls ignore it and return the cached frame.
  [[nodiscard]] const capture::SessionFrame& frame(runner::ThreadPool* pool = nullptr) const;

  // The shared characteristic-table cache over this result's frame, built
  // lazily like frame() (a pool passed here shards the frame build if it is
  // the first frame() caller; cached tables shard through the pool their
  // first *reader* supplies). Every table renderer that names the same
  // (vantage, scope, characteristic) side shares one materialization.
  [[nodiscard]] const analysis::CharacteristicTableCache& table_cache(
      runner::ThreadPool* pool = nullptr) const;

  // --- stream support (src/stream) -----------------------------------------
  // A live run re-renders the paper tables every epoch over a growing
  // corpus. rebind_store() points the result's record source at an
  // externally assembled store — the stream driver's merged-snapshot replica
  // — and optionally overrides table_cache() with the stream layer's
  // segment-merging cache; both are borrowed and must outlive the result or
  // the next rebind. Passing nullptrs restores the collector's own store and
  // the lazily built cache. Every rebind (and release_derived()) drops the
  // cached frame and cold cache, so the next frame() call rebuilds over the
  // current source.
  void rebind_store(const capture::EventStore* store,
                    const analysis::CharacteristicTableCache* cache);

  // Drops the cached frame/table-cache and unpins the source store, so the
  // stream driver may append the next epoch's records to it. frame()
  // rebuilds on next use.
  void release_derived();

  // Out-of-core stream mode: registers the sealed per-segment frames (and
  // the pager that maps a spilled one in around a scan) so frame-scanning
  // extractors (Tables 8/9) walk segments instead of demanding a cumulative
  // corpus frame — which a spill run never builds. Borrowed like the rebind
  // pointers; an empty vector restores the cumulative-frame path.
  void bind_segment_frames(std::vector<const capture::SessionFrame*> frames,
                           analysis::SegmentPager pager);
  [[nodiscard]] const std::vector<const capture::SessionFrame*>& segment_frames() const noexcept {
    return segment_frames_;
  }
  [[nodiscard]] const analysis::SegmentPager& segment_pager() const noexcept {
    return segment_pager_;
  }

 private:
  friend class Experiment;
  friend class LiveExperiment;
  ExperimentConfig config_;
  topology::Deployment deployment_;
  std::unique_ptr<topology::TargetUniverse> universe_;
  std::unique_ptr<capture::Collector> collector_;
  std::unique_ptr<search::ServiceSearchEngine> censys_;
  std::unique_ptr<search::ServiceSearchEngine> shodan_;
  std::unique_ptr<agents::Population> population_;
  std::unique_ptr<ids::RuleEngine> rules_;
  std::unique_ptr<analysis::MaliciousClassifier> classifier_;
  std::unique_ptr<analysis::ReputationOracle> oracle_;
  std::uint64_t events_processed_ = 0;
  // Stream mode: external record source / table cache (borrowed).
  const capture::EventStore* external_store_ = nullptr;
  const analysis::CharacteristicTableCache* external_cache_ = nullptr;
  // Out-of-core stream mode: per-segment frames + pager (borrowed).
  std::vector<const capture::SessionFrame*> segment_frames_;
  analysis::SegmentPager segment_pager_;
  // Lazy frame cache. The once_flag lives behind a pointer so the result
  // stays movable.
  mutable std::unique_ptr<std::once_flag> frame_once_ = std::make_unique<std::once_flag>();
  mutable std::unique_ptr<capture::SessionFrame> frame_;
  mutable std::unique_ptr<std::once_flag> cache_once_ = std::make_unique<std::once_flag>();
  mutable std::unique_ptr<analysis::CharacteristicTableCache> table_cache_;
};

class Experiment {
 public:
  explicit Experiment(ExperimentConfig config) : config_(std::move(config)) {}

  // Builds everything and runs the full observation window.
  [[nodiscard]] std::unique_ptr<ExperimentResult> run() const;

  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

 private:
  ExperimentConfig config_;
};

// A batch run, opened up: the full experiment context — topology, search
// engines, population, classifier, oracle, crawl schedule — is built at
// construction with the clock at zero, and the caller advances the
// simulation in slices. This is the substrate of the stream subsystem
// (src/stream): the live driver installs a capture sink on collector(),
// steps advance_to() once per epoch, and seals what arrived in between.
// Experiment::run() is exactly "construct; advance_to(duration); take()",
// so sliced and batch runs process the identical event sequence.
class LiveExperiment {
 public:
  explicit LiveExperiment(ExperimentConfig config);
  ~LiveExperiment();
  LiveExperiment(const LiveExperiment&) = delete;
  LiveExperiment& operator=(const LiveExperiment&) = delete;

  // Advances the simulation to min(until, config.duration). Monotonic:
  // earlier targets are a no-op. Not safe concurrently with readers of the
  // collector's store (the stream driver quiesces between slices).
  void advance_to(util::SimTime until);

  [[nodiscard]] util::SimTime now() const noexcept;
  [[nodiscard]] bool finished() const noexcept;
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return config_; }

  // The context, readable at any point between slices. Mutable collector
  // access lets the stream driver install its capture sink before the first
  // slice.
  [[nodiscard]] ExperimentResult& result() noexcept { return *result_; }
  [[nodiscard]] const ExperimentResult& result() const noexcept { return *result_; }
  [[nodiscard]] capture::Collector& collector() noexcept;

  // Finalizes the run (records events_processed) and releases the result.
  // The engine stays with the LiveExperiment; call after the last slice.
  [[nodiscard]] std::unique_ptr<ExperimentResult> take();

 private:
  ExperimentConfig config_;
  std::unique_ptr<ExperimentResult> result_;
  std::unique_ptr<sim::Engine> engine_;
  // Actors capture the context by reference into their scheduled events, so
  // it must stay alive (and address-stable) until the last slice runs.
  std::unique_ptr<agents::AgentContext> ctx_;
};

}  // namespace cw::core
