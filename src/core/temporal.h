// Temporal stability (Section 3.4 / Appendix C): the paper reruns every
// analysis on data collected one year before or after the primary window
// and reports which conclusions persist. This module compares two completed
// experiments metric by metric and classifies each headline conclusion as
// stable or shifted — the programmatic form of Appendix C's narrative.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace cw::core {

struct TemporalMetric {
  std::string name;                  // e.g. "telescope overlap, port 22 (cloud)"
  std::optional<double> value_a;     // first year (nullopt = unmeasurable)
  std::optional<double> value_b;     // second year
  bool stable = false;               // same qualitative conclusion both years
};

struct TemporalReport {
  std::string year_a;
  std::string year_b;
  std::vector<TemporalMetric> metrics;

  [[nodiscard]] std::size_t stable_count() const;
  [[nodiscard]] std::string render() const;
};

// Compares the headline conclusions of two runs:
//  - per-port telescope-overlap band (low/medium/high avoidance),
//  - whether the most-different region per provider lies in Asia-Pacific,
//  - whether APAC payload similarity trails US similarity,
//  - the unexpected-protocol share on ports 80/8080,
//  - the SSH-vs-Telnet scanner telescope-avoidance ordering.
// Metrics that need vantage points absent in one year (e.g. GreyNoise
// neighborhoods in 2022) come back with the missing side nullopt and do
// not count against stability.
TemporalReport compare_years(const ExperimentResult& a, const ExperimentResult& b,
                             std::string year_a, std::string year_b);

}  // namespace cw::core
