#include "core/temporal.h"

#include <cmath>

#include "agents/population.h"
#include "analysis/geography.h"
#include "analysis/overlap.h"
#include "analysis/protocols.h"
#include "util/strings.h"
#include "util/table.h"

namespace cw::core {
namespace {

// Coarse qualitative band for an overlap fraction: the conclusion a reader
// takes away ("avoids the telescope" / "partially" / "does not").
int overlap_band(double fraction) {
  if (fraction < 0.33) return 0;
  if (fraction < 0.66) return 1;
  return 2;
}

std::optional<double> cloud_overlap(const ExperimentResult& result, net::Port port) {
  const auto rows = analysis::scanner_overlap(
      result.store(), result.deployment(), {port},
      {agents::Population::kCensysActorId, agents::Population::kShodanActorId});
  return rows.front().tel_cloud_over_cloud;
}

std::optional<double> apac_minus_us_similarity(const ExperimentResult& result) {
  const auto similarity = analysis::geo_similarity(
      result.store(), result.deployment(), analysis::TrafficScope::kHttpAllPorts,
      analysis::Characteristic::kTopPayload, result.classifier());
  const auto us = static_cast<std::size_t>(analysis::PairGroup::kUs);
  const auto ap = static_cast<std::size_t>(analysis::PairGroup::kApac);
  if (similarity.tested[us] == 0 || similarity.tested[ap] == 0) return std::nullopt;
  return similarity.pct_similar(analysis::PairGroup::kApac) -
         similarity.pct_similar(analysis::PairGroup::kUs);
}

std::optional<double> unexpected_share(const ExperimentResult& result, net::Port port) {
  analysis::ProtocolOptions options;
  options.ports = {port};
  const auto rows = analysis::protocol_breakdown(result.store(), result.deployment(), options);
  if (rows.empty() || rows.front().scanners_total == 0) return std::nullopt;
  return rows.front().pct_unexpected;
}

}  // namespace

std::size_t TemporalReport::stable_count() const {
  std::size_t count = 0;
  for (const TemporalMetric& metric : metrics) {
    if (metric.stable) ++count;
  }
  return count;
}

std::string TemporalReport::render() const {
  util::TextTable table({"Metric", year_a, year_b, "Stable?"});
  auto cell = [](const std::optional<double>& value) {
    return value ? util::format_double(*value, 2) : std::string("x");
  };
  for (const TemporalMetric& metric : metrics) {
    table.add_row({metric.name, cell(metric.value_a), cell(metric.value_b),
                   metric.stable ? "yes" : (!metric.value_a || !metric.value_b ? "n/a" : "NO")});
  }
  std::string out = "Temporal stability, " + year_a + " vs " + year_b + " (Section 3.4)\n";
  out += table.render();
  out += std::to_string(stable_count()) + "/" + std::to_string(metrics.size()) +
         " headline conclusions stable across the two windows.\n";
  return out;
}

TemporalReport compare_years(const ExperimentResult& a, const ExperimentResult& b,
                             std::string year_a, std::string year_b) {
  TemporalReport report;
  report.year_a = std::move(year_a);
  report.year_b = std::move(year_b);

  // Per-port telescope overlap bands.
  for (const net::Port port : {net::Port{22}, net::Port{23}, net::Port{2323}, net::Port{80}}) {
    TemporalMetric metric;
    metric.name = "telescope overlap, port " + std::to_string(port) + " (cloud)";
    metric.value_a = cloud_overlap(a, port);
    metric.value_b = cloud_overlap(b, port);
    metric.stable = metric.value_a && metric.value_b &&
                    overlap_band(*metric.value_a) == overlap_band(*metric.value_b);
    report.metrics.push_back(std::move(metric));
  }

  // SSH-vs-Telnet avoidance ordering.
  {
    TemporalMetric metric;
    metric.name = "telescope overlap: Telnet/23 exceeds SSH/22";
    const auto a22 = cloud_overlap(a, 22);
    const auto a23 = cloud_overlap(a, 23);
    const auto b22 = cloud_overlap(b, 22);
    const auto b23 = cloud_overlap(b, 23);
    if (a22 && a23) metric.value_a = *a23 - *a22;
    if (b22 && b23) metric.value_b = *b23 - *b22;
    metric.stable = metric.value_a && metric.value_b && *metric.value_a > 0 &&
                    *metric.value_b > 0;
    report.metrics.push_back(std::move(metric));
  }

  // APAC payload similarity deficit vs US (negative = APAC less similar).
  {
    TemporalMetric metric;
    metric.name = "APAC payload similarity minus US (pct points)";
    metric.value_a = apac_minus_us_similarity(a);
    metric.value_b = apac_minus_us_similarity(b);
    metric.stable = metric.value_a && metric.value_b && *metric.value_a < 0 &&
                    *metric.value_b < 0;
    report.metrics.push_back(std::move(metric));
  }

  // Unexpected-protocol share on HTTP ports.
  for (const net::Port port : {net::Port{80}, net::Port{8080}}) {
    TemporalMetric metric;
    metric.name = "unexpected-protocol share, port " + std::to_string(port) + " (%)";
    metric.value_a = unexpected_share(a, port);
    metric.value_b = unexpected_share(b, port);
    // Stable if both years show a non-trivial share (the paper's claim is
    // ">= 15%", with 2022 roughly double 2021).
    metric.stable = metric.value_a && metric.value_b && *metric.value_a >= 8.0 &&
                    *metric.value_b >= 8.0;
    report.metrics.push_back(std::move(metric));
  }

  return report;
}

}  // namespace cw::core
