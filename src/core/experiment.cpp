#include "core/experiment.h"

#include <algorithm>

#include "ids/ruleset.h"

namespace cw::core {

const capture::SessionFrame& ExperimentResult::frame(runner::ThreadPool* pool) const {
  std::call_once(*frame_once_, [this, pool] {
    const capture::EventStore& source = store();
    capture::SessionFrame::BuildOptions options;
    options.pool = pool;
    options.verdict = [this, &source](const capture::SessionRecord& record) {
      switch (classifier_->classify(record, source)) {
        case analysis::MeasuredIntent::kMalicious: return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
    // MaliciousClassifier::classify depends only on (credential presence,
    // payload id, port, transport); declaring that lets the build memoize
    // one verdict per distinct tuple instead of classifying every record.
    options.verdict_pure = true;
    frame_ = std::make_unique<capture::SessionFrame>(
        capture::SessionFrame::build(source, deployment_, std::move(options)));
  });
  return *frame_;
}

const analysis::CharacteristicTableCache& ExperimentResult::table_cache(
    runner::ThreadPool* pool) const {
  if (external_cache_ != nullptr) return *external_cache_;
  std::call_once(*cache_once_, [this, pool] {
    table_cache_ =
        std::make_unique<analysis::CharacteristicTableCache>(frame(pool), *classifier_);
  });
  return *table_cache_;
}

void ExperimentResult::rebind_store(const capture::EventStore* store,
                                    const analysis::CharacteristicTableCache* cache) {
  release_derived();
  external_store_ = store;
  external_cache_ = cache;
}

void ExperimentResult::bind_segment_frames(std::vector<const capture::SessionFrame*> frames,
                                           analysis::SegmentPager pager) {
  segment_frames_ = std::move(frames);
  segment_pager_ = std::move(pager);
}

void ExperimentResult::release_derived() {
  // The cold cache borrows the frame; tear down in dependency order.
  table_cache_.reset();
  cache_once_ = std::make_unique<std::once_flag>();
  frame_.reset();  // unpins the store it was built over
  frame_once_ = std::make_unique<std::once_flag>();
}

LiveExperiment::LiveExperiment(ExperimentConfig config)
    : config_(std::move(config)),
      result_(std::make_unique<ExperimentResult>()),
      engine_(std::make_unique<sim::Engine>()) {
  ExperimentResult* result = result_.get();
  result->config_ = config_;

  topology::DeploymentConfig deployment_config;
  deployment_config.year = config_.year;
  deployment_config.telescope_slash24s = config_.telescope_slash24s;
  deployment_config.seed = config_.seed ^ 0x746f706fULL;
  result->deployment_ = topology::Deployment::table1(deployment_config);
  result->universe_ = std::make_unique<topology::TargetUniverse>(result->deployment_);

  result->collector_ = std::make_unique<capture::Collector>(*result->universe_);
  if (config_.telescope_sink) result->collector_->set_telescope_sink(config_.telescope_sink);
  if (config_.firewall) result->collector_->set_firewall(config_.firewall);

  result->censys_ = std::make_unique<search::ServiceSearchEngine>(
      "Censys", net::kAsnCensys, agents::Population::kCensysActorId);
  result->shodan_ = std::make_unique<search::ServiceSearchEngine>(
      "Shodan", net::kAsnShodan, agents::Population::kShodanActorId);

  agents::PopulationConfig population_config;
  population_config.seed = config_.seed ^ 0x706f70ULL;
  population_config.scale = config_.scale;
  population_config.year = config_.year;
  result->population_ = std::make_unique<agents::Population>(
      agents::Population::build(population_config, result->deployment_));

  // Adversarial scenarios graft extra actors onto the population (or swap it
  // out entirely for a controlled ground-truth one) before the oracle reads
  // ground_truth() below, so grafted actors get reputations too. kNone is a
  // strict no-op: the calibrated runs' bytes are untouched.
  if (config_.adversary.kind != adversary::ScenarioKind::kNone) {
    if (config_.adversary.replace_population) {
      result->population_ = std::make_unique<agents::Population>();
    }
    adversary::install(*result->population_, config_.adversary, *result->universe_,
                       config_.seed ^ 0x61647673ULL);
  }

  // The measurement context does not depend on the captured traffic, so a
  // live run has it from epoch zero: classification and reputation work on
  // partial corpora exactly as they do on the final one.
  result->rules_ = std::make_unique<ids::RuleEngine>(ids::curated_engine());
  result->classifier_ = std::make_unique<analysis::MaliciousClassifier>(*result->rules_);
  result->oracle_ = std::make_unique<analysis::ReputationOracle>(
      result->population_->ground_truth(), config_.oracle_unknown_fraction,
      config_.seed ^ 0x6f7261636cULL);

  // Actors hold a reference to this context across the whole window (their
  // scheduled events re-enter through it), so it lives on the heap with the
  // engine, not on the constructor's stack.
  ctx_ = std::make_unique<agents::AgentContext>();
  agents::AgentContext& ctx = *ctx_;
  ctx.engine = engine_.get();
  ctx.universe = result->universe_.get();
  ctx.collector = result->collector_.get();
  ctx.censys = result->censys_.get();
  ctx.shodan = result->shodan_.get();
  ctx.window_end = config_.duration;

  if (config_.crawl_interval > 0) {
    util::Rng crawl_seed(config_.seed ^ 0x637261776cULL);
    for (util::SimTime t = util::kHour; t < config_.duration; t += config_.crawl_interval) {
      engine_->schedule_at(t, [result, crawl_seed](sim::Engine& e) mutable {
        util::Rng rng = crawl_seed.stream(static_cast<std::uint64_t>(e.now()));
        result->censys_->crawl(e.now(), *result->universe_, *result->collector_, rng);
        result->shodan_->crawl(e.now(), *result->universe_, *result->collector_, rng);
      });
    }
  }

  result->population_->start_all(ctx);
}

LiveExperiment::~LiveExperiment() = default;

void LiveExperiment::advance_to(util::SimTime until) {
  engine_->run_until(std::min(until, config_.duration));
  result_->events_processed_ = engine_->events_processed();
}

util::SimTime LiveExperiment::now() const noexcept { return engine_->now(); }

bool LiveExperiment::finished() const noexcept { return engine_->now() >= config_.duration; }

capture::Collector& LiveExperiment::collector() noexcept { return *result_->collector_; }

std::unique_ptr<ExperimentResult> LiveExperiment::take() {
  result_->events_processed_ = engine_->events_processed();
  return std::move(result_);
}

std::unique_ptr<ExperimentResult> Experiment::run() const {
  LiveExperiment live(config_);
  live.advance_to(config_.duration);
  return live.take();
}

}  // namespace cw::core
