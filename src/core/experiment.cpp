#include "core/experiment.h"

#include "ids/ruleset.h"

namespace cw::core {

const capture::SessionFrame& ExperimentResult::frame(runner::ThreadPool* pool) const {
  std::call_once(*frame_once_, [this, pool] {
    capture::SessionFrame::BuildOptions options;
    options.pool = pool;
    options.verdict = [this](const capture::SessionRecord& record) {
      switch (classifier_->classify(record, collector_->store())) {
        case analysis::MeasuredIntent::kMalicious: return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
    frame_ = std::make_unique<capture::SessionFrame>(
        capture::SessionFrame::build(collector_->store(), deployment_, std::move(options)));
  });
  return *frame_;
}

const analysis::CharacteristicTableCache& ExperimentResult::table_cache(
    runner::ThreadPool* pool) const {
  std::call_once(*cache_once_, [this, pool] {
    table_cache_ =
        std::make_unique<analysis::CharacteristicTableCache>(frame(pool), *classifier_);
  });
  return *table_cache_;
}

std::unique_ptr<ExperimentResult> Experiment::run() const {
  auto result = std::make_unique<ExperimentResult>();

  topology::DeploymentConfig deployment_config;
  deployment_config.year = config_.year;
  deployment_config.telescope_slash24s = config_.telescope_slash24s;
  deployment_config.seed = config_.seed ^ 0x746f706fULL;
  result->deployment_ = topology::Deployment::table1(deployment_config);
  result->universe_ = std::make_unique<topology::TargetUniverse>(result->deployment_);

  result->collector_ = std::make_unique<capture::Collector>(*result->universe_);
  if (config_.telescope_sink) result->collector_->set_telescope_sink(config_.telescope_sink);
  if (config_.firewall) result->collector_->set_firewall(config_.firewall);

  result->censys_ = std::make_unique<search::ServiceSearchEngine>(
      "Censys", net::kAsnCensys, agents::Population::kCensysActorId);
  result->shodan_ = std::make_unique<search::ServiceSearchEngine>(
      "Shodan", net::kAsnShodan, agents::Population::kShodanActorId);

  agents::PopulationConfig population_config;
  population_config.seed = config_.seed ^ 0x706f70ULL;
  population_config.scale = config_.scale;
  population_config.year = config_.year;
  result->population_ = std::make_unique<agents::Population>(
      agents::Population::build(population_config, result->deployment_));

  sim::Engine engine;
  agents::AgentContext ctx;
  ctx.engine = &engine;
  ctx.universe = result->universe_.get();
  ctx.collector = result->collector_.get();
  ctx.censys = result->censys_.get();
  ctx.shodan = result->shodan_.get();
  ctx.window_end = config_.duration;

  if (config_.crawl_interval > 0) {
    util::Rng crawl_seed(config_.seed ^ 0x637261776cULL);
    for (util::SimTime t = util::kHour; t < config_.duration; t += config_.crawl_interval) {
      engine.schedule_at(t, [result = result.get(), crawl_seed](sim::Engine& e) mutable {
        util::Rng rng = crawl_seed.stream(static_cast<std::uint64_t>(e.now()));
        result->censys_->crawl(e.now(), *result->universe_, *result->collector_, rng);
        result->shodan_->crawl(e.now(), *result->universe_, *result->collector_, rng);
      });
    }
  }

  result->population_->start_all(ctx);
  engine.run_until(config_.duration);
  result->events_processed_ = engine.events_processed();

  result->rules_ = std::make_unique<ids::RuleEngine>(ids::curated_engine());
  result->classifier_ = std::make_unique<analysis::MaliciousClassifier>(*result->rules_);
  result->oracle_ = std::make_unique<analysis::ReputationOracle>(
      result->population_->ground_truth(), config_.oracle_unknown_fraction,
      config_.seed ^ 0x6f7261636cULL);
  return result;
}

}  // namespace cw::core
