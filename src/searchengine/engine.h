// Internet-service search engine simulator (Censys/Shodan). The engine
// periodically crawls the monitored address space from its own scanning
// ASN — its probes land in honeypot data exactly like the real engines'
// do — and maintains a historical index that attacker agents mine for
// targets (Section 4.3). Per-address blocklists model the leak experiment's
// access control: a blocked engine never discovers (or re-verifies) a
// service, so the address stays out of the live index.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "capture/collector.h"
#include "net/asn.h"
#include "net/ipv4.h"
#include "net/ports.h"
#include "topology/universe.h"
#include "util/rng.h"
#include "util/sim_time.h"

namespace cw::search {

struct IndexEntry {
  net::IPv4Addr address;
  net::Port port = 0;
  net::Protocol protocol = net::Protocol::kUnknown;
  std::string banner;  // what the service presented to the crawler
  util::SimTime first_seen = 0;
  util::SimTime last_seen = 0;
  bool live = false;  // present in the current index (vs history only)
};

class ServiceSearchEngine {
 public:
  ServiceSearchEngine(std::string name, net::Asn scanning_asn, capture::ActorId actor_id);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] net::Asn scanning_asn() const noexcept { return asn_; }
  [[nodiscard]] capture::ActorId actor_id() const noexcept { return actor_id_; }

  // Ports the engine probes on each crawl.
  void set_crawl_ports(std::vector<net::Port> ports) { crawl_ports_ = std::move(ports); }

  // Blocks the engine's scanners from one address entirely (leak-experiment
  // control/previously-leaked groups).
  void blocklist(net::IPv4Addr addr);

  // Blocks every port except one: the engine may discover only `port` on
  // this address (the leak groups: "allow either Censys or Shodan to find
  // only one of the three emulated services").
  void blocklist_except(net::IPv4Addr addr, net::Port port);

  [[nodiscard]] bool is_blocked(net::IPv4Addr addr, net::Port port) const;

  // Seeds pre-experiment history (the "previously leaked" group: IPs whose
  // earlier tenants were indexed years ago).
  void seed_history(net::IPv4Addr addr, net::Port port, net::Protocol protocol,
                    util::SimTime when);

  // Crawls every monitored, non-telescope address on the crawl ports. Each
  // probe is a benign scan event delivered through the collector, so the
  // honeypots see the engine exactly as they see any other scanner.
  // Services that respond (vantage listens on the port and the address is
  // not blocklisted) enter/refresh the live index; indexed services that no
  // longer respond drop out of the live index but stay in history.
  void crawl(util::SimTime now, const topology::TargetUniverse& universe,
             capture::Collector& collector, util::Rng& rng);

  // Query API used by attacker agents: all live services on a port.
  [[nodiscard]] std::vector<net::IPv4Addr> query_port(net::Port port) const;

  // Historical query: every address ever indexed on the port, live or not.
  // Attackers mining stale index data use this (previously-leaked effect).
  [[nodiscard]] std::vector<net::IPv4Addr> query_port_history(net::Port port) const;

  // Banner search ("search OpenSSH_7.4"): live services whose stored banner
  // contains the needle, case-insensitively.
  [[nodiscard]] std::vector<net::IPv4Addr> query_banner(std::string_view needle) const;

  // The stored banner for a live index entry, empty when absent.
  [[nodiscard]] std::string banner_of(net::IPv4Addr addr, net::Port port) const;

  // Whether the address+port is in the live index / was ever indexed.
  [[nodiscard]] bool currently_indexed(net::IPv4Addr addr, net::Port port) const;
  [[nodiscard]] bool ever_indexed(net::IPv4Addr addr, net::Port port) const;

  [[nodiscard]] std::size_t live_size() const;
  [[nodiscard]] std::size_t history_size() const noexcept { return index_.size(); }

 private:
  // The next scanner source address; the engine scans from a fixed pool of
  // well-known addresses (like the real engines' published scan ranges).
  net::IPv4Addr next_source();

  std::string name_;
  net::Asn asn_;
  capture::ActorId actor_id_;
  std::vector<net::IPv4Addr> sources_;
  std::size_t next_source_ = 0;
  std::vector<net::Port> crawl_ports_;
  // Address -> allowed port; kNoPortAllowed means fully blocked.
  static constexpr net::Port kNoPortAllowed = 0;
  std::map<std::uint32_t, net::Port> blocklist_;
  // Keyed by (address, port); kept ordered so query output is deterministic.
  std::map<std::pair<std::uint32_t, net::Port>, IndexEntry> index_;
};

}  // namespace cw::search
