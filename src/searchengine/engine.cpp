#include "searchengine/engine.h"

#include "proto/banners.h"
#include "proto/payloads.h"
#include "util/strings.h"

namespace cw::search {

ServiceSearchEngine::ServiceSearchEngine(std::string name, net::Asn scanning_asn,
                                         capture::ActorId actor_id)
    : name_(std::move(name)), asn_(scanning_asn), actor_id_(actor_id) {
  crawl_ports_ = net::popular_ports();
  // A small fixed pool per engine, like the real engines' published
  // scanner ranges; 0xc0...-prefixed so it never collides with monitored
  // pools or campaign sources.
  for (std::uint32_t i = 0; i < 16; ++i) {
    sources_.push_back(net::IPv4Addr(0xc0000000u | (actor_id << 8) | i));
  }
}

net::IPv4Addr ServiceSearchEngine::next_source() {
  const net::IPv4Addr addr = sources_[next_source_];
  next_source_ = (next_source_ + 1) % sources_.size();
  return addr;
}

void ServiceSearchEngine::blocklist(net::IPv4Addr addr) {
  blocklist_[addr.value()] = kNoPortAllowed;
}

void ServiceSearchEngine::blocklist_except(net::IPv4Addr addr, net::Port port) {
  blocklist_[addr.value()] = port;
}

bool ServiceSearchEngine::is_blocked(net::IPv4Addr addr, net::Port port) const {
  auto it = blocklist_.find(addr.value());
  if (it == blocklist_.end()) return false;
  return it->second == kNoPortAllowed || it->second != port;
}

void ServiceSearchEngine::seed_history(net::IPv4Addr addr, net::Port port,
                                       net::Protocol protocol, util::SimTime when) {
  IndexEntry entry;
  entry.address = addr;
  entry.port = port;
  entry.protocol = protocol;
  entry.first_seen = when;
  entry.last_seen = when;
  entry.live = false;  // history only: the old tenant's service is gone
  index_[{addr.value(), port}] = entry;
}

void ServiceSearchEngine::crawl(util::SimTime now, const topology::TargetUniverse& universe,
                                capture::Collector& collector, util::Rng& rng) {
  std::set<std::pair<std::uint32_t, net::Port>> confirmed;

  for (const topology::Target& target : universe.targets()) {
    if (target.type == topology::NetworkType::kTelescope) {
      // The engine scans darknets too (its probes are recorded there), but
      // nothing responds, so nothing is indexed.
      for (net::Port port : crawl_ports_) {
        capture::ScanEvent probe;
        probe.time = now + static_cast<util::SimTime>(rng.next_below(util::kHour));
        probe.src = next_source();
        probe.src_as = asn_;
        probe.dst = target.address;
        probe.dst_port = port;
        probe.intended_protocol = net::iana_assignment(port);
        probe.payload = proto::probe_payload(probe.intended_protocol);
        probe.malicious_intent = false;
        probe.actor = actor_id_;
        collector.deliver(probe);
      }
      continue;
    }

    const topology::VantagePoint& vp = universe.deployment().at(target.vantage);
    for (net::Port port : crawl_ports_) {
      if (is_blocked(target.address, port)) continue;  // filtered before reaching the service

      capture::ScanEvent probe;
      probe.time = now + static_cast<util::SimTime>(rng.next_below(util::kHour));
      probe.src = next_source();
      probe.src_as = asn_;
      probe.dst = target.address;
      probe.dst_port = port;
      probe.intended_protocol = net::iana_assignment(port);
      probe.payload = proto::probe_payload(probe.intended_protocol);
      probe.malicious_intent = false;
      probe.actor = actor_id_;
      collector.deliver(probe);

      if (!vp.listens_on(port)) continue;  // connection refused: nothing to index

      const auto key = std::make_pair(target.address.value(), port);
      confirmed.insert(key);
      auto it = index_.find(key);
      if (it == index_.end()) {
        IndexEntry entry;
        entry.address = target.address;
        entry.port = port;
        entry.protocol = net::iana_assignment(port);
        // The banner the vulnerable-looking service presents is stable per
        // (address, port), like a real deployment's software version.
        entry.banner = proto::server_banner(
            entry.protocol, (target.address.value() * 31u) ^ port);
        entry.first_seen = now;
        entry.last_seen = now;
        entry.live = true;
        index_.emplace(key, entry);
      } else {
        it->second.last_seen = now;
        it->second.live = true;
      }
    }
  }

  // Services that stopped responding fall out of the live index but remain
  // in history (the paper's "previously leaked" condition).
  for (auto& [key, entry] : index_) {
    if (entry.live && !confirmed.contains(key) && entry.last_seen < now) entry.live = false;
  }
}

std::vector<net::IPv4Addr> ServiceSearchEngine::query_port(net::Port port) const {
  std::vector<net::IPv4Addr> out;
  for (const auto& [key, entry] : index_) {
    if (entry.live && entry.port == port) out.push_back(entry.address);
  }
  return out;
}

std::vector<net::IPv4Addr> ServiceSearchEngine::query_port_history(net::Port port) const {
  std::vector<net::IPv4Addr> out;
  for (const auto& [key, entry] : index_) {
    if (entry.port == port) out.push_back(entry.address);
  }
  return out;
}

std::vector<net::IPv4Addr> ServiceSearchEngine::query_banner(std::string_view needle) const {
  std::vector<net::IPv4Addr> out;
  for (const auto& [key, entry] : index_) {
    if (!entry.live || entry.banner.empty()) continue;
    if (cw::util::contains_ci(entry.banner, needle)) out.push_back(entry.address);
  }
  return out;
}

std::string ServiceSearchEngine::banner_of(net::IPv4Addr addr, net::Port port) const {
  auto it = index_.find({addr.value(), port});
  return it == index_.end() ? std::string() : it->second.banner;
}

bool ServiceSearchEngine::currently_indexed(net::IPv4Addr addr, net::Port port) const {
  auto it = index_.find({addr.value(), port});
  return it != index_.end() && it->second.live;
}

bool ServiceSearchEngine::ever_indexed(net::IPv4Addr addr, net::Port port) const {
  return index_.contains({addr.value(), port});
}

std::size_t ServiceSearchEngine::live_size() const {
  std::size_t count = 0;
  for (const auto& [key, entry] : index_) {
    if (entry.live) ++count;
  }
  return count;
}

}  // namespace cw::search
