#include "proto/http.h"

#include "util/strings.h"

namespace cw::proto {

std::string HttpRequest::serialize() const {
  std::string out = method + " " + uri + " " + version + "\r\n";
  bool has_content_length = false;
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
    if (util::starts_with_ci(name, "Content-Length") && name.size() == 14) {
      has_content_length = true;
    }
  }
  if (!body.empty() && !has_content_length) {
    out += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  out += "\r\n";
  out += body;
  return out;
}

std::optional<std::string_view> HttpRequest::header(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (key.size() == name.size() && util::starts_with_ci(key, name)) return value;
  }
  return std::nullopt;
}

std::optional<HttpRequest> parse_http(std::string_view payload) {
  const std::size_t line_end = payload.find("\r\n");
  if (line_end == std::string_view::npos) return std::nullopt;
  const std::string_view request_line = payload.substr(0, line_end);

  const auto parts = util::split(request_line, ' ');
  if (parts.size() < 3) return std::nullopt;
  if (!util::starts_with_ci(parts[parts.size() - 1], "HTTP/")) return std::nullopt;

  HttpRequest req;
  req.method = std::string(parts[0]);
  // URIs may contain spaces in malformed scanner requests; rejoin middle.
  std::string uri;
  for (std::size_t i = 1; i + 1 < parts.size(); ++i) {
    if (i != 1) uri += ' ';
    uri += std::string(parts[i]);
  }
  req.uri = uri;
  req.version = std::string(parts[parts.size() - 1]);

  std::size_t cursor = line_end + 2;
  while (cursor < payload.size()) {
    const std::size_t next = payload.find("\r\n", cursor);
    if (next == std::string_view::npos) break;
    const std::string_view line = payload.substr(cursor, next - cursor);
    cursor = next + 2;
    if (line.empty()) {
      // End of headers; rest is body.
      req.body = std::string(payload.substr(cursor));
      break;
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) continue;  // tolerate junk lines
    req.headers.emplace_back(std::string(util::trim(line.substr(0, colon))),
                             std::string(util::trim(line.substr(colon + 1))));
  }
  return req;
}

std::string normalize_http_payload(std::string_view payload) {
  const std::size_t first_line_end = payload.find("\r\n");
  if (first_line_end == std::string_view::npos) return std::string(payload);
  if (payload.find(" HTTP/") == std::string_view::npos ||
      payload.find(" HTTP/") > first_line_end) {
    return std::string(payload);
  }

  std::string out(payload.substr(0, first_line_end + 2));
  std::size_t cursor = first_line_end + 2;
  bool in_headers = true;
  while (cursor < payload.size()) {
    if (!in_headers) {
      out.append(payload.substr(cursor));
      break;
    }
    const std::size_t next = payload.find("\r\n", cursor);
    if (next == std::string_view::npos) {
      out.append(payload.substr(cursor));
      break;
    }
    const std::string_view line = payload.substr(cursor, next - cursor);
    cursor = next + 2;
    if (line.empty()) {
      in_headers = false;
      out += "\r\n";
      continue;
    }
    if (util::starts_with_ci(line, "date:") || util::starts_with_ci(line, "host:") ||
        util::starts_with_ci(line, "content-length:")) {
      continue;  // ephemeral field: drop
    }
    out.append(line);
    out += "\r\n";
  }
  return out;
}

}  // namespace cw::proto
