#include "proto/credentials.h"

#include <algorithm>

namespace cw::proto {

const std::vector<Credential>& dictionary(CredentialDictionary dict) {
  static const std::vector<Credential> kGenericSsh = {
      {"root", "123456"},   {"root", "password"}, {"root", "root"},     {"admin", "admin"},
      {"root", "admin"},    {"ubuntu", "ubuntu"}, {"test", "test"},     {"root", "12345678"},
      {"root", "1234"},     {"user", "user"},     {"oracle", "oracle"}, {"postgres", "postgres"},
      {"root", "qwerty"},   {"pi", "raspberry"},  {"admin", "password"},{"git", "git"},
      {"root", "toor"},     {"ftpuser", "ftpuser"},{"nagios", "nagios"},{"root", "changeme"},
  };
  static const std::vector<Credential> kGenericTelnet = {
      {"root", "root"},     {"admin", "admin"},   {"support", "support"},{"root", "admin"},
      {"root", "123456"},   {"admin", "password"},{"root", ""},          {"guest", "guest"},
      {"admin", "1234"},    {"root", "12345"},    {"user", "user"},      {"root", "pass"},
      {"admin", ""},        {"tech", "tech"},     {"supervisor", "supervisor"},
  };
  static const std::vector<Credential> kMirai = {
      {"root", "xc3511"},   {"root", "vizxv"},    {"root", "admin"},    {"admin", "admin"},
      {"root", "888888"},   {"root", "xmhdipc"},  {"root", "default"},  {"root", "juantech"},
      {"root", "123456"},   {"root", "54321"},    {"support", "support"},{"root", ""},
      {"admin", "password"},{"root", "root"},     {"root", "12345"},    {"user", "user"},
      {"admin", ""},        {"root", "pass"},     {"admin", "admin1234"},{"root", "1111"},
      {"admin", "smcadmin"},{"admin", "1111"},    {"root", "666666"},   {"root", "password"},
      {"root", "1234"},     {"root", "klv123"},   {"Administrator", "admin"},
      {"service", "service"},{"supervisor", "supervisor"},{"guest", "guest"},
      {"guest", "12345"},   {"admin1", "password"},{"administrator", "1234"},
      {"666666", "666666"}, {"888888", "888888"}, {"ubnt", "ubnt"},     {"root", "klv1234"},
      {"root", "Zte521"},   {"root", "hi3518"},   {"root", "jvbzd"},    {"root", "anko"},
      {"root", "zlxx."},    {"root", "7ujMko0vizxv"},{"root", "7ujMko0admin"},
      {"root", "system"},   {"root", "ikwb"},     {"root", "dreambox"}, {"root", "user"},
      {"root", "realtek"},  {"root", "00000000"}, {"admin", "1111111"}, {"admin", "1234"},
      {"admin", "12345"},   {"admin", "54321"},   {"admin", "123456"},  {"admin", "7ujMko0admin"},
      {"admin", "meinsm"},  {"tech", "tech"},     {"mother", "fucker"},
  };
  static const std::vector<Credential> kHuaweiRegional = {
      {"mother", "fucker"},    {"e8ehome", "e8ehome"}, {"e8telnet", "e8telnet"},
      {"root", "e8ehome"},     {"telecomadmin", "admintelecom"},
      {"root", "huawei"},      {"admin", "CenturyL1nk"}, {"root", "5up"},
  };
  switch (dict) {
    case CredentialDictionary::kGenericSsh: return kGenericSsh;
    case CredentialDictionary::kGenericTelnet: return kGenericTelnet;
    case CredentialDictionary::kMirai: return kMirai;
    case CredentialDictionary::kHuaweiRegional: return kHuaweiRegional;
  }
  return kGenericSsh;
}

const Credential& sample_credential(CredentialDictionary dict, util::Rng& rng,
                                    double zipf_exponent) {
  const std::vector<Credential>& entries = dictionary(dict);
  const std::uint64_t rank = rng.zipf(entries.size(), zipf_exponent);
  return entries[static_cast<std::size_t>(rank)];
}

const Credential& sample_credential_slice(CredentialDictionary dict, std::size_t offset,
                                          std::size_t count, util::Rng& rng,
                                          double zipf_exponent) {
  const std::vector<Credential>& entries = dictionary(dict);
  offset = std::min(offset, entries.size() - 1);
  const std::size_t available = entries.size() - offset;
  const std::size_t width = count == 0 ? available : std::min(count, available);
  const std::uint64_t rank = rng.zipf(width, zipf_exponent);
  return entries[offset + static_cast<std::size_t>(rank)];
}

}  // namespace cw::proto
