#include "proto/fingerprint.h"

#include "util/strings.h"

namespace cw::proto {
namespace {

bool looks_http(std::string_view p) {
  static constexpr std::string_view kMethods[] = {
      "GET ", "POST ", "HEAD ", "PUT ", "DELETE ", "OPTIONS ", "PATCH ", "TRACE ", "CONNECT ",
  };
  for (std::string_view method : kMethods) {
    if (p.substr(0, method.size()) == method) {
      // Distinguish from RTSP/SIP, which reuse the request-line shape.
      const std::size_t eol = p.find("\r\n");
      const std::string_view line = eol == std::string_view::npos ? p : p.substr(0, eol);
      if (line.find(" RTSP/") != std::string_view::npos) return false;
      if (line.find("sip:") != std::string_view::npos) return false;
      return true;
    }
  }
  return false;
}

bool looks_tls(std::string_view p) {
  if (p.size() < 6) return false;
  const auto b0 = static_cast<unsigned char>(p[0]);
  const auto b1 = static_cast<unsigned char>(p[1]);
  const auto b2 = static_cast<unsigned char>(p[2]);
  const auto b5 = static_cast<unsigned char>(p[5]);
  // Handshake record, SSL3.0-TLS1.3 version byte, ClientHello type.
  return b0 == 0x16 && b1 == 0x03 && b2 <= 0x04 && b5 == 0x01;
}

bool looks_ssh(std::string_view p) { return p.substr(0, 4) == "SSH-"; }

bool looks_telnet(std::string_view p) {
  // A leading IAC verb is the reliable Telnet signature.
  return p.size() >= 2 && static_cast<unsigned char>(p[0]) == 0xff &&
         static_cast<unsigned char>(p[1]) >= 0xf0;
}

bool looks_smb(std::string_view p) {
  const std::size_t offset = p.size() >= 8 && p[0] == '\x00' ? 4 : 0;  // NetBIOS framing
  if (p.size() < offset + 4) return false;
  const std::string_view magic = p.substr(offset, 4);
  return magic == std::string_view("\xffSMB", 4) || magic == std::string_view("\xfeSMB", 4);
}

bool looks_rtsp(std::string_view p) {
  const std::size_t eol = p.find("\r\n");
  const std::string_view line = eol == std::string_view::npos ? p : p.substr(0, eol);
  return line.find(" RTSP/") != std::string_view::npos;
}

bool looks_sip(std::string_view p) {
  const std::size_t eol = p.find("\r\n");
  const std::string_view line = eol == std::string_view::npos ? p : p.substr(0, eol);
  return line.find("sip:") != std::string_view::npos &&
         (line.find(" SIP/") != std::string_view::npos || line.substr(0, 8) == "REGISTER");
}

bool looks_ntp(std::string_view p) {
  if (p.size() != 48) return false;
  const auto b0 = static_cast<unsigned char>(p[0]);
  const int version = (b0 >> 3) & 0x7;
  const int mode = b0 & 0x7;
  return version >= 1 && version <= 4 && (mode == 3 || mode == 6 || mode == 7);
}

bool looks_rdp(std::string_view p) {
  if (p.size() < 7) return false;
  return static_cast<unsigned char>(p[0]) == 0x03 && p[1] == '\x00' &&
         (p.find("Cookie: mstshash=") != std::string_view::npos ||
          static_cast<unsigned char>(p[5]) == 0xe0);
}

bool looks_adb(std::string_view p) { return p.substr(0, 4) == "CNXN"; }

bool looks_fox(std::string_view p) { return p.substr(0, 4) == "fox "; }

bool looks_redis(std::string_view p) {
  if (p.empty()) return false;
  if (p[0] == '*' && p.find("\r\n$") != std::string_view::npos) return true;  // RESP array
  static constexpr std::string_view kInline[] = {"PING\r\n", "INFO\r\n", "ECHO ", "CONFIG ",
                                                 "AUTH "};
  for (std::string_view cmd : kInline) {
    if (p.substr(0, cmd.size()) == cmd) return true;
  }
  return false;
}

bool looks_sql(std::string_view p) {
  if (p.find("mysql_native_password") != std::string_view::npos) return true;
  // MSSQL TDS pre-login packet.
  if (p.size() >= 8 && static_cast<unsigned char>(p[0]) == 0x12 && p[1] == '\x01') return true;
  // MySQL client handshake response: 3-byte length + seq 1 + capability
  // flag CLIENT_PROTOCOL_41 (0x0200) in the low word.
  if (p.size() >= 9 && p[3] == '\x01') {
    const auto cap_lo = static_cast<unsigned char>(p[4]);
    const auto cap_hi = static_cast<unsigned char>(p[5]);
    const unsigned caps = cap_lo | (cap_hi << 8);
    if ((caps & 0x0200) != 0) return true;
  }
  return false;
}

}  // namespace

net::Protocol Fingerprinter::identify(std::string_view payload) noexcept {
  using net::Protocol;
  if (payload.empty()) return Protocol::kUnknown;
  // Order matters: the most structurally specific signatures run first so a
  // generic request-line match cannot shadow RTSP/SIP.
  if (looks_tls(payload)) return Protocol::kTls;
  if (looks_ssh(payload)) return Protocol::kSsh;
  if (looks_smb(payload)) return Protocol::kSmb;
  if (looks_rdp(payload)) return Protocol::kRdp;
  if (looks_adb(payload)) return Protocol::kAdb;
  if (looks_fox(payload)) return Protocol::kFox;
  if (looks_telnet(payload)) return Protocol::kTelnet;
  if (looks_rtsp(payload)) return Protocol::kRtsp;
  if (looks_sip(payload)) return Protocol::kSip;
  if (looks_http(payload)) return Protocol::kHttp;
  if (looks_redis(payload)) return Protocol::kRedis;
  if (looks_sql(payload)) return Protocol::kSql;
  if (looks_ntp(payload)) return Protocol::kNtp;
  return Protocol::kUnknown;
}

bool Fingerprinter::is_expected(std::string_view payload, net::Port port) noexcept {
  const net::Protocol assigned = net::iana_assignment(port);
  if (assigned == net::Protocol::kUnknown) return false;
  return identify(payload) == assigned;
}

}  // namespace cw::proto
