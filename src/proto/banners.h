// Server-side banners. The GreyNoise honeypots present "vulnerable-looking
// protocol-assigned services" (Section 3.1); the banner is what an
// Internet-service search engine indexes and what attackers search for
// ("OpenSSH_7.4", "Apache/2.4.29"). Variants rotate across a small set of
// dated software versions, deterministically per (protocol, variant).
#pragma once

#include <cstdint>
#include <string>

#include "net/ports.h"

namespace cw::proto {

// The banner a vulnerable-looking service of this protocol presents.
// Returns an empty string for protocols that do not speak first (and thus
// expose no banner to a crawler that only connects).
std::string server_banner(net::Protocol protocol, std::uint32_t variant = 0);

}  // namespace cw::proto
