#include "proto/payloads.h"

#include "proto/http.h"

namespace cw::proto {

std::string tls_client_hello() {
  // Record: ContentType=handshake(0x16), version TLS1.0 (0x0301), length.
  // Handshake: ClientHello(0x01), length, client_version TLS1.2 (0x0303),
  // 32-byte random, 0-length session id, one cipher suite, null compression.
  std::string hello;
  const std::string body = [] {
    std::string b;
    b += '\x01';                      // ClientHello
    std::string ch;
    ch += '\x03';                     // client_version major
    ch += '\x03';                     // client_version minor
    ch.append(32, '\x5a');            // random (fixed; not used by fingerprints)
    ch += '\x00';                     // session id length
    ch += '\x00';                     // cipher suites length hi
    ch += '\x02';                     // cipher suites length lo
    ch += '\x00';                     // TLS_RSA_WITH_AES_128_CBC_SHA
    ch += '\x2f';
    ch += '\x01';                     // compression methods length
    ch += '\x00';                     // null compression
    b += '\x00';                      // handshake length (24-bit)
    b += static_cast<char>((ch.size() >> 8) & 0xff);
    b += static_cast<char>(ch.size() & 0xff);
    b += ch;
    return b;
  }();
  hello += '\x16';
  hello += '\x03';
  hello += '\x01';
  hello += static_cast<char>((body.size() >> 8) & 0xff);
  hello += static_cast<char>(body.size() & 0xff);
  hello += body;
  return hello;
}

std::string ssh_client_banner(std::string_view software) {
  return "SSH-2.0-" + std::string(software) + "\r\n";
}

std::string telnet_negotiation() {
  // IAC DO SUPPRESS-GO-AHEAD, IAC WILL TERMINAL-TYPE, IAC DO ECHO.
  return std::string("\xff\xfd\x03\xff\xfb\x18\xff\xfd\x01", 9);
}

std::string smb_negotiate() {
  std::string out;
  // NetBIOS session message header (type 0, length filled below).
  std::string smb;
  smb += '\xff';
  smb += "SMB";
  smb += '\x72';                      // SMB_COM_NEGOTIATE
  smb.append(27, '\x00');             // status/flags/extra (zeroed)
  smb += "\x02NT LM 0.12";            // single dialect
  smb += '\x00';
  out += '\x00';                      // session message
  out += '\x00';
  out += static_cast<char>((smb.size() >> 8) & 0xff);
  out += static_cast<char>(smb.size() & 0xff);
  out += smb;
  return out;
}

std::string rtsp_options(std::string_view target) {
  return "OPTIONS " + std::string(target) + " RTSP/1.0\r\nCSeq: 1\r\n\r\n";
}

std::string sip_options() {
  return "OPTIONS sip:nm SIP/2.0\r\nVia: SIP/2.0/TCP nm;branch=foo\r\nFrom: <sip:nm@nm>"
         "\r\nTo: <sip:nm2@nm2>\r\nCall-ID: 50000\r\nCSeq: 42 OPTIONS\r\nMax-Forwards: 70"
         "\r\nContent-Length: 0\r\n\r\n";
}

std::string ntp_client() {
  std::string out(48, '\x00');
  out[0] = '\x1b';  // LI=0, VN=3, Mode=3 (client)
  return out;
}

std::string rdp_connection_request(std::string_view cookie_user) {
  const std::string cookie = "Cookie: mstshash=" + std::string(cookie_user) + "\r\n";
  const std::string x224 =
      std::string("\xe0\x00\x00\x00\x00\x00", 6) + cookie;  // CR TPDU + cookie
  std::string out;
  out += '\x03';  // TPKT version
  out += '\x00';  // reserved
  const std::size_t total = 4 + 1 + x224.size();
  out += static_cast<char>((total >> 8) & 0xff);
  out += static_cast<char>(total & 0xff);
  out += static_cast<char>(x224.size());  // X.224 length indicator
  out += x224;
  return out;
}

std::string adb_connect() {
  std::string out = "CNXN";
  out += std::string("\x00\x00\x00\x01", 4);     // version
  out += std::string("\x00\x10\x00\x00", 4);     // maxdata
  out.append(12, '\x00');                        // data length/crc/magic (simplified)
  out += "host::";
  return out;
}

std::string fox_hello() {
  return "fox a 1 -1 fox hello\n{\nfox.version=s:1.0\nid=i:1\n};;\n";
}

std::string redis_ping() { return "PING\r\n"; }

std::string mysql_login_probe(std::string_view user) {
  std::string body;
  body += std::string("\x85\xa6\x03\x00", 4);    // capability flags
  body += std::string("\x00\x00\x00\x01", 4);    // max packet
  body += '\x21';                                // charset utf8
  body.append(23, '\x00');                       // filler
  body += std::string(user);
  body += '\x00';
  body += '\x00';                                // empty auth response
  body += "mysql_native_password";
  body += '\x00';
  std::string out;
  out += static_cast<char>(body.size() & 0xff);  // 3-byte LE length
  out += static_cast<char>((body.size() >> 8) & 0xff);
  out += static_cast<char>((body.size() >> 16) & 0xff);
  out += '\x01';                                 // sequence id
  out += body;
  return out;
}

std::string http_benign_request(std::uint32_t variant) {
  static constexpr std::string_view kPaths[] = {
      "/", "/robots.txt", "/favicon.ico", "/index.html", "/sitemap.xml", "/status",
      "/health", "/.well-known/security.txt",
  };
  static constexpr std::string_view kAgents[] = {
      "Mozilla/5.0 zgrab/0.x",
      "python-requests/2.26.0",
      "curl/7.74.0",
      "Go-http-client/1.1",
      "masscan/1.3",
      "Mozilla/5.0 (compatible; CensysInspect/1.1)",
      "Mozilla/5.0 (compatible; InternetMeasurement/1.0)",
      "HTTP Banner Detection (https://security.ipip.net)",
      "Mozilla/5.0 (Windows NT 10.0; Win64; x64)",
      "okhttp/3.12.1",
  };
  HttpRequest req;
  req.method = "GET";
  req.uri = std::string(kPaths[variant % std::size(kPaths)]);
  req.headers = {{"Host", "scanned.host"},
                 {"User-Agent", std::string(kAgents[(variant / std::size(kPaths)) %
                                                    std::size(kAgents)])},
                 {"Accept", "*/*"}};
  return req.serialize();
}

std::string probe_payload(net::Protocol protocol) {
  switch (protocol) {
    case net::Protocol::kHttp: {
      HttpRequest req;
      req.method = "GET";
      req.uri = "/";
      req.headers = {{"Host", "scanned.host"},
                     {"User-Agent", "Mozilla/5.0 zgrab/0.x"},
                     {"Accept", "*/*"}};
      return req.serialize();
    }
    case net::Protocol::kTls: return tls_client_hello();
    case net::Protocol::kSsh: return ssh_client_banner();
    case net::Protocol::kTelnet: return telnet_negotiation();
    case net::Protocol::kSmb: return smb_negotiate();
    case net::Protocol::kRtsp: return rtsp_options();
    case net::Protocol::kSip: return sip_options();
    case net::Protocol::kNtp: return ntp_client();
    case net::Protocol::kRdp: return rdp_connection_request();
    case net::Protocol::kAdb: return adb_connect();
    case net::Protocol::kFox: return fox_hello();
    case net::Protocol::kRedis: return redis_ping();
    case net::Protocol::kSql: return mysql_login_probe();
    case net::Protocol::kUnknown: return {};
  }
  return {};
}

}  // namespace cw::proto
