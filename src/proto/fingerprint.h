// LZR-style protocol fingerprinting (Izhikevich et al., USENIX Security
// 2021): given the first payload a client sends after the TCP handshake,
// identify which application protocol the client is actually speaking —
// independent of the destination port. This is the instrument Section 6
// uses to show that >= 15% of traffic on ports 80/8080 is not HTTP.
#pragma once

#include <string_view>

#include "net/ports.h"

namespace cw::proto {

class Fingerprinter {
 public:
  // Identifies the protocol of a client-first payload. Empty payloads and
  // unrecognized byte patterns return kUnknown.
  [[nodiscard]] static net::Protocol identify(std::string_view payload) noexcept;

  // True if the payload speaks the IANA-assigned protocol of the port. An
  // unknown fingerprint never counts as expected.
  [[nodiscard]] static bool is_expected(std::string_view payload, net::Port port) noexcept;
};

}  // namespace cw::proto
