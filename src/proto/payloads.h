// First-payload builders for the 13 client-first(ish) TCP protocols the LZR
// fingerprinter recognizes (Section 6). These produce realistic wire bytes:
// enough structure for the fingerprinter (and tests) to treat them as the
// genuine protocol, without implementing full stacks.
#pragma once

#include <string>
#include <string_view>

#include "net/ports.h"

namespace cw::proto {

// A generic benign probe payload for the given protocol (what an Internet
// scanner sends to elicit a banner).
std::string probe_payload(net::Protocol protocol);

// A benign HTTP request whose path and User-Agent vary with `variant` —
// real benign sweeps differ per operator, and the payload-distribution
// analyses depend on that diversity. The same variant always yields the
// same bytes (one campaign = one payload).
std::string http_benign_request(std::uint32_t variant);

// TLS ClientHello record (minimal but structurally valid: record header,
// handshake header, version, random, one cipher suite, SNI-free).
std::string tls_client_hello();

// SSH protocol version exchange banner from a scanner client.
std::string ssh_client_banner(std::string_view software = "OpenSSH_7.4");

// Telnet IAC negotiation burst a Telnet client opens with.
std::string telnet_negotiation();

// SMB1 protocol negotiate request (NetBIOS session + \xffSMB header).
std::string smb_negotiate();

// RTSP OPTIONS request.
std::string rtsp_options(std::string_view target = "*");

// SIP OPTIONS request (over TCP).
std::string sip_options();

// NTP v3 client mode packet (48 bytes).
std::string ntp_client();

// RDP X.224 connection request with the mstshash cookie.
std::string rdp_connection_request(std::string_view cookie_user = "hello");

// ADB CNXN handshake message.
std::string adb_connect();

// Niagara Fox protocol hello.
std::string fox_hello();

// Redis inline PING command.
std::string redis_ping();

// MySQL client login packet fragment (header + capability flags + the
// mysql_native_password auth plugin name scanners blast blindly).
std::string mysql_login_probe(std::string_view user = "root");

}  // namespace cw::proto
