#include "proto/banners.h"

namespace cw::proto {

std::string server_banner(net::Protocol protocol, std::uint32_t variant) {
  switch (protocol) {
    case net::Protocol::kSsh: {
      static constexpr const char* kVersions[] = {
          "SSH-2.0-OpenSSH_7.4p1 Debian-10+deb9u7",
          "SSH-2.0-OpenSSH_6.6.1p1 Ubuntu-2ubuntu2.13",
          "SSH-2.0-dropbear_2014.63",
          "SSH-2.0-OpenSSH_5.3",
      };
      return std::string(kVersions[variant % 4]) + "\r\n";
    }
    case net::Protocol::kHttp: {
      static constexpr const char* kServers[] = {
          "Apache/2.4.29 (Ubuntu)",
          "nginx/1.10.3",
          "Microsoft-IIS/7.5",
          "lighttpd/1.4.35",
      };
      return std::string("HTTP/1.1 200 OK\r\nServer: ") + kServers[variant % 4] +
             "\r\nContent-Type: text/html\r\n\r\n<html><body>It works!</body></html>";
    }
    case net::Protocol::kTelnet: {
      static constexpr const char* kLogins[] = {
          "BusyBox v1.19.3 built-in shell (ash)\r\nlogin: ",
          "Welcome to HiLinux.\r\nlogin: ",
          "(none) login: ",
          "RouterOS v6.40.5\r\nLogin: ",
      };
      return kLogins[variant % 4];
    }
    case net::Protocol::kTls:
      // A crawler records the certificate subject rather than a text banner.
      return "TLSv1.2; CN=localhost; self-signed";
    case net::Protocol::kRtsp:
      return "RTSP/1.0 200 OK\r\nCSeq: 1\r\nServer: Hipcam RealServer/V1.0\r\n\r\n";
    case net::Protocol::kRedis:
      return "-NOAUTH Authentication required.\r\n";
    case net::Protocol::kSql:
      return std::string("5.5.") + std::to_string(40 + variant % 20) +
             "-0+deb8u1-log mysql_native_password";
    case net::Protocol::kFox:
      return "fox a 0 -1 fox hello { fox.version=s:1.0 }";
    case net::Protocol::kSip:
      return "SIP/2.0 200 OK\r\nServer: FPBX-13.0.192(13.17.0)\r\n\r\n";
    case net::Protocol::kSmb:
    case net::Protocol::kRdp:
    case net::Protocol::kNtp:
    case net::Protocol::kAdb:
    case net::Protocol::kUnknown:
      // Binary or server-silent protocols: nothing a text index stores.
      return {};
  }
  return {};
}

}  // namespace cw::proto
