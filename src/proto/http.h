// HTTP request modeling: serialization of scanner-style requests, a
// tolerant parser for captured payloads, and the ephemeral-field
// normalization the paper applies before comparing payloads across vantage
// points ("removing ephemeral values (i.e., Date, Host, and Content-Length
// fields)", Section 3.3).
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cw::proto {

struct HttpRequest {
  std::string method = "GET";
  std::string uri = "/";
  std::string version = "HTTP/1.1";
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Renders the on-the-wire request (CRLF line endings, Content-Length
  // appended automatically when a body is present).
  [[nodiscard]] std::string serialize() const;

  // Convenience: header lookup, case-insensitive. Returns nullopt if absent.
  [[nodiscard]] std::optional<std::string_view> header(std::string_view name) const;
};

// Parses a request; returns nullopt if the payload is not parseable HTTP.
// The parser is deliberately forgiving (scanners send malformed requests).
std::optional<HttpRequest> parse_http(std::string_view payload);

// Strips Date, Host, and Content-Length headers from a raw HTTP payload so
// that byte-identical campaign payloads compare equal across vantage
// points. Non-HTTP payloads are returned unchanged.
std::string normalize_http_payload(std::string_view payload);

}  // namespace cw::proto
