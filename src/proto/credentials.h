// Credential dictionaries used by brute-force agents. The entries mirror
// the real-world lists the paper surfaces: generic SSH/Telnet defaults
// ("root"/"admin"/"support" dominate most regions), the Mirai botnet's
// embedded dictionary, and the Huawei-targeting regional credentials
// ("e8ehome", "mother") that dominate the AWS Australia region (Section 5.1).
#pragma once

#include <string>
#include <vector>

#include "util/rng.h"

namespace cw::proto {

struct Credential {
  std::string username;
  std::string password;

  friend bool operator==(const Credential&, const Credential&) = default;
};

enum class CredentialDictionary {
  kGenericSsh = 0,   // commodity SSH brute-force lists
  kGenericTelnet,    // commodity Telnet/IoT lists
  kMirai,            // Mirai's hardcoded table
  kHuaweiRegional,   // e8ehome/mother-style regional lists
};

// The dictionary contents, ordered from most to least frequently attempted.
const std::vector<Credential>& dictionary(CredentialDictionary dict);

// Draws a credential with Zipf-weighted popularity (rank 0 most likely),
// which reproduces the heavy-headed username/password distributions the
// paper's top-3 comparisons rely on.
const Credential& sample_credential(CredentialDictionary dict, util::Rng& rng,
                                    double zipf_exponent = 1.2);

// Draws from a contiguous slice [offset, offset + count) of the dictionary —
// an operator running their own excerpt of a public wordlist. Out-of-range
// slices clamp to the dictionary tail; a zero count means the whole tail
// from `offset`. Same Zipf head-heaviness, over the slice's own ranks.
const Credential& sample_credential_slice(CredentialDictionary dict, std::size_t offset,
                                          std::size_t count, util::Rng& rng,
                                          double zipf_exponent = 1.2);

}  // namespace cw::proto
