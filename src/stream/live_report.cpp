#include "stream/live_report.h"

#include <filesystem>
#include <stdexcept>
#include <system_error>

#include "runner/pipeline.h"
#include "runner/thread_pool.h"

namespace cw::stream {

EpochReport LiveReport::run(const EpochCallback& callback) {
  const std::size_t epochs = config_.epochs == 0 ? 1 : config_.epochs;

  if (!config_.spill_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.spill_dir, ec);
    if (ec) throw std::runtime_error("LiveReport: cannot create " + config_.spill_dir);
  }

  core::LiveExperiment live(config_.experiment);
  IngestShards ingest(config_.shards);

  // Route live capture into the shard buffers; the collector's own store
  // stays empty for the whole run.
  live.collector().set_store_sink(
      [&ingest](const capture::SessionRecord& record, std::string_view payload,
                const std::optional<proto::Credential>& credential) {
        ingest.append(ingest.shard_of(record), record, payload, credential);
      });

  const analysis::MaliciousClassifier& classifier = live.result().classifier();
  const VerdictFactory verdict = [&classifier](const capture::EventStore& store) {
    return [&classifier, &store](const capture::SessionRecord& record) {
      switch (classifier.classify(record, store)) {
        case analysis::MeasuredIntent::kMalicious: return capture::SessionFrame::Verdict::kMalicious;
        case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
        case analysis::MeasuredIntent::kUnobservable: break;
      }
      return capture::SessionFrame::Verdict::kUnobservable;
    };
  };

  analysis::SegmentedTableCache segmented(classifier);
  // Cumulative store replica: every sealed segment's records re-appended in
  // segment order. The light renderers (sets, overlaps, Figure 1) re-read
  // this whole replica each epoch; the heavy tables never touch it — they go
  // through `segmented`, which only builds the newest segment's partials.
  capture::EventStore total;

  runner::ThreadPool pool(config_.jobs);
  EpochReport report;

  for (std::size_t k = 1; k <= epochs; ++k) {
    // Integer slice boundaries; the last is exactly the configured duration.
    const util::SimTime boundary = static_cast<util::SimTime>(
        (static_cast<unsigned long long>(config_.experiment.duration) * k) / epochs);
    live.advance_to(k == epochs ? config_.experiment.duration : boundary);

    // The factory above wraps the classifier, which is pure in (credential
    // presence, payload id, port, transport) — declare it so the seal
    // memoizes classification per distinct tuple.
    const EpochSnapshot snapshot =
        ingest.seal_epoch(live.result().deployment(), verdict, &pool, /*verdict_pure=*/true);
    const Segment& segment = *snapshot.segments().back();
    segmented.add_segment(segment.frame());

    // Unpin the replica (the previous epoch's cumulative frame holds a pin)
    // before extending it with the new segment's records.
    live.result().release_derived();
    const capture::EventStore& sealed = segment.store();
    for (const capture::SessionRecord& record : sealed.records()) {
      const std::string_view payload = record.payload_id == capture::kNoPayload
                                           ? std::string_view{}
                                           : std::string_view(sealed.payload(record.payload_id));
      std::optional<proto::Credential> credential;
      if (record.credential_id != capture::kNoCredential) {
        credential = sealed.credential(record.credential_id);
      }
      total.append(record, payload, credential);
    }
    total.freeze();
    live.result().rebind_store(&total, &segmented);

    // Tiering: demote everything but the newest hot_segments. Safe at this
    // point — the segment's partials that exist are owned copies inside
    // `segmented`, and its records are in the replica; partials not yet
    // built rebuild from the mapping the render block below re-establishes.
    // spill() is idempotent; release_mapping() after it returns the address
    // space immediately, so between renders the cold tail costs nothing.
    if (!config_.spill_dir.empty()) {
      const auto& segments = snapshot.segments();
      const std::size_t cold = segments.size() > config_.hot_segments
                                   ? segments.size() - config_.hot_segments
                                   : 0;
      for (std::size_t i = 0; i < cold; ++i) {
        const Segment& old = *segments[i];
        if (old.spilled()) continue;
        std::string spill_error;
        if (!old.spill(config_.spill_dir, &spill_error)) {
          throw std::runtime_error("LiveReport: " + spill_error);
        }
        old.release_mapping();
      }
    }

    report = EpochReport{};
    report.epoch = k;
    report.now = live.now();
    report.records_total = total.size();
    report.records_new = segment.size();
    report.snapshot = snapshot;

    if (config_.render_intermediate || k == epochs) {
      // Map every spilled segment for the duration of the render: partials
      // not built while the segment was hot (e.g. with render_intermediate
      // off, or for slices first named this epoch) rebuild from the mapping,
      // and madvise(SEQUENTIAL) primes the full-column scans. Released again
      // after the render — the address space is only held while reading.
      for (const auto& segment : snapshot.segments()) {
        if (!segment->spilled()) continue;
        std::string map_error;
        if (!segment->ensure_mapped(&map_error)) {
          throw std::runtime_error("LiveReport: " + map_error);
        }
        segment->advise_sequential();
      }
      // Same warm-up order as the batch driver: cumulative frame first, then
      // the pipelines fan out over it and the segmented cache.
      static_cast<void>(live.result().frame(&pool));
      const auto pipelines = runner::paper_report_pipelines(live.result(), config_.report);
      auto run = runner::run_pipelines(pipelines, config_.jobs);
      report.rendered = true;
      report.names.reserve(pipelines.size());
      for (const auto& pipeline : pipelines) report.names.push_back(pipeline.name);
      report.outputs = std::move(run.outputs);
      for (const auto& metrics : run.report.pipelines) report.failed |= metrics.failed;
      report.run_report = std::move(run.report);
      if (config_.extract_findings) {
        // After the render the shared table cache is warm, so the seven
        // extractors mostly re-read tables the pipelines already built.
        report.findings = runner::extract_findings(live.result(), runner::AnalysisOptions{}, &pool);
        report.findings_extracted = true;
      }
      // Render done; drop the cold tail's mappings until the next one.
      for (const auto& segment : snapshot.segments()) segment->release_mapping();
    }
    if (callback) callback(report);
  }

  // `total`/`segmented` are declared after `live` and die first; drop the
  // result's frame (which pins `total`) and external bindings before they do.
  live.result().rebind_store(nullptr, nullptr);
  return report;
}

}  // namespace cw::stream
