#include "stream/spill_runner.h"

#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <system_error>
#include <utility>
#include <vector>

#include "analysis/table_cache.h"
#include "core/experiment.h"
#include "stream/ingest.h"

namespace cw::stream {
namespace {

// Everything the returned ExperimentResult borrows. Destroyed after the
// result (runner::SimHandle declares the context first): the segmented cache
// dies before the snapshot whose frames it borrows (declaration order), then
// the segments unmap their spill files, then the directory is removed.
struct SpillContext {
  EpochSnapshot snapshot;
  std::unique_ptr<analysis::SegmentedTableCache> segmented;
  std::vector<const capture::SessionFrame*> frames;
  std::string dir;

  // Refcounted pager state: concurrent merged-table builds (different keys,
  // same segments) and the overlap extractors may pin one segment at once.
  std::mutex pager_mutex;
  std::vector<std::size_t> pin_counts;

  ~SpillContext() {
    segmented.reset();
    snapshot = EpochSnapshot{};  // unmaps every spilled segment
    if (!dir.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(dir, ec);  // best-effort cleanup
    }
  }
};

}  // namespace

runner::SimRunner make_spill_sim_runner(SpillSimOptions options, runner::ThreadPool* pool) {
  if (options.spill_dir.empty()) {
    throw std::invalid_argument("make_spill_sim_runner: spill_dir is required");
  }
  return [options = std::move(options), pool](const core::ExperimentConfig& config) {
    auto context = std::make_shared<SpillContext>();
    char sub[40];
    std::snprintf(sub, sizeof(sub), "/sim-%016llx",
                  static_cast<unsigned long long>(config.seed));
    context->dir = options.spill_dir + sub;
    std::error_code ec;
    std::filesystem::create_directories(context->dir, ec);
    if (ec) throw std::runtime_error("spill runner: cannot create " + context->dir);

    const std::size_t epochs = options.epochs == 0 ? 1 : options.epochs;
    core::LiveExperiment live(config);
    IngestShards ingest(options.shards);
    live.collector().set_store_sink(
        [&ingest](const capture::SessionRecord& record, std::string_view payload,
                  const std::optional<proto::Credential>& credential) {
          ingest.append(ingest.shard_of(record), record, payload, credential);
        });

    const analysis::MaliciousClassifier& classifier = live.result().classifier();
    const VerdictFactory verdict = [&classifier](const capture::EventStore& store) {
      return [&classifier, &store](const capture::SessionRecord& record) {
        switch (classifier.classify(record, store)) {
          case analysis::MeasuredIntent::kMalicious:
            return capture::SessionFrame::Verdict::kMalicious;
          case analysis::MeasuredIntent::kBenign: return capture::SessionFrame::Verdict::kBenign;
          case analysis::MeasuredIntent::kUnobservable: break;
        }
        return capture::SessionFrame::Verdict::kUnobservable;
      };
    };
    context->segmented = std::make_unique<analysis::SegmentedTableCache>(classifier);

    EpochSnapshot snapshot;
    for (std::size_t k = 1; k <= epochs; ++k) {
      const util::SimTime boundary = static_cast<util::SimTime>(
          (static_cast<unsigned long long>(config.duration) * k) / epochs);
      live.advance_to(k == epochs ? config.duration : boundary);
      // Classifier verdicts are pure in (credential presence, payload id,
      // port, transport); see LiveReport.
      snapshot = ingest.seal_epoch(live.result().deployment(), verdict, pool,
                                   /*verdict_pure=*/true);
      context->segmented->add_segment(snapshot.segments().back()->frame());

      // Demote everything but the newest hot_segments. No cumulative replica
      // exists in this runner — resident state is exactly the hot tail.
      const auto& segments = snapshot.segments();
      const std::size_t cold =
          segments.size() > options.hot_segments ? segments.size() - options.hot_segments : 0;
      for (std::size_t i = 0; i < cold; ++i) {
        const Segment& old = *segments[i];
        if (old.spilled()) continue;
        std::string error;
        if (!old.spill(context->dir, &error)) {
          throw std::runtime_error("spill runner: " + error);
        }
        old.release_mapping();
      }
    }
    context->snapshot = snapshot;

    // The sink captures the local `ingest`; drop it before the collector
    // outlives this frame inside the returned result.
    live.collector().set_store_sink({});

    runner::SimHandle handle;
    handle.context = context;
    handle.result = live.take();
    handle.records = snapshot.size();
    handle.events = handle.result->events_processed();

    context->frames.reserve(snapshot.segments().size());
    for (const auto& segment : snapshot.segments()) context->frames.push_back(&segment->frame());
    context->pin_counts.assign(context->frames.size(), 0);

    // Raw pointer on purpose: the pager is stored inside context->segmented
    // and the result (both outlived by the context); a shared_ptr capture
    // would make the context own a function that owns the context.
    SpillContext* raw = context.get();
    analysis::SegmentPager pager = [raw](std::size_t index, bool acquire) {
      const std::lock_guard<std::mutex> lock(raw->pager_mutex);
      const Segment& segment = *raw->snapshot.segments()[index];
      if (acquire) {
        if (raw->pin_counts[index]++ == 0) {
          std::string error;
          if (!segment.ensure_mapped(&error)) {
            throw std::runtime_error("spill pager: " + error);
          }
          segment.advise_sequential();
        }
      } else {
        if (--raw->pin_counts[index] == 0) segment.release_mapping();
      }
    };
    context->segmented->set_segment_pager(pager);
    handle.result->rebind_store(nullptr, context->segmented.get());
    handle.result->bind_segment_frames(context->frames, std::move(pager));
    return handle;
  };
}

}  // namespace cw::stream
