// Out-of-core simulation runner for runner::Fleet: runs each fleet
// simulation through the stream subsystem — the observation window cut into
// epochs, each sealed into an immutable Segment — and spills every segment
// older than the newest `hot_segments` to disk (CWDS v3 spill files under a
// per-simulation directory). The handle it returns holds:
//
//   - an ExperimentResult whose table cache is the stream layer's
//     SegmentedTableCache (per-segment partials built on demand from mapped
//     spill files) and whose Tables 8/9 extractors walk the per-segment
//     frames through a refcounted pager that maps a cold segment in around
//     each scan and releases it after;
//   - a context keeping the snapshot, cache, and spill files alive until the
//     result is done; the spill directory is removed at teardown.
//
// The findings are bit-identical to the default batch runner's: sliced and
// batch runs process the same event sequence, segment-merged tables equal
// whole-corpus tables (text-keyed exact counts), and the overlap unions
// commute with the segment split. What changes is the memory high-water:
// resident state is one epoch's segment (plus whatever is pinned hot)
// instead of the whole corpus — bench_coldstore and `scripts/check.sh
// coldstore` (which runs a sweep under `ulimit -v`) measure exactly this.
#pragma once

#include <cstddef>
#include <string>

#include "runner/fleet.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::stream {

struct SpillSimOptions {
  // Required. Each simulation spills into `<spill_dir>/sim-<seed hex>/`
  // (created on demand, removed when the simulation's handle is released),
  // so concurrent fleet groups never collide.
  std::string spill_dir;
  // Newest segments kept resident; older ones spill after their seal. 0
  // spills everything as soon as it seals.
  std::size_t hot_segments = 1;
  // Epoch slicing of each simulation's observation window.
  std::size_t epochs = 4;
  std::size_t shards = 4;
};

// Builds the runner for Fleet::set_sim_runner. `pool` (optional) shards the
// per-epoch frame builds. Throws std::invalid_argument on an empty
// spill_dir.
runner::SimRunner make_spill_sim_runner(SpillSimOptions options,
                                        runner::ThreadPool* pool = nullptr);

}  // namespace cw::stream
