// Epoch snapshots: the immutable read side of the stream subsystem.
//
// A live run seals what arrived during each wall-clock slice into a Segment
// — a frozen EventStore plus the SessionFrame built over it once — and
// publishes the growing corpus as an EpochSnapshot: a persistent
// (shared-structure) list of segments. Snapshots are values: epoch k+1
// shares every segment with epoch k and appends one, so readers holding an
// older snapshot keep a consistent corpus view at zero copy cost while the
// ingest side moves on.
//
// Determinism contract: a segment's record order is fixed by the seal
// (shard-major; see stream::IngestShards), its frame build is deterministic
// at any pool size (capture::SessionFrame), and the segment list is ordered
// by epoch. Everything derived per segment — frames, the per-segment
// partial tables in analysis::SegmentedTableCache — is therefore
// byte-reproducible for a fixed (shard count, epoch slicing), and the
// *merged* statistics are additionally invariant across slicings because
// they aggregate over text-keyed exact counts (see table_cache.h).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "capture/frame.h"
#include "capture/frame_io.h"
#include "capture/store.h"
#include "topology/deployment.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::stream {

// Builds the verdict column of a segment's frame. The classifier needs the
// owning store to resolve interned payload ids, and the store does not exist
// until the seal — so the ingest layer takes a factory and invokes it with
// the freshly sealed store (the stream driver closes over its
// MaliciousClassifier here).
using VerdictFactory =
    std::function<capture::SessionFrame::VerdictFn(const capture::EventStore&)>;

// One sealed epoch of capture: the frozen record store and its columnar
// frame, built exactly once at seal time and reused by every snapshot (and
// every SegmentedTableCache partial) that includes this segment. Immovable:
// the frame pins the store in place.
class Segment {
 public:
  // `store` is frozen and projected during construction. `base` is the
  // segment's record offset within the cumulative corpus (sum of earlier
  // segment sizes). An empty `verdict` factory leaves the frame without a
  // verdict column. `shared_dicts`, when given, points at the experiment's
  // shared characteristic dictionaries: the frame encodes against (and
  // extends) them instead of building segment-local ones, so values seen in
  // earlier epochs are never re-normalized or re-fingerprinted. The caller
  // must serialize builds that share the same dictionaries (the ingest seal
  // mutex does). `verdict_pure` declares the verdict function pure in
  // (credential presence, payload id, port, transport) so the frame build
  // may memoize it per distinct tuple — only set it for classifier-derived
  // verdicts, never for arbitrary test factories.
  Segment(std::uint64_t id, std::uint64_t base, capture::EventStore&& store,
          const topology::Deployment& deployment, const VerdictFactory& verdict,
          runner::ThreadPool* pool = nullptr, capture::SharedFrameDicts* shared_dicts = nullptr,
          bool verdict_pure = false);

  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;

  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::uint64_t base() const noexcept { return base_; }
  // Record count. Read through the frame, whose column sizes survive an
  // unmap — valid hot, spilled-and-mapped, and cold alike.
  [[nodiscard]] std::size_t size() const noexcept { return frame_.size(); }
  // The sealed record store. Empty once the segment has spilled: the frame
  // section carries everything the analysis kernels read.
  [[nodiscard]] const capture::EventStore& store() const noexcept { return store_; }
  // The columnar frame. For a spilled segment the columns are only readable
  // while mapped — call ensure_mapped() first (the tiering driver does).
  [[nodiscard]] const capture::SessionFrame& frame() const noexcept { return frame_; }

  // --- Out-of-core tiering -------------------------------------------------
  // A segment starts hot (store + frame resident). spill(dir) writes the
  // CWDS v3 spill file `dir/segment-<id>.cwds` (records + CRC + frame
  // section), rebinds the frame zero-copy onto the mapping in place — the
  // SessionFrame object's address never changes, so const references handed
  // out earlier stay valid — and frees the record store. release_mapping()
  // then drops the address space too (a genuine munmap; the coldstore check
  // tier runs under `ulimit -v`), leaving only sizes; ensure_mapped() brings
  // the columns back at whatever address the kernel picks. The map/unmap
  // lifecycle is single-threaded (the epoch driver); concurrent readers may
  // scan a *mapped* frame freely.

  // Idempotent; returns false (with *error) on I/O or validation failure.
  bool spill(const std::string& dir, std::string* error = nullptr) const;
  [[nodiscard]] bool spilled() const noexcept { return !spill_path_.empty(); }
  [[nodiscard]] const std::string& spill_path() const noexcept { return spill_path_; }
  // Resident and mapped segments return true immediately.
  bool ensure_mapped(std::string* error = nullptr) const;
  void release_mapping() const;
  // madvise(SEQUENTIAL) ahead of a full scan of a mapped spilled segment.
  void advise_sequential() const noexcept { view_.advise_sequential(); }

  // Cold restart: reopens a spill file written by spill() as a fresh mapped
  // segment. The inline dictionaries are reloaded, so coded queries (and
  // text-keyed table merges) behave exactly as in the sealing process.
  [[nodiscard]] static std::shared_ptr<const Segment> load_spilled(
      const std::string& path, std::uint64_t id, std::uint64_t base,
      const topology::Deployment& deployment, std::string* error = nullptr);

 private:
  Segment() = default;  // load_spilled builds the members directly

  std::uint64_t id_ = 0;
  std::uint64_t base_ = 0;
  const topology::Deployment* deployment_ = nullptr;
  // Tiering mutates the representation, not the value: snapshots share
  // segments as shared_ptr<const Segment>, and a spill leaves every query
  // answer bit-identical. Hence the mutable storage members.
  mutable capture::EventStore store_;  // declared before frame_: the frame borrows it
  mutable capture::SessionFrame frame_;
  mutable std::string spill_path_;
  mutable capture::FrameView view_;
};

// An immutable view of the corpus after some epoch: the ordered segment
// list, the epoch number, and the total record count. Cheap to copy (the
// segments are shared), safe to read from any thread, never invalidated by
// later seals.
class EpochSnapshot {
 public:
  // Epoch zero: no segments, no records.
  EpochSnapshot() = default;

  // The successor snapshot: `prev`'s segments plus one newly sealed segment.
  [[nodiscard]] static EpochSnapshot extend(const EpochSnapshot& prev,
                                            std::shared_ptr<const Segment> segment);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  // Total records across all segments.
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] const std::vector<std::shared_ptr<const Segment>>& segments() const noexcept {
    return segments_;
  }

 private:
  std::uint64_t epoch_ = 0;
  std::uint64_t size_ = 0;
  std::vector<std::shared_ptr<const Segment>> segments_;
};

}  // namespace cw::stream
