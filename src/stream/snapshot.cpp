#include "stream/snapshot.h"

#include <fstream>

#include "capture/dataset.h"

namespace cw::stream {

namespace {

capture::SessionFrame build_segment_frame(const capture::EventStore& store,
                                          const topology::Deployment& deployment,
                                          const VerdictFactory& verdict, runner::ThreadPool* pool,
                                          capture::SharedFrameDicts* shared_dicts,
                                          bool verdict_pure) {
  capture::SessionFrame::BuildOptions options;
  options.pool = pool;
  options.shared_dicts = shared_dicts;
  options.verdict_pure = verdict_pure;
  if (verdict) options.verdict = verdict(store);
  return capture::SessionFrame::build(store, deployment, std::move(options));
}

}  // namespace

Segment::Segment(std::uint64_t id, std::uint64_t base, capture::EventStore&& store,
                 const topology::Deployment& deployment, const VerdictFactory& verdict,
                 runner::ThreadPool* pool, capture::SharedFrameDicts* shared_dicts,
                 bool verdict_pure)
    : id_(id),
      base_(base),
      deployment_(&deployment),
      store_(std::move(store)),
      frame_(build_segment_frame(store_, deployment, verdict, pool, shared_dicts, verdict_pure)) {}

bool Segment::spill(const std::string& dir, std::string* error) const {
  if (spilled()) return true;
  std::string path = dir + "/segment-" + std::to_string(id_) + ".cwds";
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out || !capture::write_dataset(store_, &frame_, out)) {
      if (error) *error = "segment spill: cannot write " + path;
      return false;
    }
  }
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  if (!capture::probe_frame_section(path, offset, length, error)) return false;
  capture::FrameView view;
  if (!view.open(path, offset, length, *deployment_, {}, error)) return false;
  view_ = std::move(view);
  // Rebind the live frame onto the mapping in place (map() drops its store
  // pin), then free the record store — from here the file is authoritative.
  if (!view_.map(frame_, error)) return false;
  store_ = capture::EventStore{};
  spill_path_ = std::move(path);
  return true;
}

bool Segment::ensure_mapped(std::string* error) const {
  if (!spilled()) return true;
  if (frame_.mapped() && view_.mapped()) return true;
  return view_.map(frame_, error);
}

void Segment::release_mapping() const {
  if (!spilled()) return;
  view_.unmap(frame_);
}

std::shared_ptr<const Segment> Segment::load_spilled(const std::string& path, std::uint64_t id,
                                                     std::uint64_t base,
                                                     const topology::Deployment& deployment,
                                                     std::string* error) {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  if (!capture::probe_frame_section(path, offset, length, error)) return nullptr;
  std::shared_ptr<Segment> segment(new Segment());
  segment->id_ = id;
  segment->base_ = base;
  segment->deployment_ = &deployment;
  capture::FrameView::Options options;
  options.load_dicts = true;
  if (!segment->view_.open(path, offset, length, deployment, options, error)) return nullptr;
  if (!segment->view_.map(segment->frame_, error)) return nullptr;
  segment->spill_path_ = path;
  return segment;
}

EpochSnapshot EpochSnapshot::extend(const EpochSnapshot& prev,
                                    std::shared_ptr<const Segment> segment) {
  EpochSnapshot next;
  next.epoch_ = prev.epoch_ + 1;
  next.size_ = prev.size_ + segment->size();
  next.segments_.reserve(prev.segments_.size() + 1);
  next.segments_ = prev.segments_;
  next.segments_.push_back(std::move(segment));
  return next;
}

}  // namespace cw::stream
