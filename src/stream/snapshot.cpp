#include "stream/snapshot.h"

namespace cw::stream {

namespace {

capture::SessionFrame build_segment_frame(const capture::EventStore& store,
                                          const topology::Deployment& deployment,
                                          const VerdictFactory& verdict, runner::ThreadPool* pool,
                                          capture::SharedFrameDicts* shared_dicts,
                                          bool verdict_pure) {
  capture::SessionFrame::BuildOptions options;
  options.pool = pool;
  options.shared_dicts = shared_dicts;
  options.verdict_pure = verdict_pure;
  if (verdict) options.verdict = verdict(store);
  return capture::SessionFrame::build(store, deployment, std::move(options));
}

}  // namespace

Segment::Segment(std::uint64_t id, std::uint64_t base, capture::EventStore&& store,
                 const topology::Deployment& deployment, const VerdictFactory& verdict,
                 runner::ThreadPool* pool, capture::SharedFrameDicts* shared_dicts,
                 bool verdict_pure)
    : id_(id),
      base_(base),
      store_(std::move(store)),
      frame_(build_segment_frame(store_, deployment, verdict, pool, shared_dicts, verdict_pure)) {}

EpochSnapshot EpochSnapshot::extend(const EpochSnapshot& prev,
                                    std::shared_ptr<const Segment> segment) {
  EpochSnapshot next;
  next.epoch_ = prev.epoch_ + 1;
  next.size_ = prev.size_ + segment->size();
  next.segments_.reserve(prev.segments_.size() + 1);
  next.segments_ = prev.segments_;
  next.segments_.push_back(std::move(segment));
  return next;
}

}  // namespace cw::stream
