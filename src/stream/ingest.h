// Sharded live ingest: the write side of the stream subsystem.
//
// Concurrent collectors append captured records into per-shard buffers
// (one mutex per shard, so producers on different shards never contend); at
// each epoch boundary seal_epoch() drains every buffer — in shard-major
// order — into one immutable, frozen capture::EventStore, builds the
// segment's SessionFrame, and publishes the extended EpochSnapshot.
//
// Determinism contract: the sealed record order is shard 0's buffer in
// append order, then shard 1's, and so on. For a fixed (shard count, shard
// routing, epoch slicing) the segment byte stream is therefore identical
// no matter how many producer threads fed the shards, as long as each
// record's *shard* and each shard's *append order* are fixed — which
// shard_of()'s vantage-based routing guarantees for any per-vantage-ordered
// producer (the simulation delivers each vantage point's traffic in time
// order). Analyses on top are additionally invariant across slicings and
// shard counts because they aggregate through text-keyed exact counts
// (analysis::SegmentedTableCache) or permutation-invariant renderers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "capture/event.h"
#include "proto/credentials.h"
#include "stream/snapshot.h"
#include "topology/deployment.h"

namespace cw::runner {
class ThreadPool;
}  // namespace cw::runner

namespace cw::stream {

class IngestShards {
 public:
  // `shards` >= 1 (0 is clamped to 1).
  explicit IngestShards(std::size_t shards);

  IngestShards(const IngestShards&) = delete;
  IngestShards& operator=(const IngestShards&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

  // Deterministic shard routing: a record's vantage point selects its shard,
  // so one vantage's records land in one buffer in delivery order.
  [[nodiscard]] std::size_t shard_of(const capture::SessionRecord& record) const noexcept {
    return record.vantage % shards_.size();
  }

  // Buffers one captured record (payload/credential not yet interned —
  // interning happens against the segment store at seal time). Safe to call
  // from multiple producer threads concurrently, including on the same
  // shard, and concurrently with seal_epoch (the append lands in whichever
  // epoch's drain observes it). Deterministic epoch *contents* additionally
  // require the driver to quiesce producers at epoch boundaries.
  void append(std::size_t shard, const capture::SessionRecord& record, std::string_view payload,
              const std::optional<proto::Credential>& credential);

  // Seals everything buffered so far into one immutable segment: drains the
  // shard buffers in shard-major order into a fresh EventStore, freezes it,
  // builds the segment frame (sharded through `pool` when given; `verdict`
  // supplies the frame's verdict column), and publishes the extended
  // snapshot. Returns the new snapshot; an epoch with no buffered records
  // still seals (an empty segment keeps epoch numbering uniform). Safe to
  // call from multiple threads: sealers are serialized on an internal seal
  // mutex (each drains what is buffered at its turn), and shard appends
  // proceed concurrently.
  //
  // Segment frames encode their characteristic columns against dictionaries
  // shared across this instance's epochs (guarded by the seal mutex), so a
  // seal pays only for values it has never seen — history is never
  // re-interned or re-encoded. `verdict_pure` declares the factory's verdict
  // functions pure in (credential presence, payload id, port, transport);
  // set it only for classifier-derived verdicts (the live driver does) so
  // the frame build memoizes classification per distinct tuple instead of
  // calling the verdict once per record.
  EpochSnapshot seal_epoch(const topology::Deployment& deployment,
                           const VerdictFactory& verdict = {},
                           runner::ThreadPool* pool = nullptr, bool verdict_pure = false);

  // The latest published snapshot (epoch 0 before the first seal). Safe to
  // call concurrently with append(), and with seal_epoch (readers see the
  // previous or the new snapshot, never a partial one).
  [[nodiscard]] EpochSnapshot snapshot() const;

  // Records buffered but not yet sealed, summed across shards. Approximate
  // under concurrent appends (a relaxed counter read).
  [[nodiscard]] std::size_t pending() const noexcept {
    return pending_count_.load(std::memory_order_relaxed);
  }

  // Total records across all sealed segments. Reads the published snapshot's
  // counter under the snapshot mutex — no segment-vector copy (the full
  // snapshot() copy here used to make a one-counter poll pay for a
  // shared_ptr vector clone; server-side epoch polling does the same).
  [[nodiscard]] std::uint64_t total_sealed() const;

  // The latest sealed epoch number (0 before the first seal). Same cheap
  // counter read as total_sealed(); the poll path of serve-side readers.
  [[nodiscard]] std::uint64_t epoch() const;

  // Backpressure between producers and seal_epoch: with a nonzero limit,
  // append() blocks while more than `limit` records are buffered and
  // unsealed, resuming when a seal drains the shards. Keeps a slow sealer
  // from letting the buffered backlog grow without bound under sustained
  // producer load (the serve driver sets this; the batch/live drivers seal
  // synchronously and leave it unbounded). Set before producers start; only
  // engage it when something is actually sealing, or producers block
  // forever. 0 restores the unbounded default.
  void set_pending_limit(std::size_t limit) noexcept { pending_limit_ = limit; }
  [[nodiscard]] std::size_t pending_limit() const noexcept { return pending_limit_; }

 private:
  struct Buffered {
    capture::SessionRecord record;
    std::string payload;
    std::optional<proto::Credential> credential;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::vector<Buffered> buffer;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  // Experiment-lifetime characteristic dictionaries (plus the payload /
  // credential / AS encode memos) shared by every segment frame this
  // instance seals. Mutated only inside seal_epoch under seal_mutex_.
  capture::SharedFrameDicts dicts_;
  // Serializes whole seal_epoch calls (drain + build + extend + publish):
  // concurrent sealers must not extend the same `previous` snapshot.
  std::mutex seal_mutex_;
  mutable std::mutex snapshot_mutex_;  // guards snapshot_ swaps (seal vs readers)
  EpochSnapshot snapshot_;
  // Buffered-but-unsealed record count, maintained under the shard locks
  // (incremented with the append, decremented by the sealing drain) so the
  // backpressure predicate and pending() are one atomic read.
  std::atomic<std::size_t> pending_count_{0};
  std::size_t pending_limit_ = 0;  // 0 = unbounded; set before producers start
  std::mutex backpressure_mutex_;
  std::condition_variable drained_cv_;
};

}  // namespace cw::stream
