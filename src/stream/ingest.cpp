#include "stream/ingest.h"

#include <utility>

namespace cw::stream {

IngestShards::IngestShards(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

void IngestShards::append(std::size_t shard, const capture::SessionRecord& record,
                          std::string_view payload,
                          const std::optional<proto::Credential>& credential) {
  Shard& target = *shards_[shard % shards_.size()];
  const std::lock_guard<std::mutex> lock(target.mutex);
  target.buffer.push_back(Buffered{record, std::string(payload), credential});
}

EpochSnapshot IngestShards::seal_epoch(const topology::Deployment& deployment,
                                       const VerdictFactory& verdict, runner::ThreadPool* pool,
                                       bool verdict_pure) {
  // One sealer at a time: without this, two concurrent sealers would both
  // read the same `previous` snapshot below and both extend it, silently
  // dropping whichever segment published first. Shard appends are untouched
  // (they only take the per-shard mutexes), so producers never stall behind
  // a seal. The lock also serializes mutation of the shared dictionaries
  // the segment frames encode against.
  const std::lock_guard<std::mutex> seal_lock(seal_mutex_);
  // Drain shard-major: shard 0's buffer in append order, then shard 1's, ...
  // This total order — not the producers' interleaving — is what the segment
  // (and everything derived from it) is built over.
  std::vector<std::vector<Buffered>> drained(shards_.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i]->mutex);
    drained[i].swap(shards_[i]->buffer);
    total += drained[i].size();
  }
  capture::EventStore store;
  store.reserve(total);
  for (std::vector<Buffered>& batch : drained) {
    for (Buffered& buffered : batch) {
      store.append(buffered.record, buffered.payload, buffered.credential);
    }
  }
  store.freeze();

  EpochSnapshot previous = snapshot();
  auto segment =
      std::make_shared<const Segment>(previous.epoch(), previous.size(), std::move(store),
                                      deployment, verdict, pool, &dicts_, verdict_pure);
  EpochSnapshot next = EpochSnapshot::extend(previous, std::move(segment));
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = next;
  }
  return next;
}

EpochSnapshot IngestShards::snapshot() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::size_t IngestShards::pending() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->buffer.size();
  }
  return total;
}

std::uint64_t IngestShards::total_sealed() const { return snapshot().size(); }

}  // namespace cw::stream
