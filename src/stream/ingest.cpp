#include "stream/ingest.h"

#include <utility>

namespace cw::stream {

IngestShards::IngestShards(std::size_t shards) {
  if (shards == 0) shards = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

void IngestShards::append(std::size_t shard, const capture::SessionRecord& record,
                          std::string_view payload,
                          const std::optional<proto::Credential>& credential) {
  // Backpressure: stall this producer while the unsealed backlog sits at the
  // limit. The wait is outside the shard lock so draining sealers (and other
  // shards' producers) are never blocked by a stalled producer.
  if (pending_limit_ != 0 &&
      pending_count_.load(std::memory_order_relaxed) >= pending_limit_) {
    std::unique_lock<std::mutex> wait_lock(backpressure_mutex_);
    drained_cv_.wait(wait_lock, [this] {
      return pending_count_.load(std::memory_order_relaxed) < pending_limit_;
    });
  }
  Shard& target = *shards_[shard % shards_.size()];
  const std::lock_guard<std::mutex> lock(target.mutex);
  target.buffer.push_back(Buffered{record, std::string(payload), credential});
  // Counted inside the shard lock: a drain that swaps this buffer acquired
  // the same mutex afterwards, so it observes the increment it subtracts.
  pending_count_.fetch_add(1, std::memory_order_relaxed);
}

EpochSnapshot IngestShards::seal_epoch(const topology::Deployment& deployment,
                                       const VerdictFactory& verdict, runner::ThreadPool* pool,
                                       bool verdict_pure) {
  // One sealer at a time: without this, two concurrent sealers would both
  // read the same `previous` snapshot below and both extend it, silently
  // dropping whichever segment published first. Shard appends are untouched
  // (they only take the per-shard mutexes), so producers never stall behind
  // a seal. The lock also serializes mutation of the shared dictionaries
  // the segment frames encode against.
  const std::lock_guard<std::mutex> seal_lock(seal_mutex_);
  // Drain shard-major: shard 0's buffer in append order, then shard 1's, ...
  // This total order — not the producers' interleaving — is what the segment
  // (and everything derived from it) is built over.
  std::vector<std::vector<Buffered>> drained(shards_.size());
  std::size_t total = 0;
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    const std::lock_guard<std::mutex> lock(shards_[i]->mutex);
    drained[i].swap(shards_[i]->buffer);
    total += drained[i].size();
  }
  if (total != 0) {
    pending_count_.fetch_sub(total, std::memory_order_relaxed);
    // Lock-then-notify so a producer that just saw the backlog full cannot
    // miss the wakeup between its predicate check and its wait.
    const std::lock_guard<std::mutex> wake_lock(backpressure_mutex_);
    drained_cv_.notify_all();
  }
  capture::EventStore store;
  store.reserve(total);
  for (std::vector<Buffered>& batch : drained) {
    for (Buffered& buffered : batch) {
      store.append(buffered.record, buffered.payload, buffered.credential);
    }
  }
  store.freeze();

  EpochSnapshot previous = snapshot();
  auto segment =
      std::make_shared<const Segment>(previous.epoch(), previous.size(), std::move(store),
                                      deployment, verdict, pool, &dicts_, verdict_pure);
  EpochSnapshot next = EpochSnapshot::extend(previous, std::move(segment));
  {
    const std::lock_guard<std::mutex> lock(snapshot_mutex_);
    snapshot_ = next;
  }
  return next;
}

EpochSnapshot IngestShards::snapshot() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_;
}

std::uint64_t IngestShards::total_sealed() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_.size();
}

std::uint64_t IngestShards::epoch() const {
  const std::lock_guard<std::mutex> lock(snapshot_mutex_);
  return snapshot_.epoch();
}

}  // namespace cw::stream
