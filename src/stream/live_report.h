// LiveReport: the continuously-serving driver over the stream subsystem.
//
// Runs the simulated observation window in wall-clock slices. During each
// slice the collector's capture sink routes every record into
// stream::IngestShards; at the slice boundary the driver seals an epoch
// segment, folds its partial tables into an analysis::SegmentedTableCache,
// extends a cumulative store replica, and re-renders the full paper report
// through the same runner::paper_report_pipelines the batch path uses.
//
// The load-bearing invariant (enforced by tests and scripts/check.sh): after
// the final epoch the rendered report is byte-identical to the one-shot
// batch report over the same configuration — at any --jobs, any shard
// count, and any epoch slicing. Heavy tables get there incrementally (the
// segmented cache merges per-segment partials, rebuilding only the newest);
// the remaining renderers re-read the cumulative replica, whose record
// order differs from the batch store's only by a permutation that every
// renderer is invariant to (sets, text-keyed exact counts, per-key
// extrema).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "runner/report.h"
#include "runner/sweep.h"
#include "stream/ingest.h"
#include "util/sim_time.h"

namespace cw::stream {

struct LiveReportConfig {
  core::ExperimentConfig experiment;
  // Number of wall-clock slices the observation window is cut into.
  std::size_t epochs = 4;
  // Ingest shard count (routing is by vantage; see IngestShards::shard_of).
  std::size_t shards = 4;
  // Worker count for frame builds and report pipelines (0 = hardware).
  unsigned jobs = 1;
  runner::ReportOptions report;
  // Skip report rendering for all but the final epoch (the simulation and
  // sealing still run every epoch; used by equivalence checks that only
  // compare final outputs).
  bool render_intermediate = true;
  // Additionally run runner::extract_findings over each rendered epoch and
  // attach the seven headline-claim verdicts to the EpochReport (the serve
  // driver publishes them next to the tables). Cheap after rendering: the
  // extractors read the same shared table cache the pipelines just filled.
  bool extract_findings = false;
  // Out-of-core tiering: when non-empty, segments older than the newest
  // `hot_segments` spill to `<spill_dir>/segment-<id>.cwds` after their
  // partial tables are folded into the segmented cache, and their record
  // stores, frames, and mappings are released. The rendered report is
  // byte-identical either way — heavy tables merge from the (copied) cached
  // partials and light renderers read the cumulative replica, so cold
  // segments are never consulted. hot_segments = SIZE_MAX keeps everything
  // resident even with a spill dir (useful for A/B checks of the spill I/O).
  std::string spill_dir;
  std::size_t hot_segments = static_cast<std::size_t>(-1);
};

// One epoch's rendered report.
struct EpochReport {
  std::uint64_t epoch = 0;       // 1-based
  util::SimTime now = 0;         // simulation clock at the slice boundary
  std::uint64_t records_total = 0;
  std::uint64_t records_new = 0;  // sealed this epoch
  bool rendered = false;          // false when render_intermediate skipped it
  bool failed = false;            // any pipeline threw
  std::vector<std::string> names;    // pipeline names, slot order
  std::vector<std::string> outputs;  // rendered artifacts, slot order
  runner::RunReport run_report;
  // The sealed corpus as of this epoch, pinned: a cheap shared-segment copy
  // that stays valid — and byte-stable — no matter how many epochs seal
  // after it. The serve layer hands this to readers so responses for epoch k
  // never chase the ingest side.
  EpochSnapshot snapshot;
  // Headline-claim verdicts (LiveReportConfig::extract_findings).
  bool findings_extracted = false;
  runner::CellFindings findings{};
};

class LiveReport {
 public:
  explicit LiveReport(LiveReportConfig config) : config_(std::move(config)) {}

  using EpochCallback = std::function<void(const EpochReport&)>;

  // Runs the whole window, invoking `callback` (if set) after each epoch,
  // and returns the final epoch's report. Single-use.
  EpochReport run(const EpochCallback& callback = {});

  [[nodiscard]] const LiveReportConfig& config() const noexcept { return config_; }

 private:
  LiveReportConfig config_;
};

}  // namespace cw::stream
