// ReportServer contract tests:
//
//  1. Routing + response caching through handle() — no sockets.
//  2. Admission control over real sockets: the connection past
//     max_connections gets 503 + Retry-After, and capacity frees on close.
//  3. The concurrent-reader invariant (the serve-side analog of the stream
//     equivalence suite): reader threads pinning epochs over HTTP while two
//     sealers race seal_epoch always see bytes identical to a cold render of
//     the same pinned snapshot — run under -DCW_SANITIZE=thread to verify
//     the locking discipline.
//  4. End-to-end: a LiveReport window served over HTTP; the final epoch's
//     /report body is byte-identical to the cold batch pipeline render.
#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "runner/pipeline.h"
#include "runner/report.h"
#include "runner/thread_pool.h"
#include "serve/http.h"
#include "serve/publisher.h"
#include "stream/ingest.h"
#include "stream/live_report.h"
#include "topology/deployment.h"

namespace cw::stream {
namespace {

// --- helpers ---------------------------------------------------------------

PublishedEpoch synthetic_epoch(std::uint64_t k) {
  PublishedEpoch epoch;
  epoch.epoch = k;
  epoch.records_total = 100 * k;
  epoch.records_new = 100;
  epoch.scale = 0.25;
  epoch.table_names = {"Table 1: vantage points", "Section 3.2: malicious-traffic fractions"};
  for (const std::string& name : epoch.table_names) {
    epoch.table_slugs.push_back(table_slug(name));
    epoch.tables.push_back(std::make_shared<const std::string>(
        name + " body for epoch " + std::to_string(k) + "\n"));
  }
  return epoch;
}

HttpRequest get(const std::string& target) {
  HttpRequest request;
  request.method = "GET";
  request.target = target;
  const std::size_t question = target.find('?');
  request.path = target.substr(0, question);
  request.query = question == std::string::npos ? std::string() : target.substr(question + 1);
  request.version = "HTTP/1.1";
  return request;
}

int status_of(const std::string& response) {
  if (response.size() < std::strlen("HTTP/1.1 200")) return -1;
  return std::atoi(response.c_str() + std::strlen("HTTP/1.1 "));
}

std::string body_of(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? std::string() : response.substr(split + 4);
}

int connect_to(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Reads one full response (head + Content-Length body) from a keep-alive
// connection. Returns empty on EOF/error.
std::string read_response(int fd) {
  std::string buffer;
  char chunk[4096];
  std::size_t body_start = 0;
  std::size_t content_length = std::string::npos;
  for (;;) {
    if (body_start == 0) {
      const std::size_t head_end = buffer.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        body_start = head_end + 4;
        const std::size_t tag = buffer.find("Content-Length: ");
        if (tag == std::string::npos || tag > head_end) return {};
        content_length =
            static_cast<std::size_t>(std::atoll(buffer.c_str() + tag + std::strlen("Content-Length: ")));
      }
    }
    if (body_start != 0 && buffer.size() >= body_start + content_length) {
      return buffer.substr(0, body_start + content_length);
    }
    const ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
    if (got <= 0) return {};
    buffer.append(chunk, static_cast<std::size_t>(got));
  }
}

std::string http_get(int fd, const std::string& target) {
  const std::string request = "GET " + target + " HTTP/1.1\r\nHost: test\r\n\r\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    return {};
  }
  return read_response(fd);
}

// --- 1. routing + caching (no sockets) -------------------------------------

TEST(ReportServerHandle, RoutesMetaTablesReportAndErrors) {
  ReportPublisher publisher;
  publisher.publish(synthetic_epoch(1));
  publisher.publish(synthetic_epoch(2));
  ReportServer server(publisher);

  EXPECT_EQ(status_of(server.handle(get("/healthz"))), 200);
  EXPECT_EQ(body_of(server.handle(get("/healthz"))), "ok\n");

  const std::string epochs = server.handle(get("/epochs"));
  EXPECT_EQ(status_of(epochs), 200);
  EXPECT_NE(body_of(epochs).find("\"latest\":2"), std::string::npos);
  EXPECT_NE(body_of(epochs).find("\"epoch\":1"), std::string::npos);

  const std::string meta = server.handle(get("/epoch/2"));
  EXPECT_EQ(status_of(meta), 200);
  EXPECT_NE(body_of(meta).find("\"records_total\":200"), std::string::npos);
  EXPECT_NE(body_of(meta).find("\"slug\":\"table-1-vantage-points\""), std::string::npos);

  // /epoch/latest resolves to the same bytes as the numbered route.
  EXPECT_EQ(server.handle(get("/epoch/latest")), meta);

  const std::string table = server.handle(get("/epoch/1/table/table-1-vantage-points"));
  EXPECT_EQ(status_of(table), 200);
  EXPECT_EQ(body_of(table), "Table 1: vantage points body for epoch 1\n");

  const std::string as_json =
      server.handle(get("/epoch/1/table/table-1-vantage-points?format=json"));
  EXPECT_EQ(status_of(as_json), 200);
  EXPECT_NE(body_of(as_json).find("\"markdown\":\"Table 1: vantage points body for epoch 1\\n\""),
            std::string::npos);

  const std::string report = server.handle(get("/epoch/2/report"));
  EXPECT_EQ(status_of(report), 200);
  EXPECT_EQ(body_of(report),
            "== Cloud Watching full report (scale 0.25) ==\n\ncaptured 200 session records\n\n"
            "--- Table 1: vantage points ---\nTable 1: vantage points body for epoch 2\n\n"
            "--- Section 3.2: malicious-traffic fractions ---\n"
            "Section 3.2: malicious-traffic fractions body for epoch 2\n\n");

  // Errors: unknown route, unpublished epoch, malformed epoch, unknown slug,
  // findings absent.
  EXPECT_EQ(status_of(server.handle(get("/nope"))), 404);
  EXPECT_EQ(status_of(server.handle(get("/epoch/99"))), 404);
  EXPECT_EQ(status_of(server.handle(get("/epoch/abc"))), 400);
  EXPECT_EQ(status_of(server.handle(get("/epoch/0"))), 400);
  EXPECT_EQ(status_of(server.handle(get("/epoch/1/table/no-such-table"))), 404);
  EXPECT_EQ(status_of(server.handle(get("/epoch/1/findings"))), 404);
}

TEST(ReportServerHandle, CachesPerEpochAndNewEpochsInvalidateNothing) {
  ReportPublisher publisher;
  publisher.publish(synthetic_epoch(1));
  ReportServer server(publisher);

  const std::string first = server.handle(get("/epoch/1/report"));
  EXPECT_EQ(server.stats().cache_hits, 0u);
  const std::string again = server.handle(get("/epoch/1/report"));
  EXPECT_EQ(again, first);
  EXPECT_EQ(server.stats().cache_hits, 1u);

  // A new epoch never invalidates epoch 1's cached bytes, and "latest" now
  // resolves to epoch 2 (cached under its own resolved key, not an alias).
  const std::string latest_was_1 = server.handle(get("/epoch/latest/report"));
  EXPECT_EQ(latest_was_1, first);  // cache hit under resolved epoch 1
  publisher.publish(synthetic_epoch(2));
  const std::string latest_is_2 = server.handle(get("/epoch/latest/report"));
  EXPECT_NE(latest_is_2, first);
  EXPECT_NE(body_of(latest_is_2).find("captured 200 session records"), std::string::npos);
  EXPECT_EQ(server.handle(get("/epoch/1/report")), first);
}

TEST(ReportServerHandle, FindingsRouteRendersClaims) {
  ReportPublisher publisher;
  PublishedEpoch epoch = synthetic_epoch(1);
  epoch.has_findings = true;
  for (std::size_t i = 0; i < epoch.findings.size(); ++i) {
    epoch.findings[i].finding = static_cast<runner::PaperFinding>(i);
    epoch.findings[i].holds = (i % 2) == 0;
    epoch.findings[i].effect = 0.5;
    epoch.findings[i].detail = "detail " + std::to_string(i);
  }
  publisher.publish(std::move(epoch));
  ReportServer server(publisher);
  const std::string response = server.handle(get("/epoch/1/findings"));
  EXPECT_EQ(status_of(response), 200);
  const std::string body = body_of(response);
  EXPECT_NE(body.find("\"holds\":true"), std::string::npos);
  EXPECT_NE(body.find("\"holds\":false"), std::string::npos);
  EXPECT_NE(body.find("\"detail\":\"detail 0\""), std::string::npos);
  EXPECT_NE(body.find(std::string(runner::finding_name(static_cast<runner::PaperFinding>(0)))),
            std::string::npos);
}

// --- 2. admission control over real sockets --------------------------------

TEST(ReportServer, OverloadSheds503WithRetryAfterAndRecovers) {
  ReportPublisher publisher;
  publisher.publish(synthetic_epoch(1));
  ReportServerConfig config;
  config.max_connections = 1;
  config.workers = 1;
  config.retry_after_seconds = 2;
  config.idle_timeout_seconds = 30;  // the held connection must not idle out
  ReportServer server(publisher, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // Occupy the single admission slot with an idle connection.
  const int held = connect_to(server.port());
  ASSERT_GE(held, 0);
  for (int i = 0; i < 200 && server.stats().accepted < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().accepted, 1u);

  // The next connection is shed at accept time with 503 + Retry-After.
  const int shed = connect_to(server.port());
  ASSERT_GE(shed, 0);
  const std::string response = read_response(shed);
  ::close(shed);
  EXPECT_EQ(status_of(response), 503);
  EXPECT_NE(response.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_GE(server.stats().rejected, 1u);

  // Closing the held connection frees the slot; the retry succeeds.
  ::close(held);
  for (int i = 0; i < 200 && server.stats().open_connections > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const int retry = connect_to(server.port());
  ASSERT_GE(retry, 0);
  const std::string ok = http_get(retry, "/epoch/1/report");
  ::close(retry);
  EXPECT_EQ(status_of(ok), 200);
  server.stop();
}

// --- 3. concurrent readers vs racing sealers --------------------------------

topology::Deployment serving_deployment() {
  topology::Deployment deployment;
  for (std::size_t v = 0; v < 3; ++v) {
    topology::VantagePoint vp;
    vp.name = "vp-" + std::to_string(v);
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kHoneytrap;
    vp.addresses = {net::IPv4Addr(3, 0, static_cast<std::uint8_t>(v), 1)};
    deployment.add(std::move(vp));
  }
  return deployment;
}

// A deterministic pure function of a pinned snapshot — the "table" each
// published epoch serves, recomputable cold at any later time.
std::string render_snapshot(const EpochSnapshot& snapshot) {
  std::string out = "epoch " + std::to_string(snapshot.epoch()) + "\n";
  for (const auto& segment : snapshot.segments()) {
    out += "segment " + std::to_string(segment->id()) + ": " +
           std::to_string(segment->size()) + " records\n";
  }
  out += "total " + std::to_string(snapshot.size()) + "\n";
  return out;
}

PublishedEpoch epoch_from_snapshot(const EpochSnapshot& snapshot) {
  PublishedEpoch epoch;
  epoch.epoch = snapshot.epoch();
  epoch.records_total = snapshot.size();
  epoch.snapshot = snapshot;
  epoch.table_names = {"Sealed segments"};
  epoch.table_slugs = {table_slug("Sealed segments")};
  epoch.tables = {std::make_shared<const std::string>(render_snapshot(snapshot))};
  return epoch;
}

TEST(ReportServer, ConcurrentReadersSeeByteIdenticalEpochsWhileSealersRace) {
  const topology::Deployment deployment = serving_deployment();
  constexpr int kRounds = 12;
  constexpr std::size_t kSealers = 2;
  constexpr std::size_t kReaders = 3;

  IngestShards ingest(2);
  ReportPublisher publisher;
  ReportServerConfig config;
  config.workers = kReaders + 1;
  ReportServer server(publisher, config);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  std::atomic<bool> done{false};
  std::atomic<std::uint32_t> next_src{0};

  // Two sealers race seal_epoch while a producer keeps appending; each
  // sealed snapshot is published as soon as its sealer has it.
  std::thread producer([&ingest, &next_src, &done] {
    while (!done.load()) {
      const std::uint32_t src = next_src.fetch_add(1);
      ingest.append(src % 2,
                    [&] {
                      capture::SessionRecord record;
                      record.vantage = static_cast<topology::VantageId>(src % 3);
                      record.src = src;
                      record.port = 22;
                      return record;
                    }(),
                    {}, std::nullopt);
    }
  });
  std::vector<std::thread> sealers;
  for (std::size_t s = 0; s < kSealers; ++s) {
    sealers.emplace_back([&ingest, &publisher, &deployment] {
      for (int round = 0; round < kRounds; ++round) {
        publisher.publish(epoch_from_snapshot(ingest.seal_epoch(deployment)));
      }
    });
  }

  // Readers pin epochs over HTTP while the sealers run, recording the first
  // body they see for each (epoch, route).
  std::vector<std::map<std::string, std::string>> seen(kReaders);
  std::vector<std::thread> readers;
  for (std::size_t r = 0; r < kReaders; ++r) {
    readers.emplace_back([&server, &publisher, &seen, r] {
      const int fd = connect_to(server.port());
      ASSERT_GE(fd, 0);
      std::uint64_t max_epoch = 0;
      while (max_epoch < kSealers * kRounds) {
        const std::uint64_t latest = publisher.latest_epoch();
        if (latest == 0) continue;
        // Walk every epoch published so far, keep-alive on one connection.
        for (std::uint64_t k = 1; k <= latest; ++k) {
          for (const std::string& route :
               {"/epoch/" + std::to_string(k) + "/table/sealed-segments",
                "/epoch/" + std::to_string(k) + "/report"}) {
            std::string response = http_get(fd, route);
            ASSERT_FALSE(response.empty()) << route;
            // Racing sealers publish out of order: epoch k can trail a
            // higher-numbered publish, so a 404 here means "not yet" —
            // retry until the straggler lands.
            while (status_of(response) == 404) {
              std::this_thread::sleep_for(std::chrono::milliseconds(1));
              response = http_get(fd, route);
              ASSERT_FALSE(response.empty()) << route;
            }
            ASSERT_EQ(status_of(response), 200) << route;
            seen[r].try_emplace(route, body_of(response));
            // Re-reads mid-race are byte-identical to the first read.
            ASSERT_EQ(body_of(response), seen[r].at(route)) << route;
          }
        }
        max_epoch = latest;
      }
      ::close(fd);
    });
  }

  for (std::thread& sealer : sealers) sealer.join();
  done.store(true);
  producer.join();
  for (std::thread& reader : readers) reader.join();

  // Cold verification: with all sealing quiesced, re-render every epoch from
  // its pinned snapshot; every byte any reader ever saw must match.
  ASSERT_EQ(publisher.published_count(), kSealers * kRounds);
  for (std::uint64_t k = 1; k <= kSealers * kRounds; ++k) {
    const auto epoch = publisher.epoch(k);
    ASSERT_NE(epoch, nullptr) << "epoch " << k;
    EXPECT_EQ(epoch->snapshot.epoch(), k);
    const std::string cold = render_snapshot(epoch->snapshot);
    const std::string table_route = "/epoch/" + std::to_string(k) + "/table/sealed-segments";
    const std::string report_route = "/epoch/" + std::to_string(k) + "/report";
    const std::string cold_report = epoch->render_full_report();
    for (std::size_t r = 0; r < kReaders; ++r) {
      const auto table_it = seen[r].find(table_route);
      if (table_it != seen[r].end()) {
        EXPECT_EQ(table_it->second, cold) << table_route;
      }
      const auto report_it = seen[r].find(report_route);
      if (report_it != seen[r].end()) {
        EXPECT_EQ(report_it->second, cold_report) << report_route;
      }
    }
    // At least the final walk visited every epoch.
    EXPECT_TRUE(seen[0].count(table_route) == 1) << table_route;
  }
  server.stop();
}

// --- 4. end-to-end: live window over HTTP vs cold batch render --------------

core::ExperimentConfig tiny_config() {
  core::ExperimentConfig config;
  config.scale = 0.05;
  config.telescope_slash24s = 4;
  config.duration = util::kDay;
  return config;
}

TEST(ReportServer, LiveWindowOverHttpMatchesColdBatchRender) {
  runner::ReportOptions options;
  options.include_leak = false;  // deterministic but heavy; not serve-dependent

  // Cold batch render, composed exactly as /epoch/<final>/report promises.
  std::string expected;
  {
    const auto result = core::Experiment(tiny_config()).run();
    result->store().freeze();
    const auto pipelines = runner::paper_report_pipelines(*result, options);
    const auto batch = runner::run_pipelines(pipelines, 1);
    char header[160];
    std::snprintf(header, sizeof(header),
                  "== Cloud Watching full report (scale %.2f) ==\n\ncaptured %zu"
                  " session records\n\n",
                  tiny_config().scale, result->store().size());
    expected = header;
    for (std::size_t i = 0; i < pipelines.size(); ++i) {
      expected += "--- " + pipelines[i].name + " ---\n" + batch.outputs[i] + "\n";
    }
  }

  LiveReportConfig config;
  config.experiment = tiny_config();
  config.epochs = 3;
  config.shards = 2;
  config.jobs = 1;
  config.report = options;
  config.extract_findings = true;

  ReportPublisher publisher;
  ReportServer server(publisher);
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;

  // A reader polls during the run, pinning each epoch's /report as it lands.
  std::atomic<bool> done{false};
  std::mutex during_run_mutex;
  std::map<std::uint64_t, std::string> during_run;
  const auto pinned_count = [&during_run_mutex, &during_run] {
    const std::lock_guard<std::mutex> lock(during_run_mutex);
    return during_run.size();
  };
  std::thread reader([&server, &publisher, &during_run_mutex, &during_run, &done] {
    int fd = connect_to(server.port());
    ASSERT_GE(fd, 0);
    while (!done.load()) {
      const std::uint64_t latest = publisher.latest_epoch();
      for (std::uint64_t k = 1; k <= latest; ++k) {
        {
          const std::lock_guard<std::mutex> lock(during_run_mutex);
          if (during_run.count(k) != 0) continue;
        }
        std::string response = http_get(fd, "/epoch/" + std::to_string(k) + "/report");
        if (status_of(response) != 200) {
          // The server reaps keep-alive connections idle past its timeout,
          // and epochs can be minutes apart under TSan — reconnect and retry.
          ::close(fd);
          fd = connect_to(server.port());
          ASSERT_GE(fd, 0);
          response = http_get(fd, "/epoch/" + std::to_string(k) + "/report");
        }
        ASSERT_EQ(status_of(response), 200);
        const std::lock_guard<std::mutex> lock(during_run_mutex);
        during_run[k] = body_of(response);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    ::close(fd);
  });

  LiveReport live(config);
  live.run([&publisher](const EpochReport& report) {
    ASSERT_FALSE(report.failed);
    publisher.publish(PublishedEpoch::from_report(report, tiny_config().scale));
  });
  // Let the reader pin the final epoch before stopping it (bail instead of
  // hanging if the reader thread died on an assertion).
  while (pinned_count() < config.epochs && !::testing::Test::HasFatalFailure()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  done.store(true);
  reader.join();

  // The final epoch served over HTTP mid-run is the cold batch render.
  ASSERT_EQ(publisher.latest_epoch(), config.epochs);
  ASSERT_EQ(during_run.count(config.epochs), 1u);
  EXPECT_EQ(during_run.at(config.epochs), expected);

  // Findings were extracted and serve as JSON; every epoch re-fetches to the
  // same bytes it served mid-run.
  const int fd = connect_to(server.port());
  ASSERT_GE(fd, 0);
  const std::string findings =
      http_get(fd, "/epoch/" + std::to_string(config.epochs) + "/findings");
  EXPECT_EQ(status_of(findings), 200);
  EXPECT_NE(body_of(findings).find("\"findings\":["), std::string::npos);
  for (const auto& [k, body] : during_run) {
    const std::string again = http_get(fd, "/epoch/" + std::to_string(k) + "/report");
    EXPECT_EQ(body_of(again), body) << "epoch " << k;
  }
  ::close(fd);
  EXPECT_GT(server.stats().cache_hits, 0u);
  server.stop();
}

}  // namespace
}  // namespace cw::stream
