// Protocol-layer tests for src/serve/http.h: request parsing (incremental,
// pipelined, malformed), keep-alive semantics, response composition, and the
// small string helpers the router builds on. Pure functions — no sockets.
#include "serve/http.h"

#include <gtest/gtest.h>

#include <string>

namespace cw::stream {
namespace {

TEST(HttpParse, FullRequestWithHeadersAndQuery) {
  const std::string raw =
      "GET /epoch/3/table/table-1?format=json HTTP/1.1\r\n"
      "Host: localhost:8080\r\n"
      "ACCEPT: */*\r\n"
      "Connection:  keep-alive \r\n"
      "\r\n";
  HttpRequest request;
  std::size_t head_bytes = 0;
  ASSERT_EQ(parse_http_request(raw, request, head_bytes), ParseResult::kOk);
  EXPECT_EQ(head_bytes, raw.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/epoch/3/table/table-1?format=json");
  EXPECT_EQ(request.path, "/epoch/3/table/table-1");
  EXPECT_EQ(request.query, "format=json");
  EXPECT_EQ(request.version, "HTTP/1.1");
  // Header names are lowercased, values trimmed.
  EXPECT_EQ(request.headers.at("host"), "localhost:8080");
  EXPECT_EQ(request.headers.at("accept"), "*/*");
  EXPECT_EQ(request.headers.at("connection"), "keep-alive");
  EXPECT_TRUE(request.keep_alive());
}

TEST(HttpParse, IncompleteUntilBlankLine) {
  HttpRequest request;
  std::size_t head_bytes = 0;
  EXPECT_EQ(parse_http_request("GET / HTTP/1.1\r\nHost: x\r\n", request, head_bytes),
            ParseResult::kIncomplete);
  EXPECT_EQ(parse_http_request("GET / HT", request, head_bytes), ParseResult::kIncomplete);
  EXPECT_EQ(parse_http_request("", request, head_bytes), ParseResult::kIncomplete);
}

TEST(HttpParse, PipelinedRequestsParseOneAtATime) {
  std::string buffer =
      "GET /healthz HTTP/1.1\r\n\r\n"
      "GET /stats HTTP/1.1\r\n\r\n";
  HttpRequest request;
  std::size_t head_bytes = 0;
  ASSERT_EQ(parse_http_request(buffer, request, head_bytes), ParseResult::kOk);
  EXPECT_EQ(request.path, "/healthz");
  buffer.erase(0, head_bytes);
  ASSERT_EQ(parse_http_request(buffer, request, head_bytes), ParseResult::kOk);
  EXPECT_EQ(request.path, "/stats");
  EXPECT_EQ(head_bytes, buffer.size());
}

TEST(HttpParse, ToleratesBareLfLineEndings) {
  HttpRequest request;
  std::size_t head_bytes = 0;
  ASSERT_EQ(parse_http_request("GET /epochs HTTP/1.1\nHost: x\n\n", request, head_bytes),
            ParseResult::kOk);
  EXPECT_EQ(request.path, "/epochs");
  EXPECT_EQ(request.headers.at("host"), "x");
}

TEST(HttpParse, MalformedRequestsAreBad) {
  HttpRequest request;
  std::size_t head_bytes = 0;
  // Too few request-line tokens.
  EXPECT_EQ(parse_http_request("GET /\r\n\r\n", request, head_bytes), ParseResult::kBad);
  // Not an HTTP version.
  EXPECT_EQ(parse_http_request("GET / FTP/1.0\r\n\r\n", request, head_bytes), ParseResult::kBad);
  // Header without a colon.
  EXPECT_EQ(parse_http_request("GET / HTTP/1.1\r\nnocolon\r\n\r\n", request, head_bytes),
            ParseResult::kBad);
}

TEST(HttpParse, KeepAliveSemantics) {
  HttpRequest request;
  std::size_t head_bytes = 0;
  // HTTP/1.1 defaults to keep-alive.
  ASSERT_EQ(parse_http_request("GET / HTTP/1.1\r\n\r\n", request, head_bytes), ParseResult::kOk);
  EXPECT_TRUE(request.keep_alive());
  // ... unless the client says close.
  ASSERT_EQ(parse_http_request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", request,
                               head_bytes),
            ParseResult::kOk);
  EXPECT_FALSE(request.keep_alive());
  // HTTP/1.0 defaults to close ...
  ASSERT_EQ(parse_http_request("GET / HTTP/1.0\r\n\r\n", request, head_bytes), ParseResult::kOk);
  EXPECT_FALSE(request.keep_alive());
  // ... unless the client opts in.
  ASSERT_EQ(parse_http_request("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n", request,
                               head_bytes),
            ParseResult::kOk);
  EXPECT_TRUE(request.keep_alive());
}

TEST(HttpResponse, ComposesStatusHeadersAndBody) {
  const std::string response = http_response(200, "text/plain", "hello", /*keep_alive=*/true);
  EXPECT_EQ(response,
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: 5\r\n"
            "Connection: keep-alive\r\n"
            "\r\n"
            "hello");
}

TEST(HttpResponse, ExtraHeadersAndClose) {
  const std::string response =
      http_response(503, "application/json", "{}", /*keep_alive=*/false, {{"Retry-After", "2"}});
  EXPECT_NE(response.find("HTTP/1.1 503 Service Unavailable\r\n"), std::string::npos);
  EXPECT_NE(response.find("Connection: close\r\n"), std::string::npos);
  EXPECT_NE(response.find("Retry-After: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("\r\n\r\n{}"), std::string::npos);
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(json_escape("line\nbreak\ttab\rret"), "line\\nbreak\\ttab\\rret");
  EXPECT_EQ(json_escape(std::string_view("\x01\x1f", 2)), "\\u0001\\u001f");
}

TEST(TableSlug, CollapsesToUrlSafeIdentifier) {
  EXPECT_EQ(table_slug("Table 1: vantage points"), "table-1-vantage-points");
  EXPECT_EQ(table_slug("Section 3.2: malicious-traffic fractions"),
            "section-3-2-malicious-traffic-fractions");
  EXPECT_EQ(table_slug("already-fine"), "already-fine");
  EXPECT_EQ(table_slug("  Leading & trailing!  "), "leading-trailing");
  EXPECT_EQ(table_slug(""), "");
}

TEST(SplitPath, Segments) {
  using Segments = std::vector<std::string_view>;
  EXPECT_EQ(split_path("/"), Segments{});
  EXPECT_EQ(split_path(""), Segments{});
  EXPECT_EQ(split_path("/healthz"), (Segments{"healthz"}));
  EXPECT_EQ(split_path("/epoch/3/table/x"), (Segments{"epoch", "3", "table", "x"}));
  EXPECT_EQ(split_path("//double//slash/"), (Segments{"double", "slash"}));
}

}  // namespace
}  // namespace cw::stream
