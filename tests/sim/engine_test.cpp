#include "sim/engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <vector>

namespace cw::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(30, [&](Engine&) { order.push_back(3); });
  engine.schedule_at(10, [&](Engine&) { order.push_back(1); });
  engine.schedule_at(20, [&](Engine&) { order.push_back(2); });
  engine.run_until(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 100);
}

TEST(Engine, SameTimestampRunsInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule_at(5, [&order, i](Engine&) { order.push_back(i); });
  }
  engine.run_until(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, RunUntilBoundaryIsInclusive) {
  Engine engine;
  int ran = 0;
  engine.schedule_at(50, [&](Engine&) { ++ran; });
  engine.schedule_at(51, [&](Engine&) { ++ran; });
  EXPECT_EQ(engine.run_until(50), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(engine.pending(), 1u);
}

TEST(Engine, PastEventsRunAtCurrentTime) {
  Engine engine;
  engine.run_until(100);
  util::SimTime observed = -1;
  engine.schedule_at(10, [&](Engine& e) { observed = e.now(); });
  engine.run_until(200);
  EXPECT_EQ(observed, 100);
}

TEST(Engine, ScheduleAfterUsesCurrentTime) {
  Engine engine;
  engine.run_until(40);
  util::SimTime observed = -1;
  engine.schedule_after(10, [&](Engine& e) { observed = e.now(); });
  engine.run_until(100);
  EXPECT_EQ(observed, 50);
}

TEST(Engine, NegativeDelayClamped) {
  Engine engine;
  engine.run_until(40);
  util::SimTime observed = -1;
  engine.schedule_after(-100, [&](Engine& e) { observed = e.now(); });
  engine.run_until(41);
  EXPECT_EQ(observed, 40);
}

TEST(Engine, ReentrantSchedulingFromCallback) {
  Engine engine;
  std::vector<util::SimTime> times;
  engine.schedule_at(10, [&](Engine& e) {
    times.push_back(e.now());
    e.schedule_after(5, [&](Engine& e2) { times.push_back(e2.now()); });
  });
  engine.run_until(100);
  EXPECT_EQ(times, (std::vector<util::SimTime>{10, 15}));
}

TEST(Engine, ChainedSelfRescheduling) {
  // A periodic process that reschedules itself until the horizon.
  Engine engine;
  int ticks = 0;
  std::function<void(Engine&)> tick = [&](Engine& e) {
    ++ticks;
    if (e.now() < 90) e.schedule_after(10, tick);
  };
  engine.schedule_at(0, tick);
  engine.run_until(100);
  EXPECT_EQ(ticks, 10);  // t = 0, 10, ..., 90
}

TEST(Engine, RunAllDrainsQueue) {
  Engine engine;
  int ran = 0;
  engine.schedule_at(1000000, [&](Engine&) { ++ran; });
  engine.schedule_at(5, [&](Engine&) { ++ran; });
  EXPECT_EQ(engine.run_all(), 2u);
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(engine.pending(), 0u);
  EXPECT_EQ(engine.now(), 1000000);
}

TEST(Engine, ReschedulingAtSameTimestampFromCallback) {
  // Regression for the const_cast-and-move-from-priority_queue::top() UB:
  // scheduling from inside the running callback at the *same* timestamp
  // grows the heap mid-pop, which invalidated the moved-from top() slot in
  // the old scheme. The new events must still run, FIFO, at that timestamp.
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(10, [&](Engine& e) {
    order.push_back(0);
    for (int i = 1; i <= 64; ++i) {
      e.schedule_at(10, [&order, i](Engine& e2) {
        EXPECT_EQ(e2.now(), 10);
        order.push_back(i);
      });
    }
  });
  EXPECT_EQ(engine.run_until(10), 65u);
  std::vector<int> want(65);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(Engine, CallbackStateSurvivesPop) {
  // The popped event is moved out of the heap before running; state owned
  // by the callback must arrive intact even when the callback itself
  // reschedules (which reallocates the heap the event was popped from).
  Engine engine;
  int got = 0;
  auto payload = std::make_shared<int>(42);
  engine.schedule_at(5, [payload = std::move(payload), &got](Engine& e) {
    e.schedule_at(5, [&got](Engine&) { got += 1; });
    got += *payload;
  });
  engine.run_all();
  EXPECT_EQ(got, 43);
}

TEST(Engine, ReserveDoesNotDisturbPendingEvents) {
  Engine engine;
  std::vector<int> order;
  engine.schedule_at(2, [&](Engine&) { order.push_back(2); });
  engine.reserve(1024);
  engine.schedule_at(1, [&](Engine&) { order.push_back(1); });
  engine.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Engine, EventsProcessedAccumulates) {
  Engine engine;
  for (int i = 0; i < 5; ++i) engine.schedule_at(i, [](Engine&) {});
  engine.run_until(2);
  EXPECT_EQ(engine.events_processed(), 3u);
  engine.run_until(10);
  EXPECT_EQ(engine.events_processed(), 5u);
}

}  // namespace
}  // namespace cw::sim
