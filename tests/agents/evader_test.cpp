#include "agents/evader.h"

#include <gtest/gtest.h>

#include "capture/collector.h"
#include "sim/engine.h"

namespace cw::agents {
namespace {

struct EvaderWorld {
  topology::Deployment deployment;
  std::unique_ptr<topology::TargetUniverse> universe;
  std::unique_ptr<capture::Collector> collector;
  sim::Engine engine;
  AgentContext ctx;

  EvaderWorld() {
    topology::VantagePoint vp;
    vp.name = "gn";
    vp.provider = topology::Provider::kAws;
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kGreyNoise;
    vp.region = net::make_region("SG");
    vp.addresses = topology::Deployment::allocate_block(net::IPv4Addr(3, 0, 7, 1), 64);
    vp.open_ports = {22};
    deployment.add(std::move(vp));
    universe = std::make_unique<topology::TargetUniverse>(deployment);
    collector = std::make_unique<capture::Collector>(*universe);
    ctx.engine = &engine;
    ctx.universe = universe.get();
    ctx.collector = collector.get();
    ctx.window_end = util::kWeek;
  }

  std::uint64_t malicious_records() const {
    std::uint64_t count = 0;
    for (const auto& record : collector->store().records()) {
      if (record.malicious_truth) ++count;
    }
    return count;
  }
};

EvaderConfig config_with_rate(double rate) {
  EvaderConfig config;
  config.asn = 4134;
  config.sources = 2;
  config.detection_rate = rate;
  config.cloud_coverage = 1.0;
  config.edu_coverage = 0.0;
  config.waves = 1;
  return config;
}

TEST(FingerprintingEvader, NaiveTwinAttacksEverything) {
  EvaderWorld world;
  FingerprintingEvader evader(200, util::Rng(3), config_with_rate(0.0));
  evader.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(evader.probed(), 64u);
  EXPECT_EQ(evader.evaded(), 0u);
  EXPECT_GT(world.malicious_records(), 64u * 2);  // >= min_attempts per target
}

TEST(FingerprintingEvader, FullDetectionLeavesOnlyProbes) {
  EvaderWorld world;
  FingerprintingEvader evader(201, util::Rng(3), config_with_rate(1.0));
  evader.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(evader.evaded(), 64u);
  EXPECT_EQ(world.malicious_records(), 0u);
  EXPECT_EQ(world.collector->store().size(), 64u);  // the recon probes only
}

TEST(FingerprintingEvader, PartialDetectionScalesVisibility) {
  EvaderWorld naive_world;
  FingerprintingEvader naive(202, util::Rng(3), config_with_rate(0.0));
  naive.start(naive_world.ctx);
  naive_world.engine.run_until(util::kWeek);

  EvaderWorld evading_world;
  FingerprintingEvader evading(202, util::Rng(3), config_with_rate(0.75));
  evading.start(evading_world.ctx);
  evading_world.engine.run_until(util::kWeek);

  EXPECT_NEAR(static_cast<double>(evading.evaded()), 48.0, 14.0);  // ~75% of 64
  EXPECT_LT(evading_world.malicious_records(), naive_world.malicious_records() / 2);
  EXPECT_GT(evading_world.malicious_records(), 0u);
}

TEST(FingerprintingEvader, DetectionVerdictIsStableAcrossWaves) {
  EvaderWorld world;
  EvaderConfig config = config_with_rate(0.5);
  config.waves = 3;
  FingerprintingEvader evader(203, util::Rng(3), config);
  evader.start(world.ctx);
  world.engine.run_until(util::kWeek);
  // Each address is classified identically in every wave: an address either
  // has zero malicious records or malicious records in (roughly) all waves.
  std::map<std::uint32_t, std::uint64_t> malicious_per_dst;
  for (const auto& record : world.collector->store().records()) {
    if (record.malicious_truth) ++malicious_per_dst[record.dst];
  }
  for (const auto& [dst, count] : malicious_per_dst) {
    EXPECT_GE(count, 3u) << net::IPv4Addr(dst).to_string();  // min_attempts x >=1 wave... every wave attacked
  }
}

TEST(FingerprintingEvader, DetectionRateOutsideUnitIntervalClampsToCertainty) {
  // The per-address detection coin is compared against the configured rate
  // directly, so out-of-range rates must behave like their clamped values
  // (the adaptive adversary loop feeds tuned probabilities into this path).
  EvaderWorld everything;
  FingerprintingEvader paranoid(210, util::Rng(3), config_with_rate(2.5));
  paranoid.start(everything.ctx);
  everything.engine.run_until(util::kWeek);
  EXPECT_EQ(paranoid.evaded(), paranoid.probed());
  EXPECT_EQ(everything.malicious_records(), 0u);

  EvaderWorld nothing;
  FingerprintingEvader naive(211, util::Rng(3), config_with_rate(-3.0));
  naive.start(nothing.ctx);
  nothing.engine.run_until(util::kWeek);
  EXPECT_EQ(naive.evaded(), 0u);
  EXPECT_GT(nothing.malicious_records(), 0u);
}

TEST(FingerprintingEvader, ZeroSuccessStreakKeepsProbingWithoutAttacking) {
  // Full detection across many waves: the evader's attack success streak is
  // zero for the whole window, yet each wave still pays the recon probe —
  // counters accumulate linearly and no attack ever fires.
  EvaderWorld world;
  EvaderConfig config = config_with_rate(1.0);
  config.waves = 4;
  FingerprintingEvader evader(212, util::Rng(3), config);
  evader.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(evader.probed(), 4u * 64u);
  EXPECT_EQ(evader.evaded(), 4u * 64u);
  EXPECT_EQ(world.malicious_records(), 0u);
  EXPECT_EQ(world.collector->store().size(), 4u * 64u);
}

TEST(FingerprintingEvader, ProbesAreBenignOnTheWire) {
  EvaderWorld world;
  FingerprintingEvader evader(204, util::Rng(3), config_with_rate(1.0));
  evader.start(world.ctx);
  world.engine.run_until(util::kWeek);
  for (const auto& record : world.collector->store().records()) {
    EXPECT_FALSE(record.malicious_truth);
    EXPECT_EQ(record.credential_id, capture::kNoCredential);
  }
}

}  // namespace
}  // namespace cw::agents
