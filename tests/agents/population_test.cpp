#include "agents/population.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "agents/campaign.h"

namespace cw::agents {
namespace {

topology::Deployment deployment_for(topology::ScenarioYear year) {
  topology::DeploymentConfig config;
  config.year = year;
  config.telescope_slash24s = 4;
  return topology::Deployment::table1(config);
}

PopulationConfig population_config(double scale,
                                   topology::ScenarioYear year = topology::ScenarioYear::k2021) {
  PopulationConfig config;
  config.scale = scale;
  config.year = year;
  return config;
}

TEST(Population, BuildsNontrivialPopulation) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population population = Population::build(population_config(1.0), deployment);
  EXPECT_GT(population.size(), 400u);
}

TEST(Population, ScaleShrinksPopulation) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population full = Population::build(population_config(1.0), deployment);
  const Population small = Population::build(population_config(0.2), deployment);
  EXPECT_LT(small.size(), full.size());
  EXPECT_GT(small.size(), 50u);
}

TEST(Population, ActorIdsAreUniqueAndAboveReserved) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population population = Population::build(population_config(0.3), deployment);
  std::set<capture::ActorId> ids;
  for (const auto& actor : population.actors()) {
    EXPECT_GE(actor->id(), Population::kFirstPopulationActorId);
    EXPECT_TRUE(ids.insert(actor->id()).second);
  }
}

TEST(Population, GroundTruthCoversAllActorsPlusEngines) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population population = Population::build(population_config(0.3), deployment);
  const auto truth = population.ground_truth();
  EXPECT_EQ(truth.size(), population.size() + 2);
  EXPECT_FALSE(truth.at(Population::kCensysActorId));
  EXPECT_FALSE(truth.at(Population::kShodanActorId));
  bool any_malicious = false;
  bool any_benign = false;
  for (const auto& actor : population.actors()) {
    if (truth.at(actor->id())) {
      any_malicious = true;
    } else {
      any_benign = true;
    }
  }
  EXPECT_TRUE(any_malicious);
  EXPECT_TRUE(any_benign);
}

TEST(Population, ContainsExpectedBehaviorClasses) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population population = Population::build(population_config(1.0), deployment);
  std::map<std::string, int> kinds;
  for (const auto& actor : population.actors()) {
    ++kinds[std::string(actor->kind())];
  }
  EXPECT_GT(kinds["campaign"], 0);
  EXPECT_GT(kinds["search-miner"], 0);
  EXPECT_EQ(kinds["nmap-prober"], 3);  // Avast, M247, CDN77
}

TEST(Population, NeighborhoodAnomaliesLatchRealAddresses) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population population = Population::build(population_config(1.0), deployment);
  int latch_campaigns = 0;
  for (const auto& actor : population.actors()) {
    const auto* campaign = dynamic_cast<const ScanCampaign*>(actor.get());
    if (campaign == nullptr) continue;
    if (!campaign->config().filter.latch_addresses.empty()) ++latch_campaigns;
  }
  // Axtel/Linode-SG, Tsunami/HE, Azure-SG POST, Tsunami/telescope-17128.
  EXPECT_GE(latch_campaigns, 4);
}

TEST(Population, Year2020AddsAnomalyCampaigns) {
  const auto d2020 = deployment_for(topology::ScenarioYear::k2020);
  const Population p2020 =
      Population::build(population_config(1.0, topology::ScenarioYear::k2020), d2020);
  int anomalies = 0;
  for (const auto& actor : p2020.actors()) {
    const auto* campaign = dynamic_cast<const ScanCampaign*>(actor.get());
    if (campaign != nullptr && campaign->config().label.rfind("anomaly2020", 0) == 0) {
      ++anomalies;
    }
  }
  EXPECT_EQ(anomalies, 3);
}

TEST(Population, Year2022DoublesUnexpectedProtocolActors) {
  const auto d2021 = deployment_for(topology::ScenarioYear::k2021);
  const auto d2022 = deployment_for(topology::ScenarioYear::k2022);
  auto count_unexpected = [](const Population& population) {
    int count = 0;
    for (const auto& actor : population.actors()) {
      const auto* campaign = dynamic_cast<const ScanCampaign*>(actor.get());
      if (campaign != nullptr && campaign->config().label.rfind("unexpected-", 0) == 0) ++count;
    }
    return count;
  };
  const Population p2021 =
      Population::build(population_config(1.0, topology::ScenarioYear::k2021), d2021);
  const Population p2022 =
      Population::build(population_config(1.0, topology::ScenarioYear::k2022), d2022);
  EXPECT_GT(count_unexpected(p2022), count_unexpected(p2021));
}

TEST(Population, DeterministicForFixedSeed) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const Population a = Population::build(population_config(0.5), deployment);
  const Population b = Population::build(population_config(0.5), deployment);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.actors()[i]->id(), b.actors()[i]->id());
    EXPECT_EQ(a.actors()[i]->asn(), b.actors()[i]->asn());
    EXPECT_EQ(a.actors()[i]->kind(), b.actors()[i]->kind());
  }
}

TEST(Population, SourcePoolsNeverOverlapMonitoredSpace) {
  const auto deployment = deployment_for(topology::ScenarioYear::k2021);
  const topology::TargetUniverse universe(deployment);
  const Population population = Population::build(population_config(0.3), deployment);
  for (const auto& actor : population.actors()) {
    for (const net::IPv4Addr source : actor->sources()) {
      EXPECT_FALSE(universe.find(source).has_value()) << source.to_string();
    }
  }
}

}  // namespace
}  // namespace cw::agents
