#include "agents/campaign.h"

#include <gtest/gtest.h>

#include <set>

#include "agents/botnet.h"
#include "capture/collector.h"
#include "sim/engine.h"

namespace cw::agents {
namespace {

// A small world: one cloud vantage in AP-SG (4 addrs), one in US-OR
// (4 addrs), one education /28, one telescope /24.
topology::Deployment small_world() {
  topology::Deployment deployment;
  auto add = [&](const char* name, topology::Provider provider, net::GeoRegion region,
                 net::IPv4Addr base, int count, topology::CollectionMethod method) {
    topology::VantagePoint vp;
    vp.name = name;
    vp.provider = provider;
    vp.type = topology::network_type(provider);
    vp.collection = method;
    vp.region = std::move(region);
    vp.addresses = topology::Deployment::allocate_block(base, count);
    deployment.add(std::move(vp));
  };
  add("AWS/AP-SG", topology::Provider::kAws, net::make_region("SG"), net::IPv4Addr(3, 0, 1, 1), 4,
      topology::CollectionMethod::kHoneytrap);
  add("AWS/US-OR", topology::Provider::kAws, net::make_region("US", "OR"),
      net::IPv4Addr(3, 0, 2, 1), 4, topology::CollectionMethod::kHoneytrap);
  add("Stanford/US-West", topology::Provider::kStanford, net::make_region("US", "CA"),
      net::IPv4Addr(171, 64, 0, 1), 16, topology::CollectionMethod::kHoneytrap);
  add("Orion", topology::Provider::kOrion, net::make_region("US", "MI"),
      net::IPv4Addr(71, 96, 0, 0), 256, topology::CollectionMethod::kTelescope);
  return deployment;
}

struct World {
  topology::Deployment deployment = small_world();
  topology::TargetUniverse universe{deployment};
  capture::Collector collector{universe};
  sim::Engine engine;
  AgentContext ctx;

  World() {
    ctx.engine = &engine;
    ctx.universe = &universe;
    ctx.collector = &collector;
    ctx.window_end = util::kWeek;
  }

  void run(Actor& actor) {
    actor.start(ctx);
    engine.run_until(util::kWeek);
  }

  std::set<topology::VantageId> vantages_hit() const {
    std::set<topology::VantageId> out;
    for (const auto& record : collector.store().records()) out.insert(record.vantage);
    return out;
  }
};

CampaignConfig base_config() {
  CampaignConfig config;
  config.label = "test";
  config.asn = 64512;
  config.sources = 2;
  config.ports = {80};
  config.payload = PayloadKind::kSynOnly;
  config.waves = 1;
  config.filter.cloud_coverage = 1.0;
  config.filter.edu_coverage = 1.0;
  config.filter.telescope_coverage = 1.0;
  return config;
}

TEST(ScanCampaign, FullCoverageHitsEveryTarget) {
  World world;
  ScanCampaign campaign(50, util::Rng(1), base_config());
  world.run(campaign);
  EXPECT_EQ(world.collector.store().size(), world.universe.size());
}

TEST(ScanCampaign, ZeroTelescopeCoverageAvoidsTelescope) {
  World world;
  CampaignConfig config = base_config();
  config.filter.telescope_coverage = 0.0;
  ScanCampaign campaign(51, util::Rng(1), config);
  world.run(campaign);
  EXPECT_FALSE(world.vantages_hit().contains(3u));  // Orion
  EXPECT_TRUE(world.vantages_hit().contains(0u));
}

TEST(ScanCampaign, RegionAllowRestrictsCloudButNotTelescope) {
  World world;
  CampaignConfig config = base_config();
  config.filter.region_allow = {"AP-SG"};
  ScanCampaign campaign(52, util::Rng(1), config);
  world.run(campaign);
  const auto hit = world.vantages_hit();
  EXPECT_TRUE(hit.contains(0u));   // AWS/AP-SG
  EXPECT_FALSE(hit.contains(1u));  // AWS/US-OR filtered out
  EXPECT_FALSE(hit.contains(2u));  // Stanford filtered out
  EXPECT_TRUE(hit.contains(3u));   // telescope unaffected by geography
}

TEST(ScanCampaign, VantageNameFilterMatchesProviderQualifiedName) {
  World world;
  CampaignConfig config = base_config();
  config.filter.region_allow = {"AWS/US-OR"};
  ScanCampaign campaign(53, util::Rng(1), config);
  world.run(campaign);
  const auto hit = world.vantages_hit();
  EXPECT_FALSE(hit.contains(0u));
  EXPECT_TRUE(hit.contains(1u));
}

TEST(ScanCampaign, RegionDenyExcludes) {
  World world;
  CampaignConfig config = base_config();
  config.filter.region_deny = {"AP-SG"};
  ScanCampaign campaign(54, util::Rng(1), config);
  world.run(campaign);
  EXPECT_FALSE(world.vantages_hit().contains(0u));
  EXPECT_TRUE(world.vantages_hit().contains(1u));
}

TEST(ScanCampaign, StructureWeightSuppressesLast255) {
  World world;
  CampaignConfig config = base_config();
  config.filter.cloud_coverage = 0.0;
  config.filter.edu_coverage = 0.0;
  config.filter.telescope_coverage = 1.0;
  config.filter.weight_last_255 = 0.0;  // hard avoidance
  ScanCampaign campaign(55, util::Rng(1), config);
  world.run(campaign);
  EXPECT_EQ(world.collector.store().size(), 255u);  // /24 minus the .255 address
  for (const auto& record : world.collector.store().records()) {
    EXPECT_FALSE(record.dst_addr().ends_in_255());
  }
}

TEST(ScanCampaign, LatchingHitsOnlyLatchedAddressOncePerSourcePerWave) {
  World world;
  CampaignConfig config = base_config();
  config.sources = 5;
  config.waves = 2;
  config.filter.latch_addresses = {net::IPv4Addr(3, 0, 1, 2)};
  ScanCampaign campaign(56, util::Rng(1), config);
  world.run(campaign);
  EXPECT_EQ(world.collector.store().size(), 10u);  // 5 sources x 2 waves
  for (const auto& record : world.collector.store().records()) {
    EXPECT_EQ(record.dst_addr(), net::IPv4Addr(3, 0, 1, 2));
  }
}

TEST(ScanCampaign, BruteforceEmitsCredentialsWithinAttemptBounds) {
  World world;
  CampaignConfig config = base_config();
  config.ports = {22};
  config.payload = PayloadKind::kBruteforce;
  config.malicious = true;
  config.min_attempts = 2;
  config.max_attempts = 4;
  config.filter.cloud_coverage = 1.0;
  config.filter.edu_coverage = 0.0;
  config.filter.telescope_coverage = 0.0;
  ScanCampaign campaign(57, util::Rng(1), config);
  world.run(campaign);
  // 8 cloud targets, 2-4 attempts each.
  EXPECT_GE(world.collector.store().size(), 16u);
  EXPECT_LE(world.collector.store().size(), 32u);
}

TEST(ScanCampaign, FavoriteUsernamePinning) {
  // A GreyNoise (Cowrie) vantage point retains the credentials, so the
  // favorite-username policy is observable end to end.
  topology::Deployment deployment;
  topology::VantagePoint vp;
  vp.name = "gn";
  vp.provider = topology::Provider::kAws;
  vp.type = topology::NetworkType::kCloud;
  vp.collection = topology::CollectionMethod::kGreyNoise;
  vp.region = net::make_region("SG");
  vp.addresses = {net::IPv4Addr(3, 0, 9, 1)};
  vp.open_ports = {22};
  deployment.add(std::move(vp));
  const topology::TargetUniverse universe(deployment);
  capture::Collector collector(universe);
  sim::Engine engine;
  AgentContext ctx;
  ctx.engine = &engine;
  ctx.universe = &universe;
  ctx.collector = &collector;
  ctx.window_end = util::kWeek;

  CampaignConfig config = base_config();
  config.ports = {22};
  config.payload = PayloadKind::kBruteforce;
  config.min_attempts = 8;
  config.max_attempts = 8;
  config.dict_offset = 13;
  config.favorite_weight = 1.0;  // always pin the username
  config.favorite_username_only = true;
  ScanCampaign campaign(58, util::Rng(1), config);
  campaign.start(ctx);
  engine.run_until(util::kWeek);

  const auto& dict = proto::dictionary(config.dictionary);
  const std::string expected = dict[13 % dict.size()].username;
  const auto& store = collector.store();
  ASSERT_GT(store.size(), 0u);
  std::set<std::string> passwords;
  for (const auto& record : store.records()) {
    ASSERT_NE(record.credential_id, capture::kNoCredential);
    const proto::Credential credential = store.credential(record.credential_id);
    EXPECT_EQ(credential.username, expected);
    passwords.insert(credential.password);
  }
  // username-only pinning leaves passwords popularity-sampled.
  EXPECT_GT(passwords.size(), 1u);
}

TEST(ScanCampaign, ExploitPayloadIsMaliciousRegardlessOfFlag) {
  World world;
  CampaignConfig config = base_config();
  config.payload = PayloadKind::kExploit;
  config.exploit = proto::ExploitKind::kLog4Shell;
  config.malicious = false;  // the exploit path overrides
  ScanCampaign campaign(59, util::Rng(1), config);
  world.run(campaign);
  for (const auto& record : world.collector.store().records()) {
    EXPECT_TRUE(record.malicious_truth);
  }
}

TEST(ScanCampaign, EventsStayInsideObservationWindow) {
  World world;
  CampaignConfig config = base_config();
  config.waves = 5;
  config.wave_duration = 3 * util::kDay;
  ScanCampaign campaign(60, util::Rng(1), config);
  world.run(campaign);
  for (const auto& record : world.collector.store().records()) {
    EXPECT_GE(record.time, 0);
    EXPECT_LT(record.time, util::kWeek);
  }
}

TEST(ScanCampaign, DeterministicAcrossRuns) {
  auto run_once = [] {
    World world;
    CampaignConfig config = base_config();
    config.filter.cloud_coverage = 0.5;
    ScanCampaign campaign(61, util::Rng(42), config);
    world.run(campaign);
    std::vector<std::pair<util::SimTime, std::uint32_t>> events;
    for (const auto& record : world.collector.store().records()) {
      events.emplace_back(record.time, record.dst);
    }
    return events;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(BotnetConfigs, MiraiShape) {
  const CampaignConfig mirai = mirai_config(4766, 50);
  EXPECT_EQ(mirai.payload, PayloadKind::kBruteforce);
  EXPECT_EQ(mirai.dictionary, proto::CredentialDictionary::kMirai);
  EXPECT_TRUE(mirai.malicious);
  EXPECT_GT(mirai.filter.telescope_coverage, 0.5);
  EXPECT_EQ(mirai.sources, 50);
}

TEST(BotnetConfigs, MiraiSshSeedPrefersFirstOf16) {
  const CampaignConfig seed = mirai_ssh_seed_config(4766, 30);
  EXPECT_EQ(seed.ports, std::vector<net::Port>{22});
  EXPECT_GT(seed.filter.weight_first_of_16, 5.0);
}

TEST(BotnetConfigs, TsunamiLatches) {
  const CampaignConfig tsunami =
      tsunami_config(64512, 100, {net::IPv4Addr(1, 2, 3, 4)}, 17128);
  EXPECT_EQ(tsunami.filter.latch_addresses.size(), 1u);
  EXPECT_EQ(tsunami.payload, PayloadKind::kSynOnly);
  const CampaignConfig ssh_tsunami =
      tsunami_config(64512, 100, {net::IPv4Addr(1, 2, 3, 4)}, 22);
  EXPECT_EQ(ssh_tsunami.payload, PayloadKind::kBruteforce);
}

}  // namespace
}  // namespace cw::agents
