#include "agents/miner.h"

#include <gtest/gtest.h>

#include <set>

#include "capture/collector.h"
#include "searchengine/engine.h"
#include "sim/engine.h"

namespace cw::agents {
namespace {

// Two cloud services plus one address the engines never see.
struct MinerWorld {
  topology::Deployment deployment;
  std::unique_ptr<topology::TargetUniverse> universe;
  std::unique_ptr<capture::Collector> collector;
  search::ServiceSearchEngine censys{"Censys", net::kAsnCensys, 1};
  search::ServiceSearchEngine shodan{"Shodan", net::kAsnShodan, 2};
  sim::Engine engine;
  AgentContext ctx;
  util::Rng crawl_rng{3};

  MinerWorld() {
    topology::VantagePoint vp;
    vp.name = "gn";
    vp.provider = topology::Provider::kAws;
    vp.type = topology::NetworkType::kCloud;
    vp.collection = topology::CollectionMethod::kGreyNoise;
    vp.region = net::make_region("SG");
    vp.addresses = {net::IPv4Addr(3, 0, 0, 1), net::IPv4Addr(3, 0, 0, 2),
                    net::IPv4Addr(3, 0, 0, 3)};
    vp.open_ports = {22, 80};
    deployment.add(std::move(vp));
    universe = std::make_unique<topology::TargetUniverse>(deployment);
    collector = std::make_unique<capture::Collector>(*universe);

    censys.set_crawl_ports({22, 80});
    shodan.set_crawl_ports({22, 80});
    // The third address is invisible to both engines.
    censys.blocklist(net::IPv4Addr(3, 0, 0, 3));
    shodan.blocklist(net::IPv4Addr(3, 0, 0, 3));

    ctx.engine = &engine;
    ctx.universe = universe.get();
    ctx.collector = collector.get();
    ctx.censys = &censys;
    ctx.shodan = &shodan;
    ctx.window_end = util::kWeek;
  }

  void crawl_now() { censys.crawl(0, *universe, *collector, crawl_rng); }

  std::set<std::uint32_t> destinations_of(capture::ActorId actor) const {
    std::set<std::uint32_t> out;
    for (const auto& record : collector->store().records()) {
      if (record.actor == actor) out.insert(record.dst);
    }
    return out;
  }
};

MinerConfig ssh_miner_config() {
  MinerConfig config;
  config.label = "test-miner";
  config.asn = 64600;
  config.sources = 2;
  config.port = 22;
  config.protocol = net::Protocol::kSsh;
  config.engines = EnginePreference::kCensys;
  config.payload = PayloadKind::kBruteforce;
  config.query_interval = util::kDay;
  return config;
}

TEST(SearchEngineMiner, AttacksOnlyIndexedServices) {
  MinerWorld world;
  world.crawl_now();
  SearchEngineMiner miner(100, util::Rng(5), ssh_miner_config());
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);

  const auto destinations = world.destinations_of(100);
  ASSERT_FALSE(destinations.empty());
  EXPECT_TRUE(destinations.contains(net::IPv4Addr(3, 0, 0, 1).value()));
  EXPECT_FALSE(destinations.contains(net::IPv4Addr(3, 0, 0, 3).value()));
}

TEST(SearchEngineMiner, NoIndexNoAttacks) {
  MinerWorld world;  // no crawl: the index is empty
  SearchEngineMiner miner(101, util::Rng(5), ssh_miner_config());
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_TRUE(world.destinations_of(101).empty());
}

TEST(SearchEngineMiner, BurstCarriesUniqueCredentials) {
  MinerWorld world;
  world.crawl_now();
  MinerConfig config = ssh_miner_config();
  config.burst_attempts_min = 10;
  config.burst_attempts_max = 10;
  SearchEngineMiner miner(102, util::Rng(5), config);
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);

  // Per (destination, hour): the burst's credentials are all distinct.
  const auto& store = world.collector->store();
  std::map<std::pair<std::uint32_t, std::int64_t>, std::set<std::string>> unique;
  std::map<std::pair<std::uint32_t, std::int64_t>, int> total;
  for (const auto& record : store.records()) {
    if (record.actor != 102 || record.credential_id == capture::kNoCredential) continue;
    const auto key = std::make_pair(record.dst, record.time / util::kHour);
    const proto::Credential credential = store.credential(record.credential_id);
    unique[key].insert(credential.username + ":" + credential.password);
    ++total[key];
  }
  ASSERT_FALSE(total.empty());
  for (const auto& [key, count] : total) {
    EXPECT_EQ(unique[key].size(), static_cast<std::size_t>(count));
  }
}

TEST(SearchEngineMiner, HistoryMiningResurrectsDelistedAddresses) {
  MinerWorld world;
  // Seed history only; live index stays empty.
  world.censys.seed_history(net::IPv4Addr(3, 0, 0, 2), 80, net::Protocol::kHttp, -1000);
  MinerConfig config = ssh_miner_config();
  config.mine_history = true;
  config.history_port = 80;
  SearchEngineMiner miner(103, util::Rng(5), config);
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);
  const auto destinations = world.destinations_of(103);
  EXPECT_TRUE(destinations.contains(net::IPv4Addr(3, 0, 0, 2).value()));
}

TEST(SearchEngineMiner, RespectsTargetCap) {
  MinerWorld world;
  world.crawl_now();
  MinerConfig config = ssh_miner_config();
  config.max_targets_per_query = 1;
  SearchEngineMiner miner(104, util::Rng(5), config);
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);
  // 7-8 query rounds x 1 target each; a burst may straddle an hour
  // boundary, so bound the distinct (target, hour) pairs accordingly.
  const auto& store = world.collector->store();
  std::set<std::pair<std::uint32_t, std::int64_t>> bursts;
  for (const auto& record : store.records()) {
    if (record.actor == 104) bursts.insert({record.dst, record.time / util::kHour});
  }
  EXPECT_LE(bursts.size(), 16u);
}

TEST(SearchEngineMiner, BannerQueryTargetsMatchingSoftware) {
  MinerWorld world;
  world.crawl_now();
  MinerConfig config = ssh_miner_config();
  config.banner_query = "SSH-2.0-";  // every indexed SSH banner matches
  SearchEngineMiner miner(107, util::Rng(5), config);
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);
  const auto destinations = world.destinations_of(107);
  EXPECT_FALSE(destinations.empty());
  EXPECT_FALSE(destinations.contains(net::IPv4Addr(3, 0, 0, 3).value()));  // unindexed

  MinerWorld other;
  other.crawl_now();
  MinerConfig miss = ssh_miner_config();
  miss.banner_query = "ProFTPD";  // no such software in the index
  SearchEngineMiner no_hits(108, util::Rng(5), miss);
  no_hits.start(other.ctx);
  other.engine.run_until(util::kWeek);
  EXPECT_TRUE(other.destinations_of(108).empty());
}

TEST(SearchEngineMiner, ZeroSuccessStreakNeverAttacks) {
  // The index stays empty for the whole window: every one of the ~14 query
  // rounds comes back dry and the miner must emit nothing at all — a
  // zero-success streak never degenerates into blind scanning.
  MinerWorld world;
  MinerConfig config = ssh_miner_config();
  config.query_interval = 12 * util::kHour;
  SearchEngineMiner miner(109, util::Rng(5), config);
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_TRUE(world.destinations_of(109).empty());
  EXPECT_EQ(world.collector->store().size(), 0u);
}

TEST(SearchEngineMiner, AttackFractionClampsAtZeroAndOne) {
  // attack_fraction rides Rng::bernoulli, which clamps out-of-range
  // probabilities: <= 0 attacks nothing even with a populated index, >= 1
  // attacks every hit.
  MinerWorld silent_world;
  silent_world.crawl_now();
  MinerConfig none = ssh_miner_config();
  none.attack_fraction = -0.5;
  SearchEngineMiner silent(110, util::Rng(5), none);
  silent.start(silent_world.ctx);
  silent_world.engine.run_until(util::kWeek);
  EXPECT_TRUE(silent_world.destinations_of(110).empty());

  MinerWorld eager_world;
  eager_world.crawl_now();
  MinerConfig all = ssh_miner_config();
  all.attack_fraction = 2.0;
  SearchEngineMiner eager(111, util::Rng(5), all);
  eager.start(eager_world.ctx);
  eager_world.engine.run_until(util::kWeek);
  // Both indexed addresses attacked; the unindexed third never is.
  const auto destinations = eager_world.destinations_of(111);
  EXPECT_TRUE(destinations.contains(net::IPv4Addr(3, 0, 0, 1).value()));
  EXPECT_TRUE(destinations.contains(net::IPv4Addr(3, 0, 0, 2).value()));
  EXPECT_FALSE(destinations.contains(net::IPv4Addr(3, 0, 0, 3).value()));
}

TEST(SearchEngineMiner, InvertedBurstBoundsDoNotUnderflow) {
  // min > max is a config mistake the burst sampler must tolerate (the
  // uniform draw is clamped, not undefined).
  MinerWorld world;
  world.crawl_now();
  MinerConfig config = ssh_miner_config();
  config.burst_attempts_min = 9;
  config.burst_attempts_max = 3;
  SearchEngineMiner miner(112, util::Rng(5), config);
  miner.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_FALSE(world.destinations_of(112).empty());
}

TEST(NmapProber, AvoidsCensysIndexedTargets) {
  MinerWorld world;
  world.crawl_now();  // addresses .1 and .2 are now live on Censys
  NmapProberConfig config;
  config.asn = net::kAsnAvast;
  config.sources = 1;
  config.port = 80;
  config.cloud_coverage = 1.0;
  config.edu_coverage = 1.0;
  config.waves = 1;
  NmapProber prober(105, util::Rng(5), config);
  prober.start(world.ctx);
  world.engine.run_until(util::kWeek);

  const auto destinations = world.destinations_of(105);
  EXPECT_FALSE(destinations.contains(net::IPv4Addr(3, 0, 0, 1).value()));
  EXPECT_FALSE(destinations.contains(net::IPv4Addr(3, 0, 0, 2).value()));
  EXPECT_TRUE(destinations.contains(net::IPv4Addr(3, 0, 0, 3).value()));
}

TEST(NmapProber, ProbesEverythingWhenIndexEmpty) {
  MinerWorld world;
  NmapProberConfig config;
  config.asn = net::kAsnM247;
  config.port = 80;
  config.cloud_coverage = 1.0;
  config.waves = 1;
  NmapProber prober(106, util::Rng(5), config);
  prober.start(world.ctx);
  world.engine.run_until(util::kWeek);
  EXPECT_EQ(world.destinations_of(106).size(), 3u);
}

}  // namespace
}  // namespace cw::agents
