#include "topology/universe.h"

#include <gtest/gtest.h>

namespace cw::topology {
namespace {

Deployment tiny_deployment() {
  Deployment deployment;
  VantagePoint cloud;
  cloud.name = "cloud";
  cloud.provider = Provider::kAws;
  cloud.type = NetworkType::kCloud;
  cloud.collection = CollectionMethod::kGreyNoise;
  cloud.region = net::make_region("SG");
  cloud.addresses = {net::IPv4Addr(3, 1, 1, 1), net::IPv4Addr(3, 1, 1, 2)};
  deployment.add(std::move(cloud));

  VantagePoint telescope;
  telescope.name = "telescope";
  telescope.provider = Provider::kOrion;
  telescope.type = NetworkType::kTelescope;
  telescope.collection = CollectionMethod::kTelescope;
  telescope.region = net::make_region("US", "MI");
  telescope.addresses = {net::IPv4Addr(71, 96, 0, 0), net::IPv4Addr(71, 96, 0, 1),
                         net::IPv4Addr(71, 96, 0, 2)};
  deployment.add(std::move(telescope));
  return deployment;
}

TEST(TargetUniverse, FlattensAllAddresses) {
  const Deployment deployment = tiny_deployment();
  const TargetUniverse universe(deployment);
  EXPECT_EQ(universe.size(), 5u);
  EXPECT_EQ(universe.of_type(NetworkType::kCloud).size(), 2u);
  EXPECT_EQ(universe.of_type(NetworkType::kTelescope).size(), 3u);
  EXPECT_EQ(universe.of_type(NetworkType::kEducation).size(), 0u);
}

TEST(TargetUniverse, FindMapsAddressToTarget) {
  const Deployment deployment = tiny_deployment();
  const TargetUniverse universe(deployment);
  const auto index = universe.find(net::IPv4Addr(3, 1, 1, 2));
  ASSERT_TRUE(index.has_value());
  const Target& target = universe.targets()[*index];
  EXPECT_EQ(target.vantage, 0u);
  EXPECT_EQ(target.index_in_vantage, 1u);
  EXPECT_EQ(target.type, NetworkType::kCloud);
  EXPECT_EQ(target.continent, net::Continent::kAsiaPacific);
}

TEST(TargetUniverse, FindRejectsUnmonitored) {
  const Deployment deployment = tiny_deployment();
  const TargetUniverse universe(deployment);
  EXPECT_FALSE(universe.find(net::IPv4Addr(9, 9, 9, 9)).has_value());
}

TEST(TargetUniverse, OfVantageReturnsAllItsTargets) {
  const Deployment deployment = tiny_deployment();
  const TargetUniverse universe(deployment);
  EXPECT_EQ(universe.of_vantage(0).size(), 2u);
  EXPECT_EQ(universe.of_vantage(1).size(), 3u);
  EXPECT_TRUE(universe.of_vantage(42).empty());
}

TEST(TargetUniverse, NeighborIndicesFollowAddressOrder) {
  const Deployment deployment = tiny_deployment();
  const TargetUniverse universe(deployment);
  for (std::size_t i : universe.of_vantage(1)) {
    const Target& target = universe.targets()[i];
    EXPECT_EQ(target.address.value(),
              deployment.at(1).addresses[target.index_in_vantage].value());
  }
}

}  // namespace
}  // namespace cw::topology
