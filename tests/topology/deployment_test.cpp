#include "topology/deployment.h"

#include <gtest/gtest.h>

#include <set>

namespace cw::topology {
namespace {

DeploymentConfig small_config(ScenarioYear year = ScenarioYear::k2021) {
  DeploymentConfig config;
  config.year = year;
  config.telescope_slash24s = 4;
  return config;
}

TEST(Deployment, Table1Has2021Structure) {
  const Deployment deployment = Deployment::table1(small_config());
  // 1 HE + 16 AWS + 3 Azure + 21 Google + 7 Linode GreyNoise regions,
  // 5 Honeytrap deployments, 1 telescope.
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kGreyNoise).size(), 48u);
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kHoneytrap).size(), 5u);
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kTelescope).size(), 1u);
  EXPECT_EQ(deployment.with_provider(Provider::kAws).size(), 17u);   // 16 GN + 1 HT
  EXPECT_EQ(deployment.with_provider(Provider::kGoogle).size(), 23u);  // 21 GN + 2 HT
  EXPECT_EQ(deployment.with_provider(Provider::kAzure).size(), 3u);
  EXPECT_EQ(deployment.with_provider(Provider::kLinode).size(), 7u);
}

TEST(Deployment, Year2020DropsHoneytrap) {
  const Deployment deployment = Deployment::table1(small_config(ScenarioYear::k2020));
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kHoneytrap).size(), 0u);
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kGreyNoise).size(), 48u);
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kTelescope).size(), 1u);
}

TEST(Deployment, Year2022DropsGreyNoise) {
  const Deployment deployment = Deployment::table1(small_config(ScenarioYear::k2022));
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kGreyNoise).size(), 0u);
  EXPECT_EQ(deployment.with_collection(CollectionMethod::kHoneytrap).size(), 5u);
}

TEST(Deployment, NetworkTypesMatchProviders) {
  const Deployment deployment = Deployment::table1(small_config());
  for (const VantagePoint& vp : deployment.vantage_points()) {
    EXPECT_EQ(vp.type, network_type(vp.provider)) << vp.name;
  }
}

TEST(Deployment, HurricaneElectricIsFullSlash24) {
  const Deployment deployment = Deployment::table1(small_config());
  const VantagePoint* he = nullptr;
  for (const VantagePoint& vp : deployment.vantage_points()) {
    if (vp.provider == Provider::kHurricaneElectric) he = &vp;
  }
  ASSERT_NE(he, nullptr);
  EXPECT_EQ(he->addresses.size(), 256u);
  // Contiguous block.
  for (std::size_t i = 1; i < he->addresses.size(); ++i) {
    EXPECT_EQ(he->addresses[i].value(), he->addresses[i - 1].value() + 1);
  }
}

TEST(Deployment, GreyNoiseAddressesStayInsideProviderPool) {
  const Deployment deployment = Deployment::table1(small_config());
  for (const VantagePoint& vp : deployment.vantage_points()) {
    const net::Prefix pool = provider_pool(vp.provider);
    for (const net::IPv4Addr addr : vp.addresses) {
      EXPECT_TRUE(pool.contains(addr)) << vp.name << " " << addr.to_string();
    }
  }
}

TEST(Deployment, RandomAllocationsAvoid255Octets) {
  util::Rng rng(1);
  const auto addresses =
      Deployment::allocate_random(rng, provider_pool(Provider::kAws), 500);
  std::set<net::IPv4Addr> unique(addresses.begin(), addresses.end());
  EXPECT_EQ(unique.size(), 500u);
  for (const net::IPv4Addr addr : addresses) {
    EXPECT_FALSE(addr.has_255_octet()) << addr.to_string();
    EXPECT_NE(addr.octet(3), 0) << addr.to_string();
  }
}

TEST(Deployment, TelescopeSizeFollowsConfig) {
  DeploymentConfig config = small_config();
  config.telescope_slash24s = 8;
  const Deployment deployment = Deployment::table1(config);
  const VantageId orion = deployment.with_type(NetworkType::kTelescope).front();
  EXPECT_EQ(deployment.at(orion).addresses.size(), 8u * 256u);
}

TEST(Deployment, TelescopeListensOnAllPorts) {
  const Deployment deployment = Deployment::table1(small_config());
  const VantageId orion = deployment.with_type(NetworkType::kTelescope).front();
  EXPECT_TRUE(deployment.at(orion).listens_on(1));
  EXPECT_TRUE(deployment.at(orion).listens_on(65535));
}

TEST(Deployment, GreyNoiseListensOnlyOnOpenPorts) {
  const Deployment deployment = Deployment::table1(small_config());
  const VantageId gn = deployment.with_collection(CollectionMethod::kGreyNoise).front();
  EXPECT_TRUE(deployment.at(gn).listens_on(22));
  EXPECT_TRUE(deployment.at(gn).listens_on(80));
  EXPECT_FALSE(deployment.at(gn).listens_on(12345));
}

TEST(Deployment, ColocatedCloudsContainSingaporeWithFourProviders) {
  const Deployment deployment = Deployment::table1(small_config());
  const auto cities = deployment.colocated_clouds();
  bool found_sg = false;
  for (const auto& city : cities) {
    std::set<Provider> providers;
    for (VantageId id : city.vantage_ids) providers.insert(deployment.at(id).provider);
    EXPECT_GE(providers.size(), 2u) << city.city_code;
    if (city.city_code == "SG") {
      found_sg = true;
      EXPECT_EQ(providers.size(), 4u);  // AWS, Azure, Google, Linode
    }
  }
  EXPECT_TRUE(found_sg);
}

TEST(Deployment, DeterministicForFixedSeed) {
  const Deployment a = Deployment::table1(small_config());
  const Deployment b = Deployment::table1(small_config());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.at(i).addresses, b.at(i).addresses) << a.at(i).name;
  }
}

TEST(Deployment, DistinctSeedsChangeAddresses) {
  DeploymentConfig other = small_config();
  other.seed ^= 0xdeadbeef;
  const Deployment a = Deployment::table1(small_config());
  const Deployment b = Deployment::table1(other);
  const VantageId aws = a.with_provider(Provider::kAws).front();
  EXPECT_NE(a.at(aws).addresses, b.at(aws).addresses);
}

TEST(Deployment, VantageNamesAreUnique) {
  const Deployment deployment = Deployment::table1(small_config());
  std::set<std::string> names;
  for (const VantagePoint& vp : deployment.vantage_points()) names.insert(vp.name);
  EXPECT_EQ(names.size(), deployment.size());
}

TEST(ScenarioYear, Names) {
  EXPECT_EQ(scenario_year_name(ScenarioYear::k2020), "2020");
  EXPECT_EQ(scenario_year_name(ScenarioYear::k2021), "2021");
  EXPECT_EQ(scenario_year_name(ScenarioYear::k2022), "2022");
}

}  // namespace
}  // namespace cw::topology
