#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace cw::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, StreamIsIndependentOfParentState) {
  Rng parent(7);
  Rng s1 = parent.stream("alpha");
  (void)parent.next();  // advancing the parent must not change the stream
  Rng s2 = Rng(7).stream("alpha");
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.next(), s2.next());
}

TEST(Rng, DistinctLabelsGiveDistinctStreams) {
  Rng parent(7);
  Rng a = parent.stream("alpha");
  Rng b = parent.stream("beta");
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 12345ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowZeroReturnsZero) {
  Rng rng(3);
  EXPECT_EQ(rng.next_below(0), 0u);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all 7 values hit with overwhelming probability
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
    EXPECT_FALSE(rng.bernoulli(-0.5));
    EXPECT_TRUE(rng.bernoulli(1.5));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, PoissonSmallMean) {
  Rng rng(23);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(rng.poisson(3.0));
  EXPECT_NEAR(sum / 20000.0, 3.0, 0.1);
}

TEST(Rng, PoissonLargeMeanUsesNormalApprox) {
  Rng rng(29);
  double sum = 0.0;
  for (int i = 0; i < 5000; ++i) sum += static_cast<double>(rng.poisson(200.0));
  EXPECT_NEAR(sum / 5000.0, 200.0, 2.0);
}

TEST(Rng, PoissonZeroMean) {
  Rng rng(31);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, NormalMoments) {
  Rng rng(37);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(Rng, ZipfRankZeroMostLikely) {
  Rng rng(41);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.zipf(10, 1.2)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[4]);
  EXPECT_GT(counts[0], 20000 / 4);  // heavy head
}

TEST(Rng, ZipfSingleElement) {
  Rng rng(43);
  EXPECT_EQ(rng.zipf(1, 1.0), 0u);
  EXPECT_EQ(rng.zipf(0, 1.0), 0u);
}

namespace {

// The pre-cache zipf implementation, kept verbatim as the regression
// reference: recompute the harmonic normalizer and walk the inverse CDF on
// every draw. Rng::zipf must reproduce this draw for draw (same consumed
// uniforms, same selected ranks) or golden report hashes shift.
std::uint64_t zipf_reference(Rng& rng, std::uint64_t n, double s) {
  if (n <= 1) return 0;
  double h = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) h += 1.0 / std::pow(static_cast<double>(k), s);
  double u = rng.uniform() * h;
  double acc = 0.0;
  for (std::uint64_t k = 1; k <= n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k), s);
    if (u <= acc) return k - 1;
  }
  return n - 1;
}

}  // namespace

TEST(Rng, ZipfCachedDrawSequenceMatchesReference) {
  Rng cached(12345);
  Rng reference(12345);
  // Interleave (n, s) pairs so the cache is hit, missed, and refilled within
  // one sequence; include the credential-dictionary shape (n=60, s=1.2) and
  // a large-n table.
  const std::pair<std::uint64_t, double> shapes[] = {
      {10, 1.2}, {60, 1.2}, {10, 1.0}, {2, 0.8}, {1000, 1.5}, {10, 1.2}};
  for (int round = 0; round < 500; ++round) {
    for (const auto& [n, s] : shapes) {
      ASSERT_EQ(cached.zipf(n, s), zipf_reference(reference, n, s))
          << "n=" << n << " s=" << s << " round=" << round;
    }
  }
  // Both generators must have consumed the identical uniform stream.
  EXPECT_EQ(cached.next(), reference.next());
}

TEST(Rng, ZipfInterleavedWithOtherDrawsKeepsSequence) {
  Rng cached(99);
  Rng reference(99);
  for (int i = 0; i < 200; ++i) {
    ASSERT_EQ(cached.zipf(37, 1.1), zipf_reference(reference, 37, 1.1));
    ASSERT_EQ(cached.next(), reference.next());
    ASSERT_EQ(cached.uniform(), reference.uniform());
  }
}

TEST(Rng, WeightedIndexRespectsWeights) {
  Rng rng(47);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) {
    const std::optional<std::size_t> index = rng.weighted_index(weights);
    ASSERT_TRUE(index.has_value());
    ASSERT_LT(*index, 3u);
    ++counts[*index];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

TEST(Rng, WeightedIndexEmptyReturnsNullopt) {
  Rng rng(53);
  const std::vector<double> empty;
  EXPECT_EQ(rng.weighted_index(empty), std::nullopt);
}

TEST(Rng, WeightedIndexAllNonpositiveReturnsNullopt) {
  Rng rng(53);
  EXPECT_EQ(rng.weighted_index({0.0, 0.0}), std::nullopt);
  EXPECT_EQ(rng.weighted_index({-1.0, 0.0, -3.5}), std::nullopt);
}

TEST(Rng, WeightedIndexSinglePositiveAlwaysChosen) {
  Rng rng(53);
  const std::vector<double> weights = {0.0, 0.0, 2.5, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.weighted_index(weights), 2u);
}

TEST(Rng, WeightedIndexSentinelConsumesNoUniform) {
  // A nullopt return must not advance the generator: the draw sequence with
  // and without interleaved sentinel lookups is identical.
  Rng with_sentinels(71);
  Rng plain(71);
  const std::vector<double> empty;
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(with_sentinels.weighted_index(empty), std::nullopt);
    EXPECT_EQ(with_sentinels.next(), plain.next());
  }
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(59);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, SampleIndicesDistinctAndBounded) {
  Rng rng(61);
  const auto sample = rng.sample_indices(100, 10);
  EXPECT_EQ(sample.size(), 10u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
  for (std::size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(Rng, SampleIndicesKExceedsN) {
  Rng rng(67);
  const auto sample = rng.sample_indices(5, 10);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Fnv1a, KnownValues) {
  // Reference FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_NE(fnv1a64("abc"), fnv1a64("acb"));
}

// Property sweep: uniformity of next_below over several bounds and seeds,
// via a coarse chi-squared check against the uniform expectation.
class RngUniformity : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {};

TEST_P(RngUniformity, NextBelowIsRoughlyUniform) {
  const auto [seed, bound] = GetParam();
  Rng rng(seed);
  const int draws = 20000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < draws; ++i) ++counts[rng.next_below(bound)];
  const double expected = static_cast<double>(draws) / static_cast<double>(bound);
  double chi2 = 0.0;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  // 99.9th percentile of chi2 with (bound-1) df, generous envelope.
  const double df = static_cast<double>(bound - 1);
  EXPECT_LT(chi2, df + 4.0 * std::sqrt(2.0 * df) + 20.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RngUniformity,
                         ::testing::Combine(::testing::Values(1ULL, 99ULL, 777ULL),
                                            ::testing::Values(2ULL, 10ULL, 64ULL, 100ULL)));

}  // namespace
}  // namespace cw::util
