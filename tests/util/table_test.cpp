#include "util/table.h"

#include <gtest/gtest.h>

namespace cw::util {
namespace {

TEST(TextTable, AlignsColumns) {
  TextTable table({"A", "Long header"});
  table.add_row({"value-1", "x"});
  const std::string out = table.render();
  // Every line has the same length (alignment).
  std::size_t first_newline = out.find('\n');
  const std::size_t width = first_newline;
  std::size_t pos = 0;
  while (pos < out.size()) {
    std::size_t next = out.find('\n', pos);
    ASSERT_NE(next, std::string::npos);
    EXPECT_EQ(next - pos, width);
    pos = next + 1;
  }
}

TEST(TextTable, MissingCellsRenderEmpty) {
  TextTable table({"A", "B"});
  table.add_row({"only-a"});
  const std::string out = table.render();
  EXPECT_NE(out.find("only-a"), std::string::npos);
}

TEST(TextTable, SeparatorRow) {
  TextTable table({"A"});
  table.add_row({"1"});
  table.add_separator();
  table.add_row({"2"});
  const std::string out = table.render();
  // Header separator plus the explicit one.
  std::size_t count = 0;
  std::size_t pos = 0;
  while ((pos = out.find("|---", pos)) != std::string::npos) {
    ++count;
    pos += 4;
  }
  EXPECT_EQ(count, 2u);
}

TEST(TextTable, RowCount) {
  TextTable table({"A"});
  EXPECT_EQ(table.row_count(), 0u);
  table.add_row({"1"});
  table.add_separator();
  EXPECT_EQ(table.row_count(), 2u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  CsvWriter csv;
  csv.add_row({"plain", "with,comma", "with\"quote", "with\nnewline"});
  EXPECT_EQ(csv.str(), "plain,\"with,comma\",\"with\"\"quote\",\"with\nnewline\"\n");
}

TEST(CsvWriter, MultipleRows) {
  CsvWriter csv;
  csv.add_row({"a", "b"});
  csv.add_row({"c"});
  EXPECT_EQ(csv.str(), "a,b\nc\n");
}

}  // namespace
}  // namespace cw::util
