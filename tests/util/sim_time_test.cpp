#include "util/sim_time.h"

#include <gtest/gtest.h>

namespace cw::util {
namespace {

TEST(SimTime, Constants) {
  EXPECT_EQ(kSecond, 1000);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
  EXPECT_EQ(kWeek, 7 * kDay);
}

TEST(SimTime, Format) {
  EXPECT_EQ(format_sim_time(0), "0d 00:00:00.000");
  EXPECT_EQ(format_sim_time(kDay + kHour + kMinute + kSecond + 1), "1d 01:01:01.001");
  EXPECT_EQ(format_sim_time(-kHour), "-0d 01:00:00.000");
}

TEST(SimTime, HourBucket) {
  EXPECT_EQ(hour_bucket(0), 0);
  EXPECT_EQ(hour_bucket(kHour - 1), 0);
  EXPECT_EQ(hour_bucket(kHour), 1);
  EXPECT_EQ(hour_bucket(kWeek - 1), 7 * 24 - 1);
}

}  // namespace
}  // namespace cw::util
